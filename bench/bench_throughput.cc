// Service-level throughput: queries per second of the end-to-end engine
// (index lookup -> two-stage search -> answer materialization) and the
// effect of the HTTP layer's LRU cache on repeated interactive queries —
// the paper's "interactive re-querying" motivation (Sec. I).
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/batch.h"
#include "server/search_service.h"

using namespace wikisearch;

int main() {
  eval::DatasetBundle data = bench::SmallDataset();
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 4, 32, 77);

  eval::PrintHeader("Query throughput (wikisynth-S, Knum=4, k=20)",
                    {"configuration", "queries", "total", "QPS"});

  auto report = [&](const std::string& label, size_t n, double ms) {
    char count[32], qps[32];
    std::snprintf(count, sizeof(count), "%zu", n);
    std::snprintf(qps, sizeof(qps), "%.0f", n / (ms / 1000.0));
    eval::PrintRow({label, count, eval::FmtMs(ms), qps});
  };

  // Raw engine, distinct queries.
  for (EngineKind kind : {EngineKind::kSequential, EngineKind::kCpuParallel,
                          EngineKind::kGpuSim}) {
    SearchOptions opts;
    opts.top_k = 20;
    opts.threads = 4;
    opts.engine = kind;
    SearchEngine engine(&data.kb.graph, &data.index, opts);
    WallTimer timer;
    for (const auto& q : queries) {
      auto res = engine.SearchKeywords(q.keywords, opts);
      (void)res;
    }
    report(EngineKindName(kind), queries.size(),
           timer.ElapsedMs());
  }

  // Inter-query parallelism: one query per worker, sequential inside.
  {
    std::vector<std::vector<std::string>> batch;
    for (const auto& q : queries) batch.push_back(q.keywords);
    for (int conc : {2, 4}) {
      BatchOptions bopts;
      bopts.concurrency = conc;
      bopts.search.top_k = 20;
      bopts.search.threads = 1;
      WallTimer timer;
      auto results = BatchSearch(&data.kb.graph, &data.index, batch, bopts);
      (void)results;
      report("batch x" + std::to_string(conc), batch.size(),
             timer.ElapsedMs());
    }
  }

  // Service with cache: first pass cold, second pass fully cached.
  SearchOptions opts;
  opts.top_k = 20;
  opts.threads = 4;
  server::SearchService service(&data.kb.graph, &data.index, opts, 1024);
  auto run_pass = [&](const char* label) {
    WallTimer timer;
    for (const auto& q : queries) {
      server::HttpRequest req;
      std::string text;
      for (const auto& kw : q.keywords) text += kw + " ";
      req.params["q"] = text;
      auto resp = service.HandleSearch(req);
      (void)resp;
    }
    report(label, queries.size(), timer.ElapsedMs());
  };
  run_pass("svc cold");
  run_pass("svc warm");

  std::printf("\ncache hits: %llu, misses: %llu\n",
              static_cast<unsigned long long>(service.cache().hits()),
              static_cast<unsigned long long>(service.cache().misses()));
  return 0;
}
