// Closed-loop serving throughput: N in-process clients issue back-to-back
// /search requests from a small hot query set and we measure delivered QPS
// and latency quantiles per concurrency level, comparing
//
//   mutex      — the pre-scheduler serving path: engine executions
//                serialized one at a time, no deduplication, no context
//                cache (the old engine_mu_, reconstructed via
//                SetMaxConcurrency(1) + SetSingleFlight(false));
//   sched      — the query scheduler: admission + single-flight dedup of
//                identical in-flight queries;
//   sched+ctx  — the scheduler plus the shared query-context cache.
//
// The response (body) cache is disabled in every configuration so the
// comparison measures the serving path, not body replay.
//
// A second, socket-level section compares the serving *tier* (DESIGN.md
// §13): the retired thread-per-connection server (ThreadedHttpServer,
// connection-per-request clients — it closes after every response) against
// the epoll reactor (keep-alive clients), with and without cross-request
// micro-batching, on /search and on a trivial /ping route that isolates
// transport cost. It then parks 1k/4k/10k idle keep-alive connections on
// the reactor while 8 active clients keep querying, and measures RSS per
// held connection on both tiers (thread stacks vs a few hundred bytes of
// reactor state).
//
// Results land in BENCH_throughput.json; --smoke runs a shortened sweep and
// exits nonzero unless (a) the scheduler beats the mutex baseline by >= 2x
// at 16 clients (the committed full run must show >= 3x), (b) the reactor
// matches or beats the thread-per-connection tier on /ping QPS at 64
// clients, and (c) the reactor holds >= 5x more connections per byte of
// RSS.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/random.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/search_service.h"
#include "server/threaded_server.h"

using namespace wikisearch;

namespace {

struct RunStats {
  std::string config;
  int clients = 0;
  uint64_t requests = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t engine_executions = 0;
  uint64_t single_flight_shared = 0;
  uint64_t context_cache_hits = 0;
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  idx = std::min(idx, sorted_ms.size() - 1);
  return sorted_ms[idx];
}

struct Config {
  const char* name;
  bool scheduler;      // false = serialized like the old engine mutex
  bool context_cache;
};

RunStats RunClosedLoop(const eval::DatasetBundle& data,
                       const std::vector<std::string>& hot_queries,
                       const Config& cfg, int clients, double duration_ms) {
  SearchOptions defaults;
  defaults.top_k = 10;
  defaults.threads = 1;  // intra-query width is not what this bench measures
  defaults.engine = EngineKind::kCpuParallel;
  // Response cache off (capacity 0) in every config: measure the serving
  // path, not body replay.
  server::SearchService service(&data.kb.graph, &data.index, defaults,
                                /*cache_capacity=*/0, /*metrics=*/nullptr,
                                /*context_cache_capacity=*/
                                cfg.context_cache ? 256u : 0u);
  if (!cfg.scheduler) {
    service.SetMaxConcurrency(1);
    service.SetSingleFlight(false);
  }

  // Warm-up: touch every hot query once so allocator and index warmth do
  // not favor whichever config runs later.
  for (const std::string& q : hot_queries) {
    server::HttpRequest req;
    req.params["q"] = q;
    (void)service.HandleSearch(req);
  }

  using Clock = std::chrono::steady_clock;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::atomic<bool> stop{false};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x9e3779b9u * static_cast<uint64_t>(c + 1));
      auto& lat = latencies[static_cast<size_t>(c)];
      while (!stop.load(std::memory_order_relaxed)) {
        server::HttpRequest req;
        req.params["q"] = hot_queries[rng.Uniform(hot_queries.size())];
        const auto t0 = Clock::now();
        auto resp = service.HandleSearch(req);
        const auto t1 = Clock::now();
        if (resp.status != 200) continue;
        lat.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(duration_ms));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  RunStats s;
  s.config = cfg.name;
  s.clients = clients;
  s.requests = all.size();
  s.wall_ms = wall_ms;
  s.qps = all.empty() ? 0.0
                      : static_cast<double>(all.size()) / (wall_ms / 1000.0);
  s.p50_ms = Percentile(all, 0.50);
  s.p99_ms = Percentile(all, 0.99);
  s.single_flight_shared = service.single_flight_shared();
  s.engine_executions =
      service.metrics()->GetCounter("ws_server_queries_total")->Value() -
      s.single_flight_shared;
  s.context_cache_hits = service.context_cache().hits();
  return s;
}

// ---------------------------------------------------------------------------
// Socket-level serving-tier comparison (DESIGN.md §13).
// ---------------------------------------------------------------------------

size_t CurrentRssBytes() {
  std::ifstream f("/proc/self/statm");
  size_t pages_total = 0, pages_resident = 0;
  f >> pages_total >> pages_resident;
  return pages_resident * static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

// Raises RLIMIT_NOFILE toward `want` (root may push the hard limit too) and
// returns the limit actually in effect, so the 10k-connection sweep clamps
// itself instead of dying on EMFILE.
size_t EffectiveFdLimit(size_t want) {
  struct rlimit rl {};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur != RLIM_INFINITY &&
      static_cast<size_t>(rl.rlim_cur) >= want) {
    return static_cast<size_t>(rl.rlim_cur);
  }
  struct rlimit bump = rl;
  bump.rlim_cur = want;
  if (bump.rlim_max != RLIM_INFINITY &&
      static_cast<size_t>(bump.rlim_max) < want) {
    bump.rlim_max = want;
  }
  if (setrlimit(RLIMIT_NOFILE, &bump) == 0) return want;
  bump = rl;
  bump.rlim_cur = rl.rlim_max;  // soft -> hard is always allowed
  if (setrlimit(RLIMIT_NOFILE, &bump) == 0 &&
      bump.rlim_cur != RLIM_INFINITY) {
    return static_cast<size_t>(bump.rlim_cur);
  }
  return rl.rlim_cur == RLIM_INFINITY ? want
                                      : static_cast<size_t>(rl.rlim_cur);
}

struct SocketRun {
  std::string config;
  std::string route;
  int clients = 0;
  size_t idle_conns = 0;
  uint64_t requests = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rss_mb = 0.0;
  uint64_t batch_epochs = 0;
  uint64_t batch_merged = 0;
};

// Closed-loop socket clients against a running server. Keep-alive clients
// hold one connection each (reconnecting if the server drops it); the
// connection-per-request mode models the thread-per-connection server,
// which closes after every response anyway.
SocketRun DriveSocket(uint16_t port, const std::vector<std::string>& targets,
                      int clients, double duration_ms, bool keep_alive) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  std::atomic<bool> stop{false};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x51ed2701u * static_cast<uint64_t>(c + 1));
      auto& lat = latencies[static_cast<size_t>(c)];
      server::HttpConnection conn;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& target = targets[rng.Uniform(targets.size())];
        const auto t0 = Clock::now();
        int status = 0;
        if (keep_alive) {
          if (!conn.connected() && !conn.Connect(port).ok()) continue;
          auto resp = conn.Get(target);
          if (!resp.ok()) {
            conn.Close();
            continue;
          }
          status = resp->status;
        } else {
          auto resp = server::HttpGet(port, target);
          if (!resp.ok()) continue;
          status = resp->status;
        }
        const auto t1 = Clock::now();
        if (status != 200) continue;
        lat.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(duration_ms));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  SocketRun s;
  s.clients = clients;
  s.requests = all.size();
  s.wall_ms = wall_ms;
  s.qps = all.empty() ? 0.0
                      : static_cast<double>(all.size()) / (wall_ms / 1000.0);
  s.p50_ms = Percentile(all, 0.50);
  s.p99_ms = Percentile(all, 0.99);
  return s;
}

enum class ServingTier { kThreadPerConn, kReactor, kReactorBatch };

const char* TierName(ServingTier tier) {
  switch (tier) {
    case ServingTier::kThreadPerConn:
      return "thread-per-conn";
    case ServingTier::kReactor:
      return "reactor";
    case ServingTier::kReactorBatch:
      return "reactor+batch";
  }
  return "?";
}

SocketRun RunSearchOverSocket(const eval::DatasetBundle& data,
                              const std::vector<std::string>& search_targets,
                              ServingTier tier, int clients,
                              double duration_ms) {
  SearchOptions defaults;
  defaults.top_k = 10;
  defaults.threads = 1;
  defaults.engine = EngineKind::kCpuParallel;
  server::SearchService service(&data.kb.graph, &data.index, defaults,
                                /*cache_capacity=*/0, /*metrics=*/nullptr,
                                /*context_cache_capacity=*/0);
  if (tier == ServingTier::kReactorBatch) {
    service.SetBatchWindow(2.0);
    service.SetBatchLimit(8);
  }
  auto handler = [&service](const server::HttpRequest& req) {
    return service.HandleSearch(req);
  };

  SocketRun s;
  if (tier == ServingTier::kThreadPerConn) {
    server::ThreadedHttpServer srv;
    srv.Route("/search", handler);
    if (!srv.Start(0).ok()) return s;
    for (const std::string& t : search_targets) {
      (void)server::HttpGet(srv.port(), t);
    }
    s = DriveSocket(srv.port(), search_targets, clients, duration_ms,
                    /*keep_alive=*/false);
    srv.Stop();
  } else {
    server::HttpServer srv;
    srv.Route("/search", handler);
    // Match the handler pool to the client count: the thread-per-connection
    // tier gets one handler thread per connection for free, and /search
    // handlers block in the engine, so a smaller pool would cap
    // single-flight sharing rather than measure the transport.
    srv.SetHandlerThreads(clients);
    if (!srv.Start(0).ok()) return s;
    for (const std::string& t : search_targets) {
      (void)server::HttpGet(srv.port(), t);
    }
    s = DriveSocket(srv.port(), search_targets, clients, duration_ms,
                    /*keep_alive=*/true);
    srv.Stop();
  }
  s.config = TierName(tier);
  s.route = "/search";
  s.batch_epochs = service.batch_epochs();
  s.batch_merged = service.batch_merged_queries();
  return s;
}

server::HttpHandler PingHandler() {
  return [](const server::HttpRequest&) {
    server::HttpResponse r;
    r.content_type = "text/plain";
    r.body = "pong";
    return r;
  };
}

// Transport-only comparison: a trivial route isolates connection setup and
// thread-spawn cost from engine time.
SocketRun RunPingOverSocket(ServingTier tier, int clients,
                            double duration_ms) {
  const std::vector<std::string> targets = {"/ping"};
  SocketRun s;
  if (tier == ServingTier::kThreadPerConn) {
    server::ThreadedHttpServer srv;
    srv.Route("/ping", PingHandler());
    if (!srv.Start(0).ok()) return s;
    s = DriveSocket(srv.port(), targets, clients, duration_ms,
                    /*keep_alive=*/false);
    srv.Stop();
  } else {
    server::HttpServer srv;
    srv.Route("/ping", PingHandler());
    if (!srv.Start(0).ok()) return s;
    s = DriveSocket(srv.port(), targets, clients, duration_ms,
                    /*keep_alive=*/true);
    srv.Stop();
  }
  s.config = TierName(tier);
  s.route = "/ping";
  return s;
}

// Parks `idle_conns` keep-alive connections on the reactor (idle reaping
// off) and measures what 8 active clients still get out of it, plus the
// process RSS with everything held open.
SocketRun RunIdleSweepPoint(size_t idle_conns, int active_clients,
                            double duration_ms) {
  server::HttpServer srv;
  srv.Route("/ping", PingHandler());
  srv.SetIdleTimeoutMs(0);  // parked connections must survive the run
  SocketRun s;
  if (!srv.Start(0).ok()) return s;
  std::vector<std::unique_ptr<server::HttpConnection>> parked;
  parked.reserve(idle_conns);
  for (size_t i = 0; i < idle_conns; ++i) {
    auto conn = std::make_unique<server::HttpConnection>();
    if (!conn->Connect(srv.port()).ok()) break;
    parked.push_back(std::move(conn));
  }
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::seconds(15);
  while (srv.active_connections() < parked.size() &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::vector<std::string> targets = {"/ping"};
  s = DriveSocket(srv.port(), targets, active_clients, duration_ms,
                  /*keep_alive=*/true);
  s.config = "reactor";
  s.route = "/ping";
  s.idle_conns = parked.size();
  s.rss_mb = static_cast<double>(CurrentRssBytes()) / (1024.0 * 1024.0);
  parked.clear();
  srv.Stop();
  return s;
}

struct CapacityStats {
  size_t conns = 0;
  double threaded_bytes_per_conn = 0.0;
  double reactor_bytes_per_conn = 0.0;
  double ratio = 0.0;
};

template <typename Server>
double MeasureRssPerConn(Server& srv, size_t conns) {
  const size_t rss0 = CurrentRssBytes();
  std::vector<std::unique_ptr<server::HttpConnection>> parked;
  parked.reserve(conns);
  for (size_t i = 0; i < conns; ++i) {
    auto conn = std::make_unique<server::HttpConnection>();
    if (!conn->Connect(srv.port()).ok()) break;
    parked.push_back(std::move(conn));
  }
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::seconds(15);
  while (srv.active_connections() < parked.size() &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const size_t rss1 = CurrentRssBytes();
  const size_t held = parked.size();
  parked.clear();  // EOF unblocks any worker parked in read
  if (held == 0) return 0.0;
  return static_cast<double>(rss1 > rss0 ? rss1 - rss0 : 0) /
         static_cast<double>(held);
}

// RSS cost of a held-open connection on each tier: the thread-per-connection
// server parks a worker (stack and all) in read per connection, the reactor
// a small heap entry. Reactor first so thread-stack pages released by the
// threaded run cannot deflate its delta.
CapacityStats MeasureConnectionCapacity(size_t conns) {
  CapacityStats c;
  c.conns = conns;
  {
    server::HttpServer srv;
    srv.Route("/ping", PingHandler());
    srv.SetIdleTimeoutMs(0);
    if (srv.Start(0).ok()) {
      c.reactor_bytes_per_conn = MeasureRssPerConn(srv, conns);
      srv.Stop();
    }
  }
  {
    server::ThreadedHttpServer srv;
    srv.Route("/ping", PingHandler());
    srv.SetSocketTimeoutMs(60000);  // workers park in read, holding stacks
    if (srv.Start(0).ok()) {
      c.threaded_bytes_per_conn = MeasureRssPerConn(srv, conns);
      srv.Stop();
    }
  }
  // The reactor's per-connection cost can vanish into allocator noise;
  // floor it at one cache line so the ratio stays finite.
  const double reactor = std::max(c.reactor_bytes_per_conn, 64.0);
  c.ratio = c.threaded_bytes_per_conn > 0.0
                ? c.threaded_bytes_per_conn / reactor
                : 0.0;
  return c;
}

void PrintSocketRow(const SocketRun& s) {
  char clients_s[16], requests_s[32], qps_s[32];
  std::snprintf(clients_s, sizeof(clients_s), "%d", s.clients);
  std::snprintf(requests_s, sizeof(requests_s), "%llu",
                static_cast<unsigned long long>(s.requests));
  std::snprintf(qps_s, sizeof(qps_s), "%.0f", s.qps);
  eval::PrintRow({s.config, clients_s, requests_s, qps_s,
                  eval::FmtMs(s.p50_ms), eval::FmtMs(s.p99_ms)});
}

const RunStats* Find(const std::vector<RunStats>& all,
                     const std::string& config, int clients) {
  for (const RunStats& s : all) {
    if (s.config == config && s.clients == clients) return &s;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  double duration_ms = smoke ? 250.0 : 1200.0;
  if (const char* env = std::getenv("WS_BENCH_DURATION_MS")) {
    duration_ms = std::atof(env);
  }

  eval::DatasetBundle data = bench::SmallDataset();
  // The hot set: 4 distinct queries, the interactive "everyone searches the
  // trending topic" shape single-flight and the context cache exist for.
  auto workload = gen::MakeEfficiencyWorkload(data.kb, data.index, 4, 4, 77);
  std::vector<std::string> hot_queries;
  for (const auto& q : workload) {
    std::string text;
    for (const auto& kw : q.keywords) {
      if (!text.empty()) text += ' ';
      text += kw;
    }
    hot_queries.push_back(std::move(text));
  }

  const std::vector<Config> configs = {
      {"mutex", /*scheduler=*/false, /*context_cache=*/false},
      {"sched", /*scheduler=*/true, /*context_cache=*/false},
      {"sched+ctx", /*scheduler=*/true, /*context_cache=*/true},
  };
  const std::vector<int> client_counts = {1, 4, 16, 64};

  eval::PrintHeader(
      "Closed-loop serving throughput (wikisynth-S, 4 hot queries)",
      {"configuration", "clients", "requests", "QPS", "p50", "p99"});
  std::vector<RunStats> results;
  for (const Config& cfg : configs) {
    for (int clients : client_counts) {
      RunStats s = RunClosedLoop(data, hot_queries, cfg, clients,
                                 duration_ms);
      char clients_s[16], requests_s[32], qps_s[32];
      std::snprintf(clients_s, sizeof(clients_s), "%d", s.clients);
      std::snprintf(requests_s, sizeof(requests_s), "%llu",
                    static_cast<unsigned long long>(s.requests));
      std::snprintf(qps_s, sizeof(qps_s), "%.0f", s.qps);
      eval::PrintRow({s.config, clients_s, requests_s, qps_s,
                      eval::FmtMs(s.p50_ms), eval::FmtMs(s.p99_ms)});
      results.push_back(std::move(s));
    }
  }

  // ---- Socket-level serving-tier comparison (DESIGN.md §13) ----
  // Both ends of every connection live in this process (client fd + server
  // fd), so a parked connection costs two fds; the slack covers listeners,
  // epoll/event fds, the active clients and stdio.
  const size_t fd_limit = EffectiveFdLimit(32768);
  const size_t max_parked = fd_limit > 1024 ? (fd_limit - 128) / 2 : 256;

  std::vector<std::string> search_targets;
  for (const std::string& q : hot_queries) {
    std::string enc = q;
    for (char& ch : enc) {
      if (ch == ' ') ch = '+';
    }
    search_targets.push_back("/search?q=" + enc + "&k=10");
  }

  eval::PrintHeader(
      "Serving tier over sockets: /search (thread-per-conn closes per "
      "response; reactor keeps alive)",
      {"configuration", "clients", "requests", "QPS", "p50", "p99"});
  std::vector<SocketRun> socket_runs;
  const std::vector<int> socket_clients = {4, 64};
  for (ServingTier tier :
       {ServingTier::kThreadPerConn, ServingTier::kReactor,
        ServingTier::kReactorBatch}) {
    for (int clients : socket_clients) {
      SocketRun s = RunSearchOverSocket(data, search_targets, tier, clients,
                                        duration_ms);
      PrintSocketRow(s);
      socket_runs.push_back(std::move(s));
    }
  }

  eval::PrintHeader(
      "Transport-only (/ping, 64 clients): connection setup + thread spawn "
      "vs keep-alive reactor",
      {"configuration", "clients", "requests", "QPS", "p50", "p99"});
  SocketRun ping_threaded =
      RunPingOverSocket(ServingTier::kThreadPerConn, 64, duration_ms);
  PrintSocketRow(ping_threaded);
  SocketRun ping_reactor =
      RunPingOverSocket(ServingTier::kReactor, 64, duration_ms);
  PrintSocketRow(ping_reactor);
  socket_runs.push_back(ping_threaded);
  socket_runs.push_back(ping_reactor);

  eval::PrintHeader(
      "Idle keep-alive sweep (reactor, 8 active clients + N parked "
      "connections)",
      {"idle conns", "requests", "QPS", "p50", "p99", "RSS MB"});
  std::vector<size_t> sweep_counts =
      smoke ? std::vector<size_t>{256, 1024}
            : std::vector<size_t>{1000, 4000, 10000};
  std::vector<SocketRun> sweep_runs;
  for (size_t n : sweep_counts) {
    const size_t parked = std::min(n, max_parked);
    if (parked < n) {
      std::fprintf(stderr,
                   "fd limit %zu clamps the %zu-connection point to %zu\n",
                   fd_limit, n, parked);
    }
    SocketRun s = RunIdleSweepPoint(parked, /*active_clients=*/8,
                                    duration_ms);
    char conns_s[16], requests_s[32], qps_s[32], rss_s[32];
    std::snprintf(conns_s, sizeof(conns_s), "%zu", s.idle_conns);
    std::snprintf(requests_s, sizeof(requests_s), "%llu",
                  static_cast<unsigned long long>(s.requests));
    std::snprintf(qps_s, sizeof(qps_s), "%.0f", s.qps);
    std::snprintf(rss_s, sizeof(rss_s), "%.1f", s.rss_mb);
    eval::PrintRow({conns_s, requests_s, qps_s, eval::FmtMs(s.p50_ms),
                    eval::FmtMs(s.p99_ms), rss_s});
    sweep_runs.push_back(std::move(s));
  }

  const CapacityStats cap =
      MeasureConnectionCapacity(std::min<size_t>(1000, max_parked));
  std::printf(
      "\nRSS per held connection over %zu conns: thread-per-conn %.0f B, "
      "reactor %.0f B -> %.1fx capacity at fixed RSS\n",
      cap.conns, cap.threaded_bytes_per_conn, cap.reactor_bytes_per_conn,
      cap.ratio);

  auto find_socket = [&socket_runs](const char* config, const char* route,
                                    int clients) -> const SocketRun* {
    for (const SocketRun& s : socket_runs) {
      if (s.config == config && s.route == route && s.clients == clients) {
        return &s;
      }
    }
    return nullptr;
  };
  auto qps_ratio = [&find_socket](const char* route, int clients) {
    const SocketRun* threaded = find_socket("thread-per-conn", route, clients);
    const SocketRun* reactor = find_socket("reactor", route, clients);
    return (threaded != nullptr && reactor != nullptr && threaded->qps > 0.0)
               ? reactor->qps / threaded->qps
               : 0.0;
  };
  const double ping_ratio_64 = qps_ratio("/ping", 64);
  const double search_ratio_64 = qps_ratio("/search", 64);
  const double search_ratio_4 = qps_ratio("/search", 4);

  const RunStats* mutex16 = Find(results, "mutex", 16);
  const RunStats* sched16 = Find(results, "sched", 16);
  const RunStats* schedctx16 = Find(results, "sched+ctx", 16);
  const RunStats* mutex1 = Find(results, "mutex", 1);
  const RunStats* sched1 = Find(results, "sched", 1);
  const double speedup16 =
      (mutex16 != nullptr && sched16 != nullptr && mutex16->qps > 0.0)
          ? sched16->qps / mutex16->qps
          : 0.0;
  const double speedup16_ctx =
      (mutex16 != nullptr && schedctx16 != nullptr && mutex16->qps > 0.0)
          ? schedctx16->qps / mutex16->qps
          : 0.0;
  const double p99_ratio_1client =
      (mutex1 != nullptr && sched1 != nullptr && mutex1->p99_ms > 0.0)
          ? sched1->p99_ms / mutex1->p99_ms
          : 0.0;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("throughput");
  w.Key("dataset");
  w.String("wikisynth-S");
  w.Key("hot_queries");
  w.UInt(hot_queries.size());
  w.Key("duration_ms_per_point");
  w.Double(duration_ms);
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("runs");
  w.BeginArray();
  for (const RunStats& s : results) {
    w.BeginObject();
    w.Key("config");
    w.String(s.config);
    w.Key("clients");
    w.Int(s.clients);
    w.Key("requests");
    w.UInt(s.requests);
    w.Key("wall_ms");
    w.Double(s.wall_ms);
    w.Key("qps");
    w.Double(s.qps);
    w.Key("p50_ms");
    w.Double(s.p50_ms);
    w.Key("p99_ms");
    w.Double(s.p99_ms);
    w.Key("engine_executions");
    w.UInt(s.engine_executions);
    w.Key("single_flight_shared");
    w.UInt(s.single_flight_shared);
    w.Key("context_cache_hits");
    w.UInt(s.context_cache_hits);
    w.EndObject();
  }
  w.EndArray();
  w.Key("socket_runs");
  w.BeginArray();
  for (const SocketRun& s : socket_runs) {
    w.BeginObject();
    w.Key("config");
    w.String(s.config);
    w.Key("route");
    w.String(s.route);
    w.Key("clients");
    w.Int(s.clients);
    w.Key("requests");
    w.UInt(s.requests);
    w.Key("wall_ms");
    w.Double(s.wall_ms);
    w.Key("qps");
    w.Double(s.qps);
    w.Key("p50_ms");
    w.Double(s.p50_ms);
    w.Key("p99_ms");
    w.Double(s.p99_ms);
    w.Key("batch_epochs");
    w.UInt(s.batch_epochs);
    w.Key("batch_merged");
    w.UInt(s.batch_merged);
    w.EndObject();
  }
  w.EndArray();
  w.Key("keepalive_sweep");
  w.BeginArray();
  for (const SocketRun& s : sweep_runs) {
    w.BeginObject();
    w.Key("idle_conns");
    w.UInt(s.idle_conns);
    w.Key("active_clients");
    w.Int(s.clients);
    w.Key("requests");
    w.UInt(s.requests);
    w.Key("qps");
    w.Double(s.qps);
    w.Key("p50_ms");
    w.Double(s.p50_ms);
    w.Key("p99_ms");
    w.Double(s.p99_ms);
    w.Key("rss_mb");
    w.Double(s.rss_mb);
    w.EndObject();
  }
  w.EndArray();
  w.Key("capacity");
  w.BeginObject();
  w.Key("connections");
  w.UInt(cap.conns);
  w.Key("threaded_rss_bytes_per_conn");
  w.Double(cap.threaded_bytes_per_conn);
  w.Key("reactor_rss_bytes_per_conn");
  w.Double(cap.reactor_bytes_per_conn);
  w.Key("capacity_ratio");
  w.Double(cap.ratio);
  w.Key("fd_limit");
  w.UInt(fd_limit);
  w.EndObject();
  w.Key("acceptance");
  w.BeginObject();
  w.Key("speedup_16_clients");
  w.Double(speedup16);
  w.Key("speedup_16_clients_with_context_cache");
  w.Double(speedup16_ctx);
  w.Key("meets_3x");
  w.Bool(speedup16 >= 3.0 || speedup16_ctx >= 3.0);
  w.Key("p99_ratio_1_client");
  w.Double(p99_ratio_1client);
  w.Key("p99_1_client_no_worse");
  // Tolerance for run-to-run noise on a single-digit-ms quantile.
  w.Bool(p99_ratio_1client <= 1.15);
  w.Key("reactor_vs_threaded_qps_64_ping");
  w.Double(ping_ratio_64);
  w.Key("reactor_meets_threaded_qps");
  w.Bool(ping_ratio_64 >= 1.0);
  w.Key("reactor_vs_threaded_qps_64_search");
  w.Double(search_ratio_64);
  w.Key("reactor_vs_threaded_qps_4_search");
  w.Double(search_ratio_4);
  // Engine time dominates /search, so low-concurrency parity has noise
  // headroom; the transport win shows undiluted on /ping.
  w.Key("search_qps_no_regression_low_concurrency");
  w.Bool(search_ratio_4 >= 0.9);
  w.Key("capacity_ratio");
  w.Double(cap.ratio);
  w.Key("meets_5x_capacity");
  w.Bool(cap.ratio >= 5.0);
  w.EndObject();
  w.EndObject();

  std::ofstream out(out_path);
  out << std::move(w).Take() << "\n";
  out.close();
  std::printf("\nscheduler speedup at 16 clients: %.2fx (with context "
              "cache: %.2fx); p99 ratio at 1 client: %.2f\n"
              "reactor vs thread-per-conn at 64 clients: %.2fx on /ping, "
              "%.2fx on /search; capacity ratio %.1fx\nwrote %s\n",
              speedup16, speedup16_ctx, p99_ratio_1client, ping_ratio_64,
              search_ratio_64, cap.ratio, out_path.c_str());

  if (smoke) {
    const double best = std::max(speedup16, speedup16_ctx);
    if (best < 2.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: scheduler speedup %.2fx < 2x at 16 clients\n",
                   best);
      return 1;
    }
    if (ping_ratio_64 < 1.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: reactor /ping QPS %.2fx of thread-per-conn "
                   "at 64 clients (must be >= 1x)\n",
                   ping_ratio_64);
      return 1;
    }
    if (cap.ratio < 5.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: connection capacity ratio %.1fx < 5x "
                   "(thread-per-conn %.0f B/conn, reactor %.0f B/conn)\n",
                   cap.ratio, cap.threaded_bytes_per_conn,
                   cap.reactor_bytes_per_conn);
      return 1;
    }
  }
  return 0;
}
