// Closed-loop serving throughput: N in-process clients issue back-to-back
// /search requests from a small hot query set and we measure delivered QPS
// and latency quantiles per concurrency level, comparing
//
//   mutex      — the pre-scheduler serving path: engine executions
//                serialized one at a time, no deduplication, no context
//                cache (the old engine_mu_, reconstructed via
//                SetMaxConcurrency(1) + SetSingleFlight(false));
//   sched      — the query scheduler: admission + single-flight dedup of
//                identical in-flight queries;
//   sched+ctx  — the scheduler plus the shared query-context cache.
//
// The response (body) cache is disabled in every configuration so the
// comparison measures the serving path, not body replay. Results land in
// BENCH_throughput.json; --smoke runs a shortened sweep and exits nonzero
// unless the scheduler beats the mutex baseline by >= 2x at 16 clients
// (the committed full run must show >= 3x).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/random.h"
#include "server/search_service.h"

using namespace wikisearch;

namespace {

struct RunStats {
  std::string config;
  int clients = 0;
  uint64_t requests = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t engine_executions = 0;
  uint64_t single_flight_shared = 0;
  uint64_t context_cache_hits = 0;
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  idx = std::min(idx, sorted_ms.size() - 1);
  return sorted_ms[idx];
}

struct Config {
  const char* name;
  bool scheduler;      // false = serialized like the old engine mutex
  bool context_cache;
};

RunStats RunClosedLoop(const eval::DatasetBundle& data,
                       const std::vector<std::string>& hot_queries,
                       const Config& cfg, int clients, double duration_ms) {
  SearchOptions defaults;
  defaults.top_k = 10;
  defaults.threads = 1;  // intra-query width is not what this bench measures
  defaults.engine = EngineKind::kCpuParallel;
  // Response cache off (capacity 0) in every config: measure the serving
  // path, not body replay.
  server::SearchService service(&data.kb.graph, &data.index, defaults,
                                /*cache_capacity=*/0, /*metrics=*/nullptr,
                                /*context_cache_capacity=*/
                                cfg.context_cache ? 256u : 0u);
  if (!cfg.scheduler) {
    service.SetMaxConcurrency(1);
    service.SetSingleFlight(false);
  }

  // Warm-up: touch every hot query once so allocator and index warmth do
  // not favor whichever config runs later.
  for (const std::string& q : hot_queries) {
    server::HttpRequest req;
    req.params["q"] = q;
    (void)service.HandleSearch(req);
  }

  using Clock = std::chrono::steady_clock;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::atomic<bool> stop{false};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x9e3779b9u * static_cast<uint64_t>(c + 1));
      auto& lat = latencies[static_cast<size_t>(c)];
      while (!stop.load(std::memory_order_relaxed)) {
        server::HttpRequest req;
        req.params["q"] = hot_queries[rng.Uniform(hot_queries.size())];
        const auto t0 = Clock::now();
        auto resp = service.HandleSearch(req);
        const auto t1 = Clock::now();
        if (resp.status != 200) continue;
        lat.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(duration_ms));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  RunStats s;
  s.config = cfg.name;
  s.clients = clients;
  s.requests = all.size();
  s.wall_ms = wall_ms;
  s.qps = all.empty() ? 0.0
                      : static_cast<double>(all.size()) / (wall_ms / 1000.0);
  s.p50_ms = Percentile(all, 0.50);
  s.p99_ms = Percentile(all, 0.99);
  s.single_flight_shared = service.single_flight_shared();
  s.engine_executions =
      service.metrics()->GetCounter("ws_server_queries_total")->Value() -
      s.single_flight_shared;
  s.context_cache_hits = service.context_cache().hits();
  return s;
}

const RunStats* Find(const std::vector<RunStats>& all,
                     const std::string& config, int clients) {
  for (const RunStats& s : all) {
    if (s.config == config && s.clients == clients) return &s;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  double duration_ms = smoke ? 250.0 : 1200.0;
  if (const char* env = std::getenv("WS_BENCH_DURATION_MS")) {
    duration_ms = std::atof(env);
  }

  eval::DatasetBundle data = bench::SmallDataset();
  // The hot set: 4 distinct queries, the interactive "everyone searches the
  // trending topic" shape single-flight and the context cache exist for.
  auto workload = gen::MakeEfficiencyWorkload(data.kb, data.index, 4, 4, 77);
  std::vector<std::string> hot_queries;
  for (const auto& q : workload) {
    std::string text;
    for (const auto& kw : q.keywords) {
      if (!text.empty()) text += ' ';
      text += kw;
    }
    hot_queries.push_back(std::move(text));
  }

  const std::vector<Config> configs = {
      {"mutex", /*scheduler=*/false, /*context_cache=*/false},
      {"sched", /*scheduler=*/true, /*context_cache=*/false},
      {"sched+ctx", /*scheduler=*/true, /*context_cache=*/true},
  };
  const std::vector<int> client_counts = {1, 4, 16, 64};

  eval::PrintHeader(
      "Closed-loop serving throughput (wikisynth-S, 4 hot queries)",
      {"configuration", "clients", "requests", "QPS", "p50", "p99"});
  std::vector<RunStats> results;
  for (const Config& cfg : configs) {
    for (int clients : client_counts) {
      RunStats s = RunClosedLoop(data, hot_queries, cfg, clients,
                                 duration_ms);
      char clients_s[16], requests_s[32], qps_s[32];
      std::snprintf(clients_s, sizeof(clients_s), "%d", s.clients);
      std::snprintf(requests_s, sizeof(requests_s), "%llu",
                    static_cast<unsigned long long>(s.requests));
      std::snprintf(qps_s, sizeof(qps_s), "%.0f", s.qps);
      eval::PrintRow({s.config, clients_s, requests_s, qps_s,
                      eval::FmtMs(s.p50_ms), eval::FmtMs(s.p99_ms)});
      results.push_back(std::move(s));
    }
  }

  const RunStats* mutex16 = Find(results, "mutex", 16);
  const RunStats* sched16 = Find(results, "sched", 16);
  const RunStats* schedctx16 = Find(results, "sched+ctx", 16);
  const RunStats* mutex1 = Find(results, "mutex", 1);
  const RunStats* sched1 = Find(results, "sched", 1);
  const double speedup16 =
      (mutex16 != nullptr && sched16 != nullptr && mutex16->qps > 0.0)
          ? sched16->qps / mutex16->qps
          : 0.0;
  const double speedup16_ctx =
      (mutex16 != nullptr && schedctx16 != nullptr && mutex16->qps > 0.0)
          ? schedctx16->qps / mutex16->qps
          : 0.0;
  const double p99_ratio_1client =
      (mutex1 != nullptr && sched1 != nullptr && mutex1->p99_ms > 0.0)
          ? sched1->p99_ms / mutex1->p99_ms
          : 0.0;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("throughput");
  w.Key("dataset");
  w.String("wikisynth-S");
  w.Key("hot_queries");
  w.UInt(hot_queries.size());
  w.Key("duration_ms_per_point");
  w.Double(duration_ms);
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("runs");
  w.BeginArray();
  for (const RunStats& s : results) {
    w.BeginObject();
    w.Key("config");
    w.String(s.config);
    w.Key("clients");
    w.Int(s.clients);
    w.Key("requests");
    w.UInt(s.requests);
    w.Key("wall_ms");
    w.Double(s.wall_ms);
    w.Key("qps");
    w.Double(s.qps);
    w.Key("p50_ms");
    w.Double(s.p50_ms);
    w.Key("p99_ms");
    w.Double(s.p99_ms);
    w.Key("engine_executions");
    w.UInt(s.engine_executions);
    w.Key("single_flight_shared");
    w.UInt(s.single_flight_shared);
    w.Key("context_cache_hits");
    w.UInt(s.context_cache_hits);
    w.EndObject();
  }
  w.EndArray();
  w.Key("acceptance");
  w.BeginObject();
  w.Key("speedup_16_clients");
  w.Double(speedup16);
  w.Key("speedup_16_clients_with_context_cache");
  w.Double(speedup16_ctx);
  w.Key("meets_3x");
  w.Bool(speedup16 >= 3.0 || speedup16_ctx >= 3.0);
  w.Key("p99_ratio_1_client");
  w.Double(p99_ratio_1client);
  w.Key("p99_1_client_no_worse");
  // Tolerance for run-to-run noise on a single-digit-ms quantile.
  w.Bool(p99_ratio_1client <= 1.15);
  w.EndObject();
  w.EndObject();

  std::ofstream out(out_path);
  out << std::move(w).Take() << "\n";
  out.close();
  std::printf("\nscheduler speedup at 16 clients: %.2fx (with context "
              "cache: %.2fx); p99 ratio at 1 client: %.2f\nwrote %s\n",
              speedup16, speedup16_ctx, p99_ratio_1client, out_path.c_str());

  if (smoke) {
    const double best = std::max(speedup16, speedup16_ctx);
    if (best < 2.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: scheduler speedup %.2fx < 2x at 16 clients\n",
                   best);
      return 1;
    }
  }
  return 0;
}
