// Regenerates Fig. 12: effectiveness (top-k precision) on the large dataset.
#include "bench_effectiveness.inc.h"

int main() {
  return wikisearch::bench::RunEffectiveness(
      &wikisearch::bench::LargeDataset, "Fig. 12");
}
