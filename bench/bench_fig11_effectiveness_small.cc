// Regenerates Fig. 11: effectiveness (top-k precision) on the small dataset.
#include "bench_effectiveness.inc.h"

int main() {
  return wikisearch::bench::RunEffectiveness(
      &wikisearch::bench::SmallDataset, "Fig. 11");
}
