// google-benchmark micro-kernels for the text pipeline: tokenization,
// Porter stemming, full analysis, inverted index build and lookups.
#include <benchmark/benchmark.h>

#include "gen/wikigen.h"
#include "text/inverted_index.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace wikisearch {
namespace {

const gen::GeneratedKb& Kb() {
  static const gen::GeneratedKb* kb = [] {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 10000;
    cfg.seed = 5;
    return new gen::GeneratedKb(gen::Generate(cfg));
  }();
  return *kb;
}

void BM_Tokenize(benchmark::State& state) {
  std::string text =
      "An Efficient Parallel Keyword Search Engine on Knowledge Graphs, "
      "bidirectional expansion for keyword search on graph databases";
  for (auto _ : state) {
    auto tokens = Tokenize(text);
    benchmark::DoNotOptimize(tokens.data());
  }
}
BENCHMARK(BM_Tokenize);

void BM_PorterStem(benchmark::State& state) {
  const char* words[] = {"relational",  "organization", "effectiveness",
                         "indexing",    "probabilistic", "summarization",
                         "activations", "bidirectional"};
  size_t i = 0;
  for (auto _ : state) {
    std::string s = PorterStem(words[i++ % std::size(words)]);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_PorterStem);

void BM_AnalyzeText(benchmark::State& state) {
  std::string text =
      "The Efficient Parallel Keyword Search Engines on the Knowledge "
      "Graphs of relational databases";
  for (auto _ : state) {
    auto terms = AnalyzeText(text);
    benchmark::DoNotOptimize(terms.data());
  }
}
BENCHMARK(BM_AnalyzeText);

void BM_IndexBuild(benchmark::State& state) {
  const KnowledgeGraph& g = Kb().graph;
  for (auto _ : state) {
    InvertedIndex index = InvertedIndex::Build(g);
    benchmark::DoNotOptimize(index.num_terms());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_IndexBuild);

void BM_IndexLookup(benchmark::State& state) {
  const gen::GeneratedKb& kb = Kb();
  static const InvertedIndex* index =
      new InvertedIndex(InvertedIndex::Build(kb.graph));
  const auto& terms = kb.meta.community_terms[0];
  size_t i = 0;
  for (auto _ : state) {
    auto postings = index->Lookup(terms[i++ % terms.size()]);
    benchmark::DoNotOptimize(postings.data());
  }
}
BENCHMARK(BM_IndexLookup);

}  // namespace
}  // namespace wikisearch

BENCHMARK_MAIN();
