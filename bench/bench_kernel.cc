// Bottom-up kernel microbenchmark (DESIGN.md §11): the raw-speed pass over
// the stage-1 hot loops, measured as three stacked variants on wikisynth-M:
//
//   legacy — the paper's instance-major expansion (one adjacency pass per
//            hit instance, per-neighbor re-flag) with scalar loops: the
//            pre-kernel baseline (SearchOptions::legacy_instance_expansion);
//   scalar — neighbor-major expansion + degree-bucketed schedule through
//            the portable kernel Ops;
//   avx2   — the same structure through the AVX2 kernels (present only when
//            the host dispatches them).
//
// Every variant commits byte-identical search state (kernel_equivalence_test
// proves it), so the deltas here are pure speed. Results are written to
// BENCH_kernel.json; --smoke runs a shortened sweep and exits nonzero unless
// the best kernel beats the legacy expansion phase by >= 1.5x at Tnum=1.
// Single-core CI hosts drift up to ~30% run to run, so the smoke gate
// re-measures (up to 3 attempts) before failing: it is a regression
// tripwire, not a benchmark. The committed full run records the stage
// ratios measured on the reference host.
//
// Measurement: each (Tnum, variant) cell is the median of `reps` interleaved
// repetitions — one profile per variant per round, so time-correlated host
// drift hits every variant alike before the median is taken. The JSON
// records hw_threads and flags rows where Tnum exceeds it: on such
// oversubscribed rows the workers time-slice one another and the timings
// measure scheduler contention, not kernel scaling — ISA deltas there swing
// far beyond the real effect (an earlier committed run showed AVX2 29%
// "slower" at Tnum=4 on a 1-core host; re-measurement swung the same cell
// between 0.9x and 3.5x). Only rows with Tnum <= hw_threads support
// conclusions about dispatch; the Tnum=1 rows consistently show AVX2 at or
// above scalar, so dispatch stays gated on ISA alone.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "core/kernel/kernel.h"

using namespace wikisearch;

namespace {

struct VariantRun {
  eval::ProfiledRun run;
  double bottomup_ms = 0.0;  // init + enqueue + identify + expansion
};

VariantRun Profile(const eval::DatasetBundle& data,
                   const std::vector<gen::Query>& queries,
                   const SearchOptions& opts) {
  VariantRun v;
  v.run = eval::ProfileEngine(data, queries, opts);
  v.bottomup_ms = v.run.avg.init_ms + v.run.avg.enqueue_ms +
                  v.run.avg.identify_ms + v.run.avg.expansion_ms;
  return v;
}

void WriteVariant(JsonWriter& w, const VariantRun& v) {
  w.BeginObject();
  w.Key("init_ms");
  w.Double(v.run.avg.init_ms);
  w.Key("enqueue_ms");
  w.Double(v.run.avg.enqueue_ms);
  w.Key("identify_ms");
  w.Double(v.run.avg.identify_ms);
  w.Key("expansion_ms");
  w.Double(v.run.avg.expansion_ms);
  w.Key("bottomup_ms");
  w.Double(v.bottomup_ms);
  w.Key("total_ms");
  w.Double(v.run.avg.total_ms);
  w.EndObject();
}

double Ratio(double base, double x) { return x > 0.0 ? base / x : 0.0; }

VariantRun MedianByExpansion(std::vector<VariantRun> runs) {
  std::sort(runs.begin(), runs.end(),
            [](const VariantRun& a, const VariantRun& b) {
              return a.run.avg.expansion_ms < b.run.avg.expansion_ms;
            });
  return runs[runs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  eval::DatasetBundle data = bench::MediumDataset();
  const size_t num_queries = smoke ? 4 : eval::BenchQueryCount();
  const int reps = smoke ? 1 : 3;
  auto queries =
      gen::MakeEfficiencyWorkload(data.kb, data.index, 10, num_queries, 919);

  const bool have_avx2 = kernel::Avx2Usable();
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("bottomup_kernel");
  w.Key("dataset");
  w.String(data.name);
  w.Key("nodes");
  w.UInt(data.kb.graph.num_nodes());
  w.Key("triples");
  w.UInt(data.kb.graph.num_triples());
  w.Key("queries");
  w.UInt(num_queries);
  w.Key("knum");
  w.UInt(10);
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("avx2_dispatched");
  w.Bool(have_avx2);
  w.Key("hw_threads");
  w.UInt(hw_threads);
  w.Key("reps");
  w.Int(reps);
  w.Key("configs");
  w.BeginArray();

  eval::PrintHeader(
      "Bottom-up kernels: legacy instance-major vs neighbor-major "
      "scalar/AVX2 (Knum=10, " + data.name + ")",
      {"Tnum", "variant", "expand", "bottomup", "total", "expand spdup",
       "bottomup spdup"});

  double expansion_speedup_t1 = 0.0;  // best kernel vs legacy at Tnum=1
  double bottomup_speedup_t1 = 0.0;

  for (int threads : {1, 2, 4, 8}) {
    SearchOptions opts;
    opts.top_k = 20;
    opts.threads = threads;
    opts.engine = EngineKind::kCpuParallel;

    SearchOptions legacy_opts = opts;
    legacy_opts.legacy_instance_expansion = true;
    legacy_opts.degree_bucketed_expansion = false;
    legacy_opts.kernel_isa = KernelIsa::kScalar;
    SearchOptions scalar_opts = opts;
    scalar_opts.kernel_isa = KernelIsa::kScalar;
    SearchOptions avx2_opts = opts;
    avx2_opts.kernel_isa = KernelIsa::kAvx2;

    // One profile per variant per round, then median per variant: host-load
    // drift is time-correlated, so interleaving exposes every variant to
    // the same drift instead of letting one variant absorb a slow window.
    std::vector<VariantRun> legacy_r, scalar_r, avx2_r;
    for (int rep = 0; rep < reps; ++rep) {
      legacy_r.push_back(Profile(data, queries, legacy_opts));
      scalar_r.push_back(Profile(data, queries, scalar_opts));
      if (have_avx2) avx2_r.push_back(Profile(data, queries, avx2_opts));
    }
    VariantRun legacy = MedianByExpansion(std::move(legacy_r));
    VariantRun scalar = MedianByExpansion(std::move(scalar_r));
    VariantRun avx2;
    if (have_avx2) avx2 = MedianByExpansion(std::move(avx2_r));

    if (smoke && threads == 1) {
      // Retry the gated config on a miss: machine-level drift on shared
      // single-core hosts can depress any one measurement by more than the
      // gate margin.
      for (int rep = 1; rep < 3; ++rep) {
        const VariantRun& b = have_avx2 ? avx2 : scalar;
        if (Ratio(legacy.run.avg.expansion_ms, b.run.avg.expansion_ms) >=
            1.5) {
          break;
        }
        legacy = Profile(data, queries, legacy_opts);
        scalar = Profile(data, queries, scalar_opts);
        if (have_avx2) avx2 = Profile(data, queries, avx2_opts);
      }
    }

    const VariantRun& best = have_avx2 ? avx2 : scalar;
    const double expand_speedup =
        Ratio(legacy.run.avg.expansion_ms, best.run.avg.expansion_ms);
    const double bottomup_speedup = Ratio(legacy.bottomup_ms, best.bottomup_ms);
    if (threads == 1) {
      expansion_speedup_t1 = expand_speedup;
      bottomup_speedup_t1 = bottomup_speedup;
    }

    struct Row {
      const char* label;
      const VariantRun* v;
      bool present;
    };
    const Row rows[] = {{"legacy", &legacy, true},
                        {"scalar", &scalar, true},
                        {"avx2", &avx2, have_avx2}};
    for (const Row& r : rows) {
      if (!r.present) continue;
      char es[32], bs[32];
      std::snprintf(es, sizeof(es), "%.2fx",
                    Ratio(legacy.run.avg.expansion_ms,
                          r.v->run.avg.expansion_ms));
      std::snprintf(bs, sizeof(bs), "%.2fx",
                    Ratio(legacy.bottomup_ms, r.v->bottomup_ms));
      eval::PrintRow({std::to_string(threads), r.label,
                      eval::FmtMs(r.v->run.avg.expansion_ms),
                      eval::FmtMs(r.v->bottomup_ms),
                      eval::FmtMs(r.v->run.avg.total_ms), es, bs});
    }

    w.BeginObject();
    w.Key("threads");
    w.Int(threads);
    // Rows with more workers than hardware threads time-slice one core;
    // their numbers measure scheduler contention, not kernel scaling.
    w.Key("oversubscribed");
    w.Bool(static_cast<unsigned>(threads) > hw_threads);
    w.Key("legacy");
    WriteVariant(w, legacy);
    w.Key("scalar");
    WriteVariant(w, scalar);
    if (have_avx2) {
      w.Key("avx2");
      WriteVariant(w, avx2);
    }
    w.Key("expansion_speedup");
    w.Double(expand_speedup);
    w.Key("bottomup_speedup");
    w.Double(bottomup_speedup);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string json = std::move(w).Take();
  if (FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::printf("\nfailed to open %s for writing\n", out_path);
    return 1;
  }
  std::printf(
      "shape: the neighbor-major kernels replace one adjacency pass per hit\n"
      "instance with a single pass per frontier node; AVX2 retires 4\n"
      "neighbors (or 4 full-mask probes, or 8 flag words) per compare.\n");

  if (smoke && expansion_speedup_t1 < 1.5) {
    std::printf("SMOKE FAIL: expansion speedup %.2fx < 1.5x at Tnum=1\n",
                expansion_speedup_t1);
    return 1;
  }
  if (smoke) {
    std::printf("smoke ok: expansion %.2fx, bottomup %.2fx at Tnum=1\n",
                expansion_speedup_t1, bottomup_speedup_t1);
  }
  return 0;
}
