// Regenerates Fig. 3: distribution of nodes over minimum activation levels
// for alpha in {0.05, 0.1, 0.4}. The paper's claim: larger alpha maps more
// nodes to smaller activation levels (buckets 0..3, last bucket >= 4).
#include <cstdio>

#include "bench_common.h"
#include "core/activation.h"

using namespace wikisearch;

int main() {
  eval::DatasetBundle data = bench::LargeDataset();
  const size_t buckets = 5;
  eval::PrintHeader("Fig. 3: node distribution over min activation level",
                    {"alpha", "level 0", "level 1", "level 2", "level 3",
                     ">= 4"});
  const double total = static_cast<double>(data.kb.graph.num_nodes());
  for (double alpha : {0.05, 0.1, 0.4}) {
    auto hist = ActivationDistribution(data.kb.graph, alpha, buckets);
    std::vector<std::string> row{"alpha-" + std::to_string(alpha).substr(0, 4)};
    for (size_t l = 0; l < buckets; ++l) {
      row.push_back(eval::FmtPct(static_cast<double>(hist[l]) / total));
    }
    eval::PrintRow(row);
  }
  std::printf(
      "\npaper shape: most nodes sit at A=round(avg distance); the mass at\n"
      "low levels grows with alpha (alpha-0.4 pushes heavy nodes down).\n");
  return 0;
}
