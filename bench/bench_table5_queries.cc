// Regenerates Table V: the effectiveness query suite (analogues of the
// paper's Q1-Q11) with average keyword frequency (kwf) on both datasets.
#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace wikisearch;

int main() {
  eval::DatasetBundle small = bench::SmallDataset();
  eval::DatasetBundle large = bench::LargeDataset();
  auto queries_s = gen::MakeEffectivenessWorkload(small.kb, small.index, 777);
  auto queries_l = gen::MakeEffectivenessWorkload(large.kb, large.index, 777);

  eval::PrintHeader("Table V: effectiveness queries",
                    {"query", "kind", "kwf-S", "kwf-L"});
  for (size_t i = 0; i < queries_s.size(); ++i) {
    const gen::Query& qs = queries_s[i];
    const gen::Query& ql = queries_l[i];
    const char* kind =
        qs.distractor_community >= 0
            ? "phrase-split"
            : (qs.target_community >= 0 ? "coherent" : "open");
    char kwf_s[32], kwf_l[32];
    std::snprintf(kwf_s, sizeof(kwf_s), "%.0f",
                  gen::AverageKeywordFrequency(qs, small.index));
    std::snprintf(kwf_l, sizeof(kwf_l), "%.0f",
                  gen::AverageKeywordFrequency(ql, large.index));
    eval::PrintRow({qs.id, kind, kwf_s, kwf_l});
    std::ostringstream kws;
    for (const auto& kw : qs.keywords) kws << kw << ' ';
    std::printf("    S keywords: %s\n", kws.str().c_str());
  }
  std::printf(
      "\npaper shape: kwf grows with dataset size; Q10 (open, head terms)\n"
      "has the largest kwf, Q11 (rare, unambiguous) the smallest.\n");
  return 0;
}
