// Regenerates Table IV: pre-storage (CSR + weights + dictionaries) and the
// maximum running storage (pre-storage + node-keyword matrix + identifier
// arrays + frontier) at Knum=8, Topk=50 — the paper's GPU memory accounting
// (wiki2017: 1.19 -> 1.46 GB; wiki2018: 2.41 -> 2.92 GB, i.e. running state
// adds ~20-25%).
#include <cstdio>

#include "bench_common.h"

using namespace wikisearch;

namespace {

std::string FmtBytes(size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KB",
                  static_cast<double>(bytes) / (1 << 10));
  }
  return buf;
}

}  // namespace

int main() {
  eval::PrintHeader("Table IV: running storage (Knum=8, Topk=50)",
                    {"dataset", "pre-storage", "max running", "overhead"});
  for (auto* make : {&bench::SmallDataset, &bench::LargeDataset}) {
    eval::DatasetBundle data = make();
    auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 8,
                                               eval::BenchQueryCount(), 404);
    SearchOptions opts;
    opts.top_k = 50;
    opts.alpha = 0.1;
    opts.threads = 4;
    opts.engine = EngineKind::kGpuSim;  // the paper reports the GPU engine
    eval::ProfiledRun run = eval::ProfileEngine(data, queries, opts);
    size_t pre = data.kb.graph.PreStorageBytes();
    double overhead = static_cast<double>(run.peak_storage_bytes) /
                          static_cast<double>(pre) -
                      1.0;
    eval::PrintRow({data.name, FmtBytes(pre),
                    FmtBytes(run.peak_storage_bytes), eval::FmtPct(overhead)});
  }
  std::printf(
      "\npaper: wiki2017 1.19 GB -> 1.46 GB; wiki2018 2.41 GB -> 2.92 GB\n"
      "(running state adds ~20-25%% over pre-storage).\n");
  return 0;
}
