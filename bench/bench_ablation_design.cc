// Ablation bench for the design choices DESIGN.md calls out:
//
//  1. level-cover pruning on/off      -> answer compactness vs precision
//  2. answer dedup on/off             -> repetition among top-k
//  3. minimum activation on/off       -> precision collapse (the paper's
//     argument that unweighted search degenerates to arbitrary BFS)
//  4. lambda sweep of Eq. 6           -> depth-penalty sensitivity
#include <cstdio>

#include "bench_common.h"
#include "eval/relevance.h"

using namespace wikisearch;

namespace {

struct Agg {
  double precision = 0.0;
  double answer_nodes = 0.0;
  double hub_nodes = 0.0;  // avg nodes with weight > 0.35 per answer
  double total_ms = 0.0;
  double answers = 0.0;
};

Agg RunConfig(const eval::DatasetBundle& data,
              const std::vector<gen::Query>& queries,
              const eval::RelevanceJudge& judge, SearchOptions opts) {
  Agg agg;
  SearchEngine engine(&data.kb.graph, &data.index, opts);
  size_t count = 0;
  for (const gen::Query& q : queries) {
    auto res = engine.SearchKeywords(q.keywords, opts);
    if (!res.ok()) continue;
    agg.precision += judge.TopKPrecision(q, res->answers, opts.top_k);
    size_t nodes = 0, hubs = 0;
    for (const auto& a : res->answers) {
      nodes += a.nodes.size();
      for (NodeId v : a.nodes) {
        if (data.kb.graph.NodeWeight(v) > 0.35) ++hubs;
      }
    }
    if (!res->answers.empty()) {
      agg.answer_nodes +=
          static_cast<double>(nodes) / static_cast<double>(res->answers.size());
      agg.hub_nodes +=
          static_cast<double>(hubs) / static_cast<double>(res->answers.size());
    }
    agg.answers += static_cast<double>(res->answers.size());
    agg.total_ms += res->timings.total_ms;
    ++count;
  }
  if (count > 0) {
    agg.precision /= static_cast<double>(count);
    agg.answer_nodes /= static_cast<double>(count);
    agg.hub_nodes /= static_cast<double>(count);
    agg.total_ms /= static_cast<double>(count);
    agg.answers /= static_cast<double>(count);
  }
  return agg;
}

void PrintAgg(const std::string& label, const Agg& agg) {
  char nodes[32], hubs[32], answers[32];
  std::snprintf(nodes, sizeof(nodes), "%.1f", agg.answer_nodes);
  std::snprintf(hubs, sizeof(hubs), "%.2f", agg.hub_nodes);
  std::snprintf(answers, sizeof(answers), "%.1f", agg.answers);
  eval::PrintRow({label, eval::FmtPct(agg.precision), nodes, hubs, answers,
                  eval::FmtMs(agg.total_ms)});
}

}  // namespace

int main() {
  eval::DatasetBundle data = bench::SmallDataset();
  eval::RelevanceJudge judge(&data.kb);
  auto queries = gen::MakeEffectivenessWorkload(data.kb, data.index, 777);
  queries.resize(9);  // Q1-Q9, the judged set

  SearchOptions base;
  base.top_k = 10;
  base.alpha = 0.1;
  base.threads = 4;

  eval::PrintHeader("Ablation: level-cover / dedup / activation",
                    {"config", "precision@10", "nodes/ans", "hubs/ans",
                     "answers", "time"});
  PrintAgg("baseline", RunConfig(data, queries, judge, base));

  SearchOptions no_cover = base;
  no_cover.enable_level_cover = false;
  PrintAgg("no level-cover", RunConfig(data, queries, judge, no_cover));

  SearchOptions no_dedup = base;
  no_dedup.dedup_answers = false;
  PrintAgg("no dedup", RunConfig(data, queries, judge, no_dedup));

  SearchOptions no_act = base;
  no_act.enable_activation = false;
  PrintAgg("no activation", RunConfig(data, queries, judge, no_act));

  // Level-cover bites when phrases co-occur: short coherent queries where
  // one entity name can cover most keywords and single-contribution
  // stragglers get pruned (the paper's Fig. 5 situation).
  auto phrase_queries =
      gen::MakeEfficiencyWorkload(data.kb, data.index, 3, 12, 313);
  eval::PrintHeader("Ablation: level-cover on co-occurrence-heavy queries",
                    {"config", "precision@10", "nodes/ans", "hubs/ans",
                     "answers", "time"});
  PrintAgg("level-cover on",
           RunConfig(data, phrase_queries, judge, base));
  PrintAgg("level-cover off",
           RunConfig(data, phrase_queries, judge, no_cover));

  eval::PrintHeader("Ablation: lambda sweep of Eq. 6 scoring",
                    {"config", "precision@10", "nodes/ans", "hubs/ans",
                     "answers", "time"});
  for (double lambda : {0.0, 0.2, 1.0}) {
    SearchOptions opts = base;
    opts.lambda = lambda;
    char label[32];
    std::snprintf(label, sizeof(label), "lambda=%.1f", lambda);
    PrintAgg(label, RunConfig(data, queries, judge, opts));
  }

  std::printf(
      "\nexpected: disabling level-cover inflates nodes/ans; disabling\n"
      "activation reduces precision (arbitrary shortcuts through summary\n"
      "hubs); lambda has a mild effect at these depths.\n");
  return 0;
}
