// Regenerates Fig. 7: vary Knum on the large dataset (wiki2018 role),
// per-phase profiling for all engine variants plus BANKS-II total.
#include "bench_vary_knum.inc.h"

int main() {
  return wikisearch::bench::RunVaryKnum(&wikisearch::bench::LargeDataset,
                                        "Fig. 7");
}
