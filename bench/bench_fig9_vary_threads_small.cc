// Regenerates Fig. 9: vary Tnum on the small dataset (wiki2017 role).
#include "bench_vary_threads.inc.h"

int main() {
  return wikisearch::bench::RunVaryThreads(&wikisearch::bench::SmallDataset,
                                           "Fig. 9");
}
