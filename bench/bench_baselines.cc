// Answer-model shoot-out backing the paper's Related Work (Sec. II):
// Central Graph vs BANKS-I/II (approximate GST), DPBF (exact GST dynamic
// programming, Ding et al. ICDE'07) and r-clique (Kargar & An VLDB'11) on
// the same dataset and workload — time and judged precision — plus DPBF's
// exponential blow-up in the number of keywords, the reason the paper rules
// it out for interactive search.
#include <cstdio>

#include "bench_common.h"
#include "eval/relevance.h"
#include "gst/dpbf.h"
#include "gst/objectrank.h"
#include "gst/rclique.h"

using namespace wikisearch;

int main() {
  eval::DatasetBundle data = bench::SmallDataset();
  eval::RelevanceJudge judge(&data.kb);
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 4,
                                             eval::BenchQueryCount(), 2121);

  eval::PrintHeader("Answer models on wikisynth-S (Knum=4, k=10)",
                    {"system", "avg time", "precision@10", "answers"});

  auto report = [&](const std::string& label, double ms, double prec,
                    double answers) {
    char p[16], a[16];
    std::snprintf(p, sizeof(p), "%.0f%%", prec * 100);
    std::snprintf(a, sizeof(a), "%.1f", answers);
    eval::PrintRow({label, eval::FmtMs(ms), p, a});
  };

  // Central Graph (best default alpha).
  {
    SearchOptions opts;
    opts.top_k = 10;
    opts.threads = 4;
    SearchEngine engine(&data.kb.graph, &data.index, opts);
    double ms = 0, prec = 0, answers = 0;
    for (const auto& q : queries) {
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      ms += res->timings.total_ms;
      prec += judge.TopKPrecision(q, res->answers, 10);
      answers += static_cast<double>(res->answers.size());
    }
    report("CentralGraph", ms / queries.size(), prec / queries.size(),
           answers / queries.size());
  }
  // BANKS-I and BANKS-II.
  for (auto [variant, label] :
       {std::pair{banks::BanksVariant::kBanks1, "BANKS-I"},
        std::pair{banks::BanksVariant::kBanks2, "BANKS-II"}}) {
    banks::BanksEngine engine(&data.kb.graph, &data.index);
    banks::BanksOptions opts;
    opts.top_k = 10;
    opts.variant = variant;
    opts.time_limit_ms = eval::BanksTimeLimitMs();
    double ms = 0, prec = 0, answers = 0;
    for (const auto& q : queries) {
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      ms += res->timed_out ? opts.time_limit_ms : res->elapsed_ms;
      prec += judge.TopKPrecision(q, res->answers, 10);
      answers += static_cast<double>(res->answers.size());
    }
    report(label, ms / queries.size(), prec / queries.size(),
           answers / queries.size());
  }
  // DPBF (exact GST).
  {
    gst::DpbfEngine engine(&data.kb.graph, &data.index);
    gst::DpbfOptions opts;
    opts.top_k = 10;
    opts.time_limit_ms = eval::BanksTimeLimitMs();
    double ms = 0, prec = 0, answers = 0;
    for (const auto& q : queries) {
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      ms += res->timed_out ? opts.time_limit_ms : res->elapsed_ms;
      prec += judge.TopKPrecision(q, res->answers, 10);
      answers += static_cast<double>(res->answers.size());
    }
    report("DPBF(GST)", ms / queries.size(), prec / queries.size(),
           answers / queries.size());
  }
  // r-clique.
  {
    gst::RcliqueEngine engine(&data.kb.graph, &data.index);
    gst::RcliqueOptions opts;
    opts.top_k = 10;
    opts.r = 4;
    double ms = 0, prec = 0, answers = 0;
    for (const auto& q : queries) {
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      ms += res->elapsed_ms;
      prec += judge.TopKPrecision(q, res->answers, 10);
      answers += static_cast<double>(res->answers.size());
    }
    report("r-clique(r=4)", ms / queries.size(), prec / queries.size(),
           answers / queries.size());
  }

  // ObjectRank: a different answer model (top-k *nodes* by authority
  // flow); the subgraph relevance judgment does not apply, so only time and
  // how many of its top nodes cover at least one keyword are reported.
  {
    gst::ObjectRankEngine engine(&data.kb.graph, &data.index);
    gst::ObjectRankOptions opts;
    opts.top_k = 10;
    double ms = 0, covering = 0, answers = 0;
    for (const auto& q : queries) {
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      ms += res->elapsed_ms;
      answers += static_cast<double>(res->nodes.size());
      std::vector<uint8_t> is_kw(data.kb.graph.num_nodes(), 0);
      for (const auto& kw : q.keywords) {
        for (NodeId v : data.index.Lookup(kw)) is_kw[v] = 1;
      }
      for (const auto& rn : res->nodes) covering += is_kw[rn.node];
    }
    char p10[16], a[16];
    std::snprintf(p10, sizeof(p10), "%.0f%%*",
                  covering / answers * 100);
    std::snprintf(a, sizeof(a), "%.1f", answers / queries.size());
    eval::PrintRow({"ObjectRank", eval::FmtMs(ms / queries.size()), p10, a});
    std::printf("  (* fraction of returned nodes containing any query "
                "keyword — node answers, not subgraphs)\n");
  }

  // DPBF keyword scaling — the 3^l state space in action (on a reduced
  // dataset so Knum=6 stays within the budget).
  gen::WikiGenConfig xs_cfg = gen::SmallConfig();
  xs_cfg.num_entities = 4000;
  eval::DatasetBundle xs = eval::PrepareDataset(xs_cfg, "wikisynth-XS");
  eval::PrintHeader("DPBF time vs Knum (exponential in keywords)",
                    {"Knum", "avg time", "states", "timeouts"});
  for (size_t knum : {2u, 3u, 4u, 5u, 6u}) {
    auto kq = gen::MakeEfficiencyWorkload(xs.kb, xs.index, knum, 4,
                                          3000 + knum);
    gst::DpbfEngine engine(&xs.kb.graph, &xs.index);
    gst::DpbfOptions opts;
    opts.top_k = 10;
    opts.time_limit_ms = eval::BanksTimeLimitMs();
    double ms = 0;
    size_t states = 0, timeouts = 0;
    for (const auto& q : kq) {
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      ms += res->timed_out ? opts.time_limit_ms : res->elapsed_ms;
      states += res->states;
      timeouts += res->timed_out ? 1 : 0;
    }
    char st[32];
    std::snprintf(st, sizeof(st), "%zu", states / kq.size());
    eval::PrintRow({std::to_string(knum), eval::FmtMs(ms / kq.size()), st,
                    std::to_string(timeouts)});
  }

  std::printf(
      "\nshape: DPBF is exact under the GST objective but its states/time\n"
      "grow exponentially with Knum (the paper's complexity critique);\n"
      "BANKS trees split phrases; r-clique needs a hand-picked r and slows\n"
      "down when keywords match many nodes. The Central Graph engine stays\n"
      "interactive at every Knum.\n");
  return 0;
}
