// Shared body of Fig. 9 (small) and Fig. 10 (large): vary the number of
// worker threads (the paper's Tnum, 1..50 on a 52-core Xeon; scaled to this
// host) and profile each phase for CPU-Par, CPU-Par-d and GPU-Par(sim)
// (whose top-down stage runs on CPU threads).
//
// NOTE (DESIGN.md substitution 3): this container exposes a single physical
// core, so the sweep exercises the scheduling code paths but cannot show
// real speedups; the paper's relative ordering CPU-Par >> CPU-Par-d still
// reproduces because lock overhead is paid even single-core.
#pragma once

#include <cstdio>

#include "bench_common.h"

namespace wikisearch::bench {

inline int RunVaryThreads(eval::DatasetBundle (*make_dataset)(),
                          const char* figure) {
  eval::DatasetBundle data = make_dataset();
  const size_t num_queries = eval::BenchQueryCount();
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 6,
                                             num_queries, 909);
  for (int threads : {1, 2, 4, 8}) {
    char title[128];
    std::snprintf(title, sizeof(title), "%s on %s: Tnum=%d", figure,
                  data.name.c_str(), threads);
    eval::PrintHeader(title, PhaseColumns("engine"));
    for (const EngineRow& row : EfficiencyEngines()) {
      SearchOptions opts;
      opts.top_k = 20;
      opts.alpha = 0.1;
      opts.threads = threads;
      opts.engine = threads == 1 && row.kind == EngineKind::kCpuParallel
                        ? EngineKind::kSequential
                        : row.kind;
      eval::ProfiledRun run = eval::ProfileEngine(data, queries, opts);
      PrintPhaseRow(row.label, run);
    }
  }
  std::printf(
      "\npaper shape: Identify/Expansion/Top-down accelerate with Tnum for\n"
      "the lock-free engines; CPU-Par-d barely benefits (lock contention\n"
      "grows with threads). On this 1-core host expect flat-to-worse times;\n"
      "the CPU-Par vs CPU-Par-d gap is the preserved signal.\n");
  return 0;
}

}  // namespace wikisearch::bench
