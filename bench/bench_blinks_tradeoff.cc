// Quantifies the paper's Sec. II argument against BLINKS: precomputed
// keyword-node lists + node-keyword maps make queries nearly free, but the
// index's build time and storage grow with radius x terms x nodes — which is
// what made it "infeasible on Wikidata KB with 30 million nodes and over
// 5 million keywords". The Central Graph engine needs no distance
// precomputation at all (CSR + one byte per (node, keyword) at query time).
#include <cstdio>

#include "bench_common.h"
#include "blinks/blinks_engine.h"

using namespace wikisearch;

namespace {

std::string FmtBytes(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f MB",
                static_cast<double>(bytes) / (1 << 20));
  return buf;
}

}  // namespace

int main() {
  // A reduced dataset: BLINKS precomputation at wikisynth-S scale with the
  // full radius already takes minutes/GBs — which is the point.
  gen::WikiGenConfig cfg = gen::SmallConfig();
  cfg.num_entities = 4000;
  eval::DatasetBundle data = eval::PrepareDataset(cfg, "wikisynth-XS");
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 4,
                                             eval::BenchQueryCount(), 606);

  eval::PrintHeader("BLINKS precomputation cost vs radius (wikisynth-XS)",
                    {"radius", "entries", "storage", "build", "query",
                     "answers"});
  for (int radius : {1, 2, 3}) {
    blinks::BlinksIndex index =
        blinks::BlinksIndex::Build(data.kb.graph, data.index, radius);
    blinks::BlinksEngine engine(&data.kb.graph, &data.index, &index);
    double query_ms = 0.0, answers = 0.0;
    for (const auto& q : queries) {
      blinks::BlinksOptions opts;
      opts.top_k = 20;
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (res.ok()) {
        query_ms += res->elapsed_ms;
        answers += static_cast<double>(res->answers.size());
      }
    }
    query_ms /= static_cast<double>(queries.size());
    answers /= static_cast<double>(queries.size());
    char entries[32], ans[32];
    std::snprintf(entries, sizeof(entries), "%zu", index.stats().entries);
    std::snprintf(ans, sizeof(ans), "%.1f", answers);
    eval::PrintRow({std::to_string(radius), entries,
                    FmtBytes(index.stats().bytes),
                    eval::FmtMs(index.stats().build_ms),
                    eval::FmtMs(query_ms), ans});
  }

  // Central Graph engine on the same data: zero precomputation.
  SearchOptions opts;
  opts.top_k = 20;
  opts.threads = 4;
  eval::ProfiledRun run = eval::ProfileEngine(data, queries, opts);
  eval::PrintHeader("Central Graph engine (no precomputation)",
                    {"precompute", "storage", "query", "answers"});
  char ans[32];
  std::snprintf(ans, sizeof(ans), "%.1f", run.avg_answers);
  eval::PrintRow({"none", FmtBytes(data.kb.graph.PreStorageBytes()),
                  eval::FmtMs(run.avg.total_ms), ans});

  std::printf(
      "\nshape: BLINKS queries are fast, but storage/build time explode\n"
      "with radius; at full reach (radius >= A) entries approach\n"
      "#terms x #nodes — the paper's infeasibility argument. The Central\n"
      "Graph engine answers from the raw CSR with no distance index.\n");
  return 0;
}
