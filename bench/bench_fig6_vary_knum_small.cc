// Regenerates Fig. 6: vary Knum on the small dataset (wiki2017 role),
// per-phase profiling for all engine variants plus BANKS-II total.
#include "bench_vary_knum.inc.h"

int main() {
  return wikisearch::bench::RunVaryKnum(&wikisearch::bench::SmallDataset,
                                        "Fig. 6");
}
