// Scaling study: query time of the Central Graph engine vs BANKS-II as the
// graph grows. The paper's "2-3 orders of magnitude" headline is measured
// on 124M/271M-edge dumps; at laptop scales the gap is smaller but must
// widen monotonically with size — the Central Graph search is bounded by
// the top-(k,d) depth while BANKS-II's exploration grows with the graph.
#include <cstdio>

#include "bench_common.h"

using namespace wikisearch;

int main() {
  eval::PrintHeader("Scaling: avg query time vs graph size (Knum=4, k=20)",
                    {"entities", "#edges", "CPU-Par", "BANKS-II", "ratio"});
  for (size_t entities : {5000u, 10000u, 20000u, 40000u}) {
    gen::WikiGenConfig cfg = gen::SmallConfig();
    cfg.num_entities = entities;
    eval::DatasetBundle data =
        eval::PrepareDataset(cfg, "scale-" + std::to_string(entities));
    auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 4,
                                               eval::BenchQueryCount(), 515);
    SearchOptions opts;
    opts.top_k = 20;
    opts.threads = 4;
    eval::ProfiledRun cg = eval::ProfileEngine(data, queries, opts);

    banks::BanksOptions bopts;
    bopts.top_k = 20;
    bopts.time_limit_ms = eval::BanksTimeLimitMs();
    eval::BanksRun banks = eval::ProfileBanks(data, queries, bopts);

    char edges[32], ratio[32];
    std::snprintf(edges, sizeof(edges), "%zu", data.kb.graph.num_triples());
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  banks.avg_total_ms / cg.avg.total_ms);
    eval::PrintRow({std::to_string(entities), edges,
                    eval::FmtMs(cg.avg.total_ms),
                    eval::FmtMs(banks.avg_total_ms), ratio});
  }
  std::printf(
      "\nshape: the BANKS-II / Central-Graph ratio grows with graph size;\n"
      "size; extrapolated to the paper's 271M-edge dump it reaches the\n"
      "reported 2-3 orders of magnitude.\n");
  return 0;
}
