// google-benchmark micro-kernels for the graph substrate and the search
// engine's hot loops: CSR neighbor scans, BFS levels, node-weight (Eq. 2)
// computation, frontier enqueue, and one full expansion level.
#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "core/bottom_up.h"
#include "core/node_weight.h"
#include "gen/wikigen.h"
#include "graph/graph_algos.h"

namespace wikisearch {
namespace {

const gen::GeneratedKb& Kb() {
  static const gen::GeneratedKb* kb = [] {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 10000;
    cfg.num_communities = 16;
    cfg.num_topic_nodes = 32;
    cfg.vocab_size = 8000;
    cfg.seed = 5;
    auto* out = new gen::GeneratedKb(gen::Generate(cfg));
    AttachNodeWeights(&out->graph);
    out->graph.SetAverageDistance(3.5, 0.9);
    return out;
  }();
  return *kb;
}

void BM_CsrNeighborScan(benchmark::State& state) {
  const KnowledgeGraph& g = Kb().graph;
  uint64_t sum = 0;
  for (auto _ : state) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const AdjEntry& e : g.Neighbors(v)) sum += e.target;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_adjacency_entries()));
}
BENCHMARK(BM_CsrNeighborScan);

void BM_BfsFullGraph(benchmark::State& state) {
  const KnowledgeGraph& g = Kb().graph;
  for (auto _ : state) {
    auto dist = BfsDistances(g, 0);
    benchmark::DoNotOptimize(dist.data());
  }
}
BENCHMARK(BM_BfsFullGraph);

void BM_NodeWeights(benchmark::State& state) {
  const KnowledgeGraph& g = Kb().graph;
  for (auto _ : state) {
    auto w = ComputeNodeWeights(g);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_NodeWeights);

void BM_InDegree(benchmark::State& state) {
  const KnowledgeGraph& g = Kb().graph;
  uint64_t sum = 0;
  for (auto _ : state) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) sum += g.InDegree(v);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_InDegree);

// One full bottom-up search (the paper's stage 1) at Knum=4.
void BM_BottomUpSearch(benchmark::State& state) {
  const gen::GeneratedKb& kb = Kb();
  const KnowledgeGraph& g = kb.graph;
  // Keyword node sets: members of four communities.
  std::vector<std::vector<NodeId>> groups(4);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    int32_t c = kb.meta.community_of_node[v];
    if (c >= 0 && c < 4 && groups[static_cast<size_t>(c)].size() < 200) {
      groups[static_cast<size_t>(c)].push_back(v);
    }
  }
  QueryContext ctx(g, {}, groups, ActivationMap(3.5, 0.1), 10);
  ThreadPool pool(static_cast<int>(state.range(0)));
  SearchOptions opts;
  opts.top_k = 20;
  for (auto _ : state) {
    SearchState search_state(g.num_nodes(), 4);
    PhaseTimings timings;
    auto result =
        BottomUpSearch(ctx, opts, &pool, &search_state, &timings, false);
    benchmark::DoNotOptimize(result.levels);
  }
}
BENCHMARK(BM_BottomUpSearch)->Arg(1)->Arg(4);

void BM_FrontierEnqueueScan(benchmark::State& state) {
  const KnowledgeGraph& g = Kb().graph;
  SearchState s(g.num_nodes(), 4);
  s.Init({{1}, {2}, {3}, {4}});
  // Flag 5% of nodes.
  for (NodeId v = 0; v < g.num_nodes(); v += 20) s.FlagFrontier(v);
  std::vector<NodeId> frontier;
  for (auto _ : state) {
    frontier.clear();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (s.IsFrontierFlagged(v)) frontier.push_back(v);
    }
    benchmark::DoNotOptimize(frontier.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_FrontierEnqueueScan);

}  // namespace
}  // namespace wikisearch

BENCHMARK_MAIN();
