// Anytime-search degradation: how much answer quality survives ever-tighter
// per-query deadlines, and how the service's admission control trades 429s
// for tail latency under concurrent overload. Results are written to
// BENCH_deadline.json for regression tracking.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/timer.h"
#include "server/search_service.h"

using namespace wikisearch;

int main() {
  eval::DatasetBundle data = bench::SmallDataset();
  const size_t num_queries = eval::BenchQueryCount();
  auto queries =
      gen::MakeEfficiencyWorkload(data.kb, data.index, 4, num_queries, 1313);

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("deadline");
  w.Key("dataset");
  w.String(data.name);
  w.Key("queries");
  w.UInt(queries.size());

  // Part 1: graceful degradation. Sweep the per-query budget from generous
  // to starved and measure how many queries time out and how many answers
  // survive relative to the unbounded run.
  eval::PrintHeader("Anytime degradation (" + data.name + ", Knum=4)",
                    {"deadline", "timed out", "answers kept", "avg ms"});

  SearchOptions base;
  base.top_k = 20;
  base.threads = 4;
  base.engine = EngineKind::kCpuParallel;
  SearchEngine engine(&data.kb.graph, &data.index, base);

  size_t full_answers = 0;
  for (const auto& q : queries) {
    auto res = engine.SearchKeywords(q.keywords, base);
    if (res.ok()) full_answers += res->answers.size();
  }

  w.Key("degradation");
  w.BeginArray();
  for (double deadline_ms : {0.0, 50.0, 10.0, 2.0, 0.5, 0.1}) {
    SearchOptions opts = base;
    opts.deadline_ms = deadline_ms;
    size_t timed_out = 0, answers = 0;
    WallTimer timer;
    for (const auto& q : queries) {
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      if (res->stats.timed_out) ++timed_out;
      answers += res->answers.size();
    }
    const double total_ms = timer.ElapsedMs();
    const double kept =
        full_answers > 0
            ? 100.0 * static_cast<double>(answers) /
                  static_cast<double>(full_answers)
            : 100.0;

    char label[32], to_s[32], kept_s[32];
    std::snprintf(label, sizeof(label), deadline_ms == 0.0 ? "off" : "%gms",
                  deadline_ms);
    std::snprintf(to_s, sizeof(to_s), "%zu/%zu", timed_out, queries.size());
    std::snprintf(kept_s, sizeof(kept_s), "%.0f%%", kept);
    eval::PrintRow({label, to_s, kept_s,
                    eval::FmtMs(total_ms / static_cast<double>(
                                               queries.size()))});

    w.BeginObject();
    w.Key("deadline_ms");
    w.Double(deadline_ms);
    w.Key("timed_out");
    w.UInt(timed_out);
    w.Key("answers_kept_pct");
    w.Double(kept);
    w.Key("avg_query_ms");
    w.Double(total_ms / static_cast<double>(queries.size()));
    w.EndObject();
  }
  w.EndArray();

  // Part 2: overload shedding. Many concurrent clients against a bounded
  // queue: throughput of admitted queries vs shed rate per queue depth.
  eval::PrintHeader("Admission control (32 clients, 4 rounds each)",
                    {"queue depth", "served", "shed", "wall"});

  w.Key("admission");
  w.BeginArray();
  for (size_t depth : {0u, 8u, 4u, 2u}) {
    server::SearchService service(&data.kb.graph, &data.index, base,
                                  /*cache_capacity=*/0);
    service.SetQueueDepth(depth);
    constexpr int kClients = 32;
    constexpr int kRounds = 4;
    std::atomic<size_t> served{0}, shed{0};
    WallTimer timer;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kRounds; ++r) {
          const auto& q = queries[static_cast<size_t>(c * kRounds + r) %
                                  queries.size()];
          server::HttpRequest req;
          std::string text;
          for (const auto& kw : q.keywords) text += kw + " ";
          req.params["q"] = text;
          auto resp = service.HandleSearch(req);
          if (resp.status == 429) {
            shed.fetch_add(1);
          } else if (resp.status == 200) {
            served.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    const double wall_ms = timer.ElapsedMs();

    char depth_s[32], served_s[32], shed_s[32];
    std::snprintf(depth_s, sizeof(depth_s), depth == 0 ? "unbounded" : "%zu",
                  depth);
    std::snprintf(served_s, sizeof(served_s), "%zu", served.load());
    std::snprintf(shed_s, sizeof(shed_s), "%zu", shed.load());
    eval::PrintRow({depth_s, served_s, shed_s, eval::FmtMs(wall_ms)});

    w.BeginObject();
    w.Key("queue_depth");
    w.UInt(depth);
    w.Key("served");
    w.UInt(served.load());
    w.Key("shed");
    w.UInt(shed.load());
    w.Key("wall_ms");
    w.Double(wall_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string json = std::move(w).Take();
  const char* out_path = "BENCH_deadline.json";
  if (FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::printf("\nfailed to open %s for writing\n", out_path);
    return 1;
  }
  return 0;
}
