// Observability overhead benchmark: what do the metric registry and span
// tracing cost on the frontier workload (the PR1 bottom-up benchmark)?
//
// Three modes over the same workload, interleaved and best-of-R to cancel
// drift:
//   off     — record_metrics=false, trace=nullptr: the engine behaves like
//             the pre-observability code (two clock reads per stage).
//   metrics — the production default: per-query counters + histograms into
//             a registry, still no tracing.
//   trace   — metrics plus a per-query TraceContext recording all spans.
//
// Acceptance (ISSUE 3): with tracing disabled the bottom-up stage
// (init + enqueue + identify + expansion) stays within 2% of the `off`
// mode. Two estimators back that claim:
//   direct       — the only code difference between `off` and `metrics` is
//                  the per-query RecordSearchMetrics call (a handful of
//                  registry lookups + relaxed adds, after the timed
//                  stages). Its cost is measured head-on by replaying the
//                  same registry operations in a tight loop; overhead =
//                  recording cost / bottom-up time. This is the number the
//                  under-2% flag uses.
//   differential — metrics-mode bottom-up minus off-mode bottom-up from
//                  interleaved best-of-R runs. On a busy 1-core container
//                  the run-to-run spread of a ~2.5 ms stage is several
//                  percent, far above the sub-microsecond true delta, so
//                  this is reported for reference only (it is routinely
//                  negative).
// Also measured: /metrics scrape cost (RenderPrometheus over the populated
// registry) and the raw Histogram::Observe hot path. Results are written
// to BENCH_obs.json for regression tracking.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace wikisearch;

namespace {

enum class Mode { kOff, kMetrics, kTrace };

struct ModeResult {
  PhaseTimings avg;            // per-query averages
  double bottom_up_ms = 0.0;   // init + enqueue + identify + expansion
};

ModeResult RunMode(const eval::DatasetBundle& data,
                   const std::vector<gen::Query>& queries, Mode mode,
                   obs::MetricRegistry* registry) {
  SearchOptions opts;
  opts.top_k = 20;
  opts.threads = 4;
  opts.engine = EngineKind::kCpuParallel;
  opts.record_metrics = mode != Mode::kOff;
  opts.metrics = registry;
  obs::TraceContext trace;
  if (mode == Mode::kTrace) opts.trace = &trace;

  SearchEngine engine(&data.kb.graph, &data.index, opts);
  ModeResult r;
  for (const gen::Query& q : queries) {
    trace.Clear();
    Result<SearchResult> res = engine.SearchKeywords(q.keywords, opts);
    WS_CHECK(res.ok());
    r.avg += res->timings;
  }
  if (!queries.empty()) r.avg /= static_cast<double>(queries.size());
  r.bottom_up_ms = r.avg.init_ms + r.avg.enqueue_ms + r.avg.identify_ms +
                   r.avg.expansion_ms;
  return r;
}

void WriteMode(JsonWriter& w, const ModeResult& m) {
  w.BeginObject();
  w.Key("bottom_up_ms");
  w.Double(m.bottom_up_ms);
  w.Key("init_ms");
  w.Double(m.avg.init_ms);
  w.Key("enqueue_ms");
  w.Double(m.avg.enqueue_ms);
  w.Key("identify_ms");
  w.Double(m.avg.identify_ms);
  w.Key("expansion_ms");
  w.Double(m.avg.expansion_ms);
  w.Key("topdown_ms");
  w.Double(m.avg.topdown_ms);
  w.Key("total_ms");
  w.Double(m.avg.total_ms);
  w.EndObject();
}

}  // namespace

int main() {
  eval::DatasetBundle data = bench::LargeDataset();
  const size_t num_queries = eval::BenchQueryCount();
  auto queries =
      gen::MakeEfficiencyWorkload(data.kb, data.index, 6, num_queries, 717);

  // Shared registry so scrape cost below reflects a realistically populated
  // exposition; per-query metrics from every repetition accumulate here.
  obs::MetricRegistry registry;

  constexpr int kReps = 9;
  ModeResult best[3];
  for (int rep = 0; rep < kReps; ++rep) {
    for (Mode mode : {Mode::kOff, Mode::kMetrics, Mode::kTrace}) {
      ModeResult r = RunMode(data, queries, mode, &registry);
      ModeResult& b = best[static_cast<int>(mode)];
      if (rep == 0 || r.bottom_up_ms < b.bottom_up_ms) b = r;
    }
  }
  const ModeResult& off = best[0];
  const ModeResult& metrics = best[1];
  const ModeResult& traced = best[2];

  auto overhead_pct = [&](const ModeResult& m) {
    return off.bottom_up_ms > 0.0
               ? (m.bottom_up_ms - off.bottom_up_ms) / off.bottom_up_ms * 100.0
               : 0.0;
  };
  const double metrics_overhead = overhead_pct(metrics);
  const double trace_overhead = overhead_pct(traced);

  // Direct estimator: replay the registry traffic RecordSearchMetrics
  // generates per query (6 counter incs + 6 histogram observes + 2 pool
  // counters) against a warm registry, and charge it to the off-mode
  // bottom-up time. This measures the actual added code instead of trying
  // to resolve a sub-microsecond delta out of multi-percent run noise.
  // (`registry` is already warm: RunMode registered these exact names.)
  constexpr int kRecordReps = 20'000;
  WallTimer record_timer;
  for (int i = 0; i < kRecordReps; ++i) {
    const double v = static_cast<double>((i % 50) + 1);
    registry.GetCounter("ws_search_total{engine=\"CPU-Par\"}")->Inc();
    registry.GetCounter("ws_search_levels_total")->Inc(3);
    registry.GetCounter("ws_search_centrals_total")->Inc(20);
    registry.GetCounter("ws_search_answers_total")->Inc(20);
    registry.GetCounter("ws_pool_jobs_total")->Inc(6);
    registry.GetCounter("ws_pool_busy_micros_total")->Inc(1000);
    registry.GetHistogram("ws_search_latency_ms{engine=\"CPU-Par\"}")
        ->Observe(v);
    registry.GetHistogram("ws_search_stage_ms{stage=\"init\"}")->Observe(v);
    registry.GetHistogram("ws_search_stage_ms{stage=\"enqueue\"}")->Observe(v);
    registry.GetHistogram("ws_search_stage_ms{stage=\"identify\"}")
        ->Observe(v);
    registry.GetHistogram("ws_search_stage_ms{stage=\"expansion\"}")
        ->Observe(v);
    registry.GetHistogram("ws_search_stage_ms{stage=\"topdown\"}")->Observe(v);
  }
  const double record_ms_per_query = record_timer.ElapsedMs() / kRecordReps;
  const double direct_overhead =
      off.bottom_up_ms > 0.0 ? record_ms_per_query / off.bottom_up_ms * 100.0
                             : 0.0;

  // Scrape cost over the populated registry.
  std::string exposition = registry.RenderPrometheus();
  constexpr int kScrapes = 100;
  WallTimer scrape_timer;
  size_t sink = 0;
  for (int i = 0; i < kScrapes; ++i) {
    sink += registry.RenderPrometheus().size();
  }
  const double scrape_ms = scrape_timer.ElapsedMs() / kScrapes;

  // Raw hot path: one Observe (bucket + count + sum, relaxed atomics).
  obs::Histogram hist;
  constexpr int kObserves = 1'000'000;
  WallTimer observe_timer;
  for (int i = 0; i < kObserves; ++i) {
    hist.Observe(static_cast<double>((i % 1000) + 1));
  }
  const double observe_ns = observe_timer.ElapsedMs() * 1e6 / kObserves;

  eval::PrintHeader(
      "Observability overhead on bottom-up (CPU-Par, Knum=6, Tnum=4, " +
          data.name + ", best of " + std::to_string(kReps) + ")",
      {"mode", "bottom-up", "total", "overhead"});
  char pct[32];
  eval::PrintRow({"off", eval::FmtMs(off.bottom_up_ms),
                  eval::FmtMs(off.avg.total_ms), "-"});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", metrics_overhead);
  eval::PrintRow({"metrics", eval::FmtMs(metrics.bottom_up_ms),
                  eval::FmtMs(metrics.avg.total_ms), pct});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", trace_overhead);
  eval::PrintRow({"trace", eval::FmtMs(traced.bottom_up_ms),
                  eval::FmtMs(traced.avg.total_ms), pct});
  std::printf(
      "direct: recording costs %.4f ms/query -> %.4f%% of off bottom-up "
      "(the differential column above is run noise on this box)\n",
      record_ms_per_query, direct_overhead);

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("observability_overhead");
  w.Key("dataset");
  w.String(data.name);
  w.Key("nodes");
  w.UInt(data.kb.graph.num_nodes());
  w.Key("queries");
  w.UInt(num_queries);
  w.Key("repetitions");
  w.Int(kReps);
  w.Key("off");
  WriteMode(w, off);
  w.Key("metrics_on");
  WriteMode(w, metrics);
  w.Key("trace_on");
  WriteMode(w, traced);
  w.Key("tracing_off_overhead_pct");
  w.Double(direct_overhead);
  w.Key("record_ms_per_query");
  w.Double(record_ms_per_query);
  w.Key("differential_overhead_pct");
  w.Double(metrics_overhead);
  w.Key("tracing_on_differential_pct");
  w.Double(trace_overhead);
  w.Key("tracing_off_overhead_under_2pct");
  w.Bool(direct_overhead < 2.0);
  w.Key("scrape");
  w.BeginObject();
  w.Key("avg_scrape_ms");
  w.Double(scrape_ms);
  w.Key("exposition_bytes");
  w.UInt(exposition.size());
  w.Key("scrapes_timed");
  w.Int(kScrapes);
  w.EndObject();
  w.Key("observe_ns_per_op");
  w.Double(observe_ns);
  w.EndObject();

  const std::string json = std::move(w).Take();
  const char* out_path = "BENCH_obs.json";
  if (FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s (scrape sink %zu)\n", out_path, sink);
  } else {
    std::printf("\nfailed to open %s for writing\n", out_path);
    return 1;
  }
  std::printf(
      "shape: metrics-only overhead on bottom-up stays under 2%% (a handful\n"
      "of registry lookups and relaxed atomic adds per query); tracing adds\n"
      "a few span records per level; scrapes are O(registered metrics) and\n"
      "never touch the query hot path.\n");
  return 0;
}
