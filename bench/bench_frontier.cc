// Frontier-enqueue microbenchmark: per-thread frontier buffers vs the
// legacy O(n) flag scan (SearchOptions::use_frontier_buffers). The scan
// costs n flag loads per level no matter how small the frontier is, so on
// the large dataset the buffered enqueue must cut per-level enqueue time by
// >= 2x without regressing expansion (which now also pays for the buffer
// appends). Results are written to BENCH_frontier.json for regression
// tracking.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"

using namespace wikisearch;

namespace {

struct ModeRun {
  eval::ProfiledRun run;
  double avg_levels = 0.0;
  double per_level_enqueue_ms = 0.0;
};

ModeRun Profile(const eval::DatasetBundle& data,
                const std::vector<gen::Query>& queries,
                const SearchOptions& opts, size_t query_count) {
  ModeRun m;
  m.run = eval::ProfileEngine(data, queries, opts);
  // ProfiledRun::avg divides timings by the query count but accumulates
  // levels, so the average level count is levels / count.
  m.avg_levels = query_count > 0
                     ? static_cast<double>(m.run.avg.levels) /
                           static_cast<double>(query_count)
                     : 0.0;
  m.per_level_enqueue_ms =
      m.avg_levels > 0.0 ? m.run.avg.enqueue_ms / m.avg_levels : 0.0;
  return m;
}

void WritePhases(JsonWriter& w, const ModeRun& m) {
  w.BeginObject();
  w.Key("init_ms");
  w.Double(m.run.avg.init_ms);
  w.Key("enqueue_ms");
  w.Double(m.run.avg.enqueue_ms);
  w.Key("identify_ms");
  w.Double(m.run.avg.identify_ms);
  w.Key("expansion_ms");
  w.Double(m.run.avg.expansion_ms);
  w.Key("topdown_ms");
  w.Double(m.run.avg.topdown_ms);
  w.Key("total_ms");
  w.Double(m.run.avg.total_ms);
  w.Key("avg_levels");
  w.Double(m.avg_levels);
  w.Key("per_level_enqueue_ms");
  w.Double(m.per_level_enqueue_ms);
  w.EndObject();
}

}  // namespace

int main() {
  eval::DatasetBundle data = bench::LargeDataset();
  const size_t num_queries = eval::BenchQueryCount();
  auto queries =
      gen::MakeEfficiencyWorkload(data.kb, data.index, 6, num_queries, 717);

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("frontier_enqueue");
  w.Key("dataset");
  w.String(data.name);
  w.Key("nodes");
  w.UInt(data.kb.graph.num_nodes());
  w.Key("triples");
  w.UInt(data.kb.graph.num_triples());
  w.Key("queries");
  w.UInt(num_queries);
  w.Key("knum");
  w.UInt(6);
  w.Key("configs");
  w.BeginArray();

  eval::PrintHeader(
      "Frontier enqueue: per-thread buffers vs O(n) flag scan (Knum=6, " +
          data.name + ")",
      {"Tnum", "scan enq/lvl", "buf enq/lvl", "enq speedup", "scan total",
       "buf total", "total speedup"});

  for (int threads : {1, 4, 16}) {
    SearchOptions opts;
    opts.top_k = 20;
    opts.threads = threads;
    opts.engine = EngineKind::kCpuParallel;

    opts.use_frontier_buffers = false;
    ModeRun scan = Profile(data, queries, opts, num_queries);
    opts.use_frontier_buffers = true;
    ModeRun buf = Profile(data, queries, opts, num_queries);

    const double enqueue_speedup =
        buf.per_level_enqueue_ms > 0.0
            ? scan.per_level_enqueue_ms / buf.per_level_enqueue_ms
            : 0.0;
    const double total_speedup = buf.run.avg.total_ms > 0.0
                                     ? scan.run.avg.total_ms /
                                           buf.run.avg.total_ms
                                     : 0.0;
    const double expansion_ratio =
        scan.run.avg.expansion_ms > 0.0
            ? buf.run.avg.expansion_ms / scan.run.avg.expansion_ms
            : 0.0;

    char enq_speedup_s[32], total_speedup_s[32];
    std::snprintf(enq_speedup_s, sizeof(enq_speedup_s), "%.1fx",
                  enqueue_speedup);
    std::snprintf(total_speedup_s, sizeof(total_speedup_s), "%.2fx",
                  total_speedup);
    eval::PrintRow({std::to_string(threads),
                    eval::FmtMs(scan.per_level_enqueue_ms),
                    eval::FmtMs(buf.per_level_enqueue_ms), enq_speedup_s,
                    eval::FmtMs(scan.run.avg.total_ms),
                    eval::FmtMs(buf.run.avg.total_ms), total_speedup_s});

    w.BeginObject();
    w.Key("threads");
    w.Int(threads);
    w.Key("scan");
    WritePhases(w, scan);
    w.Key("buffered");
    WritePhases(w, buf);
    w.Key("enqueue_speedup");
    w.Double(enqueue_speedup);
    w.Key("total_speedup");
    w.Double(total_speedup);
    w.Key("expansion_ratio");
    w.Double(expansion_ratio);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string json = std::move(w).Take();
  const char* out_path = "BENCH_frontier.json";
  if (FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::printf("\nfailed to open %s for writing\n", out_path);
    return 1;
  }
  std::printf(
      "shape: per-level enqueue drops >= 2x with buffers (the scan pays n\n"
      "flag loads per level, the buffers pay one append per discovered\n"
      "frontier); expansion stays within noise of the scan variant.\n");
  return 0;
}
