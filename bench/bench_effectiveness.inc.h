// Shared body of Fig. 11 (small) and Fig. 12 (large): top-{5,10,20}
// precision per effectiveness query for BANKS-II and WikiSearch at
// alpha in {0.05, 0.1, 0.4}, judged by the planted-community relevance
// proxy (DESIGN.md substitution 6). The paper's shape: some alpha setting
// matches or beats BANKS-II on every query; BANKS-II loses the
// phrase-split queries (Q4-Q7).
#pragma once

#include <cstdio>

#include "bench_common.h"
#include "eval/relevance.h"

namespace wikisearch::bench {

inline int RunEffectiveness(eval::DatasetBundle (*make_dataset)(),
                            const char* figure) {
  eval::DatasetBundle data = make_dataset();
  eval::RelevanceJudge judge(&data.kb);
  auto queries = gen::MakeEffectivenessWorkload(data.kb, data.index, 777);

  banks::BanksEngine banks_engine(&data.kb.graph, &data.index);

  for (int k : {5, 10, 20}) {
    char title[128];
    std::snprintf(title, sizeof(title), "%s on %s: top-%d precision", figure,
                  data.name.c_str(), k);
    eval::PrintHeader(title, {"query", "BANKS-II", "alpha-0.05", "alpha-0.1",
                              "alpha-0.4"});
    double banks_sum = 0, cg_best_sum = 0;
    // The paper plots Q1-Q9 and reports Q10/Q11 as all-perfect in text.
    for (size_t qi = 0; qi < 9; ++qi) {
      const gen::Query& q = queries[qi];
      std::vector<std::string> row{q.id};

      banks::BanksOptions bopts;
      bopts.top_k = k;
      bopts.time_limit_ms = eval::BanksTimeLimitMs();
      auto bres = banks_engine.SearchKeywords(q.keywords, bopts);
      double banks_p =
          bres.ok() ? judge.TopKPrecision(q, bres->answers, k) : 0.0;
      row.push_back(eval::FmtPct(banks_p));

      double best_cg = 0.0;
      for (double alpha : {0.05, 0.1, 0.4}) {
        SearchOptions opts;
        opts.top_k = k;
        opts.alpha = alpha;
        opts.threads = 4;
        SearchEngine engine(&data.kb.graph, &data.index, opts);
        auto res = engine.SearchKeywords(q.keywords, opts);
        double p = res.ok() ? judge.TopKPrecision(q, res->answers, k) : 0.0;
        best_cg = std::max(best_cg, p);
        row.push_back(eval::FmtPct(p));
      }
      banks_sum += banks_p;
      cg_best_sum += best_cg;
      eval::PrintRow(row);
    }
    std::printf("mean over Q1-Q9: BANKS-II %.0f%%, best-alpha WikiSearch "
                "%.0f%%\n",
                banks_sum / 9 * 100, cg_best_sum / 9 * 100);
  }
  std::printf(
      "\npaper shape: a well-chosen alpha matches or beats BANKS-II per\n"
      "query; BANKS-II drops on phrase-split queries (Q4-Q7). Q10/Q11 are\n"
      "omitted (all systems reach 100%% there, as in the paper).\n");
  return 0;
}

}  // namespace wikisearch::bench
