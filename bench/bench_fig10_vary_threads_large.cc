// Regenerates Fig. 10: vary Tnum on the large dataset (wiki2018 role).
#include "bench_vary_threads.inc.h"

int main() {
  return wikisearch::bench::RunVaryThreads(&wikisearch::bench::LargeDataset,
                                           "Fig. 10");
}
