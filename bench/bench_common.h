// Shared setup for the paper-reproduction bench binaries. Dataset scales
// and per-query budgets are environment-tunable (WS_SCALE,
// WS_BENCH_QUERIES, WS_BENCH_TIME_LIMIT_MS) so the same binaries run from
// CI-quick to paper-scale.
#pragma once

#include <string>
#include <vector>

#include "eval/harness.h"

namespace wikisearch::bench {

/// wikisynth-S: plays the role of the paper's wiki2017 dump.
inline eval::DatasetBundle SmallDataset() {
  return eval::PrepareDataset(eval::ScaledConfig(gen::SmallConfig()),
                              "wikisynth-S");
}

/// wikisynth-M: single-query kernel-benchmark scale between S and L.
inline eval::DatasetBundle MediumDataset() {
  return eval::PrepareDataset(eval::ScaledConfig(gen::MediumConfig()),
                              "wikisynth-M");
}

/// wikisynth-L: plays the role of the paper's wiki2018 dump.
inline eval::DatasetBundle LargeDataset() {
  return eval::PrepareDataset(eval::ScaledConfig(gen::LargeConfig()),
                              "wikisynth-L");
}

/// Prints one per-phase profiling row (the breakdown of the paper's
/// Fig. 6/7/9/10).
inline void PrintPhaseRow(const std::string& label,
                          const eval::ProfiledRun& run) {
  eval::PrintRow({label, eval::FmtMs(run.avg.init_ms),
                  eval::FmtMs(run.avg.enqueue_ms),
                  eval::FmtMs(run.avg.identify_ms),
                  eval::FmtMs(run.avg.expansion_ms),
                  eval::FmtMs(run.avg.topdown_ms),
                  eval::FmtMs(run.avg.total_ms)});
}

inline std::vector<std::string> PhaseColumns(const std::string& first) {
  return {first,        "Init",    "Enqueue", "Identify",
          "Expansion",  "Topdown", "Total"};
}

/// Engine variants profiled side by side in the efficiency experiments.
struct EngineRow {
  const char* label;
  EngineKind kind;
};

inline const std::vector<EngineRow>& EfficiencyEngines() {
  static const std::vector<EngineRow>* rows = new std::vector<EngineRow>{
      {"GPU-Par(sim)", EngineKind::kGpuSim},
      {"CPU-Par", EngineKind::kCpuParallel},
      {"CPU-Par-d", EngineKind::kCpuDynamic},
  };
  return *rows;
}

}  // namespace wikisearch::bench
