// Regenerates Table II: dataset statistics — #nodes, #edges, sampled
// average shortest distance A (10k pairs) and the sample deviation.
// Paper values for reference: wiki2017 15.1M/124M A=3.87 dev=0.81;
// wiki2018 30.6M/271M A=3.68 dev=0.98 (our synthetic stands are scaled
// down but must land in the same small-world regime).
#include <cstdio>

#include "bench_common.h"
#include "graph/distance_sampler.h"

using namespace wikisearch;

int main() {
  eval::PrintHeader("Table II: dataset statistics",
                    {"dataset", "#nodes", "#edges", "A", "Deviation"});
  for (auto* make : {&bench::SmallDataset, &bench::LargeDataset}) {
    eval::DatasetBundle data = make();
    DistanceSample s = SampleAverageDistance(data.kb.graph, 10000, 42);
    char nodes[32], edges[32], a[16], dev[16];
    std::snprintf(nodes, sizeof(nodes), "%zu", data.kb.graph.num_nodes());
    std::snprintf(edges, sizeof(edges), "%zu", data.kb.graph.num_triples());
    std::snprintf(a, sizeof(a), "%.2f", s.mean);
    std::snprintf(dev, sizeof(dev), "%.2f", s.deviation);
    eval::PrintRow({data.name, nodes, edges, a, dev});
  }
  std::printf(
      "\npaper: wiki2017 15.1M nodes / 124M edges, A=3.87, dev=0.81\n"
      "       wiki2018 30.6M nodes / 271M edges, A=3.68, dev=0.98\n");
  return 0;
}
