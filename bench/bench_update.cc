// Live-update benchmark (DESIGN.md §10): measures (a) online mutation
// throughput through SnapshotManager::Apply — batches/s, mutations/s and
// apply latency quantiles, plus the cost of one full fold — and (b) the
// impact of churn on serving latency: query p50/p99 against a live
// SearchService while an updater thread applies batches and the background
// Compactor folds and republishes, compared with the same closed loop over
// a quiescent manager.
//
// Both caches are disabled in both query runs: under churn every Apply
// bumps the version and would defeat them anyway, so leaving them on would
// compare cached quiescent replies against uncached live ones.
//
// Results land in BENCH_update.json; --smoke runs a shortened sweep and
// exits nonzero unless p99 under churn stays within 2x of quiescent p99
// (with a small absolute floor so a sub-millisecond quiescent quantile on a
// loaded CI box does not turn scheduler jitter into a failure).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/fsio.h"
#include "common/json.h"
#include "common/random.h"
#include "live/compactor.h"
#include "live/snapshot_manager.h"
#include "live/update.h"
#include "live/wal.h"
#include "server/search_service.h"

using namespace wikisearch;

namespace {

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  idx = std::min(idx, sorted_ms.size() - 1);
  return sorted_ms[idx];
}

/// One synthetic batch: a couple of fresh "updN" entities wired to random
/// existing nodes, and an occasional text amendment — the steady trickle of
/// edits a live KB sees.
live::UpdateBatch MakeBatch(uint64_t batch, Rng& rng,
                            const KnowledgeGraph& base) {
  live::UpdateBatch b;
  const size_t adds = 2 + rng.Uniform(2);
  for (size_t j = 0; j < adds; ++j) {
    const std::string fresh =
        "upd" + std::to_string(batch) + "n" + std::to_string(j);
    const std::string anchor =
        base.NodeName(static_cast<NodeId>(rng.Uniform(base.num_nodes())));
    b.add.push_back({fresh, "updpred" + std::to_string(rng.Uniform(8)),
                     anchor});
  }
  if (batch % 4 == 0) {
    const std::string anchor =
        base.NodeName(static_cast<NodeId>(rng.Uniform(base.num_nodes())));
    b.text.push_back({anchor, "amended" + std::to_string(batch)});
  }
  return b;
}

struct QueryRun {
  uint64_t requests = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t updates_applied = 0;
  uint64_t compactions = 0;
  uint64_t generation = 0;
};

/// Closed loop of one in-process client against `service` for duration_ms;
/// if `churn` is set, an updater thread applies batches back-to-back (small
/// pause) while the manager's Compactor folds on its depth trigger.
QueryRun RunQueryLoop(live::SnapshotManager& mgr,
                      server::SearchService& service,
                      const std::vector<std::string>& hot_queries,
                      const KnowledgeGraph& base, bool churn,
                      double duration_ms) {
  // Warm-up: touch every hot query once.
  for (const std::string& q : hot_queries) {
    server::HttpRequest req;
    req.params["q"] = q;
    (void)service.HandleSearch(req);
  }

  const uint64_t updates_before = mgr.updates_applied();
  const uint64_t compactions_before = mgr.compactions();

  using Clock = std::chrono::steady_clock;
  std::atomic<bool> stop{false};
  std::thread updater;
  live::Compactor compactor(&mgr);
  if (churn) {
    compactor.Start();
    updater = std::thread([&] {
      Rng rng(0xC0FFEEu);
      uint64_t batch = 1000000;  // distinct namespace from the apply phase
      while (!stop.load(std::memory_order_relaxed)) {
        live::UpdateBatch b = MakeBatch(batch++, rng, base);
        if (!mgr.Apply(b).ok()) break;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }

  std::vector<double> lat;
  Rng rng(0x51CA5Eu);
  const auto start = Clock::now();
  for (;;) {
    server::HttpRequest req;
    req.params["q"] = hot_queries[rng.Uniform(hot_queries.size())];
    const auto t0 = Clock::now();
    auto resp = service.HandleSearch(req);
    const auto t1 = Clock::now();
    if (resp.status == 200) {
      lat.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    if (std::chrono::duration<double, std::milli>(t1 - start).count() >=
        duration_ms) {
      break;
    }
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  stop.store(true);
  if (updater.joinable()) updater.join();
  compactor.Stop();

  std::sort(lat.begin(), lat.end());
  QueryRun r;
  r.requests = lat.size();
  r.wall_ms = wall_ms;
  r.qps = lat.empty() ? 0.0
                      : static_cast<double>(lat.size()) / (wall_ms / 1000.0);
  r.p50_ms = Percentile(lat, 0.50);
  r.p99_ms = Percentile(lat, 0.99);
  r.updates_applied = mgr.updates_applied() - updates_before;
  r.compactions = mgr.compactions() - compactions_before;
  r.generation = mgr.generation();
  return r;
}

/// Fresh scratch directory for one durable run (removed by the caller).
std::string MakeScratchDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl =
      std::string(base && *base ? base : "/tmp") + "/wsbench.XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  return got ? std::string(got) : std::string();
}

struct DurableRun {
  std::string policy;
  uint64_t batches = 0;
  double wall_ms = 0.0;
  double applies_per_s = 0.0;
  double apply_p50_ms = 0.0;
  double apply_p99_ms = 0.0;
  uint64_t wal_bytes = 0;
  uint64_t fsyncs = 0;
  double recovery_ms = 0.0;  // unclean reopen replaying the full WAL tail
  uint64_t replayed = 0;
};

/// Applies `batches` synthetic batches through a durable manager with the
/// given fsync policy, then kills it (no clean shutdown) and times the
/// recovery replay of the whole WAL tail.
DurableRun RunDurableApply(const eval::DatasetBundle& data,
                           live::FsyncPolicy policy, uint64_t batches) {
  DurableRun r;
  r.policy = live::FsyncPolicyName(policy);
  r.batches = batches;
  const std::string dir = MakeScratchDir();
  if (dir.empty()) return r;
  live::SnapshotManager::Config mcfg;
  mcfg.compact_threshold_batches = 0;
  live::SnapshotManager::DurabilityOptions dopts;
  dopts.data_dir = dir;
  dopts.fsync_policy = policy;
  using Clock = std::chrono::steady_clock;
  {
    auto mgr = live::SnapshotManager::OpenDurable(
        data.kb.graph, data.index, mcfg, dopts, nullptr);
    if (!mgr.ok()) {
      std::fprintf(stderr, "durable open (%s): %s\n", r.policy.c_str(),
                   mgr.status().ToString().c_str());
      return r;
    }
    std::vector<double> apply_ms;
    apply_ms.reserve(batches);
    Rng rng(42);
    const auto start = Clock::now();
    for (uint64_t i = 0; i < batches; ++i) {
      live::UpdateBatch b = MakeBatch(i, rng, data.kb.graph);
      const auto t0 = Clock::now();
      if (!(*mgr)->Apply(b).ok()) {
        std::fprintf(stderr, "durable apply %llu rejected\n",
                     static_cast<unsigned long long>(i));
        return r;
      }
      apply_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
    }
    r.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    r.applies_per_s =
        static_cast<double>(batches) / (r.wall_ms / 1000.0);
    std::sort(apply_ms.begin(), apply_ms.end());
    r.apply_p50_ms = Percentile(apply_ms, 0.50);
    r.apply_p99_ms = Percentile(apply_ms, 0.99);
    r.wal_bytes = (*mgr)->wal_bytes();
    r.fsyncs = (*mgr)->wal_fsyncs();
    // Destroyed without ShutdownDurable: the reopen below is a real
    // unclean-boot recovery, not a marker fast path.
  }
  {
    live::SnapshotManager::RecoveryInfo rec;
    auto mgr = live::SnapshotManager::OpenDurable(
        data.kb.graph, data.index, mcfg, dopts, &rec);
    if (mgr.ok()) {
      r.recovery_ms = rec.recovery_ms;
      r.replayed = rec.replayed_batches;
    } else {
      std::fprintf(stderr, "durable recovery (%s): %s\n", r.policy.c_str(),
                   mgr.status().ToString().c_str());
    }
  }
  (void)RemoveDirRecursive(dir);
  return r;
}

/// Recovery time as a function of WAL tail length (fsync=never, so the
/// apply phase is cheap and the replay dominates the reopen).
struct RecoveryPoint {
  uint64_t wal_batches = 0;
  double recovery_ms = 0.0;
};

RecoveryPoint RunRecoveryPoint(const eval::DatasetBundle& data,
                               uint64_t batches) {
  RecoveryPoint p;
  p.wal_batches = batches;
  DurableRun r = RunDurableApply(data, live::FsyncPolicy::kNever, batches);
  p.recovery_ms = r.recovery_ms;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_update.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  double duration_ms = smoke ? 400.0 : 1500.0;
  if (const char* env = std::getenv("WS_BENCH_DURATION_MS")) {
    duration_ms = std::atof(env);
  }
  const uint64_t apply_batches = smoke ? 64 : 512;

  eval::DatasetBundle data = bench::SmallDataset();
  auto workload = gen::MakeEfficiencyWorkload(data.kb, data.index, 4, 4, 77);
  std::vector<std::string> hot_queries;
  for (const auto& q : workload) {
    std::string text;
    for (const auto& kw : q.keywords) {
      if (!text.empty()) text += ' ';
      text += kw;
    }
    hot_queries.push_back(std::move(text));
  }

  // ---- Phase 1: update throughput (quiescent, then one measured fold) ----
  live::SnapshotManager::Config mcfg;
  mcfg.compact_threshold_batches = 0;  // manual fold, measured separately
  live::SnapshotManager apply_mgr(data.kb.graph, data.index, mcfg);
  const KnowledgeGraph& base = data.kb.graph;

  std::vector<double> apply_ms;
  apply_ms.reserve(apply_batches);
  Rng rng(42);
  using Clock = std::chrono::steady_clock;
  const auto apply_start = Clock::now();
  for (uint64_t i = 0; i < apply_batches; ++i) {
    live::UpdateBatch b = MakeBatch(i, rng, base);
    const auto t0 = Clock::now();
    if (!apply_mgr.Apply(b).ok()) {
      std::fprintf(stderr, "apply %llu rejected\n",
                   static_cast<unsigned long long>(i));
      return 1;
    }
    apply_ms.push_back(std::chrono::duration<double, std::milli>(
                           Clock::now() - t0)
                           .count());
  }
  const double apply_wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - apply_start)
          .count();
  if (!apply_mgr.CompactOnce().ok()) {
    std::fprintf(stderr, "fold failed\n");
    return 1;
  }
  const double fold_ms = apply_mgr.last_fold_ms();
  const double publish_ms = apply_mgr.last_publish_ms();
  const uint64_t mutations = apply_mgr.mutations_applied();
  std::sort(apply_ms.begin(), apply_ms.end());
  const double applies_per_s =
      static_cast<double>(apply_batches) / (apply_wall_ms / 1000.0);
  const double mutations_per_s =
      static_cast<double>(mutations) / (apply_wall_ms / 1000.0);
  const double apply_p50 = Percentile(apply_ms, 0.50);
  const double apply_p99 = Percentile(apply_ms, 0.99);

  // ---- Phase 1b: durable apply per fsync policy + recovery cost ----
  std::vector<DurableRun> durable_runs;
  for (live::FsyncPolicy policy :
       {live::FsyncPolicy::kAlways, live::FsyncPolicy::kInterval,
        live::FsyncPolicy::kNever}) {
    durable_runs.push_back(RunDurableApply(data, policy, apply_batches));
  }
  const DurableRun& durable_never = durable_runs.back();
  // The durability tax gate: with fsync off the WAL is one write(2) per
  // batch, so durable apply must stay within 1.3x of memory-only apply
  // (small absolute floor for scheduler jitter on short smoke runs).
  const double durable_budget_ms = 1.3 * apply_wall_ms + 50.0;
  const bool durable_within_budget =
      durable_never.wall_ms > 0.0 && durable_never.wall_ms <= durable_budget_ms;
  const double durable_ratio =
      apply_wall_ms > 0.0 ? durable_never.wall_ms / apply_wall_ms : 0.0;

  std::vector<RecoveryPoint> recovery_curve;
  for (uint64_t n : {apply_batches / 4, apply_batches / 2, apply_batches}) {
    if (n > 0) recovery_curve.push_back(RunRecoveryPoint(data, n));
  }

  // ---- Phase 2: query latency, quiescent vs under churn ----
  SearchOptions defaults;
  defaults.top_k = 10;
  defaults.threads = 1;
  defaults.engine = EngineKind::kCpuParallel;
  live::SnapshotManager::Config scfg;
  scfg.compact_threshold_batches = 16;  // Compactor folds on this trigger
  live::SnapshotManager serve_mgr(data.kb.graph, data.index, scfg);
  server::SearchService service(&serve_mgr, defaults, /*cache_capacity=*/0,
                                /*metrics=*/nullptr,
                                /*context_cache_capacity=*/0);

  QueryRun quiescent = RunQueryLoop(serve_mgr, service, hot_queries, base,
                                    /*churn=*/false, duration_ms);
  QueryRun churn = RunQueryLoop(serve_mgr, service, hot_queries, base,
                                /*churn=*/true, duration_ms);

  // p99 gate with an absolute floor: on a quiet box quiescent p99 can be a
  // fraction of a millisecond, where a single scheduler preemption breaks a
  // pure ratio test without telling us anything about the publish path.
  const double floor_ms = 25.0;
  const double p99_budget = std::max(2.0 * quiescent.p99_ms, floor_ms);
  const bool within_2x = churn.p99_ms <= p99_budget;
  const double p99_ratio =
      quiescent.p99_ms > 0.0 ? churn.p99_ms / quiescent.p99_ms : 0.0;

  eval::PrintHeader("Live updates (wikisynth-S)",
                    {"phase", "requests", "QPS", "p50", "p99"});
  {
    char req_s[32], qps_s[32];
    std::snprintf(req_s, sizeof(req_s), "%llu",
                  static_cast<unsigned long long>(apply_batches));
    std::snprintf(qps_s, sizeof(qps_s), "%.0f", applies_per_s);
    eval::PrintRow({"apply (batches)", req_s, qps_s, eval::FmtMs(apply_p50),
                    eval::FmtMs(apply_p99)});
  }
  for (const DurableRun& r : durable_runs) {
    char label[48], req_s[32], qps_s[32];
    std::snprintf(label, sizeof(label), "apply durable/%s",
                  r.policy.c_str());
    std::snprintf(req_s, sizeof(req_s), "%llu",
                  static_cast<unsigned long long>(r.batches));
    std::snprintf(qps_s, sizeof(qps_s), "%.0f", r.applies_per_s);
    eval::PrintRow({label, req_s, qps_s, eval::FmtMs(r.apply_p50_ms),
                    eval::FmtMs(r.apply_p99_ms)});
  }
  for (const auto& [label, r] :
       std::vector<std::pair<const char*, const QueryRun*>>{
           {"query quiescent", &quiescent}, {"query under churn", &churn}}) {
    char req_s[32], qps_s[32];
    std::snprintf(req_s, sizeof(req_s), "%llu",
                  static_cast<unsigned long long>(r->requests));
    std::snprintf(qps_s, sizeof(qps_s), "%.0f", r->qps);
    eval::PrintRow({label, req_s, qps_s, eval::FmtMs(r->p50_ms),
                    eval::FmtMs(r->p99_ms)});
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("update");
  w.Key("dataset");
  w.String("wikisynth-S");
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("update_throughput");
  w.BeginObject();
  w.Key("batches");
  w.UInt(apply_batches);
  w.Key("mutations");
  w.UInt(mutations);
  w.Key("wall_ms");
  w.Double(apply_wall_ms);
  w.Key("applies_per_s");
  w.Double(applies_per_s);
  w.Key("mutations_per_s");
  w.Double(mutations_per_s);
  w.Key("apply_p50_ms");
  w.Double(apply_p50);
  w.Key("apply_p99_ms");
  w.Double(apply_p99);
  w.Key("fold_ms");
  w.Double(fold_ms);
  w.Key("publish_ms");
  w.Double(publish_ms);
  w.EndObject();
  w.Key("durable");
  w.BeginObject();
  for (const DurableRun& r : durable_runs) {
    w.Key(r.policy.c_str());
    w.BeginObject();
    w.Key("batches");
    w.UInt(r.batches);
    w.Key("wall_ms");
    w.Double(r.wall_ms);
    w.Key("applies_per_s");
    w.Double(r.applies_per_s);
    w.Key("apply_p50_ms");
    w.Double(r.apply_p50_ms);
    w.Key("apply_p99_ms");
    w.Double(r.apply_p99_ms);
    w.Key("wal_bytes");
    w.UInt(r.wal_bytes);
    w.Key("fsyncs");
    w.UInt(r.fsyncs);
    w.Key("recovery_ms");
    w.Double(r.recovery_ms);
    w.Key("replayed_batches");
    w.UInt(r.replayed);
    w.EndObject();
  }
  w.Key("recovery_vs_wal_length");
  w.BeginArray();
  for (const RecoveryPoint& p : recovery_curve) {
    w.BeginObject();
    w.Key("wal_batches");
    w.UInt(p.wal_batches);
    w.Key("recovery_ms");
    w.Double(p.recovery_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("query_latency");
  w.BeginObject();
  for (const auto& [label, r] :
       std::vector<std::pair<const char*, const QueryRun*>>{
           {"quiescent", &quiescent}, {"during_compaction", &churn}}) {
    w.Key(label);
    w.BeginObject();
    w.Key("requests");
    w.UInt(r->requests);
    w.Key("wall_ms");
    w.Double(r->wall_ms);
    w.Key("qps");
    w.Double(r->qps);
    w.Key("p50_ms");
    w.Double(r->p50_ms);
    w.Key("p99_ms");
    w.Double(r->p99_ms);
    w.Key("updates_applied");
    w.UInt(r->updates_applied);
    w.Key("compactions");
    w.UInt(r->compactions);
    w.Key("generation");
    w.UInt(r->generation);
    w.EndObject();
  }
  w.EndObject();
  w.Key("acceptance");
  w.BeginObject();
  w.Key("p99_ratio_churn_vs_quiescent");
  w.Double(p99_ratio);
  w.Key("p99_budget_ms");
  w.Double(p99_budget);
  w.Key("within_2x");
  w.Bool(within_2x);
  w.Key("durable_never_vs_memory_ratio");
  w.Double(durable_ratio);
  w.Key("durable_budget_ms");
  w.Double(durable_budget_ms);
  w.Key("durable_within_1p3x");
  w.Bool(durable_within_budget);
  w.EndObject();
  w.EndObject();

  std::ofstream out(out_path);
  out << std::move(w).Take() << "\n";
  out.close();
  std::printf("\napplies/s: %.0f (mutations/s %.0f); fold %.1f ms; p99 "
              "churn/quiescent: %.2f (budget %.1f ms)\n"
              "durable fsync=never: %.2fx memory apply; recovery of %llu "
              "batches %.1f ms\nwrote %s\n",
              applies_per_s, mutations_per_s, fold_ms, p99_ratio, p99_budget,
              durable_ratio,
              static_cast<unsigned long long>(durable_never.replayed),
              durable_never.recovery_ms, out_path.c_str());

  if (smoke && !within_2x) {
    std::fprintf(stderr,
                 "SMOKE FAIL: p99 under churn %.2f ms exceeds budget %.2f "
                 "ms (quiescent p99 %.2f ms)\n",
                 churn.p99_ms, p99_budget, quiescent.p99_ms);
    return 1;
  }
  if (smoke && !durable_within_budget) {
    std::fprintf(stderr,
                 "SMOKE FAIL: durable fsync=never apply %.2f ms exceeds "
                 "budget %.2f ms (memory apply %.2f ms)\n",
                 durable_never.wall_ms, durable_budget_ms, apply_wall_ms);
    return 1;
  }
  return 0;
}
