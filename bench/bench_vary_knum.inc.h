// Shared body of Fig. 6 (small dataset) and Fig. 7 (large dataset): vary the
// number of query keywords and profile every phase of every engine variant,
// plus BANKS-II total time. The paper's shape: GPU-Par fastest, CPU-Par
// close, CPU-Par-d one to two orders slower (locking), BANKS-II two to
// three orders slower than the parallel engines and growing with graph
// size.
#pragma once

#include <cstdio>

#include "bench_common.h"

namespace wikisearch::bench {

inline int RunVaryKnum(eval::DatasetBundle (*make_dataset)(),
                       const char* figure) {
  eval::DatasetBundle data = make_dataset();
  const size_t num_queries = eval::BenchQueryCount();
  for (size_t knum : {2u, 4u, 6u, 8u}) {
    auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, knum,
                                               num_queries, 100 + knum);
    char title[128];
    std::snprintf(title, sizeof(title), "%s on %s: Knum=%zu (%zu queries)",
                  figure, data.name.c_str(), knum, num_queries);
    eval::PrintHeader(title, PhaseColumns("engine"));
    for (const EngineRow& row : EfficiencyEngines()) {
      SearchOptions opts;
      opts.top_k = 20;
      opts.alpha = 0.1;
      opts.threads = 4;
      opts.engine = row.kind;
      eval::ProfiledRun run = eval::ProfileEngine(data, queries, opts);
      PrintPhaseRow(row.label, run);
    }
    banks::BanksOptions bopts;
    bopts.top_k = 20;
    bopts.time_limit_ms = eval::BanksTimeLimitMs();
    eval::BanksRun banks = eval::ProfileBanks(data, queries, bopts);
    eval::PrintRow({"BANKS-II", "-", "-", "-", "-", "-",
                    eval::FmtMs(banks.avg_total_ms) +
                        (banks.timeouts > 0
                             ? " (" + std::to_string(banks.timeouts) +
                                   " capped)"
                             : "")});
  }
  std::printf(
      "\npaper shape: parallel Central Graph engines stay flat in Knum and\n"
      "beat BANKS-II by 2-3 orders of magnitude; CPU-Par-d pays lock costs\n"
      "in Init/Expansion but skips extraction in Top-down.\n");
  return 0;
}

}  // namespace wikisearch::bench
