// Top-down stage benchmark (DESIGN.md §14): the bound-driven streaming
// top-k against the exhaustive extraction paths, measured as three stacked
// variants on wikisynth-M:
//
//   legacy  — the pre-scratch path (per-candidate hash containers,
//             std::function keyword-mask indirection, per-edge central-depth
//             rescans, full extraction of every candidate):
//             SearchOptions::legacy_topdown_extraction;
//   scratch — the pooled-scratch driver with the admissible bound DISABLED
//             (enable_topdown_bound = false): every candidate still
//             extracted, so the delta vs legacy is pure allocation/indirection
//             savings;
//   bounded — the full driver: candidates stream in ascending lower-bound
//             order and workers stop extracting once the running top-k is
//             certified, so the delta vs scratch is pure pruning.
//
// Two workload shapes, because the bound's pruning yield is a function of
// answer size: "selective" (Knum=3, Topk=5) has small answers, so the
// admissible bound sits close to the true score and certification genuinely
// prunes; "stress" (Knum=10, Topk=20) has ~15-node answers whose weight-sum
// slack (path intermediates, above-minimum witnesses) keeps every candidate
// under the certification line — there the scratch savings carry the
// speedup and the pruned column records the bound's honest limit.
//
// Every variant serves byte-identical answers (topdown_equivalence_test
// proves it), so the deltas here are pure speed. Results are written to
// BENCH_topdown.json; --smoke runs a shortened sweep and exits nonzero
// unless, on the selective config at Tnum=1, the bounded driver beats the
// legacy path on the top-down stage by >= 1.5x with a nonzero pruned count.
// Single-core CI hosts drift up to ~30% run to run, so the smoke gate
// re-measures (up to 3 attempts) before failing: it is a regression
// tripwire, not a benchmark. The committed full run records the stage
// ratios measured on the reference host (the acceptance bar there is
// >= 2x).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"

using namespace wikisearch;

namespace {

void WriteVariant(JsonWriter& w, const eval::ProfiledRun& run) {
  w.BeginObject();
  w.Key("topdown_ms");
  w.Double(run.avg.topdown_ms);
  w.Key("total_ms");
  w.Double(run.avg.total_ms);
  w.Key("avg_centrals");
  w.Double(run.avg_centrals);
  w.Key("avg_extracted");
  w.Double(run.avg_extracted);
  w.Key("avg_pruned");
  w.Double(run.avg_pruned);
  w.Key("avg_skipped");
  w.Double(run.avg_skipped);
  w.Key("avg_answers");
  w.Double(run.avg_answers);
  w.EndObject();
}

double Ratio(double base, double x) { return x > 0.0 ? base / x : 0.0; }

struct Workload {
  const char* label;
  int knum;
  int topk;
  unsigned seed;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_topdown.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  eval::DatasetBundle data = bench::MediumDataset();
  const size_t num_queries = smoke ? 4 : eval::BenchQueryCount();
  const Workload workloads[] = {
      {"selective", 3, 5, 923},
      {"stress", 10, 20, 923},
  };

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("topdown_bound");
  w.Key("dataset");
  w.String(data.name);
  w.Key("nodes");
  w.UInt(data.kb.graph.num_nodes());
  w.Key("triples");
  w.UInt(data.kb.graph.num_triples());
  w.Key("queries");
  w.UInt(num_queries);
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("configs");
  w.BeginArray();

  eval::PrintHeader(
      "Top-down: legacy exhaustive vs pooled scratch vs bound-driven "
      "streaming top-k (" + data.name + ")",
      {"workload", "Tnum", "variant", "topdown", "total", "extracted",
       "pruned", "topdown spdup"});

  double gate_speedup_t1 = 0.0;  // selective config, bounded vs legacy
  double gate_pruned_t1 = 0.0;

  for (const Workload& wl : workloads) {
    auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, wl.knum,
                                               num_queries, wl.seed);
    for (int threads : {1, 4}) {
      SearchOptions opts;
      opts.top_k = wl.topk;
      opts.threads = threads;
      opts.engine = EngineKind::kCpuParallel;

      SearchOptions legacy_opts = opts;
      legacy_opts.legacy_topdown_extraction = true;
      SearchOptions scratch_opts = opts;
      scratch_opts.enable_topdown_bound = false;
      SearchOptions bounded_opts = opts;

      eval::ProfiledRun legacy =
          eval::ProfileEngine(data, queries, legacy_opts);
      eval::ProfiledRun scratch =
          eval::ProfileEngine(data, queries, scratch_opts);
      eval::ProfiledRun bounded =
          eval::ProfileEngine(data, queries, bounded_opts);

      const bool gated =
          smoke && threads == 1 && std::strcmp(wl.label, "selective") == 0;
      if (gated) {
        // Retry the gated config on a miss: machine-level drift on shared
        // single-core hosts can depress any one measurement by more than
        // the gate margin.
        for (int rep = 1; rep < 3; ++rep) {
          if (Ratio(legacy.avg.topdown_ms, bounded.avg.topdown_ms) >= 1.5 &&
              bounded.avg_pruned > 0.0) {
            break;
          }
          legacy = eval::ProfileEngine(data, queries, legacy_opts);
          scratch = eval::ProfileEngine(data, queries, scratch_opts);
          bounded = eval::ProfileEngine(data, queries, bounded_opts);
        }
      }

      const double topdown_speedup =
          Ratio(legacy.avg.topdown_ms, bounded.avg.topdown_ms);
      const double scratch_speedup =
          Ratio(legacy.avg.topdown_ms, scratch.avg.topdown_ms);
      if (threads == 1 && std::strcmp(wl.label, "selective") == 0) {
        gate_speedup_t1 = topdown_speedup;
        gate_pruned_t1 = bounded.avg_pruned;
      }

      struct Row {
        const char* label;
        const eval::ProfiledRun* r;
      };
      const Row rows[] = {
          {"legacy", &legacy}, {"scratch", &scratch}, {"bounded", &bounded}};
      for (const Row& row : rows) {
        char sp[32], ex[32], pr[32];
        std::snprintf(sp, sizeof(sp), "%.2fx",
                      Ratio(legacy.avg.topdown_ms, row.r->avg.topdown_ms));
        std::snprintf(ex, sizeof(ex), "%.1f", row.r->avg_extracted);
        std::snprintf(pr, sizeof(pr), "%.1f", row.r->avg_pruned);
        eval::PrintRow({wl.label, std::to_string(threads), row.label,
                        eval::FmtMs(row.r->avg.topdown_ms),
                        eval::FmtMs(row.r->avg.total_ms), ex, pr, sp});
      }

      w.BeginObject();
      w.Key("workload");
      w.String(wl.label);
      w.Key("knum");
      w.Int(wl.knum);
      w.Key("top_k");
      w.Int(wl.topk);
      w.Key("threads");
      w.Int(threads);
      w.Key("legacy");
      WriteVariant(w, legacy);
      w.Key("scratch");
      WriteVariant(w, scratch);
      w.Key("bounded");
      WriteVariant(w, bounded);
      w.Key("scratch_speedup");
      w.Double(scratch_speedup);
      w.Key("topdown_speedup");
      w.Double(topdown_speedup);
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();

  const std::string json = std::move(w).Take();
  if (FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::printf("\nfailed to open %s for writing\n", out_path);
    return 1;
  }
  std::printf(
      "shape: candidates stream in ascending lower-bound order; once the\n"
      "running top-k is certified against the bound watermark, the rest are\n"
      "pruned without extraction. The scratch rows isolate the pooled-buffer\n"
      "savings; bounded minus scratch is pure pruning, and the stress rows\n"
      "record where weight-sum slack keeps the bound from certifying.\n");

  if (smoke && (gate_speedup_t1 < 1.5 || gate_pruned_t1 <= 0.0)) {
    std::printf(
        "SMOKE FAIL: selective topdown speedup %.2fx (< 1.5x) or avg pruned "
        "%.1f (== 0) at Tnum=1\n",
        gate_speedup_t1, gate_pruned_t1);
    return 1;
  }
  if (smoke) {
    std::printf("smoke ok: selective topdown %.2fx, avg pruned %.1f at "
                "Tnum=1\n",
                gate_speedup_t1, gate_pruned_t1);
  }
  return 0;
}
