// Regenerates Fig. 8: total query time while varying Topk (first row of the
// paper's figure) and alpha (second row), on both datasets, for GPU-Par(sim)
// and CPU-Par. Paper shape: flat in Topk (answers come from the same
// top-(k,d) set until a deeper level is needed); time *decreases* as alpha
// grows (more nodes active early, answers found sooner).
#include <cstdio>

#include "bench_common.h"

using namespace wikisearch;

namespace {

void RunOn(eval::DatasetBundle (*make_dataset)()) {
  eval::DatasetBundle data = make_dataset();
  const size_t num_queries = eval::BenchQueryCount();
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 6,
                                             num_queries, 808);

  eval::PrintHeader("Fig. 8 (top): vary Topk on " + data.name,
                    {"engine", "k=10", "k=20", "k=30", "k=40", "k=50"});
  for (const bench::EngineRow& row : bench::EfficiencyEngines()) {
    if (row.kind == EngineKind::kCpuDynamic) continue;  // paper plots 2
    std::vector<std::string> cells{row.label};
    for (int k : {10, 20, 30, 40, 50}) {
      SearchOptions opts;
      opts.top_k = k;
      opts.alpha = 0.1;
      opts.threads = 4;
      opts.engine = row.kind;
      cells.push_back(
          eval::FmtMs(eval::ProfileEngine(data, queries, opts).avg.total_ms));
    }
    eval::PrintRow(cells);
  }

  eval::PrintHeader("Fig. 8 (bottom): vary alpha on " + data.name,
                    {"engine", "a=0.05", "a=0.1", "a=0.2", "a=0.4"});
  std::vector<std::string> centrals_row{"(candidates)"};
  std::vector<std::string> levels_row{"(levels)"};
  for (const bench::EngineRow& row : bench::EfficiencyEngines()) {
    if (row.kind == EngineKind::kCpuDynamic) continue;
    std::vector<std::string> cells{row.label};
    for (double alpha : {0.05, 0.1, 0.2, 0.4}) {
      SearchOptions opts;
      opts.top_k = 20;
      opts.alpha = alpha;
      opts.threads = 4;
      opts.engine = row.kind;
      eval::ProfiledRun run = eval::ProfileEngine(data, queries, opts);
      cells.push_back(eval::FmtMs(run.avg.total_ms));
      if (row.kind == EngineKind::kCpuParallel) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", run.avg_centrals);
        centrals_row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%d", run.avg.levels /
                                                  static_cast<int>(
                                                      queries.size()));
        levels_row.push_back(buf);
      }
    }
    eval::PrintRow(cells);
  }
  // Search depth falls monotonically with alpha (the paper's claim); the
  // time can deviate when an activation-level cohort bursts into many
  // Central-Node candidates at the stopping level (quantized synthetic
  // weights) and top-down extraction pays for each candidate.
  eval::PrintRow(levels_row);
  eval::PrintRow(centrals_row);
}

}  // namespace

int main() {
  RunOn(&bench::SmallDataset);
  RunOn(&bench::LargeDataset);
  std::printf(
      "\npaper shape: stable across Topk; larger alpha finds answers at\n"
      "smaller depths (the (levels) row falls monotonically). Total time\n"
      "follows depth except where an activation cohort bursts into many\n"
      "candidates at the stopping level ((candidates) row) — an artifact\n"
      "of the synthetic weight quantization, see EXPERIMENTS.md.\n");
  return 0;
}
