#include "graph/graph_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace wikisearch {

DegreeStats ComputeDegreeStats(const KnowledgeGraph& g, bool in_only) {
  DegreeStats stats;
  const size_t n = g.num_nodes();
  if (n == 0) return stats;
  stats.min = SIZE_MAX;
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    size_t d = in_only ? g.InDegree(v) : g.Degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    total += static_cast<double>(d);
    size_t bucket =
        d == 0 ? 0 : static_cast<size_t>(std::floor(std::log2(d))) + 1;
    if (stats.log2_histogram.size() <= bucket) {
      stats.log2_histogram.resize(bucket + 1, 0);
    }
    ++stats.log2_histogram[bucket];
  }
  stats.mean = total / static_cast<double>(n);
  return stats;
}

std::vector<LabelCount> LabelHistogram(const KnowledgeGraph& g, size_t top_n) {
  std::vector<size_t> counts(g.num_labels(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.Neighbors(v)) {
      if (!e.reverse) ++counts[e.label];  // count each triple once
    }
  }
  std::vector<LabelCount> out;
  out.reserve(counts.size());
  for (LabelId l = 0; l < counts.size(); ++l) {
    out.push_back(LabelCount{l, counts[l]});
  }
  std::sort(out.begin(), out.end(), [](const LabelCount& a,
                                       const LabelCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.label < b.label;
  });
  if (top_n > 0 && out.size() > top_n) out.resize(top_n);
  return out;
}

WeightStats ComputeWeightStats(const KnowledgeGraph& g) {
  WS_CHECK(g.has_weights());
  WeightStats stats;
  std::vector<double> w = g.node_weights();
  if (w.empty()) return stats;
  double total = 0.0;
  for (double x : w) {
    total += x;
    if (x > 0.5) ++stats.heavy_nodes;
  }
  stats.mean = total / static_cast<double>(w.size());
  std::sort(w.begin(), w.end());
  auto quantile = [&](double q) {
    size_t idx = static_cast<size_t>(q * static_cast<double>(w.size() - 1));
    return w[idx];
  };
  stats.p50 = quantile(0.50);
  stats.p90 = quantile(0.90);
  stats.p99 = quantile(0.99);
  stats.max = w.back();
  return stats;
}

std::string DescribeGraph(const KnowledgeGraph& g) {
  std::ostringstream out;
  out << "nodes: " << g.num_nodes() << ", triples: " << g.num_triples()
      << ", labels: " << g.num_labels() << "\n";
  DegreeStats deg = ComputeDegreeStats(g);
  out << "degree: mean " << deg.mean << ", max " << deg.max
      << ", log2 histogram:";
  for (size_t b = 0; b < deg.log2_histogram.size(); ++b) {
    out << " [" << (b == 0 ? 0 : (1u << (b - 1))) << "+]"
        << deg.log2_histogram[b];
  }
  out << "\n";
  DegreeStats in = ComputeDegreeStats(g, /*in_only=*/true);
  out << "in-degree: mean " << in.mean << ", max " << in.max << "\n";
  auto labels = LabelHistogram(g, 5);
  out << "top predicates:";
  for (const LabelCount& lc : labels) {
    out << " " << g.LabelName(lc.label) << "(" << lc.count << ")";
  }
  out << "\n";
  if (g.has_weights()) {
    WeightStats w = ComputeWeightStats(g);
    out << "weights: mean " << w.mean << ", p50 " << w.p50 << ", p90 "
        << w.p90 << ", p99 " << w.p99 << ", heavy(>0.5) " << w.heavy_nodes
        << "\n";
  }
  if (g.average_distance() > 0) {
    out << "avg shortest distance A: " << g.average_distance() << " (dev "
        << g.average_distance_deviation() << ")\n";
  }
  return out.str();
}

}  // namespace wikisearch
