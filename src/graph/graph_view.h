// Read-through view of a KnowledgeGraph plus an optional delta overlay — the
// zero-lock hot-path abstraction of the live-update subsystem (DESIGN.md
// §10). Engines never observe a mutating graph: a GraphView binds an
// *immutable* base CSR and an *immutable* overlay patch at construction, so
// every read through one view is consistent for the view's whole lifetime.
// Publishing a KB change means building a fresh patch (copy-on-write, off
// the serving path) and handing out new views; in-flight queries keep
// reading their old one.
//
// The patch materializes the full merged adjacency list for every *touched*
// node, so a view read costs one branch over a plain CSR read for untouched
// nodes and one hash lookup for touched ones — there is no per-edge merge
// logic on the hot path, and reads take no locks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"

namespace wikisearch {

/// Immutable delta over a base KnowledgeGraph. Built by live::DeltaOverlay
/// (copy-on-write per update batch), consumed read-only by GraphView.
struct GraphOverlayPatch {
  /// View-total node/label counts (base + overlay-created).
  size_t num_nodes = 0;
  size_t num_labels = 0;
  size_t base_num_nodes = 0;
  size_t base_num_labels = 0;
  /// View-total triple/adjacency-entry counts after all adds and removes.
  size_t num_triples = 0;
  size_t num_adjacency_entries = 0;

  /// Names of overlay-created nodes/labels; id = base count + vector index.
  std::vector<std::string> new_names;
  std::vector<std::string> new_label_names;
  std::unordered_map<std::string, NodeId> new_name_to_id;
  std::unordered_map<std::string, LabelId> new_label_to_id;

  /// touched[v] == 1 iff v's adjacency differs from the base (or v is new);
  /// exactly those nodes have a merged_adj entry. Size num_nodes.
  std::vector<uint8_t> touched;
  /// Full merged adjacency per touched node, sorted by (target, label,
  /// reverse) — the same comparator GraphBuilder::Build uses, so a view read
  /// is byte-identical to a from-scratch rebuild.
  std::unordered_map<NodeId, std::vector<AdjEntry>> merged_adj;

  /// Derived stats, recomputed over the whole view after every batch so
  /// query results match a cold rebuild exactly (Eq. 2 weights are globally
  /// min-max normalized; A is a global sample).
  std::vector<double> weights;  // size num_nodes
  double average_distance = 0.0;
  double avg_dist_deviation = 0.0;

  /// Approximate resident bytes of the overlay structures.
  size_t OverlayBytes() const;
};

/// Non-owning, trivially copyable (two pointers) read view. Implicitly
/// constructible from a bare KnowledgeGraph so every pre-live call site
/// (engines, baselines, tests) keeps compiling unchanged.
class GraphView {
 public:
  GraphView() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit.
  GraphView(const KnowledgeGraph& base) : base_(&base) {}
  GraphView(const KnowledgeGraph* base, const GraphOverlayPatch* patch)
      : base_(base), patch_(patch) {}

  size_t num_nodes() const {
    return patch_ != nullptr ? patch_->num_nodes : base_->num_nodes();
  }
  size_t num_triples() const {
    return patch_ != nullptr ? patch_->num_triples : base_->num_triples();
  }
  size_t num_adjacency_entries() const {
    return patch_ != nullptr ? patch_->num_adjacency_entries
                             : base_->num_adjacency_entries();
  }
  size_t num_labels() const {
    return patch_ != nullptr ? patch_->num_labels : base_->num_labels();
  }

  /// Neighbors of v (both directions), sorted by (target, label, reverse).
  std::span<const AdjEntry> Neighbors(NodeId v) const {
    if (patch_ == nullptr) return base_->Neighbors(v);
    if (patch_->touched[v]) {
      const std::vector<AdjEntry>& list = patch_->merged_adj.find(v)->second;
      return {list.data(), list.size()};
    }
    return base_->Neighbors(v);
  }

  size_t Degree(NodeId v) const { return Neighbors(v).size(); }
  size_t InDegree(NodeId v) const;

  const std::string& NodeName(NodeId v) const {
    if (patch_ != nullptr && v >= patch_->base_num_nodes) {
      return patch_->new_names[v - patch_->base_num_nodes];
    }
    return base_->NodeName(v);
  }
  const std::string& LabelName(LabelId l) const {
    if (patch_ != nullptr && l >= patch_->base_num_labels) {
      return patch_->new_label_names[l - patch_->base_num_labels];
    }
    return base_->LabelName(l);
  }
  NodeId FindNode(std::string_view name) const;

  double NodeWeight(NodeId v) const {
    return patch_ != nullptr ? patch_->weights[v] : base_->NodeWeight(v);
  }
  bool has_weights() const {
    return patch_ != nullptr ? !patch_->weights.empty()
                             : base_->has_weights();
  }
  const std::vector<double>& node_weights() const {
    return patch_ != nullptr ? patch_->weights : base_->node_weights();
  }

  double average_distance() const {
    return patch_ != nullptr ? patch_->average_distance
                             : base_->average_distance();
  }
  double average_distance_deviation() const {
    return patch_ != nullptr ? patch_->avg_dist_deviation
                             : base_->average_distance_deviation();
  }

  /// Base pre-storage plus overlay resident bytes.
  size_t PreStorageBytes() const {
    return base_->PreStorageBytes() +
           (patch_ != nullptr ? patch_->OverlayBytes() : 0);
  }

  const KnowledgeGraph* base() const { return base_; }
  const GraphOverlayPatch* patch() const { return patch_; }

 private:
  const KnowledgeGraph* base_ = nullptr;
  const GraphOverlayPatch* patch_ = nullptr;
};

/// Folds a view into a standalone CSR graph: offsets/adjacency/weights and
/// the sampled average distance come out byte-identical to rebuilding the
/// same triple multiset through GraphBuilder (both sort per-node lists with
/// the same comparator). This is the Compactor's off-path fold step.
KnowledgeGraph MaterializeGraph(const GraphView& view);

}  // namespace wikisearch
