// Reference graph traversals used by the distance sampler, the generator's
// validity checks, and the test suite (as ground truth for the parallel
// search engine).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "graph/types.h"

namespace wikisearch {

/// Unweighted single-source shortest distances over the bi-directed graph.
/// Unreachable nodes get kUnreachable.
inline constexpr uint32_t kUnreachable = ~0u;
std::vector<uint32_t> BfsDistances(const GraphView& g, NodeId source);

/// Multi-source variant: distance to the nearest of `sources`.
std::vector<uint32_t> BfsDistances(const GraphView& g,
                                   const std::vector<NodeId>& sources);

/// Connected components over the bi-directed view. Returns component id per
/// node plus the number of components.
struct ComponentInfo {
  std::vector<uint32_t> component;
  size_t num_components = 0;
  size_t largest_size = 0;
};
ComponentInfo ConnectedComponents(const KnowledgeGraph& g);

}  // namespace wikisearch
