#include "graph/graph_view.h"

namespace wikisearch {

size_t GraphOverlayPatch::OverlayBytes() const {
  size_t bytes = touched.size() + weights.size() * sizeof(double);
  for (const auto& [v, list] : merged_adj) {
    bytes += sizeof(v) + list.capacity() * sizeof(AdjEntry);
  }
  for (const auto& s : new_names) bytes += s.size() + sizeof(std::string);
  for (const auto& s : new_label_names) {
    bytes += s.size() + sizeof(std::string);
  }
  return bytes;
}

size_t GraphView::InDegree(NodeId v) const {
  if (patch_ == nullptr) return base_->InDegree(v);
  size_t in = 0;
  for (const AdjEntry& e : Neighbors(v)) {
    if (e.reverse) ++in;
  }
  return in;
}

NodeId GraphView::FindNode(std::string_view name) const {
  NodeId id = base_->FindNode(name);
  if (id != kInvalidNode || patch_ == nullptr) return id;
  auto it = patch_->new_name_to_id.find(std::string(name));
  if (it == patch_->new_name_to_id.end()) return kInvalidNode;
  return it->second;
}

KnowledgeGraph MaterializeGraph(const GraphView& view) {
  KnowledgeGraph g;
  const size_t n = view.num_nodes();
  g.names_.reserve(n);
  for (NodeId v = 0; v < n; ++v) g.names_.push_back(view.NodeName(v));
  const size_t labels = view.num_labels();
  g.label_names_.reserve(labels);
  for (LabelId l = 0; l < labels; ++l) {
    g.label_names_.push_back(view.LabelName(l));
  }
  g.name_to_id_.reserve(n);
  for (NodeId v = 0; v < n; ++v) g.name_to_id_.emplace(g.names_[v], v);

  g.offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + view.Neighbors(v).size();
  }
  g.adj_.resize(g.offsets_[n]);
  for (NodeId v = 0; v < n; ++v) {
    std::span<const AdjEntry> adj = view.Neighbors(v);
    std::copy(adj.begin(), adj.end(), g.adj_.begin() + g.offsets_[v]);
  }

  if (view.has_weights()) g.weights_ = view.node_weights();
  g.average_distance_ = view.average_distance();
  g.avg_dist_deviation_ = view.average_distance_deviation();
  return g;
}

}  // namespace wikisearch
