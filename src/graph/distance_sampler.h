// Estimates the average shortest distance A between node pairs by sampling
// (Sec. IV-A / Table II). A calibrates the Penalty-and-Reward mapping that
// turns node weights into minimum activation levels.
#pragma once

#include <cstddef>

#include "common/random.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"

namespace wikisearch {

struct DistanceSample {
  double mean = 0.0;       // the paper's A
  double deviation = 0.0;  // sample standard deviation
  size_t pairs = 0;        // reachable pairs actually measured
};

/// Samples approximately `target_pairs` reachable node pairs (the paper uses
/// ten thousand) by running full BFS from a set of random sources and drawing
/// random reachable targets from each. Deterministic given `seed`.
DistanceSample SampleAverageDistance(const GraphView& g,
                                     size_t target_pairs = 10000,
                                     uint64_t seed = 42);

/// Convenience: samples and attaches the result to the graph.
void AttachAverageDistance(KnowledgeGraph* g, size_t target_pairs = 10000,
                           uint64_t seed = 42);

}  // namespace wikisearch
