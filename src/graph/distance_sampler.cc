#include "graph/distance_sampler.h"

#include <cmath>
#include <vector>

#include "graph/graph_algos.h"

namespace wikisearch {

DistanceSample SampleAverageDistance(const GraphView& g,
                                     size_t target_pairs, uint64_t seed) {
  DistanceSample out;
  const size_t n = g.num_nodes();
  if (n < 2) return out;

  Rng rng(seed);
  // Full BFS per source is O(V+E); amortize by drawing many targets per
  // source. ~64 sources keeps this well under a second on benchmark scales.
  const size_t num_sources = std::min<size_t>(64, n);
  const size_t targets_per_source =
      (target_pairs + num_sources - 1) / num_sources;

  double sum = 0.0, sum_sq = 0.0;
  size_t count = 0;
  std::vector<NodeId> reachable;
  for (size_t s = 0; s < num_sources; ++s) {
    NodeId src = static_cast<NodeId>(rng.Uniform(n));
    std::vector<uint32_t> dist = BfsDistances(g, src);
    reachable.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (v != src && dist[v] != kUnreachable) reachable.push_back(v);
    }
    if (reachable.empty()) continue;
    for (size_t t = 0; t < targets_per_source; ++t) {
      NodeId target = reachable[rng.Uniform(reachable.size())];
      double d = static_cast<double>(dist[target]);
      sum += d;
      sum_sq += d * d;
      ++count;
    }
  }
  if (count == 0) return out;
  out.pairs = count;
  out.mean = sum / static_cast<double>(count);
  double var = sum_sq / static_cast<double>(count) - out.mean * out.mean;
  out.deviation = var > 0 ? std::sqrt(var) : 0.0;
  return out;
}

void AttachAverageDistance(KnowledgeGraph* g, size_t target_pairs,
                           uint64_t seed) {
  DistanceSample s = SampleAverageDistance(*g, target_pairs, seed);
  g->SetAverageDistance(s.mean, s.deviation);
}

}  // namespace wikisearch
