#include "graph/graph_algos.h"

#include <algorithm>
#include <queue>

namespace wikisearch {

std::vector<uint32_t> BfsDistances(const GraphView& g, NodeId source) {
  return BfsDistances(g, std::vector<NodeId>{source});
}

std::vector<uint32_t> BfsDistances(const GraphView& g,
                                   const std::vector<NodeId>& sources) {
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier;
  for (NodeId s : sources) {
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  uint32_t level = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId v : frontier) {
      for (const AdjEntry& e : g.Neighbors(v)) {
        if (dist[e.target] == kUnreachable) {
          dist[e.target] = level;
          next.push_back(e.target);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

ComponentInfo ConnectedComponents(const KnowledgeGraph& g) {
  ComponentInfo info;
  info.component.assign(g.num_nodes(), ~0u);
  std::vector<size_t> sizes;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (info.component[start] != ~0u) continue;
    uint32_t cid = static_cast<uint32_t>(sizes.size());
    size_t size = 0;
    stack.push_back(start);
    info.component[start] = cid;
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      ++size;
      for (const AdjEntry& e : g.Neighbors(v)) {
        if (info.component[e.target] == ~0u) {
          info.component[e.target] = cid;
          stack.push_back(e.target);
        }
      }
    }
    sizes.push_back(size);
  }
  info.num_components = sizes.size();
  info.largest_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return info;
}

}  // namespace wikisearch
