#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <fstream>

namespace wikisearch {

namespace {

constexpr char kMagic[4] = {'W', 'S', 'K', 'G'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBytes(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::IoError("short read / truncated file");
  }
  return Status::OK();
}

template <typename T>
Status WritePod(std::FILE* f, const T& v) {
  return WriteBytes(f, &v, sizeof(T));
}

template <typename T>
Status ReadPod(std::FILE* f, T* v) {
  return ReadBytes(f, v, sizeof(T));
}

template <typename T>
Status WriteVec(std::FILE* f, const std::vector<T>& v) {
  WS_RETURN_NOT_OK(WritePod<uint64_t>(f, v.size()));
  return WriteBytes(f, v.data(), v.size() * sizeof(T));
}

template <typename T>
Status ReadVec(std::FILE* f, std::vector<T>* v) {
  uint64_t n = 0;
  WS_RETURN_NOT_OK(ReadPod(f, &n));
  // Sanity bound to fail fast on corrupt headers (1 G entries).
  if (n > (1ULL << 30)) return Status::Corruption("implausible vector size");
  v->resize(n);
  return ReadBytes(f, v->data(), n * sizeof(T));
}

Status WriteStrings(std::FILE* f, const std::vector<std::string>& strs) {
  WS_RETURN_NOT_OK(WritePod<uint64_t>(f, strs.size()));
  for (const auto& s : strs) {
    WS_RETURN_NOT_OK(WritePod<uint32_t>(f, static_cast<uint32_t>(s.size())));
    WS_RETURN_NOT_OK(WriteBytes(f, s.data(), s.size()));
  }
  return Status::OK();
}

Status ReadStrings(std::FILE* f, std::vector<std::string>* strs) {
  uint64_t n = 0;
  WS_RETURN_NOT_OK(ReadPod(f, &n));
  if (n > (1ULL << 30)) return Status::Corruption("implausible string count");
  strs->resize(n);
  for (auto& s : *strs) {
    uint32_t len = 0;
    WS_RETURN_NOT_OK(ReadPod(f, &len));
    if (len > (1u << 24)) return Status::Corruption("implausible string size");
    s.resize(len);
    WS_RETURN_NOT_OK(ReadBytes(f, s.data(), len));
  }
  return Status::OK();
}

}  // namespace

Status WriteGraphTo(std::FILE* f, const KnowledgeGraph& g) {
  WS_RETURN_NOT_OK(WriteBytes(f, kMagic, sizeof(kMagic)));
  WS_RETURN_NOT_OK(WritePod(f, kVersion));
  WS_RETURN_NOT_OK(WriteVec(f, g.offsets_));
  WS_RETURN_NOT_OK(WriteVec(f, g.adj_));
  WS_RETURN_NOT_OK(WriteStrings(f, g.names_));
  WS_RETURN_NOT_OK(WriteStrings(f, g.label_names_));
  WS_RETURN_NOT_OK(WriteVec(f, g.weights_));
  WS_RETURN_NOT_OK(WritePod(f, g.average_distance_));
  WS_RETURN_NOT_OK(WritePod(f, g.avg_dist_deviation_));
  return Status::OK();
}

Result<KnowledgeGraph> ReadGraphFrom(std::FILE* f) {
  char magic[4];
  WS_RETURN_NOT_OK(ReadBytes(f, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic; not a WSKG section");
  }
  uint32_t version = 0;
  WS_RETURN_NOT_OK(ReadPod(f, &version));
  if (version != kVersion) {
    return Status::Corruption("unsupported WSKG version");
  }
  KnowledgeGraph g;
  WS_RETURN_NOT_OK(ReadVec(f, &g.offsets_));
  WS_RETURN_NOT_OK(ReadVec(f, &g.adj_));
  WS_RETURN_NOT_OK(ReadStrings(f, &g.names_));
  WS_RETURN_NOT_OK(ReadStrings(f, &g.label_names_));
  WS_RETURN_NOT_OK(ReadVec(f, &g.weights_));
  WS_RETURN_NOT_OK(ReadPod(f, &g.average_distance_));
  WS_RETURN_NOT_OK(ReadPod(f, &g.avg_dist_deviation_));
  if (g.offsets_.size() != g.names_.size() + 1) {
    return Status::Corruption("offset/name size mismatch");
  }
  if (!g.offsets_.empty() && g.offsets_.back() != g.adj_.size()) {
    return Status::Corruption("adjacency size mismatch");
  }
  g.name_to_id_.reserve(g.names_.size());
  for (NodeId i = 0; i < g.names_.size(); ++i) {
    g.name_to_id_.emplace(g.names_[i], i);
  }
  return g;
}

Status SaveGraph(const KnowledgeGraph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  return WriteGraphTo(f.get(), g);
}

Result<KnowledgeGraph> LoadGraph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  Result<KnowledgeGraph> r = ReadGraphFrom(f.get());
  if (!r.ok()) {
    Status st = r.status();
    if (st.code() == StatusCode::kCorruption) {
      return Status::Corruption(st.message() + ": " + path);
    }
    return Status::IoError(st.message() + ": " + path);
  }
  return r;
}

Result<KnowledgeGraph> LoadTriplesTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  GraphBuilder builder;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    size_t t1 = line.find('\t');
    size_t t2 = (t1 == std::string::npos) ? std::string::npos
                                          : line.find('\t', t1 + 1);
    if (t1 == std::string::npos || t2 == std::string::npos) {
      return Status::Corruption("malformed TSV triple at line " +
                                std::to_string(lineno));
    }
    builder.AddTriple(line.substr(0, t1), line.substr(t1 + 1, t2 - t1 - 1),
                      line.substr(t2 + 1));
  }
  return std::move(builder).Build();
}

Status SaveTriplesTsv(const KnowledgeGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.Neighbors(v)) {
      if (e.reverse) continue;  // write each triple once, original direction
      out << g.NodeName(v) << '\t' << g.LabelName(e.label) << '\t'
          << g.NodeName(e.target) << '\n';
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace wikisearch
