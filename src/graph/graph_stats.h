// Dataset profiling: degree/label/weight distributions. Used by the
// kb_stats example and by tests asserting the synthetic generator actually
// produces the structural features the algorithm depends on (power-law
// in-degree, label skew, heavy summary nodes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace wikisearch {

struct DegreeStats {
  size_t min = 0;
  size_t max = 0;
  double mean = 0.0;
  /// log2-bucketed histogram: bucket b counts nodes with degree in
  /// [2^b, 2^(b+1)).
  std::vector<size_t> log2_histogram;
};

/// Degree statistics over the bi-directed degree, or over in-degree only.
DegreeStats ComputeDegreeStats(const KnowledgeGraph& g, bool in_only = false);

struct LabelCount {
  LabelId label;
  size_t count;  // triples carrying this predicate
};

/// Predicate usage, most frequent first, truncated to `top_n` (0 = all).
std::vector<LabelCount> LabelHistogram(const KnowledgeGraph& g,
                                       size_t top_n = 0);

struct WeightStats {
  double mean = 0.0;
  /// Quantiles of the attached node weights at 50/90/99/100%.
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
  /// Nodes with weight above 0.5 (strong summary nodes).
  size_t heavy_nodes = 0;
};

/// Requires attached node weights.
WeightStats ComputeWeightStats(const KnowledgeGraph& g);

/// Multi-line human-readable profile of a graph.
std::string DescribeGraph(const KnowledgeGraph& g);

}  // namespace wikisearch
