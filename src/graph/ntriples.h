// RDF N-Triples reader/writer (W3C RDF 1.1 N-Triples). The paper's
// knowledge bases (Wikidata, Freebase, Yago) "can all be represented in an
// RDF graph"; this module ingests standard dumps:
//
//   <http://ex.org/Q42> <http://ex.org/P31> <http://ex.org/Q5> .
//   <http://ex.org/Q42> <http://ex.org/label> "Douglas Adams"@en .
//   _:b0 <http://ex.org/p> "42"^^<http://www.w3.org/2001/XMLSchema#int> .
//
// Subjects/objects may be IRIs, blank nodes or (objects only) literals;
// literals become nodes named by their lexical value, which is exactly what
// the keyword index needs.
#pragma once

#include <string>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace wikisearch {

struct NTriplesOptions {
  /// Use only the IRI's local name (text after the last '#' or '/') as the
  /// node/label display name, with '_' turned into spaces — Wikidata-style
  /// dumps become searchable names. When false the full IRI is kept.
  bool localize_iris = true;
  /// Ignore lines that fail to parse instead of failing the whole load.
  bool skip_malformed = false;
};

/// Parses one N-Triples document from a string. Exposed for testing.
Result<KnowledgeGraph> ParseNTriples(std::string_view content,
                                     const NTriplesOptions& opts = {});

/// Loads an .nt file.
Result<KnowledgeGraph> LoadNTriples(const std::string& path,
                                    const NTriplesOptions& opts = {});

/// Writes the graph as N-Triples (names are serialized as literals-safe
/// IRIs under the urn:ws: namespace; round-trips through LoadNTriples).
Status SaveNTriples(const KnowledgeGraph& g, const std::string& path);

/// Unescapes an N-Triples string literal body (\" \\ \n \r \t \uXXXX).
Result<std::string> UnescapeNTriplesLiteral(std::string_view s);

}  // namespace wikisearch
