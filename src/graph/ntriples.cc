#include "graph/ntriples.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace wikisearch {

namespace {

/// Cursor over one line of N-Triples input.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

  char Peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  /// Parses <IRI>.
  Result<std::string> ParseIri() {
    if (Peek() != '<') return Status::Corruption("expected '<'");
    size_t end = s_.find('>', pos_ + 1);
    if (end == std::string_view::npos) {
      return Status::Corruption("unterminated IRI");
    }
    std::string iri(s_.substr(pos_ + 1, end - pos_ - 1));
    pos_ = end + 1;
    return iri;
  }

  /// Parses _:name.
  Result<std::string> ParseBlank() {
    if (pos_ + 1 >= s_.size() || s_[pos_] != '_' || s_[pos_ + 1] != ':') {
      return Status::Corruption("expected blank node");
    }
    size_t start = pos_ + 2;
    size_t end = start;
    while (end < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '_' || s_[end] == '-')) {
      ++end;
    }
    if (end == start) return Status::Corruption("empty blank node label");
    std::string name = "_:" + std::string(s_.substr(start, end - start));
    pos_ = end;
    return name;
  }

  /// Parses "literal"(@lang | ^^<datatype>)? and returns the unescaped
  /// lexical value.
  Result<std::string> ParseLiteral() {
    if (Peek() != '"') return Status::Corruption("expected '\"'");
    size_t i = pos_ + 1;
    std::string raw;
    bool closed = false;
    while (i < s_.size()) {
      char c = s_[i];
      if (c == '\\') {
        if (i + 1 >= s_.size()) return Status::Corruption("dangling escape");
        raw += c;
        raw += s_[i + 1];
        i += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++i;
        break;
      }
      raw += c;
      ++i;
    }
    if (!closed) return Status::Corruption("unterminated literal");
    pos_ = i;
    // Optional language tag or datatype.
    if (Peek() == '@') {
      while (pos_ < s_.size() && s_[pos_] != ' ' && s_[pos_] != '\t') ++pos_;
    } else if (pos_ + 1 < s_.size() && s_[pos_] == '^' &&
               s_[pos_ + 1] == '^') {
      pos_ += 2;
      WS_RETURN_NOT_OK(ParseIri().status());
    }
    return UnescapeNTriplesLiteral(raw);
  }

  /// Expects the final '.'.
  Status ParseDot() {
    SkipWs();
    if (Peek() != '.') return Status::Corruption("expected terminating '.'");
    ++pos_;
    SkipWs();
    if (pos_ < s_.size()) return Status::Corruption("trailing content");
    return Status::OK();
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

std::string LocalizeIri(const std::string& iri, bool localize) {
  if (!localize) return iri;
  size_t cut = iri.find_last_of("#/");
  std::string local =
      (cut == std::string::npos || cut + 1 >= iri.size())
          ? iri
          : iri.substr(cut + 1);
  for (char& c : local) {
    if (c == '_') c = ' ';
  }
  return local.empty() ? iri : local;
}

std::string EscapeLiteral(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Result<std::string> UnescapeNTriplesLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) return Status::Corruption("dangling escape");
    char c = s[++i];
    switch (c) {
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case 'u':
      case 'U': {
        size_t digits = (c == 'u') ? 4 : 8;
        if (i + digits >= s.size()) {
          return Status::Corruption("truncated \\u escape");
        }
        uint32_t code = 0;
        for (size_t d = 0; d < digits; ++d) {
          char h = s[i + 1 + d];
          int v = (h >= '0' && h <= '9')   ? h - '0'
                  : (h >= 'a' && h <= 'f') ? h - 'a' + 10
                  : (h >= 'A' && h <= 'F') ? h - 'A' + 10
                                           : -1;
          if (v < 0) return Status::Corruption("bad \\u escape digit");
          code = code * 16 + static_cast<uint32_t>(v);
        }
        i += digits;
        // Encode as UTF-8.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (code >> 18));
          out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        return Status::Corruption("unknown escape");
    }
  }
  return out;
}

Result<KnowledgeGraph> ParseNTriples(std::string_view content,
                                     const NTriplesOptions& opts) {
  GraphBuilder builder;
  size_t lineno = 0;
  size_t pos = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string_view::npos) eol = content.size();
    std::string_view line = content.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    auto parse_line = [&]() -> Status {
      LineParser p(line);
      if (p.AtEnd() || p.Peek() == '#') return Status::OK();
      // Subject: IRI or blank.
      Result<std::string> subject =
          p.Peek() == '<' ? p.ParseIri() : p.ParseBlank();
      WS_RETURN_NOT_OK(subject.status());
      p.SkipWs();
      // Predicate: IRI.
      Result<std::string> predicate = p.ParseIri();
      WS_RETURN_NOT_OK(predicate.status());
      p.SkipWs();
      // Object: IRI, blank, or literal (literals keep their lexical value
      // verbatim as the node name).
      const char object_kind = p.Peek();
      Result<std::string> object = object_kind == '<'   ? p.ParseIri()
                                   : object_kind == '"' ? p.ParseLiteral()
                                                        : p.ParseBlank();
      WS_RETURN_NOT_OK(object.status());
      const bool object_is_literal = object_kind == '"';
      WS_RETURN_NOT_OK(p.ParseDot());

      std::string subj_name = subject->rfind("_:", 0) == 0
                                  ? *subject
                                  : LocalizeIri(*subject, opts.localize_iris);
      std::string pred_name = LocalizeIri(*predicate, opts.localize_iris);
      std::string obj_name = *object;
      if (obj_name.rfind("_:", 0) != 0 && !object_is_literal) {
        obj_name = LocalizeIri(obj_name, opts.localize_iris);
      }
      builder.AddTriple(subj_name, pred_name, obj_name);
      return Status::OK();
    };
    Status st = parse_line();
    if (!st.ok() && !opts.skip_malformed) {
      return Status::Corruption("line " + std::to_string(lineno) + ": " +
                                st.message());
    }
  }
  return std::move(builder).Build();
}

Result<KnowledgeGraph> LoadNTriples(const std::string& path,
                                    const NTriplesOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseNTriples(buf.str(), opts);
}

Status SaveNTriples(const KnowledgeGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  auto iri = [](const std::string& name) {
    std::string enc;
    for (char c : name) {
      if (c == ' ') {
        enc += "%20";
      } else if (c == '<' || c == '>') {
        enc += (c == '<') ? "%3C" : "%3E";
      } else {
        enc += c;
      }
    }
    return "<urn:ws:" + enc + ">";
  };
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.Neighbors(v)) {
      if (e.reverse) continue;
      out << iri(g.NodeName(v)) << ' ' << iri(g.LabelName(e.label)) << ' '
          << '"' << EscapeLiteral(g.NodeName(e.target)) << "\" .\n";
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace wikisearch
