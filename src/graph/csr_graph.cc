#include "graph/csr_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace wikisearch {

size_t KnowledgeGraph::InDegree(NodeId v) const {
  size_t in = 0;
  for (const AdjEntry& e : Neighbors(v)) {
    // A reverse entry in v's list means the triple points *into* v.
    if (e.reverse) ++in;
  }
  return in;
}

NodeId KnowledgeGraph::FindNode(std::string_view name) const {
  auto it = name_to_id_.find(std::string(name));
  if (it == name_to_id_.end()) return kInvalidNode;
  return it->second;
}

Status KnowledgeGraph::SetNodeWeights(std::vector<double> weights) {
  if (weights.size() != num_nodes()) {
    return Status::InvalidArgument("weight vector size mismatch");
  }
  weights_ = std::move(weights);
  return Status::OK();
}

size_t KnowledgeGraph::PreStorageBytes() const {
  size_t bytes = offsets_.size() * sizeof(uint64_t) +
                 adj_.size() * sizeof(AdjEntry) +
                 weights_.size() * sizeof(double);
  for (const auto& s : names_) bytes += s.size() + sizeof(std::string);
  for (const auto& s : label_names_) bytes += s.size() + sizeof(std::string);
  return bytes;
}

NodeId GraphBuilder::AddNode(std::string name) {
  auto it = name_to_id_.find(name);
  if (it != name_to_id_.end()) return it->second;
  NodeId id = static_cast<NodeId>(names_.size());
  name_to_id_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

LabelId GraphBuilder::AddLabel(std::string name) {
  auto it = label_to_id_.find(name);
  if (it != label_to_id_.end()) return it->second;
  LabelId id = static_cast<LabelId>(label_names_.size());
  label_to_id_.emplace(name, id);
  label_names_.push_back(std::move(name));
  return id;
}

Status GraphBuilder::AddEdge(NodeId src, NodeId dst, LabelId label) {
  if (src >= names_.size() || dst >= names_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (label >= label_names_.size()) {
    return Status::InvalidArgument("unknown edge label");
  }
  triples_.push_back({src, dst, label});
  return Status::OK();
}

void GraphBuilder::AddTriple(const std::string& src, const std::string& label,
                             const std::string& dst) {
  NodeId s = AddNode(src);
  NodeId d = AddNode(dst);
  LabelId l = AddLabel(label);
  triples_.push_back({s, d, l});
}

KnowledgeGraph GraphBuilder::Build() && {
  KnowledgeGraph g;
  const size_t n = names_.size();
  g.names_ = std::move(names_);
  g.label_names_ = std::move(label_names_);
  g.name_to_id_ = std::move(name_to_id_);

  // Counting sort into CSR: each triple lands in both endpoints' lists.
  g.offsets_.assign(n + 1, 0);
  for (const Triple& t : triples_) {
    ++g.offsets_[t.src + 1];
    ++g.offsets_[t.dst + 1];
  }
  for (size_t i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];

  g.adj_.resize(triples_.size() * 2);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Triple& t : triples_) {
    g.adj_[cursor[t.src]++] = AdjEntry{t.dst, t.label, 0};
    g.adj_[cursor[t.dst]++] = AdjEntry{t.src, t.label, 1};
  }

  // Sort each adjacency list by (target, label, reverse) for deterministic
  // traversal order and cache-friendly scans.
  for (size_t v = 0; v < n; ++v) {
    auto* begin = g.adj_.data() + g.offsets_[v];
    auto* end = g.adj_.data() + g.offsets_[v + 1];
    std::sort(begin, end, [](const AdjEntry& a, const AdjEntry& b) {
      if (a.target != b.target) return a.target < b.target;
      if (a.label != b.label) return a.label < b.label;
      return a.reverse < b.reverse;
    });
  }
  return g;
}

}  // namespace wikisearch
