// Graph persistence: a compact binary snapshot format (for pre-built
// datasets) and a TSV triple reader/writer (interchange with RDF-ish dumps).
#pragma once

#include <cstdio>
#include <string>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace wikisearch {

/// Saves the full graph (CSR arrays, dictionaries, weights, sampled average
/// distance) to a binary file. Format: "WSKG" magic + version 1.
Status SaveGraph(const KnowledgeGraph& g, const std::string& path);

/// Loads a graph previously written by SaveGraph.
Result<KnowledgeGraph> LoadGraph(const std::string& path);

/// Stream variants writing/reading the same "WSKG" section at the current
/// file position — used to embed the graph inside a larger snapshot file
/// (live durability layer). SaveGraph/LoadGraph delegate to these.
Status WriteGraphTo(std::FILE* f, const KnowledgeGraph& g);
Result<KnowledgeGraph> ReadGraphFrom(std::FILE* f);

/// Reads a TSV file of triples: `subject<TAB>predicate<TAB>object`, one per
/// line; '#'-prefixed lines are comments. Node/label names are created on
/// first use.
Result<KnowledgeGraph> LoadTriplesTsv(const std::string& path);

/// Writes the graph's triples (original orientation only) as TSV.
Status SaveTriplesTsv(const KnowledgeGraph& g, const std::string& path);

}  // namespace wikisearch
