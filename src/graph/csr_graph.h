// Immutable bi-directed, node-weighted, edge-labeled graph in Compressed
// Sparse Row format — the storage layout the paper mandates (Sec. V-A).
//
// A knowledge base is a set of directed labeled triples (subject, predicate,
// object). To "enhance the connection between nodes" the paper traverses the
// graph bi-directionally, so every triple contributes one adjacency entry in
// each endpoint's list; the entry remembers the original orientation because
// the degree-of-summary node weight (Eq. 2) is computed over *in*-edges only.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace wikisearch {

/// One adjacency entry of the bi-directed CSR.
struct AdjEntry {
  NodeId target;
  LabelId label : 31;
  /// 1 if this entry traverses the triple backwards (i.e. the triple's
  /// direction is target -> source and `target` points *into* the owner).
  uint32_t reverse : 1;
};
static_assert(sizeof(AdjEntry) == 8, "AdjEntry must stay 8 bytes");

class GraphBuilder;
class GraphView;

/// The data graph G(V, E). Immutable after construction; all search state
/// lives outside so many queries can share one graph.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  size_t num_nodes() const { return names_.size(); }
  /// Number of underlying directed triples (each stored twice in the CSR).
  size_t num_triples() const { return adj_.size() / 2; }
  /// Number of CSR adjacency entries (= 2 * num_triples()).
  size_t num_adjacency_entries() const { return adj_.size(); }
  size_t num_labels() const { return label_names_.size(); }

  /// Neighbors of v (both directions), CSR slice.
  std::span<const AdjEntry> Neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v],
            adj_.data() + offsets_[v + 1]};
  }

  /// Total (bi-directed) degree of v.
  size_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// In-degree of v w.r.t. original triple orientation.
  size_t InDegree(NodeId v) const;

  const std::string& NodeName(NodeId v) const { return names_[v]; }
  const std::string& LabelName(LabelId l) const { return label_names_[l]; }

  /// Looks up a node by exact name. Returns kInvalidNode if absent.
  NodeId FindNode(std::string_view name) const;

  /// Normalized degree-of-summary weight of v in [0, 1] (Eq. 2). Weights are
  /// attached once via SetNodeWeights (see core/node_weight.h).
  double NodeWeight(NodeId v) const { return weights_[v]; }
  bool has_weights() const { return !weights_.empty(); }
  const std::vector<double>& node_weights() const { return weights_; }

  /// Attaches per-node weights; must have exactly num_nodes() entries.
  Status SetNodeWeights(std::vector<double> weights);

  /// Estimated average shortest distance A (hops) and the deviation of the
  /// sample, attached by graph/distance_sampler.h. Zero until attached.
  double average_distance() const { return average_distance_; }
  double average_distance_deviation() const { return avg_dist_deviation_; }
  void SetAverageDistance(double mean, double deviation) {
    average_distance_ = mean;
    avg_dist_deviation_ = deviation;
  }

  /// Approximate resident bytes of the CSR arrays, weights and dictionaries
  /// (the paper's "pre-storage", Table IV).
  size_t PreStorageBytes() const;

  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<AdjEntry>& adjacency() const { return adj_; }

 private:
  friend class GraphBuilder;
  friend KnowledgeGraph MaterializeGraph(const GraphView& view);
  friend Status SaveGraph(const KnowledgeGraph& g, const std::string& path);
  friend Result<KnowledgeGraph> LoadGraph(const std::string& path);
  friend Status WriteGraphTo(std::FILE* f, const KnowledgeGraph& g);
  friend Result<KnowledgeGraph> ReadGraphFrom(std::FILE* f);

  std::vector<uint64_t> offsets_;        // size num_nodes()+1
  std::vector<AdjEntry> adj_;            // size 2 * num_triples()
  std::vector<std::string> names_;       // node id -> display name
  std::vector<std::string> label_names_; // label id -> predicate name
  std::unordered_map<std::string, NodeId> name_to_id_;
  std::vector<double> weights_;
  double average_distance_ = 0.0;
  double avg_dist_deviation_ = 0.0;
};

/// Accumulates nodes and directed labeled triples, then emits the bi-directed
/// CSR. Duplicate triples are kept (multi-edges are legal in RDF).
class GraphBuilder {
 public:
  /// Adds (or finds) a node with the given display name; names are unique.
  NodeId AddNode(std::string name);

  /// Adds (or finds) an edge label.
  LabelId AddLabel(std::string name);

  /// Adds the directed triple (src --label--> dst). Ids must exist.
  Status AddEdge(NodeId src, NodeId dst, LabelId label);

  /// Convenience: resolves/creates names and labels, then adds the triple.
  void AddTriple(const std::string& src, const std::string& label,
                 const std::string& dst);

  size_t num_nodes() const { return names_.size(); }
  size_t num_triples() const { return triples_.size(); }

  /// Finalizes into an immutable graph. The builder is consumed.
  KnowledgeGraph Build() &&;

 private:
  struct Triple {
    NodeId src;
    NodeId dst;
    LabelId label;
  };
  std::vector<std::string> names_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, NodeId> name_to_id_;
  std::unordered_map<std::string, LabelId> label_to_id_;
  std::vector<Triple> triples_;
};

}  // namespace wikisearch
