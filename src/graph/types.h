// Fundamental identifier types shared across the graph, text, and core
// libraries.
#pragma once

#include <cstdint>
#include <limits>

namespace wikisearch {

/// Node identifier: dense index in [0, num_nodes).
using NodeId = uint32_t;

/// Edge label identifier: index into the graph's label dictionary.
using LabelId = uint32_t;

/// Keyword identifier: index into a query's keyword list (small, < 256).
using KeywordId = uint8_t;

/// BFS level / hitting level. The paper stores one byte per (node, keyword)
/// hitting level; we match that (levels are bounded by 2A+2 << 255).
using Level = uint8_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();

/// "Infinity" hitting level: node not yet hit by a BFS instance.
inline constexpr Level kLevelInf = std::numeric_limits<Level>::max();

}  // namespace wikisearch
