// ObjectRank (Balmin, Hristidis, Papakonstantinou, VLDB'04) — the
// authority-based baseline from the paper's Related Work: a keyword query
// is answered by the top-k *nodes* ranked by keyword-specific authority
// flow, i.e. personalized PageRank with the keyword's matching nodes as the
// restart (base) set. Unlike the tree/graph models it returns single nodes,
// which is exactly the contrast the paper draws ("the output is top-k
// relevant nodes").
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "text/inverted_index.h"

namespace wikisearch::gst {

struct ObjectRankOptions {
  int top_k = 20;
  /// Damping factor d of the authority-flow random walk.
  double damping = 0.85;
  /// Convergence threshold on the L1 delta between iterations.
  double epsilon = 1e-8;
  size_t max_iterations = 100;
  /// Combine per-keyword authority vectors by product (AND semantics, the
  /// ObjectRank default for multi-keyword queries) or by sum (OR).
  bool and_semantics = true;
};

struct RankedNode {
  NodeId node;
  double score;
};

struct ObjectRankResult {
  std::vector<RankedNode> nodes;  // best first
  double elapsed_ms = 0.0;
  size_t iterations = 0;          // total power iterations across keywords
};

class ObjectRankEngine {
 public:
  ObjectRankEngine(const KnowledgeGraph* graph, const InvertedIndex* index);

  Result<ObjectRankResult> SearchKeywords(
      const std::vector<std::string>& keywords,
      const ObjectRankOptions& opts) const;

  /// One personalized-PageRank vector for a base set (exposed for tests).
  std::vector<double> AuthorityFlow(const std::vector<NodeId>& base,
                                    const ObjectRankOptions& opts,
                                    size_t* iterations) const;

 private:
  const KnowledgeGraph* graph_;
  const InvertedIndex* index_;
};

}  // namespace wikisearch::gst
