// DPBF — best-first dynamic programming for the Group Steiner Tree problem
// (Ding et al., "Finding top-k min-cost connected trees in databases",
// ICDE'07). The paper's Related Work discusses it as the exact GST
// baseline: effective for few keywords but exponential in their number
// (O(3^l n + 2^l ((l + log n) n + m))), hence "not very scalable in terms
// of the number of keywords" — which bench_baselines quantifies.
//
// State: T(v, S) = cheapest tree rooted at v covering keyword subset S.
// Transitions: edge growth  T(u,S) <- T(v,S) + w(u,v)
//              tree merge   T(v,S1|S2) <- T(v,S1) + T(v,S2)
// explored best-first, so the first full-coverage state popped per root is
// optimal for that root; the k best-scoring roots give the top-k trees.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/answer.h"
#include "graph/csr_graph.h"
#include "text/inverted_index.h"

namespace wikisearch::gst {

struct DpbfOptions {
  int top_k = 10;
  /// Hard cap on keywords (state space is 2^l); queries beyond it fail.
  size_t max_keywords = 8;
  /// Safety cap on popped states.
  size_t max_pops = 50'000'000;
  /// Wall-clock budget; exceeded runs return what they have, flagged.
  double time_limit_ms = 10000.0;
};

struct DpbfResult {
  std::vector<AnswerGraph> answers;  // best first; central = tree root
  double elapsed_ms = 0.0;
  bool timed_out = false;
  size_t pops = 0;
  size_t states = 0;  // distinct (v, S) states materialized
};

class DpbfEngine {
 public:
  /// Uses hop count (uniform edge weight 1) as the tree cost, the classic
  /// GST objective on unweighted-edge graphs.
  DpbfEngine(const KnowledgeGraph* graph, const InvertedIndex* index);

  Result<DpbfResult> SearchKeywords(const std::vector<std::string>& keywords,
                                    const DpbfOptions& opts) const;

 private:
  const KnowledgeGraph* graph_;
  const InvertedIndex* index_;
};

}  // namespace wikisearch::gst
