// r-clique keyword search (Kargar & An, "Keyword search in graphs: finding
// r-cliques", VLDB'11) — the graph-shaped alternative the paper's Related
// Work analyzes: an answer is one node per keyword with all pairwise
// shortest distances <= r, ranked by the sum of pairwise distances. We
// implement the paper-cited greedy (2-approximation) seeded from the
// rarest keyword group, then materialize each clique as a tree of shortest
// paths (the authors' own presentation step). The critique reproduced by
// bench_baselines: r must be fixed by a domain expert, and cost explodes
// when keywords match many nodes.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/answer.h"
#include "graph/csr_graph.h"
#include "text/inverted_index.h"

namespace wikisearch::gst {

struct RcliqueOptions {
  int top_k = 10;
  /// Maximum pairwise hop distance within an answer.
  int r = 3;
  /// Seeds drawn from the rarest keyword group (greedy is linear in this).
  size_t max_seeds = 256;
};

struct RcliqueResult {
  std::vector<AnswerGraph> answers;  // best first
  double elapsed_ms = 0.0;
  size_t seeds_tried = 0;
};

class RcliqueEngine {
 public:
  RcliqueEngine(const KnowledgeGraph* graph, const InvertedIndex* index);

  Result<RcliqueResult> SearchKeywords(
      const std::vector<std::string>& keywords,
      const RcliqueOptions& opts) const;

 private:
  const KnowledgeGraph* graph_;
  const InvertedIndex* index_;
};

}  // namespace wikisearch::gst
