#include "gst/dpbf.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"

namespace wikisearch::gst {

namespace {

/// How a DP state was derived, for tree reconstruction.
enum class Kind : uint8_t { kSource, kGrow, kMerge };

struct StateInfo {
  float cost = std::numeric_limits<float>::infinity();
  Kind kind = Kind::kSource;
  NodeId grow_from = kInvalidNode;  // kGrow: child state's node
  uint8_t merge_s1 = 0;             // kMerge: one half's subset
  uint8_t keyword = 0;              // kSource: covered keyword
};

uint64_t Key(NodeId v, uint8_t s) {
  return (static_cast<uint64_t>(v) << 8) | s;
}

struct QueueEntry {
  float cost;
  NodeId v;
  uint8_t s;
  bool operator>(const QueueEntry& o) const { return cost > o.cost; }
};

/// Reconstructs the tree of state (v, s) into the answer.
void Reconstruct(const std::unordered_map<uint64_t, StateInfo>& states,
                 const KnowledgeGraph& g, NodeId v, uint8_t s,
                 AnswerGraph* answer) {
  const StateInfo& info = states.at(Key(v, s));
  answer->nodes.push_back(v);
  switch (info.kind) {
    case Kind::kSource:
      answer->keyword_nodes[info.keyword].push_back(v);
      break;
    case Kind::kGrow:
      AppendEdgesBetween(g, v, info.grow_from, &answer->edges);
      Reconstruct(states, g, info.grow_from, s, answer);
      break;
    case Kind::kMerge:
      Reconstruct(states, g, v, info.merge_s1, answer);
      Reconstruct(states, g, v, static_cast<uint8_t>(s ^ info.merge_s1),
                  answer);
      break;
  }
}

}  // namespace

DpbfEngine::DpbfEngine(const KnowledgeGraph* graph,
                       const InvertedIndex* index)
    : graph_(graph), index_(index) {}

Result<DpbfResult> DpbfEngine::SearchKeywords(
    const std::vector<std::string>& keywords, const DpbfOptions& opts) const {
  if (keywords.empty()) return Status::InvalidArgument("empty keyword query");
  std::vector<std::vector<NodeId>> groups;
  for (const std::string& kw : keywords) {
    std::span<const NodeId> postings = index_->Lookup(kw);
    if (!postings.empty()) {
      groups.emplace_back(postings.begin(), postings.end());
    }
  }
  if (groups.empty()) return Status::NotFound("no keyword matches any node");
  if (groups.size() > opts.max_keywords) {
    return Status::InvalidArgument(
        "DPBF state space is exponential in keywords; got " +
        std::to_string(groups.size()));
  }

  WallTimer timer;
  const KnowledgeGraph& g = *graph_;
  const size_t l = groups.size();
  const uint8_t full = static_cast<uint8_t>((1u << l) - 1);

  std::unordered_map<uint64_t, StateInfo> states;
  std::unordered_set<uint64_t> popped;
  // Popped subsets per node, for merge transitions.
  std::unordered_map<NodeId, std::vector<uint8_t>> popped_subsets;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      pq;

  auto improve = [&](NodeId v, uint8_t s, float cost, StateInfo info) {
    StateInfo& slot = states[Key(v, s)];
    if (cost < slot.cost) {
      info.cost = cost;
      slot = info;
      pq.push(QueueEntry{cost, v, s});
    }
  };

  for (size_t i = 0; i < l; ++i) {
    for (NodeId v : groups[i]) {
      StateInfo info;
      info.kind = Kind::kSource;
      info.keyword = static_cast<uint8_t>(i);
      improve(v, static_cast<uint8_t>(1u << i), 0.0f, info);
    }
  }

  DpbfResult result;
  struct Root {
    NodeId v;
    float cost;
  };
  std::vector<Root> roots;
  std::unordered_set<NodeId> root_seen;

  while (!pq.empty()) {
    QueueEntry top = pq.top();
    pq.pop();
    uint64_t key = Key(top.v, top.s);
    if (popped.count(key) || top.cost > states[key].cost) continue;
    popped.insert(key);
    ++result.pops;
    if ((result.pops & 1023) == 0 && timer.ElapsedMs() > opts.time_limit_ms) {
      result.timed_out = true;
      break;
    }
    if (result.pops > opts.max_pops) {
      result.timed_out = true;
      break;
    }

    if (top.s == full) {
      // Best-first order: the first full state per root is that root's
      // optimal tree; the first overall is the global GST optimum.
      if (root_seen.insert(top.v).second) {
        roots.push_back(Root{top.v, top.cost});
        if (roots.size() >= static_cast<size_t>(opts.top_k)) break;
      }
      continue;
    }

    // Edge growth.
    for (const AdjEntry& e : g.Neighbors(top.v)) {
      StateInfo info;
      info.kind = Kind::kGrow;
      info.grow_from = top.v;
      improve(e.target, top.s, top.cost + 1.0f, info);
    }
    // Merge with previously popped disjoint subsets at the same node.
    auto it = popped_subsets.find(top.v);
    if (it != popped_subsets.end()) {
      for (uint8_t other : it->second) {
        if ((other & top.s) != 0) continue;
        StateInfo info;
        info.kind = Kind::kMerge;
        info.merge_s1 = top.s;
        float other_cost = states[Key(top.v, other)].cost;
        improve(top.v, static_cast<uint8_t>(top.s | other),
                top.cost + other_cost, info);
      }
    }
    popped_subsets[top.v].push_back(top.s);
  }

  result.states = states.size();
  for (const Root& root : roots) {
    AnswerGraph a;
    a.central = root.v;
    a.score = root.cost;
    a.depth = static_cast<int>(root.cost);  // unit edges: cost == tree edges
    a.keyword_nodes.assign(l, {});
    Reconstruct(states, g, root.v, full, &a);
    std::sort(a.nodes.begin(), a.nodes.end());
    a.nodes.erase(std::unique(a.nodes.begin(), a.nodes.end()), a.nodes.end());
    std::sort(a.edges.begin(), a.edges.end());
    a.edges.erase(std::unique(a.edges.begin(), a.edges.end()), a.edges.end());
    for (auto& kn : a.keyword_nodes) {
      std::sort(kn.begin(), kn.end());
      kn.erase(std::unique(kn.begin(), kn.end()), kn.end());
    }
    result.answers.push_back(std::move(a));
  }
  result.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace wikisearch::gst
