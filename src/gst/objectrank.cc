#include "gst/objectrank.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"

namespace wikisearch::gst {

ObjectRankEngine::ObjectRankEngine(const KnowledgeGraph* graph,
                                   const InvertedIndex* index)
    : graph_(graph), index_(index) {}

std::vector<double> ObjectRankEngine::AuthorityFlow(
    const std::vector<NodeId>& base, const ObjectRankOptions& opts,
    size_t* iterations) const {
  const KnowledgeGraph& g = *graph_;
  const size_t n = g.num_nodes();
  std::vector<double> rank(n, 0.0), next(n, 0.0);
  std::vector<double> restart(n, 0.0);
  for (NodeId v : base) restart[v] = 1.0 / static_cast<double>(base.size());
  rank = restart;

  for (size_t it = 0; it < opts.max_iterations; ++it) {
    if (iterations != nullptr) ++*iterations;
    std::fill(next.begin(), next.end(), 0.0);
    // Push flow along every (bi-directed) adjacency entry, split evenly —
    // the ObjectRank authority-transfer model with uniform edge weights.
    for (NodeId v = 0; v < n; ++v) {
      double r = rank[v];
      if (r == 0.0) continue;
      size_t deg = g.Degree(v);
      if (deg == 0) continue;
      double share = opts.damping * r / static_cast<double>(deg);
      for (const AdjEntry& e : g.Neighbors(v)) next[e.target] += share;
    }
    double delta = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      next[v] += (1.0 - opts.damping) * restart[v];
      delta += std::fabs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < opts.epsilon) break;
  }
  return rank;
}

Result<ObjectRankResult> ObjectRankEngine::SearchKeywords(
    const std::vector<std::string>& keywords,
    const ObjectRankOptions& opts) const {
  if (keywords.empty()) return Status::InvalidArgument("empty keyword query");
  WallTimer timer;
  std::vector<std::vector<NodeId>> groups;
  for (const std::string& kw : keywords) {
    std::span<const NodeId> postings = index_->Lookup(kw);
    if (!postings.empty()) {
      groups.emplace_back(postings.begin(), postings.end());
    }
  }
  if (groups.empty()) return Status::NotFound("no keyword matches any node");

  ObjectRankResult result;
  const size_t n = graph_->num_nodes();
  std::vector<double> combined(n, opts.and_semantics ? 1.0 : 0.0);
  for (const auto& base : groups) {
    std::vector<double> rank = AuthorityFlow(base, opts, &result.iterations);
    for (NodeId v = 0; v < n; ++v) {
      if (opts.and_semantics) {
        combined[v] *= rank[v];
      } else {
        combined[v] += rank[v];
      }
    }
  }
  std::vector<RankedNode> ranked;
  ranked.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (combined[v] > 0.0) ranked.push_back(RankedNode{v, combined[v]});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedNode& a, const RankedNode& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.node < b.node;
            });
  if (ranked.size() > static_cast<size_t>(opts.top_k)) {
    ranked.resize(static_cast<size_t>(opts.top_k));
  }
  result.nodes = std::move(ranked);
  result.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace wikisearch::gst
