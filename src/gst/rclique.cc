#include "gst/rclique.h"

#include <algorithm>
#include <unordered_map>

#include "common/timer.h"

namespace wikisearch::gst {

namespace {

/// Hop distances from `source` out to `radius`, as a sparse map.
std::unordered_map<NodeId, int> BoundedBfs(const KnowledgeGraph& g,
                                           NodeId source, int radius) {
  std::unordered_map<NodeId, int> dist;
  dist.emplace(source, 0);
  std::vector<NodeId> frontier{source}, next;
  for (int level = 1; level <= radius && !frontier.empty(); ++level) {
    next.clear();
    for (NodeId v : frontier) {
      for (const AdjEntry& e : g.Neighbors(v)) {
        if (dist.emplace(e.target, level).second) next.push_back(e.target);
      }
    }
    frontier.swap(next);
  }
  return dist;
}

/// Appends the reverse of one shortest path from `from` towards `to`
/// (walking the `to`-rooted distance map downhill) into the answer.
void MaterializePath(const KnowledgeGraph& g,
                     const std::unordered_map<NodeId, int>& dist_from_to,
                     NodeId from, AnswerGraph* answer) {
  NodeId cur = from;
  auto it = dist_from_to.find(cur);
  if (it == dist_from_to.end()) return;
  int d = it->second;
  while (d > 0) {
    for (const AdjEntry& e : g.Neighbors(cur)) {
      auto jt = dist_from_to.find(e.target);
      if (jt != dist_from_to.end() && jt->second == d - 1) {
        AppendEdgesBetween(g, cur, e.target, &answer->edges);
        answer->nodes.push_back(e.target);
        cur = e.target;
        d = jt->second;
        break;
      }
    }
  }
}

}  // namespace

RcliqueEngine::RcliqueEngine(const KnowledgeGraph* graph,
                             const InvertedIndex* index)
    : graph_(graph), index_(index) {}

Result<RcliqueResult> RcliqueEngine::SearchKeywords(
    const std::vector<std::string>& keywords,
    const RcliqueOptions& opts) const {
  if (keywords.empty()) return Status::InvalidArgument("empty keyword query");
  const KnowledgeGraph& g = *graph_;
  std::vector<std::vector<NodeId>> groups;
  for (const std::string& kw : keywords) {
    std::span<const NodeId> postings = index_->Lookup(kw);
    if (!postings.empty()) {
      groups.emplace_back(postings.begin(), postings.end());
    }
  }
  if (groups.empty()) return Status::NotFound("no keyword matches any node");

  WallTimer timer;
  const size_t l = groups.size();
  // Seed from the rarest group (fewest candidates).
  size_t seed_group = 0;
  for (size_t i = 1; i < l; ++i) {
    if (groups[i].size() < groups[seed_group].size()) seed_group = i;
  }
  // Membership sets for fast "is candidate of keyword i" checks.
  std::vector<std::unordered_map<NodeId, char>> member(l);
  for (size_t i = 0; i < l; ++i) {
    for (NodeId v : groups[i]) member[i].emplace(v, 1);
  }

  RcliqueResult result;
  struct Clique {
    std::vector<NodeId> nodes;  // one per keyword (seed group order kept)
    int weight;                 // sum of pairwise distances
  };
  std::vector<Clique> cliques;

  size_t seeds = std::min(groups[seed_group].size(), opts.max_seeds);
  for (size_t s = 0; s < seeds; ++s) {
    NodeId seed = groups[seed_group][s];
    ++result.seeds_tried;
    auto seed_dist = BoundedBfs(g, seed, opts.r);

    // Greedy: per remaining keyword pick the candidate nearest to the seed
    // (the VLDB'11 2-approximation), then verify all pairwise distances.
    Clique clique;
    clique.nodes.assign(l, kInvalidNode);
    clique.nodes[seed_group] = seed;
    bool feasible = true;
    for (size_t i = 0; i < l && feasible; ++i) {
      if (i == seed_group) continue;
      NodeId best = kInvalidNode;
      int best_d = opts.r + 1;
      for (const auto& [v, d] : seed_dist) {
        if (d < best_d && member[i].count(v)) {
          best = v;
          best_d = d;
        }
      }
      if (best == kInvalidNode) {
        feasible = false;
      } else {
        clique.nodes[i] = best;
      }
    }
    if (!feasible) continue;

    // Exact pairwise verification + weight.
    std::vector<std::unordered_map<NodeId, int>> dists(l);
    for (size_t i = 0; i < l; ++i) {
      dists[i] = BoundedBfs(g, clique.nodes[i], opts.r);
    }
    int weight = 0;
    for (size_t i = 0; i < l && feasible; ++i) {
      for (size_t j = i + 1; j < l; ++j) {
        auto it = dists[i].find(clique.nodes[j]);
        if (it == dists[i].end()) {
          feasible = false;
          break;
        }
        weight += it->second;
      }
    }
    if (!feasible) continue;
    clique.weight = weight;
    cliques.push_back(std::move(clique));
  }

  std::sort(cliques.begin(), cliques.end(),
            [](const Clique& a, const Clique& b) {
              if (a.weight != b.weight) return a.weight < b.weight;
              return a.nodes < b.nodes;
            });
  // Distinct node sets only.
  cliques.erase(std::unique(cliques.begin(), cliques.end(),
                            [](const Clique& a, const Clique& b) {
                              return a.nodes == b.nodes;
                            }),
                cliques.end());
  if (cliques.size() > static_cast<size_t>(opts.top_k)) {
    cliques.resize(static_cast<size_t>(opts.top_k));
  }

  // Materialize: tree of shortest paths from the seed-group member to every
  // other member (the authors' Steiner-tree presentation of an r-clique).
  for (const Clique& c : cliques) {
    AnswerGraph a;
    a.central = c.nodes[seed_group];
    a.score = c.weight;
    a.keyword_nodes.assign(l, {});
    int depth = 0;
    auto root_dist = BoundedBfs(g, a.central, opts.r);
    for (size_t i = 0; i < l; ++i) {
      a.keyword_nodes[i].push_back(c.nodes[i]);
      a.nodes.push_back(c.nodes[i]);
      auto it = root_dist.find(c.nodes[i]);
      if (it != root_dist.end()) depth = std::max(depth, it->second);
      MaterializePath(g, root_dist, c.nodes[i], &a);
    }
    a.depth = depth;
    std::sort(a.nodes.begin(), a.nodes.end());
    a.nodes.erase(std::unique(a.nodes.begin(), a.nodes.end()), a.nodes.end());
    std::sort(a.edges.begin(), a.edges.end());
    a.edges.erase(std::unique(a.edges.begin(), a.edges.end()), a.edges.end());
    for (auto& kn : a.keyword_nodes) {
      std::sort(kn.begin(), kn.end());
      kn.erase(std::unique(kn.begin(), kn.end()), kn.end());
    }
    result.answers.push_back(std::move(a));
  }
  result.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace wikisearch::gst
