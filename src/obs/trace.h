// Per-query span tracing (the other half of DESIGN.md §8).
//
// A TraceContext records the nested stage spans of one query — index lookup,
// activation mapping, each bottom-up level (enqueue / identify / expand),
// central-node identification, extraction, ranking — with steady-clock
// timestamps relative to the context's creation. Spans are strictly nested
// and recorded in start order, so the vector doubles as a pre-order tree
// walk; ToChromeJson exports them as Chrome `trace_event` complete events
// (load the output in chrome://tracing or Perfetto).
//
// ScopedStage is the single instrumentation primitive the engine uses: one
// clock-read pair per stage, whose elapsed value is written to BOTH the
// PhaseTimings accumulator and the span. Span sums and PhaseTimings are
// therefore identical doubles by construction — bench JSON derived from
// spans and server metrics derived from timings cannot disagree (the
// property tests/trace_test.cc asserts as exact FP equality).
//
// Thread model: a TraceContext belongs to one query and is mutated only by
// the query's coordinating thread (engine stages open/close spans outside
// the ParallelFor bodies). It is NOT thread-safe; never share one across
// concurrent queries.
//
// Span naming scheme (DESIGN.md §8): "<stage>" or "<stage>/<substage>",
// engine-agnostic — the dynamic engine emits the same names as the pooled
// engines so tooling never branches on engine kind:
//
//   search                      whole query (root)
//   search/index_lookup         posting-list resolution
//   search/activation           activation map + query context
//   bottomup                    stage 1
//   bottomup/init               state init / keyword seeding
//   bottomup/level              one fully completed BFS level
//   bottomup/level(partial)     a level abandoned early (deadline, top-k
//                               reached, cancellation, frontier exhausted);
//                               count of "bottomup/level" spans ==
//                               SearchStats::levels_completed
//   bottomup/enqueue            frontier enqueue of one level
//   bottomup/identify           central-node identification of one level
//   bottomup/expand             expansion of one level
//   topdown                     stage 2
//   topdown/extract             central-graph extraction / materialization
//   topdown/rank                scoring, dedup and top-k selection
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace wikisearch::obs {

class TraceContext {
 public:
  using Clock = std::chrono::steady_clock;

  struct Span {
    std::string name;
    double start_ms = 0.0;  // relative to context creation
    double dur_ms = 0.0;
    int depth = 0;          // 0 = root; children have parent depth + 1
  };

  TraceContext() : origin_(Clock::now()) {}
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Opens a span as a child of the innermost open span. Returns its id.
  size_t OpenSpan(const char* name);

  /// Closes span `id`, which must be the innermost open span (strict
  /// nesting is enforced). Returns the span's duration in ms — the same
  /// double stored in the span.
  double CloseSpan(size_t id);

  /// Renames an open or closed span (used to mark abandoned levels).
  void RenameSpan(size_t id, const char* name);

  /// All spans opened so far, in start order (pre-order of the span tree).
  const std::vector<Span>& spans() const { return spans_; }

  /// Number of currently open spans.
  size_t open_depth() const { return stack_.size(); }

  /// Sum of durations of all closed spans named `name`, in the order they
  /// were opened (the same accumulation order PhaseTimings uses).
  double SumDurationsMs(std::string_view name) const;

  /// Number of spans named `name`.
  size_t CountSpans(std::string_view name) const;

  /// Chrome trace_event JSON: {"traceEvents": [{"ph":"X", ...}, ...]}.
  /// Timestamps and durations are microseconds, as the format requires.
  std::string ToChromeJson() const;

  /// Drops all spans; the time origin is preserved.
  void Clear();

 private:
  friend class ScopedStage;

  Clock::time_point origin_;
  std::vector<Span> spans_;
  std::vector<Clock::time_point> starts_;  // parallel to spans_
  std::vector<size_t> stack_;              // ids of open spans, innermost last
};

/// RAII stage instrumentation: on destruction the elapsed time (one
/// steady-clock read pair) is added to `*acc` (when non-null) and recorded
/// as a span in `trace` (when non-null) — the identical double in both
/// sinks. With trace == nullptr this is exactly the WallTimer pattern it
/// replaced: two clock reads and one add, no allocation.
class ScopedStage {
 public:
  ScopedStage(TraceContext* trace, const char* name, double* acc = nullptr)
      : trace_(trace), acc_(acc) {
    if (trace_ != nullptr) {
      id_ = trace_->OpenSpan(name);
    } else if (acc_ != nullptr) {
      start_ = TraceContext::Clock::now();
    }
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  /// Renames the span (no-op without a trace). Marks abandoned levels.
  void Rename(const char* name) {
    if (trace_ != nullptr) trace_->RenameSpan(id_, name);
  }

  ~ScopedStage() {
    double dur_ms;
    if (trace_ != nullptr) {
      dur_ms = trace_->CloseSpan(id_);
    } else if (acc_ != nullptr) {
      dur_ms = std::chrono::duration<double, std::milli>(
                   TraceContext::Clock::now() - start_)
                   .count();
    } else {
      return;
    }
    if (acc_ != nullptr) *acc_ += dur_ms;
  }

 private:
  TraceContext* trace_;
  double* acc_;
  size_t id_ = 0;
  TraceContext::Clock::time_point start_{};
};

}  // namespace wikisearch::obs
