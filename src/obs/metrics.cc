#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/logging.h"

namespace wikisearch::obs {

size_t ThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed) &
      static_cast<uint32_t>(kShards - 1);
  return slot;
}

// ---------------------------------------------------------------------------
// Histogram

size_t Histogram::BucketIndex(double v) {
  // Non-finite and sub-range values land in the underflow bucket; the
  // comparison is written so NaN fails it.
  if (!(v >= std::ldexp(1.0, kMinExp))) return 0;
  if (v >= std::ldexp(1.0, kMaxExp)) return kNumBuckets - 1;
  int e = std::ilogb(v);  // v in [2^e, 2^(e+1))
  // Linear sub-bucket inside the octave: v * 2^-e is in [1, 2).
  int sub = static_cast<int>((std::ldexp(v, -e) - 1.0) * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // guard FP edge at 2^(e+1)
  return 1 + static_cast<size_t>(e - kMinExp) * kSubBuckets +
         static_cast<size_t>(sub);
}

double Histogram::BucketLowerBound(size_t idx) {
  if (idx == 0) return 0.0;
  if (idx >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExp);
  size_t k = idx - 1;
  int e = kMinExp + static_cast<int>(k / kSubBuckets);
  int sub = static_cast<int>(k % kSubBuckets);
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, e);
}

double Histogram::BucketUpperBound(size_t idx) {
  if (idx == 0) return std::ldexp(1.0, kMinExp);
  if (idx >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return BucketLowerBound(idx + 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the order statistic ceil(q * count), matching the empirical
  // quantile v_sorted[ceil(q*N) - 1] the tests compute exactly.
  uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (cum + buckets[b] >= target) {
      double lo = Histogram::BucketLowerBound(b);
      double hi = Histogram::BucketUpperBound(b);
      if (!std::isfinite(hi)) return lo;  // overflow bucket: no upper bound
      double frac = static_cast<double>(target - cum) /
                    static_cast<double>(buckets[b]);
      return lo + (hi - lo) * frac;
    }
    cum += buckets[b];
  }
  return Histogram::BucketLowerBound(buckets.size() - 1);
}

// ---------------------------------------------------------------------------
// Registry

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* g = new MetricRegistry();
  return *g;
}

MetricRegistry::Entry* MetricRegistry::FindOrCreate(std::string_view name,
                                                    Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    WS_CHECK(it->second.kind == kind);  // one name, one metric type
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  return FindOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  return FindOrCreate(name, Kind::kGauge)->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name) {
  return FindOrCreate(name, Kind::kHistogram)->histogram.get();
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        e.counter->Reset();
        break;
      case Kind::kGauge:
        e.gauge->Reset();
        break;
      case Kind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

namespace {

/// Splits `name` into the family (metric name proper) and its label block
/// without braces: `a_ms{x="1"}` -> ("a_ms", `x="1"`).
std::pair<std::string_view, std::string_view> SplitLabels(
    std::string_view name) {
  size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {name.substr(0, brace), labels};
}

std::string FmtDouble(double v) {
  char buf[64];
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  // %.17g round-trips every finite double, so scraped values compare equal
  // to the in-process aggregates (the exactness the tests assert).
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// `family_bucket{<labels,>le="x"}` — merges the histogram's own labels with
/// the bucket boundary label.
std::string BucketSampleName(std::string_view family,
                             std::string_view labels, double le) {
  std::string out(family);
  out += "_bucket{";
  if (!labels.empty()) {
    out += labels;
    out += ',';
  }
  out += "le=\"";
  out += FmtDouble(le);
  out += "\"}";
  return out;
}

std::string SuffixedName(std::string_view family, std::string_view labels,
                         const char* suffix) {
  std::string out(family);
  out += suffix;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  return out;
}

}  // namespace

std::string MetricRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_family;
  for (const auto& [name, e] : entries_) {
    auto [family, labels] = SplitLabels(name);
    if (family != last_family) {
      out += "# TYPE ";
      out += family;
      switch (e.kind) {
        case Kind::kCounter:
          out += " counter\n";
          break;
        case Kind::kGauge:
          out += " gauge\n";
          break;
        case Kind::kHistogram:
          out += " histogram\n";
          break;
      }
      last_family = std::string(family);
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += name;
        out += ' ';
        out += std::to_string(e.counter->Value());
        out += '\n';
        break;
      case Kind::kGauge:
        out += name;
        out += ' ';
        out += FmtDouble(e.gauge->Value());
        out += '\n';
        break;
      case Kind::kHistogram: {
        HistogramSnapshot snap = e.histogram->Snapshot();
        uint64_t cum = 0;
        for (size_t b = 0; b < snap.buckets.size(); ++b) {
          if (snap.buckets[b] == 0) continue;
          cum += snap.buckets[b];
          out += BucketSampleName(family, labels,
                                  Histogram::BucketUpperBound(b));
          out += ' ';
          out += std::to_string(cum);
          out += '\n';
        }
        out += BucketSampleName(family, labels,
                                std::numeric_limits<double>::infinity());
        out += ' ';
        out += std::to_string(snap.count);
        out += '\n';
        out += SuffixedName(family, labels, "_sum");
        out += ' ';
        out += FmtDouble(snap.sum);
        out += '\n';
        out += SuffixedName(family, labels, "_count");
        out += ' ';
        out += std::to_string(snap.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::optional<double> FindMetricValue(std::string_view exposition,
                                      std::string_view metric) {
  size_t pos = 0;
  while (pos < exposition.size()) {
    size_t eol = exposition.find('\n', pos);
    if (eol == std::string_view::npos) eol = exposition.size();
    std::string_view line = exposition.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    // Sample name ends at the space before the value. Label values in this
    // exposition never contain spaces, so this split is unambiguous.
    size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos) continue;
    if (line.substr(0, sp) != metric) continue;
    std::string value(line.substr(sp + 1));
    return std::strtod(value.c_str(), nullptr);
  }
  return std::nullopt;
}

}  // namespace wikisearch::obs
