// Lock-free metrics registry (the observability substrate of DESIGN.md §8).
//
// Named counters, gauges and log-bucketed histograms. The hot path — an
// increment or an observation from a search worker — is one relaxed atomic
// add into a per-thread-sharded cache-line-padded cell; aggregation across
// shards happens only on scrape. Aggregated reads are exact whenever the
// writers are quiescent (the situation every test arranges) and otherwise
// reflect some interleaving of the in-flight increments, exactly like a
// single relaxed atomic would.
//
// Naming scheme (see DESIGN.md §8): Prometheus conventions, `ws_` prefix,
// `_total` suffix for counters, unit suffix (`_ms`, `_us`) for histograms
// and gauges, labels inline in the metric name:
//
//   ws_search_total{engine="CPU-Par"}
//   ws_search_latency_ms{engine="CPU-Par"}
//   ws_search_stage_ms{stage="expansion"}
//   ws_server_shed_total
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wikisearch::obs {

/// Number of per-thread shards in every counter/histogram (power of two).
/// Threads hash onto shards by a process-wide thread ordinal, so up to
/// kShards writers never contend on a cell.
inline constexpr size_t kShards = 8;

/// Stable shard slot of the calling thread in [0, kShards).
size_t ThreadShard();

namespace internal {
/// Adds `v` to an atomic double with a relaxed CAS loop (C++17-compatible
/// stand-in for atomic<double>::fetch_add).
inline void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
}  // namespace internal

/// Monotonic counter. Inc is one relaxed fetch_add on the caller's shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t delta = 1) {
    cells_[ThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum over all shards.
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Raises the counter to `target` (no-op if already past it). Bridges
  /// pre-existing monotonic sources (QueryCache hit counts, HttpServer
  /// request counts) into the registry at scrape time without double
  /// bookkeeping; the source stays authoritative. Serialized internally so
  /// concurrent scrapes cannot overshoot.
  void AdvanceTo(uint64_t target) {
    std::lock_guard<std::mutex> lock(advance_mu_);
    uint64_t cur = Value();
    if (target > cur) {
      cells_[0].v.fetch_add(target - cur, std::memory_order_relaxed);
    }
  }

  void Reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_;
  std::mutex advance_mu_;  // AdvanceTo only; Inc never touches it
};

/// Last-write-wins instantaneous value (queue depth, in-flight, threads).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) { internal::AtomicAddDouble(v_, d); }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Aggregated histogram state captured at one scrape.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  std::vector<uint64_t> buckets;  // size Histogram::kNumBuckets

  /// Quantile estimate by linear interpolation inside the bucket holding
  /// rank ceil(q * count). The estimate lies in the same bucket as the true
  /// order statistic, so its relative error is at most the bucket's relative
  /// width: Histogram::kMaxRelativeError for in-range values (the guarantee
  /// tests/metrics_test.cc proves against exact sorted quantiles).
  double Quantile(double q) const;
};

/// Log-linear bucketed histogram (HdrHistogram-style): each power-of-two
/// octave of the value range is divided into kSubBuckets equal-width
/// buckets, so every bucket's width is at most 1/kSubBuckets of its lower
/// bound. Values are doubles in the caller's unit (milliseconds for all
/// latency metrics). Observe is one relaxed add per shard cell plus a
/// branch-free bucket computation from the value's exponent.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -20;  // lowest octave: [2^-20, 2^-19)
  static constexpr int kMaxExp = 30;   // overflow at 2^30 (~1e9 ms)
  /// Bucket 0 catches v < 2^kMinExp (and non-finite garbage); the last
  /// bucket catches v >= 2^kMaxExp.
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;
  /// Documented quantile error bound for values inside
  /// [2^kMinExp, 2^kMaxExp): bucket width / bucket lower bound <=
  /// 1/kSubBuckets.
  static constexpr double kMaxRelativeError = 1.0 / kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) {
    Shard& s = shards_[ThreadShard()];
    s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAddDouble(s.sum, v);
  }

  /// Index of the bucket that `v` falls into.
  static size_t BucketIndex(double v);
  /// Inclusive lower / exclusive upper value bound of bucket `idx`.
  static double BucketLowerBound(size_t idx);
  static double BucketUpperBound(size_t idx);

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kShards> shards_;
};

/// Name-keyed registry. Registration (GetX) takes a mutex and returns a
/// stable pointer — resolve once per query or per scope, never per inner
/// loop iteration; the returned objects are the lock-free hot path.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Process-wide default registry (what SearchOptions points at unless a
  /// test or service supplies its own).
  static MetricRegistry& Global();

  /// Find-or-create; aborts if `name` is already registered as a different
  /// metric type. Labels are part of the name: `ws_x_total{engine="seq"}`.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Prometheus text exposition (version 0.0.4): families sorted by name,
  /// one `# TYPE` line per family, histograms rendered as cumulative
  /// `_bucket{le="..."}` series (non-empty buckets plus `+Inf`) with `_sum`
  /// and `_count`.
  std::string RenderPrometheus() const;

  /// Zeroes every registered metric (registrations survive). Test aid.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* FindOrCreate(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  // std::map keeps the exposition deterministically sorted.
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Scrape helper (used by tests and ops tooling): the value of the sample
/// whose name (including any label set) matches `metric` exactly, or
/// nullopt. `exposition` is RenderPrometheus output.
std::optional<double> FindMetricValue(std::string_view exposition,
                                      std::string_view metric);

}  // namespace wikisearch::obs
