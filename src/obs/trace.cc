#include "obs/trace.h"

#include "common/json.h"
#include "common/logging.h"

namespace wikisearch::obs {

size_t TraceContext::OpenSpan(const char* name) {
  Clock::time_point now = Clock::now();
  size_t id = spans_.size();
  Span span;
  span.name = name;
  span.start_ms =
      std::chrono::duration<double, std::milli>(now - origin_).count();
  span.depth = static_cast<int>(stack_.size());
  spans_.push_back(std::move(span));
  starts_.push_back(now);
  stack_.push_back(id);
  return id;
}

double TraceContext::CloseSpan(size_t id) {
  WS_CHECK(!stack_.empty() && stack_.back() == id);  // strict nesting
  stack_.pop_back();
  double dur_ms = std::chrono::duration<double, std::milli>(
                      Clock::now() - starts_[id])
                      .count();
  spans_[id].dur_ms = dur_ms;
  return dur_ms;
}

void TraceContext::RenameSpan(size_t id, const char* name) {
  WS_CHECK(id < spans_.size());
  spans_[id].name = name;
}

double TraceContext::SumDurationsMs(std::string_view name) const {
  double sum = 0.0;
  for (const Span& s : spans_) {
    if (s.name == name) sum += s.dur_ms;
  }
  return sum;
}

size_t TraceContext::CountSpans(std::string_view name) const {
  size_t n = 0;
  for (const Span& s : spans_) {
    if (s.name == name) ++n;
  }
  return n;
}

std::string TraceContext::ToChromeJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const Span& s : spans_) {
    w.BeginObject();
    w.Key("name");
    w.String(s.name);
    w.Key("ph");
    w.String("X");
    w.Key("ts");
    w.Double(s.start_ms * 1000.0);  // trace_event wants microseconds
    w.Key("dur");
    w.Double(s.dur_ms * 1000.0);
    w.Key("pid");
    w.Int(0);
    w.Key("tid");
    w.Int(0);
    w.Key("args");
    w.BeginObject();
    w.Key("depth");
    w.Int(s.depth);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

void TraceContext::Clear() {
  WS_CHECK(stack_.empty());  // never drop open spans
  spans_.clear();
  starts_.clear();
}

}  // namespace wikisearch::obs
