// BANKS-style keyword search baselines, implemented from the published
// algorithm descriptions:
//
//  * BANKS-I  (Aditya et al., VLDB'02): backward search — one shortest-path
//    iterator per keyword group expanding backwards from the keyword nodes;
//    a node settled by every group becomes an answer root, scored by the sum
//    of its root-to-leaf path costs.
//  * BANKS-II (Kacholia et al., VLDB'05): bidirectional expansion — node
//    expansion is prioritized by *spreading activation* (decayed by degree,
//    so high-degree hubs are deferred) rather than by distance, plus forward
//    testing. Because priority order is not distance order, improved
//    distances must be re-broadcast through already-expanded nodes — the
//    recursive-update cost the paper identifies as one of BANKS-II's three
//    bottlenecks (Sec. VI, Exp-1).
//
// Both return rooted trees converted into AnswerGraph so that the
// effectiveness harness scores all systems uniformly.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/answer.h"
#include "graph/csr_graph.h"
#include "text/inverted_index.h"

namespace wikisearch::banks {

enum class BanksVariant {
  kBanks1,  // backward search
  kBanks2,  // bidirectional expansion with spreading activation
};

struct BanksOptions {
  int top_k = 20;
  BanksVariant variant = BanksVariant::kBanks2;
  /// Wall-clock budget per query; the paper caps runs at 500 s and records
  /// the cap as the time. Scaled down for bench runs.
  double time_limit_ms = 2000.0;
  /// Safety cap on priority-queue pops.
  size_t max_pops = 200'000'000;
  /// BANKS-II activation decay mu in (0, 1).
  double activation_decay = 0.5;
};

struct BanksResult {
  std::vector<AnswerGraph> answers;  // best first; central = answer root
  double elapsed_ms = 0.0;
  bool timed_out = false;
  size_t pops = 0;  // total settle operations (work measure)
};

class BanksEngine {
 public:
  /// Both pointers must outlive the engine.
  BanksEngine(const KnowledgeGraph* graph, const InvertedIndex* index);

  /// Searches with pre-split raw keywords (analyzed via the index).
  Result<BanksResult> SearchKeywords(const std::vector<std::string>& keywords,
                                     const BanksOptions& opts) const;

 private:
  const KnowledgeGraph* graph_;
  const InvertedIndex* index_;
};

/// Edge traversal cost used by both variants: entering node y costs
/// 1 + log2(1 + indeg(y)), penalizing high-in-degree hubs (the BANKS edge
/// weight model).
double BanksEdgeCost(const KnowledgeGraph& g, NodeId into);

}  // namespace wikisearch::banks
