#include "banks/banks.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "common/timer.h"

namespace wikisearch::banks {

namespace {

constexpr float kInfDist = std::numeric_limits<float>::infinity();

/// Per-query distance/parent grid shared by both variants: one shortest-path
/// instance per keyword group over the bi-directed graph.
struct Grid {
  Grid(size_t n, size_t q)
      : n(n),
        q(q),
        dist(n * q, kInfDist),
        parent(n * q, kInvalidNode),
        cover(n, 0) {}

  size_t n, q;
  std::vector<float> dist;
  std::vector<NodeId> parent;
  /// Number of instances that have assigned a finite distance to the node.
  std::vector<uint8_t> cover;

  float& D(size_t i, NodeId v) { return dist[i * n + v]; }
  NodeId& P(size_t i, NodeId v) { return parent[i * n + v]; }
};

/// Builds the rooted answer tree for `root` by following parent chains to
/// each keyword group's nearest leaf (classic BANKS answer semantics:
/// exactly one leaf per keyword).
AnswerGraph BuildTree(const KnowledgeGraph& g, Grid& grid, NodeId root) {
  AnswerGraph answer;
  answer.central = root;
  answer.keyword_nodes.assign(grid.q, {});
  std::vector<NodeId> nodes{root};
  std::vector<std::pair<NodeId, NodeId>> pairs;
  double score = 0.0;
  int depth = 0;
  for (size_t i = 0; i < grid.q; ++i) {
    score += grid.D(i, root);
    NodeId v = root;
    int hops = 0;
    while (grid.P(i, v) != kInvalidNode) {
      NodeId p = grid.P(i, v);
      pairs.emplace_back(p, v);
      nodes.push_back(p);
      v = p;
      ++hops;
    }
    answer.keyword_nodes[i].push_back(v);  // the leaf covering keyword i
    depth = std::max(depth, hops);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  answer.nodes = std::move(nodes);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [u, v] : pairs) AppendEdgesBetween(g, u, v, &answer.edges);
  std::sort(answer.edges.begin(), answer.edges.end());
  answer.edges.erase(std::unique(answer.edges.begin(), answer.edges.end()),
                     answer.edges.end());
  for (auto& kn : answer.keyword_nodes) {
    std::sort(kn.begin(), kn.end());
  }
  answer.depth = depth;
  // BANKS scoring as described in the paper's Exp-1 discussion: the sum of
  // root-to-leaf path costs; lower is better.
  answer.score = score;
  return answer;
}

struct Candidate {
  NodeId root;
  double score;
};

std::vector<AnswerGraph> FinishAnswers(const KnowledgeGraph& g, Grid& grid,
                                       std::vector<Candidate> candidates,
                                       int top_k) {
  // Re-score from the final distance grid (BANKS-II distances may have
  // improved after emission), then keep the best k roots.
  for (Candidate& c : candidates) {
    double s = 0.0;
    for (size_t i = 0; i < grid.q; ++i) s += grid.D(i, c.root);
    c.score = s;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.root < b.root;
            });
  if (candidates.size() > static_cast<size_t>(top_k)) {
    candidates.resize(static_cast<size_t>(top_k));
  }
  std::vector<AnswerGraph> answers;
  answers.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    answers.push_back(BuildTree(g, grid, c.root));
  }
  return answers;
}

// --------------------------- BANKS-I ---------------------------------------

BanksResult RunBanks1(const KnowledgeGraph& g,
                      const std::vector<std::vector<NodeId>>& groups,
                      const std::vector<float>& cost,
                      const BanksOptions& opts) {
  const size_t n = g.num_nodes();
  const size_t q = groups.size();
  Grid grid(n, q);
  BanksResult result;
  WallTimer timer;

  using Entry = std::pair<float, NodeId>;  // (dist, node), min-heap
  std::vector<std::priority_queue<Entry, std::vector<Entry>,
                                  std::greater<Entry>>>
      pq(q);
  std::vector<std::vector<uint8_t>> settled(q,
                                            std::vector<uint8_t>(n, 0));
  for (size_t i = 0; i < q; ++i) {
    for (NodeId v : groups[i]) {
      grid.D(i, v) = 0.0f;
      pq[i].emplace(0.0f, v);
    }
  }

  std::vector<Candidate> candidates;
  std::vector<uint8_t> emitted(n, 0);
  double kth_best = std::numeric_limits<double>::infinity();

  auto update_kth = [&] {
    if (candidates.size() < static_cast<size_t>(opts.top_k)) return;
    std::nth_element(candidates.begin(),
                     candidates.begin() + (opts.top_k - 1), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.score < b.score;
                     });
    kth_best = candidates[static_cast<size_t>(opts.top_k - 1)].score;
  };

  while (true) {
    // Pick the iterator with the globally smallest tentative distance
    // (single-iterator-pool backward search).
    size_t best_i = q;
    float best_d = kInfDist;
    double frontier_min = std::numeric_limits<double>::infinity();
    bool any = false;
    for (size_t i = 0; i < q; ++i) {
      // Drop stale entries.
      while (!pq[i].empty()) {
        auto [d, v] = pq[i].top();
        if (settled[i][v] || d > grid.D(i, v)) {
          pq[i].pop();
          continue;
        }
        break;
      }
      if (pq[i].empty()) continue;
      any = true;
      float d = pq[i].top().first;
      frontier_min = std::min<double>(frontier_min, d);
      if (d < best_d) {
        best_d = d;
        best_i = i;
      }
    }
    if (!any) break;
    // Top-k termination: a yet-unemitted root still needs a settlement in
    // at least one iterator, at distance >= that iterator's frontier, so
    // its score is >= the smallest frontier distance. (The sum of all
    // frontiers is NOT a valid bound: a root may already hold small settled
    // distances in other iterators.) This weak-but-sound bound is exactly
    // why BANKS's top-k termination "needs to search many nodes" — the
    // inefficiency the paper calls out in Exp-1.
    if (candidates.size() >= static_cast<size_t>(opts.top_k) &&
        frontier_min >= kth_best) {
      break;
    }
    if (best_i == q) break;

    auto [d, v] = pq[best_i].top();
    pq[best_i].pop();
    settled[best_i][v] = 1;
    ++result.pops;
    if ((result.pops & 1023) == 0 && timer.ElapsedMs() > opts.time_limit_ms) {
      result.timed_out = true;
      break;
    }
    if (result.pops > opts.max_pops) {
      result.timed_out = true;
      break;
    }

    if (++grid.cover[v] == q && !emitted[v]) {
      emitted[v] = 1;
      double score = 0.0;
      for (size_t i = 0; i < q; ++i) score += grid.D(i, v);
      candidates.push_back(Candidate{v, score});
      update_kth();
    }

    for (const AdjEntry& e : g.Neighbors(v)) {
      NodeId w = e.target;
      if (settled[best_i][w]) continue;
      float nd = d + cost[w];
      if (nd < grid.D(best_i, w)) {
        grid.D(best_i, w) = nd;
        grid.P(best_i, w) = v;
        pq[best_i].emplace(nd, w);
      }
    }
  }

  result.elapsed_ms = timer.ElapsedMs();
  result.answers = FinishAnswers(g, grid, std::move(candidates), opts.top_k);
  return result;
}

// --------------------------- BANKS-II --------------------------------------

BanksResult RunBanks2(const KnowledgeGraph& g,
                      const std::vector<std::vector<NodeId>>& groups,
                      const std::vector<float>& cost,
                      const BanksOptions& opts) {
  const size_t n = g.num_nodes();
  const size_t q = groups.size();
  Grid grid(n, q);
  BanksResult result;
  WallTimer timer;

  // Activation per (instance, node); expansion order is by activation, not
  // distance. High-degree nodes decay activation sharply, deferring hubs
  // (BANKS-II's bidirectional/hub-avoidance heuristic).
  std::vector<float> act(n * q, 0.0f);
  struct Entry {
    float activation;
    uint32_t instance;
    NodeId node;
    bool operator<(const Entry& o) const {
      return activation < o.activation;  // max-heap on activation
    }
  };
  std::priority_queue<Entry> pq;
  constexpr float kActFloor = 1e-6f;

  std::vector<Candidate> candidates;
  std::vector<uint8_t> emitted(n, 0);

  for (size_t i = 0; i < q; ++i) {
    for (NodeId v : groups[i]) {
      if (grid.D(i, v) != 0.0f) {
        grid.D(i, v) = 0.0f;
        // A node covered by every keyword group at distance 0 is itself an
        // answer root.
        if (++grid.cover[v] == q && !emitted[v]) {
          emitted[v] = 1;
          candidates.push_back(Candidate{v, 0.0});
        }
      }
      act[i * n + v] = 1.0f;
      pq.push(Entry{1.0f, static_cast<uint32_t>(i), v});
    }
  }

  while (!pq.empty()) {
    Entry top = pq.top();
    pq.pop();
    const size_t i = top.instance;
    NodeId v = top.node;
    if (top.activation < act[i * n + v]) continue;  // stale
    ++result.pops;
    if ((result.pops & 1023) == 0 && timer.ElapsedMs() > opts.time_limit_ms) {
      result.timed_out = true;
      break;
    }
    if (result.pops > opts.max_pops) {
      result.timed_out = true;
      break;
    }
    // Conservative exploration: with activation-ordered expansion there is
    // no distance bound to prune with, so BANKS-II keeps going until
    // activation dies out — the expensive top-k guarantee the paper
    // describes (Sec. VI, Exp-1, reason two).
    if (candidates.size() >= static_cast<size_t>(opts.top_k) * 4 &&
        top.activation < kActFloor * 10) {
      break;
    }

    const float dv = grid.D(i, v);
    const float spread =
        top.activation * static_cast<float>(opts.activation_decay) /
        std::log2(2.0f + static_cast<float>(g.Degree(v)));
    for (const AdjEntry& e : g.Neighbors(v)) {
      NodeId w = e.target;
      const size_t iw = i * n + w;
      bool push = false;
      // Distance relaxation: priority order is not distance order, so an
      // improvement must be re-broadcast through w (recursive update).
      float nd = dv + cost[w];
      if (nd < grid.D(i, w)) {
        bool first_reach = grid.D(i, w) == kInfDist;
        grid.D(i, w) = nd;
        grid.P(i, w) = v;
        push = true;
        if (first_reach && ++grid.cover[w] == q && !emitted[w]) {
          emitted[w] = 1;
          candidates.push_back(Candidate{w, 0.0});
        }
      }
      if (spread > act[iw] && spread > kActFloor) {
        act[iw] = spread;
        push = true;
      }
      if (push && act[iw] > kActFloor) {
        pq.push(Entry{act[iw], static_cast<uint32_t>(i), w});
      }
    }
  }

  result.elapsed_ms = timer.ElapsedMs();
  result.answers = FinishAnswers(g, grid, std::move(candidates), opts.top_k);
  return result;
}

}  // namespace

double BanksEdgeCost(const KnowledgeGraph& g, NodeId into) {
  return 1.0 + std::log2(1.0 + static_cast<double>(g.InDegree(into)));
}

BanksEngine::BanksEngine(const KnowledgeGraph* graph,
                         const InvertedIndex* index)
    : graph_(graph), index_(index) {}

Result<BanksResult> BanksEngine::SearchKeywords(
    const std::vector<std::string>& keywords, const BanksOptions& opts) const {
  if (keywords.empty()) {
    return Status::InvalidArgument("empty keyword query");
  }
  std::vector<std::vector<NodeId>> groups;
  for (const std::string& kw : keywords) {
    std::span<const NodeId> postings = index_->Lookup(kw);
    if (postings.empty()) continue;
    groups.emplace_back(postings.begin(), postings.end());
  }
  if (groups.empty()) {
    return Status::NotFound("no query keyword matches any node");
  }
  // Precompute per-node entry costs once; BanksEdgeCost scans the
  // adjacency list and must not run per relaxation.
  std::vector<float> cost(graph_->num_nodes());
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    cost[v] = static_cast<float>(BanksEdgeCost(*graph_, v));
  }
  if (opts.variant == BanksVariant::kBanks1) {
    return RunBanks1(*graph_, groups, cost, opts);
  }
  return RunBanks2(*graph_, groups, cost, opts);
}

}  // namespace wikisearch::banks
