// The serving path's inter-query scheduler (DESIGN.md §9). Replaces the
// old one-big-mutex in front of the engine with three cooperating policies,
// all decided under a single scheduler lock so the admission counters are
// exact under any interleaving:
//
//   admission   — at most `queue_depth` queries may be admitted (running or
//                 waiting); excess callers are shed immediately so overload
//                 turns into fast 429s instead of unbounded queueing. At
//                 most `max_running` of the admitted queries execute the
//                 engine simultaneously; the rest wait on a slot.
//   single-flight — concurrent queries with the same key share one engine
//                 execution: the first becomes the leader and runs, the
//                 rest join its flight and receive the same (immutable)
//                 result. A thundering herd on one hot query costs one run.
//   micro-batching — with batch_window_ms > 0, *distinct* queries admitted
//                 within the window (or while every running slot is busy)
//                 merge into one batch epoch that occupies a single running
//                 slot; the members execute concurrently on their caller
//                 threads, each with a width granted from the shared budget
//                 divided by all executing members. This generalizes
//                 single-flight (which collapses identical queries) to a
//                 BatchSearch-style epoch over different ones: under a
//                 bursty open-loop load, k queries cost one scheduling
//                 round instead of k serialized slot waits. 0 disables
//                 batching and takes the exact pre-batching code path.
//   thread sizing — the intra-query worker width is granted at admission
//                 from a shared budget: `total_threads / running` (clamped
//                 to [1, max_threads_per_query]). Many concurrent queries
//                 get one thread each; an idle server gives a lone query
//                 the full width.
//
// The scheduler is engine-agnostic: callers pass a closure that runs the
// query with the granted width. Both the HTTP service and BatchSearch run
// on this one code path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/engine.h"

namespace wikisearch::server {

class QueryScheduler {
 public:
  struct Options {
    /// Engine executions allowed simultaneously; 0 means
    /// hardware_concurrency (min 1).
    size_t max_running = 0;
    /// Admitted queries (running + waiting + joining) allowed before
    /// shedding; 0 means unlimited. Runtime-tunable via set_queue_depth.
    size_t queue_depth = 0;
    /// Intra-query thread budget shared by the running queries; 0 means
    /// hardware_concurrency (min 1).
    int total_threads = 0;
    /// Cap on the width granted to any one query; 0 means no cap beyond
    /// total_threads.
    int max_threads_per_query = 0;
    /// Master switch for single-flight deduplication.
    bool single_flight = true;
    /// Cross-request micro-batching window in milliseconds: distinct
    /// queries admitted within one window (or while all running slots are
    /// busy) execute as one batch epoch. 0 disables batching entirely.
    double batch_window_ms = 0;
    /// Queries per batch epoch before it dispatches regardless of the
    /// window.
    size_t batch_limit = 16;
  };

  /// Runs the query with the granted worker width.
  using SearchFn = std::function<Result<SearchResult>(int threads)>;

  struct Outcome {
    enum class Kind {
      kRan,     ///< this caller executed the engine
      kShared,  ///< joined an identical in-flight query's execution
      kShed,    ///< rejected at admission; `result` is null
    };
    Kind kind = Kind::kShed;
    std::shared_ptr<const Result<SearchResult>> result;
  };

  QueryScheduler();
  explicit QueryScheduler(Options opts);
  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admits, deduplicates and runs one query. A non-empty `key` opts this
  /// call into single-flight (keys must encode every parameter that affects
  /// the result); an empty key always executes. Blocks while waiting for a
  /// running slot or for a shared flight to finish.
  Outcome Run(const std::string& key, const SearchFn& fn);

  // Runtime-tunable knobs (all exact under concurrency; the setters take
  // the scheduler lock).
  void set_queue_depth(size_t depth);
  size_t queue_depth() const;
  void set_max_running(size_t max_running);
  size_t max_running() const;
  void set_thread_budget(int total_threads, int max_threads_per_query);
  void set_single_flight(bool on);
  /// Runtime switch for micro-batching; 0 restores the unbatched path
  /// (an epoch already collecting finishes under its old window).
  void set_batch_window_ms(double window_ms);
  double batch_window_ms() const;
  void set_batch_limit(size_t limit);

  // Exact point-in-time and lifetime counters: every transition happens
  // under the same lock as the admission decision, so a quiescent reader
  // always sees shed + completed == attempted and in_flight == 0.
  size_t in_flight() const;         ///< admitted: running + waiting + joining
  size_t running() const;           ///< executing the engine right now
  size_t high_water_mark() const;   ///< max in_flight ever admitted
  uint64_t shed_total() const;
  uint64_t admitted_total() const;
  uint64_t executed_total() const;  ///< engine executions (leaders)
  uint64_t shared_total() const;    ///< flights joined (followers)
  uint64_t merged_total() const;    ///< queries that shared an epoch: Σ(size−1)
  uint64_t batch_epochs_total() const;  ///< epochs dispatched

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const Result<SearchResult>> result;
  };

  // A batch epoch: distinct queries merged into one scheduling unit. All
  // fields are guarded by the scheduler's mu_ (members block on slot_cv_
  // until `dispatched`); the epoch holds exactly one running slot from
  // dispatch until its last member finishes.
  struct BatchEpoch {
    size_t size = 0;        // members admitted into this epoch
    size_t finished = 0;    // members whose fn has returned
    bool dispatched = false;
    int grant = 1;          // per-member worker width, set at dispatch
    std::chrono::steady_clock::time_point opened;
  };

  /// Width granted to a query admitted while `running` queries (including
  /// itself) hold slots. Caller must hold mu_.
  int GrantThreads(size_t running) const;

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  Options opts_;
  size_t resolved_max_running_;
  int resolved_total_threads_;

  size_t in_flight_ = 0;
  size_t running_ = 0;
  size_t hwm_ = 0;
  uint64_t shed_ = 0;
  uint64_t admitted_ = 0;
  uint64_t executed_ = 0;
  uint64_t shared_ = 0;
  uint64_t merged_ = 0;
  uint64_t epochs_ = 0;
  /// Members of dispatched-but-unfinished epochs; the divisor for batched
  /// thread grants (the batched analogue of running_).
  size_t executing_members_ = 0;
  /// The epoch currently collecting arrivals (null once dispatched/full).
  std::shared_ptr<BatchEpoch> open_epoch_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace wikisearch::server
