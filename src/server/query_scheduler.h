// The serving path's inter-query scheduler (DESIGN.md §9). Replaces the
// old one-big-mutex in front of the engine with three cooperating policies,
// all decided under a single scheduler lock so the admission counters are
// exact under any interleaving:
//
//   admission   — at most `queue_depth` queries may be admitted (running or
//                 waiting); excess callers are shed immediately so overload
//                 turns into fast 429s instead of unbounded queueing. At
//                 most `max_running` of the admitted queries execute the
//                 engine simultaneously; the rest wait on a slot.
//   single-flight — concurrent queries with the same key share one engine
//                 execution: the first becomes the leader and runs, the
//                 rest join its flight and receive the same (immutable)
//                 result. A thundering herd on one hot query costs one run.
//   thread sizing — the intra-query worker width is granted at admission
//                 from a shared budget: `total_threads / running` (clamped
//                 to [1, max_threads_per_query]). Many concurrent queries
//                 get one thread each; an idle server gives a lone query
//                 the full width.
//
// The scheduler is engine-agnostic: callers pass a closure that runs the
// query with the granted width. Both the HTTP service and BatchSearch run
// on this one code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/engine.h"

namespace wikisearch::server {

class QueryScheduler {
 public:
  struct Options {
    /// Engine executions allowed simultaneously; 0 means
    /// hardware_concurrency (min 1).
    size_t max_running = 0;
    /// Admitted queries (running + waiting + joining) allowed before
    /// shedding; 0 means unlimited. Runtime-tunable via set_queue_depth.
    size_t queue_depth = 0;
    /// Intra-query thread budget shared by the running queries; 0 means
    /// hardware_concurrency (min 1).
    int total_threads = 0;
    /// Cap on the width granted to any one query; 0 means no cap beyond
    /// total_threads.
    int max_threads_per_query = 0;
    /// Master switch for single-flight deduplication.
    bool single_flight = true;
  };

  /// Runs the query with the granted worker width.
  using SearchFn = std::function<Result<SearchResult>(int threads)>;

  struct Outcome {
    enum class Kind {
      kRan,     ///< this caller executed the engine
      kShared,  ///< joined an identical in-flight query's execution
      kShed,    ///< rejected at admission; `result` is null
    };
    Kind kind = Kind::kShed;
    std::shared_ptr<const Result<SearchResult>> result;
  };

  QueryScheduler();
  explicit QueryScheduler(Options opts);
  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admits, deduplicates and runs one query. A non-empty `key` opts this
  /// call into single-flight (keys must encode every parameter that affects
  /// the result); an empty key always executes. Blocks while waiting for a
  /// running slot or for a shared flight to finish.
  Outcome Run(const std::string& key, const SearchFn& fn);

  // Runtime-tunable knobs (all exact under concurrency; the setters take
  // the scheduler lock).
  void set_queue_depth(size_t depth);
  size_t queue_depth() const;
  void set_max_running(size_t max_running);
  size_t max_running() const;
  void set_thread_budget(int total_threads, int max_threads_per_query);
  void set_single_flight(bool on);

  // Exact point-in-time and lifetime counters: every transition happens
  // under the same lock as the admission decision, so a quiescent reader
  // always sees shed + completed == attempted and in_flight == 0.
  size_t in_flight() const;         ///< admitted: running + waiting + joining
  size_t running() const;           ///< executing the engine right now
  size_t high_water_mark() const;   ///< max in_flight ever admitted
  uint64_t shed_total() const;
  uint64_t admitted_total() const;
  uint64_t executed_total() const;  ///< engine executions (leaders)
  uint64_t shared_total() const;    ///< flights joined (followers)

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const Result<SearchResult>> result;
  };

  /// Width granted to a query admitted while `running` queries (including
  /// itself) hold slots. Caller must hold mu_.
  int GrantThreads(size_t running) const;

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  Options opts_;
  size_t resolved_max_running_;
  int resolved_total_threads_;

  size_t in_flight_ = 0;
  size_t running_ = 0;
  size_t hwm_ = 0;
  uint64_t shed_ = 0;
  uint64_t admitted_ = 0;
  uint64_t executed_ = 0;
  uint64_t shared_ = 0;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace wikisearch::server
