#include "server/threaded_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "server/http_server.h"

namespace wikisearch::server {

namespace {

std::string SerializeResponse(const HttpResponse& resp) {
  std::string out;
  AppendResponseHead(&out, resp, resp.body.size(), /*keep_alive=*/false);
  out += resp.body;
  return out;
}

void WriteAll(int fd, const std::string& out) {
  size_t written = 0;
  while (written < out.size()) {
    ssize_t n = ::write(fd, out.data() + written, out.size() - written);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
}

bool ReadFully(int fd, std::string* buffer) {
  // Reads until headers complete, then until Content-Length is satisfied.
  char chunk[4096];
  size_t header_end = std::string::npos;
  size_t want_body = 0;
  while (true) {
    if (header_end == std::string::npos) {
      header_end = buffer->find("\r\n\r\n");
      if (header_end != std::string::npos) {
        // Parse content-length if present (case-insensitive scan).
        std::string lower;
        lower.reserve(header_end);
        for (size_t i = 0; i < header_end; ++i) {
          lower += static_cast<char>(std::tolower(
              static_cast<unsigned char>((*buffer)[i])));
        }
        size_t pos = lower.find("content-length:");
        if (pos != std::string::npos) {
          want_body = static_cast<size_t>(
              std::atoll(buffer->c_str() + pos + 15));
        }
      }
    }
    if (header_end != std::string::npos) {
      size_t have_body = buffer->size() - (header_end + 4);
      if (have_body >= want_body) return true;
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return header_end != std::string::npos;
    buffer->append(chunk, static_cast<size_t>(n));
    if (buffer->size() > (1u << 22)) return false;  // 4 MB request cap
  }
}

}  // namespace

ThreadedHttpServer::~ThreadedHttpServer() { Stop(); }

void ThreadedHttpServer::Route(const std::string& path, HttpHandler handler) {
  WS_CHECK(!running_.load());
  routes_[path] = std::move(handler);
}

Status ThreadedHttpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int opt = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed (port in use?)");
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ThreadedHttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::map<uint64_t, std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    finished_ids_.clear();
  }
  for (auto& [id, w] : workers) w.join();
}

size_t ThreadedHttpServer::live_worker_threads() const {
  std::lock_guard<std::mutex> lock(workers_mu_);
  return workers_.size();
}

void ThreadedHttpServer::ReapFinishedWorkers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    done.reserve(finished_ids_.size());
    for (uint64_t id : finished_ids_) {
      auto it = workers_.find(id);
      if (it != workers_.end()) {
        done.push_back(std::move(it->second));
        workers_.erase(it);
      }
    }
    finished_ids_.clear();
  }
  // Join outside the lock: the thread has already announced completion, so
  // this never blocks on request handling.
  for (auto& w : done) w.join();
}

void ThreadedHttpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    ReapFinishedWorkers();
    if (max_connections_ != 0 &&
        active_connections_.load(std::memory_order_relaxed) >=
            max_connections_) {
      // Saturated: shed from the accept loop itself rather than spawning a
      // worker, so the thread count stays bounded by the cap.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp =
          HttpResponse::Text(503, "connection limit reached, retry later\n");
      resp.extra_headers.emplace_back("Retry-After", "1");
      WriteAll(fd, SerializeResponse(resp));
      ::close(fd);
      continue;
    }
    if (socket_timeout_ms_ > 0) {
      timeval tv{};
      tv.tv_sec = socket_timeout_ms_ / 1000;
      tv.tv_usec = (socket_timeout_ms_ % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(workers_mu_);
    uint64_t id = next_worker_id_++;
    workers_.emplace(id, std::thread([this, id, fd] {
                       ServeConnection(id, fd);
                     }));
  }
  ReapFinishedWorkers();
}

void ThreadedHttpServer::ServeConnection(uint64_t id, int fd) {
  std::string raw;
  HttpResponse resp;
  if (!ReadFully(fd, &raw)) {
    resp = HttpResponse::BadRequest("oversized or truncated request\n");
  } else {
    Result<HttpRequest> req = ParseHttpRequest(raw);
    if (!req.ok()) {
      resp = HttpResponse::BadRequest(req.status().message() + "\n");
    } else {
      auto it = routes_.find(req->path);
      if (it == routes_.end()) {
        resp = HttpResponse::NotFound();
      } else {
        resp = it->second(*req);
      }
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  WriteAll(fd, SerializeResponse(resp));
  ::close(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(workers_mu_);
  finished_ids_.push_back(id);
}

}  // namespace wikisearch::server
