#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/random.h"

namespace wikisearch::server {

Result<HttpClientResponse> HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("connect() failed");
  }
  std::string req = "GET " + target +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close"
                    "\r\n\r\n";
  size_t written = 0;
  while (written < req.size()) {
    ssize_t n = ::write(fd, req.data() + written, req.size() - written);
    if (n <= 0) {
      ::close(fd);
      return Status::Internal("write() failed");
    }
    written += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t sp = raw.find(' ');
  size_t header_end = raw.find("\r\n\r\n");
  if (sp == std::string::npos || header_end == std::string::npos) {
    return Status::Corruption("malformed HTTP response");
  }
  HttpClientResponse resp;
  resp.status = std::atoi(raw.c_str() + sp + 1);
  resp.body = raw.substr(header_end + 4);
  return resp;
}

Status HttpConnection::Connect(uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::Internal("connect() failed");
  }
  return Status::OK();
}

Status HttpConnection::SendGet(const std::string& target) {
  return SendRaw("GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

Status HttpConnection::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Internal("not connected");
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + written, bytes.size() - written,
                       MSG_NOSIGNAL);
    if (n <= 0) return Status::Internal("send() failed");
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpClientResponse> HttpConnection::ReadResponse() {
  if (fd_ < 0) return Status::Internal("not connected");
  char chunk[4096];
  size_t header_end;
  // Head first: read until the blank line arrives.
  while ((header_end = buf_.find("\r\n\r\n")) == std::string::npos) {
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) return Status::Corruption("connection closed mid-response");
    buf_.append(chunk, static_cast<size_t>(n));
  }
  HttpClientResponse resp;
  size_t sp = buf_.find(' ');
  if (sp == std::string::npos || sp > header_end) {
    return Status::Corruption("malformed HTTP response");
  }
  resp.status = std::atoi(buf_.c_str() + sp + 1);
  size_t pos = buf_.find("\r\n") + 2;
  while (pos < header_end) {
    size_t eol = buf_.find("\r\n", pos);
    std::string line = buf_.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      for (char& c : key) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      resp.headers[key] = line.substr(vstart);
    }
    pos = eol + 2;
  }
  size_t content_length = 0;
  if (auto it = resp.headers.find("content-length");
      it != resp.headers.end()) {
    content_length = static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  size_t body_start = header_end + 4;
  while (buf_.size() - body_start < content_length) {
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) return Status::Corruption("connection closed mid-body");
    buf_.append(chunk, static_cast<size_t>(n));
  }
  resp.body = buf_.substr(body_start, content_length);
  // Keep read-ahead: under pipelining the next response (or part of it)
  // may already be buffered.
  buf_.erase(0, body_start + content_length);
  return resp;
}

Result<HttpClientResponse> HttpConnection::Get(const std::string& target) {
  Status st = SendGet(target);
  if (!st.ok()) return st;
  return ReadResponse();
}

void HttpConnection::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void HttpConnection::Abort() {
  if (fd_ < 0) return;
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;  // close() sends RST instead of FIN
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

void HttpConnection::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

Result<RetryingGetResult> HttpGetWithRetry(uint16_t port,
                                           const std::string& target,
                                           const RetryPolicy& policy) {
  const int attempts = std::max(policy.max_attempts, 1);
  Rng jitter(policy.jitter_seed);
  Status last_error = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      double backoff = policy.base_backoff_ms *
                       static_cast<double>(1u << std::min(attempt - 1, 16));
      backoff = std::min(backoff, policy.max_backoff_ms);
      backoff *= 1.0 + 0.5 * jitter.UniformDouble();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff));
    }
    Result<HttpClientResponse> resp = HttpGet(port, target);
    if (!resp.ok()) {
      // Connection-level failure (listener backlog full, server restarting):
      // retryable.
      last_error = resp.status();
      continue;
    }
    if (resp->status == 429 || resp->status == 503) {
      last_error = Status::ResourceExhausted(
          "server shed request with status " + std::to_string(resp->status));
      continue;
    }
    return RetryingGetResult{std::move(*resp), attempt + 1};
  }
  return last_error;
}

}  // namespace wikisearch::server
