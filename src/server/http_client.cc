#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/random.h"

namespace wikisearch::server {

Result<HttpClientResponse> HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("connect() failed");
  }
  std::string req = "GET " + target +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close"
                    "\r\n\r\n";
  size_t written = 0;
  while (written < req.size()) {
    ssize_t n = ::write(fd, req.data() + written, req.size() - written);
    if (n <= 0) {
      ::close(fd);
      return Status::Internal("write() failed");
    }
    written += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t sp = raw.find(' ');
  size_t header_end = raw.find("\r\n\r\n");
  if (sp == std::string::npos || header_end == std::string::npos) {
    return Status::Corruption("malformed HTTP response");
  }
  HttpClientResponse resp;
  resp.status = std::atoi(raw.c_str() + sp + 1);
  resp.body = raw.substr(header_end + 4);
  return resp;
}

Result<RetryingGetResult> HttpGetWithRetry(uint16_t port,
                                           const std::string& target,
                                           const RetryPolicy& policy) {
  const int attempts = std::max(policy.max_attempts, 1);
  Rng jitter(policy.jitter_seed);
  Status last_error = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      double backoff = policy.base_backoff_ms *
                       static_cast<double>(1u << std::min(attempt - 1, 16));
      backoff = std::min(backoff, policy.max_backoff_ms);
      backoff *= 1.0 + 0.5 * jitter.UniformDouble();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff));
    }
    Result<HttpClientResponse> resp = HttpGet(port, target);
    if (!resp.ok()) {
      // Connection-level failure (listener backlog full, server restarting):
      // retryable.
      last_error = resp.status();
      continue;
    }
    if (resp->status == 429 || resp->status == 503) {
      last_error = Status::ResourceExhausted(
          "server shed request with status " + std::to_string(resp->status));
      continue;
    }
    return RetryingGetResult{std::move(*resp), attempt + 1};
  }
  return last_error;
}

}  // namespace wikisearch::server
