#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace wikisearch::server {

namespace {

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) +
                    "\r\nContent-Type: " + resp.content_type +
                    "\r\nContent-Length: " + std::to_string(resp.body.size());
  for (const auto& [key, value] : resp.extra_headers) {
    out += "\r\n" + key + ": " + value;
  }
  out += "\r\nConnection: close\r\n\r\n" + resp.body;
  return out;
}

void WriteAll(int fd, const std::string& out) {
  size_t written = 0;
  while (written < out.size()) {
    ssize_t n = ::write(fd, out.data() + written, out.size() - written);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
}

bool ReadFully(int fd, std::string* buffer) {
  // Reads until headers complete, then until Content-Length is satisfied.
  char chunk[4096];
  size_t header_end = std::string::npos;
  size_t want_body = 0;
  while (true) {
    if (header_end == std::string::npos) {
      header_end = buffer->find("\r\n\r\n");
      if (header_end != std::string::npos) {
        // Parse content-length if present (case-insensitive scan).
        std::string lower;
        lower.reserve(header_end);
        for (size_t i = 0; i < header_end; ++i) {
          lower += static_cast<char>(std::tolower(
              static_cast<unsigned char>((*buffer)[i])));
        }
        size_t pos = lower.find("content-length:");
        if (pos != std::string::npos) {
          want_body = static_cast<size_t>(
              std::atoll(buffer->c_str() + pos + 15));
        }
      }
    }
    if (header_end != std::string::npos) {
      size_t have_body = buffer->size() - (header_end + 4);
      if (have_body >= want_body) return true;
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return header_end != std::string::npos;
    buffer->append(chunk, static_cast<size_t>(n));
    if (buffer->size() > (1u << 22)) return false;  // 4 MB request cap
  }
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < s.size() && HexVal(s[i + 1]) >= 0 &&
               HexVal(s[i + 2]) >= 0) {
      out += static_cast<char>(HexVal(s[i + 1]) * 16 + HexVal(s[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQueryString(std::string_view qs) {
  std::map<std::string, std::string> params;
  size_t start = 0;
  while (start <= qs.size()) {
    size_t end = qs.find('&', start);
    if (end == std::string_view::npos) end = qs.size();
    std::string_view pair = qs.substr(start, end - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params[UrlDecode(pair)] = "";
      } else {
        params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    start = end + 1;
  }
  return params;
}

Result<HttpRequest> ParseHttpRequest(const std::string& raw) {
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::InvalidArgument("incomplete HTTP request");
  }
  size_t line_end = raw.find("\r\n");
  std::string request_line = raw.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed request line");
  }
  HttpRequest req;
  req.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    req.path = UrlDecode(target);
  } else {
    req.path = UrlDecode(target.substr(0, qmark));
    req.params = ParseQueryString(target.substr(qmark + 1));
  }
  // Headers.
  size_t pos = line_end + 2;
  while (pos < header_end) {
    size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    std::string line = raw.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      for (char& c : key) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      req.headers[key] = line.substr(vstart);
    }
    pos = eol + 2;
  }
  req.body = raw.substr(header_end + 4);
  return req;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& path, HttpHandler handler) {
  WS_CHECK(!running_.load());
  routes_[path] = std::move(handler);
}

Status HttpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int opt = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed (port in use?)");
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::map<uint64_t, std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    finished_ids_.clear();
  }
  for (auto& [id, w] : workers) w.join();
}

size_t HttpServer::live_worker_threads() const {
  std::lock_guard<std::mutex> lock(workers_mu_);
  return workers_.size();
}

void HttpServer::ReapFinishedWorkers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    done.reserve(finished_ids_.size());
    for (uint64_t id : finished_ids_) {
      auto it = workers_.find(id);
      if (it != workers_.end()) {
        done.push_back(std::move(it->second));
        workers_.erase(it);
      }
    }
    finished_ids_.clear();
  }
  // Join outside the lock: the thread has already announced completion, so
  // this never blocks on request handling.
  for (auto& w : done) w.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    ReapFinishedWorkers();
    if (max_connections_ != 0 &&
        active_connections_.load(std::memory_order_relaxed) >=
            max_connections_) {
      // Saturated: shed from the accept loop itself rather than spawning a
      // worker, so the thread count stays bounded by the cap.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp =
          HttpResponse::Text(503, "connection limit reached, retry later\n");
      resp.extra_headers.emplace_back("Retry-After", "1");
      WriteAll(fd, SerializeResponse(resp));
      ::close(fd);
      continue;
    }
    if (socket_timeout_ms_ > 0) {
      timeval tv{};
      tv.tv_sec = socket_timeout_ms_ / 1000;
      tv.tv_usec = (socket_timeout_ms_ % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(workers_mu_);
    uint64_t id = next_worker_id_++;
    workers_.emplace(id, std::thread([this, id, fd] {
                       ServeConnection(id, fd);
                     }));
  }
  ReapFinishedWorkers();
}

void HttpServer::ServeConnection(uint64_t id, int fd) {
  std::string raw;
  HttpResponse resp;
  if (!ReadFully(fd, &raw)) {
    resp = HttpResponse::BadRequest("oversized or truncated request\n");
  } else {
    Result<HttpRequest> req = ParseHttpRequest(raw);
    if (!req.ok()) {
      resp = HttpResponse::BadRequest(req.status().message() + "\n");
    } else {
      auto it = routes_.find(req->path);
      if (it == routes_.end()) {
        resp = HttpResponse::NotFound();
      } else {
        resp = it->second(*req);
      }
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  WriteAll(fd, SerializeResponse(resp));
  ::close(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(workers_mu_);
  finished_ids_.push_back(id);
}

}  // namespace wikisearch::server
