#include "server/http_server.h"

#include <cctype>

namespace wikisearch::server {

// Whole-buffer request parsing, kept for tests and offline tooling. The
// serving path itself parses incrementally (HttpConnParser) and is stricter
// about framing; this parser accepts anything with a complete head.
Result<HttpRequest> ParseHttpRequest(const std::string& raw) {
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::InvalidArgument("incomplete HTTP request");
  }
  size_t line_end = raw.find("\r\n");
  std::string request_line = raw.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed request line");
  }
  HttpRequest req;
  req.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    req.path = UrlDecode(target);
  } else {
    req.path = UrlDecode(target.substr(0, qmark));
    req.params = ParseQueryString(target.substr(qmark + 1));
  }
  // Headers.
  size_t pos = line_end + 2;
  while (pos < header_end) {
    size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    std::string line = raw.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      for (char& c : key) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      req.headers[key] = line.substr(vstart);
    }
    pos = eol + 2;
  }
  req.body = raw.substr(header_end + 4);
  return req;
}

}  // namespace wikisearch::server
