#include "server/search_service.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/json.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace wikisearch::server {

namespace {

EngineKind ParseEngine(const std::string& s) {
  if (s == "seq") return EngineKind::kSequential;
  if (s == "dyn") return EngineKind::kCpuDynamic;
  if (s == "gpu") return EngineKind::kGpuSim;
  return EngineKind::kCpuParallel;
}

QueryScheduler::Options SchedulerDefaults(const SearchOptions& defaults) {
  QueryScheduler::Options opts;
  // Budget ≥ per-query cap keeps an idle server granting a lone query the
  // configured width exactly (clamp(total/1) == cap), even on boxes with
  // fewer cores than defaults.threads.
  const int cap = std::max(defaults.threads, 1);
  const unsigned hw = std::thread::hardware_concurrency();
  opts.total_threads = std::max(static_cast<int>(hw == 0 ? 1 : hw), cap);
  opts.max_threads_per_query = cap;
  return opts;
}

}  // namespace

std::string SearchResultToJson(const GraphView& graph,
                               const SearchResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("keywords");
  w.BeginArray();
  for (const auto& kw : result.keywords) w.String(kw);
  w.EndArray();
  w.Key("dropped_keywords");
  w.BeginArray();
  for (const auto& kw : result.stats.dropped_keywords) w.String(kw);
  w.EndArray();
  w.Key("stats");
  w.BeginObject();
  w.Key("levels");
  w.Int(result.stats.levels);
  w.Key("central_candidates");
  w.UInt(result.stats.num_centrals);
  w.Key("timed_out");
  w.Bool(result.stats.timed_out);
  w.Key("degraded");
  w.Bool(result.stats.degraded);
  w.Key("levels_completed");
  w.Int(result.stats.levels_completed);
  w.Key("deadline_left_ms");
  w.Double(result.stats.deadline_left_ms);
  w.Key("candidates_skipped");
  w.UInt(result.stats.candidates_skipped);
  w.Key("candidates_pruned");
  w.UInt(result.stats.candidates_pruned);
  w.Key("candidates_extracted");
  w.UInt(result.stats.candidates_extracted);
  w.Key("total_ms");
  w.Double(result.timings.total_ms);
  w.Key("expansion_ms");
  w.Double(result.timings.expansion_ms);
  w.Key("topdown_ms");
  w.Double(result.timings.topdown_ms);
  w.EndObject();
  w.Key("answers");
  w.BeginArray();
  for (const AnswerGraph& a : result.answers) {
    w.BeginObject();
    w.Key("central");
    w.String(graph.NodeName(a.central));
    w.Key("depth");
    w.Int(a.depth);
    w.Key("score");
    w.Double(a.score);
    w.Key("nodes");
    w.BeginArray();
    for (NodeId v : a.nodes) {
      w.BeginObject();
      w.Key("id");
      w.UInt(v);
      w.Key("name");
      w.String(graph.NodeName(v));
      std::string matched;
      for (size_t i = 0; i < a.keyword_nodes.size(); ++i) {
        if (std::binary_search(a.keyword_nodes[i].begin(),
                               a.keyword_nodes[i].end(), v)) {
          if (!matched.empty()) matched += ' ';
          matched += i < result.keywords.size() ? result.keywords[i]
                                                : std::to_string(i);
        }
      }
      if (!matched.empty()) {
        w.Key("matches");
        w.String(matched);
      }
      w.EndObject();
    }
    w.EndArray();
    w.Key("edges");
    w.BeginArray();
    for (const AnswerEdge& e : a.edges) {
      w.BeginObject();
      w.Key("src");
      w.String(graph.NodeName(e.src));
      w.Key("label");
      w.String(graph.LabelName(e.label));
      w.Key("dst");
      w.String(graph.NodeName(e.dst));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

Result<live::UpdateBatch> ParseUpdateBody(const std::string& body) {
  Result<JsonValue> doc = JsonParse(body);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("update body must be a JSON object");
  }
  live::UpdateBatch batch;
  auto parse_triples = [&](const char* key, std::vector<live::TripleOp>* out) {
    const JsonValue* arr = doc->Find(key);
    if (arr == nullptr) return Status::OK();
    if (!arr->is_array()) {
      return Status::InvalidArgument(std::string(key) + " must be an array");
    }
    for (const JsonValue& t : arr->array) {
      if (!t.is_array() || t.array.size() != 3 || !t.array[0].is_string() ||
          !t.array[1].is_string() || !t.array[2].is_string()) {
        return Status::InvalidArgument(
            std::string(key) + " entries must be [subject, predicate, object]");
      }
      out->push_back(
          live::TripleOp{t.array[0].str, t.array[1].str, t.array[2].str});
    }
    return Status::OK();
  };
  Status st = parse_triples("add", &batch.add);
  if (!st.ok()) return st;
  st = parse_triples("remove", &batch.remove);
  if (!st.ok()) return st;
  if (const JsonValue* arr = doc->Find("text"); arr != nullptr) {
    if (!arr->is_array()) {
      return Status::InvalidArgument("text must be an array");
    }
    for (const JsonValue& t : arr->array) {
      if (!t.is_array() || t.array.size() != 2 || !t.array[0].is_string() ||
          !t.array[1].is_string()) {
        return Status::InvalidArgument("text entries must be [node, text]");
      }
      batch.text.push_back(live::TextOp{t.array[0].str, t.array[1].str});
    }
  }
  if (batch.empty()) {
    return Status::InvalidArgument("update batch has no operations");
  }
  return batch;
}

SearchService::SearchService(const KnowledgeGraph* graph,
                             const InvertedIndex* index,
                             SearchOptions defaults, size_t cache_capacity,
                             obs::MetricRegistry* metrics,
                             size_t context_cache_capacity)
    : graph_(graph),
      index_(index),
      defaults_(defaults),
      cache_(cache_capacity),
      context_cache_(context_cache_capacity),
      engine_(graph, index, defaults),
      scheduler_(SchedulerDefaults(defaults)),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricRegistry>()
                         : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      queries_total_(metrics_->GetCounter("ws_server_queries_total")),
      errors_total_(metrics_->GetCounter("ws_server_errors_total")),
      shed_total_(metrics_->GetCounter("ws_server_shed_total")),
      timeout_total_(metrics_->GetCounter("ws_server_timeout_total")),
      degraded_total_(metrics_->GetCounter("ws_server_degraded_total")),
      cache_hits_total_(metrics_->GetCounter("ws_server_cache_hits_total")),
      cache_misses_total_(
          metrics_->GetCounter("ws_server_cache_misses_total")),
      http_requests_total_(
          metrics_->GetCounter("ws_server_http_requests_total")),
      http_rejected_total_(
          metrics_->GetCounter("ws_server_http_rejected_total")) {
  engine_.SetStatePool(&state_pool_);
  engine_.SetScratchPool(&scratch_pool_);
  if (context_cache_.capacity() > 0) {
    engine_.SetContextCache(&context_cache_);
  }
}

SearchService::SearchService(live::SnapshotManager* live,
                             SearchOptions defaults, size_t cache_capacity,
                             obs::MetricRegistry* metrics,
                             size_t context_cache_capacity)
    : graph_(nullptr),
      index_(nullptr),
      live_(live),
      defaults_(defaults),
      cache_(cache_capacity),
      context_cache_(context_cache_capacity),
      engine_(defaults),
      scheduler_(SchedulerDefaults(defaults)),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricRegistry>()
                         : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      queries_total_(metrics_->GetCounter("ws_server_queries_total")),
      errors_total_(metrics_->GetCounter("ws_server_errors_total")),
      shed_total_(metrics_->GetCounter("ws_server_shed_total")),
      timeout_total_(metrics_->GetCounter("ws_server_timeout_total")),
      degraded_total_(metrics_->GetCounter("ws_server_degraded_total")),
      cache_hits_total_(metrics_->GetCounter("ws_server_cache_hits_total")),
      cache_misses_total_(
          metrics_->GetCounter("ws_server_cache_misses_total")),
      http_requests_total_(
          metrics_->GetCounter("ws_server_http_requests_total")),
      http_rejected_total_(
          metrics_->GetCounter("ws_server_http_rejected_total")) {
  WS_CHECK(live_ != nullptr);
  engine_.SetStatePool(&state_pool_);
  engine_.SetScratchPool(&scratch_pool_);
  if (context_cache_.capacity() > 0) {
    engine_.SetContextCache(&context_cache_);
  }
  live_->SetMetricRegistry(metrics_);
  // The generation/invalidation contract (DESIGN.md §10): every compaction
  // publish drops both the memoized contexts and the response cache, so no
  // post-publish request can be served a pre-publish answer. Overlay
  // publishes (Apply) don't need this — their new version changes every
  // cache key instead.
  live_->SetPublishCallback([this](uint64_t) {
    context_cache_.Invalidate();
    cache_.Clear();
  });
}

void SearchService::RegisterRoutes(HttpServer* server) {
  server_ = server;
  server->Route("/search",
                [this](const HttpRequest& r) { return HandleSearch(r); });
  server->Route("/stats",
                [this](const HttpRequest& r) { return HandleStats(r); });
  server->Route("/metrics",
                [this](const HttpRequest& r) { return HandleMetrics(r); });
  server->Route("/healthz",
                [this](const HttpRequest& r) { return HandleHealth(r); });
  if (live_ != nullptr) {
    server->Route("/update",
                  [this](const HttpRequest& r) { return HandleUpdate(r); });
    server->Route("/snapshot",
                  [this](const HttpRequest& r) { return HandleSnapshot(r); });
  }
}

KbHandle SearchService::CurrentHandle() const {
  if (live_ != nullptr) return live_->PinHandle();
  KbHandle kb;
  kb.graph = GraphView(*graph_);
  kb.index = IndexView(*index_);
  return kb;
}

HttpResponse SearchService::HandleSearch(const HttpRequest& req) {
  std::string q = req.Param("q");
  if (q.empty()) {
    errors_total_->Inc();
    return HttpResponse::BadRequest("missing required parameter q\n");
  }
  SearchOptions opts = defaults_;
  if (!req.Param("k").empty()) opts.top_k = std::atoi(req.Param("k").c_str());
  if (!req.Param("alpha").empty()) {
    opts.alpha = std::atof(req.Param("alpha").c_str());
  }
  if (!req.Param("lambda").empty()) {
    opts.lambda = std::atof(req.Param("lambda").c_str());
  }
  if (!req.Param("deadline_ms").empty()) {
    opts.deadline_ms = std::atof(req.Param("deadline_ms").c_str());
  }
  opts.engine = ParseEngine(req.Param("engine", "cpu"));
  opts.metrics = metrics_;  // engine per-query metrics share the registry

  // trace=1: record this query's stage spans and attach them to the
  // response. Traced responses bypass the cache in both directions — a
  // cached body has no spans, and a traced body must not be replayed to
  // untraced clients.
  const bool tracing = req.Param("trace") == "1";
  obs::TraceContext trace_ctx;
  if (tracing) opts.trace = &trace_ctx;

  // Pin the KB state first: the pinned version is part of the cache key, so
  // a response cached against one overlay state can never answer a request
  // that pinned a newer one (version 0 = static mode, key unchanged).
  KbHandle kb = CurrentHandle();
  std::string cache_key = q + "|" + std::to_string(opts.top_k) + "|" +
                          std::to_string(opts.alpha) + "|" +
                          std::to_string(opts.lambda) + "|" +
                          std::to_string(opts.deadline_ms) + "|" +
                          EngineKindName(opts.engine) + "|v" +
                          std::to_string(kb.version);
  if (!tracing) {
    if (auto cached = cache_.Get(cache_key)) {
      queries_total_->Inc();
      return HttpResponse::Json(std::move(*cached));
    }
  }

  // Hand the query to the scheduler: it sheds past queue_depth, collapses
  // identical in-flight queries onto one engine execution, and grants this
  // query's intra-query worker width from the shared thread budget. A
  // traced query passes an empty key — its spans belong to one execution,
  // so it must never share (or lend out) a result.
  QueryScheduler::Outcome out =
      scheduler_.Run(tracing ? std::string() : cache_key, [&](int threads) {
        SearchOptions run_opts = opts;
        run_opts.threads = threads;
        return engine_.Search(kb, q, run_opts);
      });
  if (out.kind == QueryScheduler::Outcome::Kind::kShed) {
    shed_total_->Inc();
    return HttpResponse::TooManyRequests(/*retry_after_s=*/1);
  }
  const Result<SearchResult>& result = *out.result;
  queries_total_->Inc();
  if (!result.ok()) {
    errors_total_->Inc();
    JsonWriter w;
    w.BeginObject();
    w.Key("error");
    w.String(result.status().ToString());
    w.EndObject();
    int status =
        result.status().code() == StatusCode::kNotFound ? 404 : 400;
    return HttpResponse{status, "application/json", std::move(w).Take(), {},
                        false};
  }
  // Outcome counters are per request served, not per engine execution: a
  // shared flight's timed-out answer was delivered to every joiner.
  if (result->stats.timed_out) timeout_total_->Inc();
  if (result->stats.degraded) degraded_total_->Inc();
  std::string body = SearchResultToJson(kb.graph, *result);
  if (tracing) {
    // Splice the trace document into the response object: the body is a
    // complete JSON object, so the closing brace is its last byte.
    WS_CHECK(!body.empty() && body.back() == '}');
    body.pop_back();
    body += ",\"trace\":";
    body += trace_ctx.ToChromeJson();
    body += '}';
    return HttpResponse::Json(std::move(body));
  }
  // Degraded answers depend on transient load; caching them would serve a
  // timed-out partial result long after the pressure has passed. Only the
  // flight leader populates — joiners would just re-insert the same body.
  if (!result->stats.degraded &&
      out.kind == QueryScheduler::Outcome::Kind::kRan) {
    cache_.Put(cache_key, body);
  }
  return HttpResponse::Json(std::move(body));
}

HttpResponse SearchService::HandleStats(const HttpRequest&) {
  // One pinned state describes graph and index consistently even while
  // updates and compactions race this scrape.
  KbHandle kb = CurrentHandle();
  JsonWriter w;
  w.BeginObject();
  w.Key("graph");
  w.BeginObject();
  w.Key("nodes");
  w.UInt(kb.graph.num_nodes());
  w.Key("triples");
  w.UInt(kb.graph.num_triples());
  w.Key("labels");
  w.UInt(kb.graph.num_labels());
  w.Key("average_distance");
  w.Double(kb.graph.average_distance());
  w.Key("pre_storage_bytes");
  w.UInt(kb.graph.PreStorageBytes());
  w.EndObject();
  w.Key("index");
  w.BeginObject();
  w.Key("terms");
  w.UInt(kb.index.num_terms());
  w.Key("postings");
  w.UInt(kb.index.num_postings());
  w.EndObject();
  if (live_ != nullptr) {
    w.Key("live");
    w.BeginObject();
    w.Key("generation");
    w.UInt(live_->generation());
    w.Key("version");
    w.UInt(live_->version());
    w.Key("overlay_batches");
    w.UInt(live_->overlay_depth());
    w.Key("overlay_bytes");
    w.UInt(live_->overlay_bytes());
    w.Key("updates_applied");
    w.UInt(live_->updates_applied());
    w.Key("updates_rejected");
    w.UInt(live_->updates_rejected());
    w.Key("compactions");
    w.UInt(live_->compactions());
    w.Key("snapshots_live");
    w.UInt(live_->snapshots_live());
    w.Key("compaction_state");
    w.String(live_->compaction_state());
    w.Key("durable");
    w.Bool(live_->durable());
    if (live_->durable()) {
      w.Key("fsync_policy");
      w.String(live::FsyncPolicyName(live_->durability_options().fsync_policy));
      w.Key("clean_boot");
      w.Bool(live_->clean_boot());
      w.Key("replayed_batches");
      w.UInt(live_->replayed_batches());
      w.Key("wal");
      w.BeginObject();
      w.Key("last_seq");
      w.UInt(live_->wal_last_seq());
      w.Key("synced_seq");
      w.UInt(live_->wal_synced_seq());
      w.Key("base_seq");
      w.UInt(live_->wal_base_seq());
      w.Key("appends");
      w.UInt(live_->wal_appends());
      w.Key("fsyncs");
      w.UInt(live_->wal_fsyncs());
      w.Key("bytes");
      w.UInt(live_->wal_bytes());
      w.Key("rotations");
      w.UInt(live_->wal_rotations());
      w.Key("segments_deleted");
      w.UInt(live_->wal_segments_deleted());
      w.EndObject();
      w.Key("manifest_generation");
      w.UInt(live_->manifest_generation());
    }
    w.EndObject();
  }
  w.Key("cache");
  w.BeginObject();
  w.Key("entries");
  w.UInt(cache_.size());
  w.Key("hits");
  w.UInt(cache_.hits());
  w.Key("misses");
  w.UInt(cache_.misses());
  w.EndObject();
  w.Key("context_cache");
  w.BeginObject();
  w.Key("entries");
  w.UInt(context_cache_.size());
  w.Key("capacity");
  w.UInt(context_cache_.capacity());
  w.Key("hits");
  w.UInt(context_cache_.hits());
  w.Key("misses");
  w.UInt(context_cache_.misses());
  w.Key("evictions");
  w.UInt(context_cache_.evictions());
  w.Key("invalidations");
  w.UInt(context_cache_.invalidations());
  w.EndObject();
  w.Key("state_pool");
  w.BeginObject();
  w.Key("idle");
  w.UInt(state_pool_.idle_states());
  w.Key("created");
  w.UInt(state_pool_.created());
  w.Key("reused");
  w.UInt(state_pool_.reused());
  w.EndObject();
  w.Key("scratch_pool");
  w.BeginObject();
  w.Key("idle");
  w.UInt(scratch_pool_.idle_scratches());
  w.Key("created");
  w.UInt(scratch_pool_.created());
  w.Key("reused");
  w.UInt(scratch_pool_.reused());
  w.EndObject();
  w.Key("scheduler");
  w.BeginObject();
  w.Key("max_running");
  w.UInt(scheduler_.max_running());
  w.Key("running");
  w.UInt(scheduler_.running());
  w.Key("executed");
  w.UInt(scheduler_.executed_total());
  w.Key("single_flight_shared");
  w.UInt(scheduler_.shared_total());
  w.Key("batch_window_ms");
  w.Double(scheduler_.batch_window_ms());
  w.Key("batch_merged_queries");
  w.UInt(scheduler_.merged_total());
  w.Key("batch_epochs");
  w.UInt(scheduler_.batch_epochs_total());
  w.EndObject();
  w.Key("queries");
  w.UInt(queries_total_->Value());
  w.Key("errors");
  w.UInt(errors_total_->Value());
  w.Key("admission");
  w.BeginObject();
  w.Key("queue_depth");
  w.UInt(scheduler_.queue_depth());
  w.Key("in_flight");
  w.UInt(scheduler_.in_flight());
  w.Key("queue_high_water_mark");
  w.UInt(scheduler_.high_water_mark());
  w.Key("shed_requests");
  w.UInt(shed_total_->Value());
  w.Key("timed_out_queries");
  w.UInt(timeout_total_->Value());
  w.Key("degraded_answers");
  w.UInt(degraded_total_->Value());
  w.EndObject();
  w.EndObject();
  return HttpResponse::Json(std::move(w).Take());
}

void SearchService::RefreshScrapeMetrics() {
  std::lock_guard<std::mutex> lock(scrape_mu_);
  // Sources that keep their own monotonic counts are raised to their current
  // values (never decremented), so the registry equals the source exactly at
  // every quiescent scrape without double bookkeeping on the hot path.
  cache_hits_total_->AdvanceTo(cache_.hits());
  cache_misses_total_->AdvanceTo(cache_.misses());
  metrics_->GetCounter("ws_context_cache_hits_total")
      ->AdvanceTo(context_cache_.hits());
  metrics_->GetCounter("ws_context_cache_misses_total")
      ->AdvanceTo(context_cache_.misses());
  metrics_->GetCounter("ws_context_cache_evictions_total")
      ->AdvanceTo(context_cache_.evictions());
  metrics_->GetCounter("ws_server_single_flight_shared_total")
      ->AdvanceTo(scheduler_.shared_total());
  metrics_->GetCounter("ws_server_engine_executions_total")
      ->AdvanceTo(scheduler_.executed_total());
  if (server_ != nullptr) {
    http_requests_total_->AdvanceTo(server_->requests_served());
    http_rejected_total_->AdvanceTo(server_->rejected_connections());
    metrics_->GetGauge("ws_server_active_connections")
        ->Set(static_cast<double>(server_->active_connections()));
    metrics_->GetGauge("ws_server_live_worker_threads")
        ->Set(static_cast<double>(server_->live_worker_threads()));
    // Reactor counters (DESIGN.md §13). ws_server_open_connections is the
    // same quantity as ws_server_active_connections under its
    // reactor-era name; both stay exported.
    metrics_->GetGauge("ws_server_open_connections")
        ->Set(static_cast<double>(server_->active_connections()));
    metrics_->GetCounter("ws_server_accepted_connections_total")
        ->AdvanceTo(server_->accepted_connections());
    metrics_->GetCounter("ws_server_keepalive_reuse")
        ->AdvanceTo(server_->keepalive_reuse());
    metrics_->GetCounter("ws_server_idle_reaped_total")
        ->AdvanceTo(server_->idle_reaped());
    metrics_->GetCounter("ws_server_discarded_responses_total")
        ->AdvanceTo(server_->discarded_responses());
    metrics_->GetGauge("ws_server_buffers_outstanding")
        ->Set(static_cast<double>(server_->buffer_pool().outstanding()));
  }
  metrics_->GetCounter("ws_batch_merged_queries")
      ->AdvanceTo(scheduler_.merged_total());
  metrics_->GetCounter("ws_batch_epochs_total")
      ->AdvanceTo(scheduler_.batch_epochs_total());
  metrics_->GetGauge("ws_server_queue_depth")
      ->Set(static_cast<double>(scheduler_.queue_depth()));
  metrics_->GetGauge("ws_server_in_flight")
      ->Set(static_cast<double>(scheduler_.in_flight()));
  metrics_->GetGauge("ws_server_queue_high_water_mark")
      ->Set(static_cast<double>(scheduler_.high_water_mark()));
  metrics_->GetGauge("ws_server_running")
      ->Set(static_cast<double>(scheduler_.running()));
  metrics_->GetGauge("ws_server_cache_entries")
      ->Set(static_cast<double>(cache_.size()));
  metrics_->GetGauge("ws_context_cache_entries")
      ->Set(static_cast<double>(context_cache_.size()));
  metrics_->GetGauge("ws_server_state_pool_idle")
      ->Set(static_cast<double>(state_pool_.idle_states()));
  metrics_->GetGauge("ws_server_scratch_pool_idle")
      ->Set(static_cast<double>(scratch_pool_.idle_scratches()));
  if (live_ != nullptr) {
    metrics_->GetCounter("ws_live_updates_total")
        ->AdvanceTo(live_->updates_applied());
    metrics_->GetCounter("ws_live_update_mutations_total")
        ->AdvanceTo(live_->mutations_applied());
    metrics_->GetCounter("ws_live_update_rejected_total")
        ->AdvanceTo(live_->updates_rejected());
    metrics_->GetCounter("ws_live_compactions_total")
        ->AdvanceTo(live_->compactions());
    metrics_->GetCounter("ws_live_snapshots_published_total")
        ->AdvanceTo(live_->snapshots_published());
    metrics_->GetCounter("ws_live_snapshots_retired_total")
        ->AdvanceTo(live_->snapshots_retired());
    metrics_->GetGauge("ws_live_overlay_batches")
        ->Set(static_cast<double>(live_->overlay_depth()));
    metrics_->GetGauge("ws_live_overlay_bytes")
        ->Set(static_cast<double>(live_->overlay_bytes()));
    metrics_->GetGauge("ws_live_generation")
        ->Set(static_cast<double>(live_->generation()));
    metrics_->GetGauge("ws_live_version")
        ->Set(static_cast<double>(live_->version()));
    metrics_->GetGauge("ws_live_snapshots_live")
        ->Set(static_cast<double>(live_->snapshots_live()));
    if (live_->durable()) {
      metrics_->GetCounter("ws_wal_appends_total")
          ->AdvanceTo(live_->wal_appends());
      metrics_->GetCounter("ws_wal_fsyncs_total")
          ->AdvanceTo(live_->wal_fsyncs());
      metrics_->GetCounter("ws_wal_bytes_written_total")
          ->AdvanceTo(live_->wal_bytes());
      metrics_->GetCounter("ws_wal_rotations_total")
          ->AdvanceTo(live_->wal_rotations());
      metrics_->GetCounter("ws_wal_segments_deleted_total")
          ->AdvanceTo(live_->wal_segments_deleted());
      metrics_->GetGauge("ws_wal_last_seq")
          ->Set(static_cast<double>(live_->wal_last_seq()));
      metrics_->GetGauge("ws_wal_synced_seq")
          ->Set(static_cast<double>(live_->wal_synced_seq()));
      metrics_->GetGauge("ws_wal_base_seq")
          ->Set(static_cast<double>(live_->wal_base_seq()));
    }
  }
}

HttpResponse SearchService::HandleMetrics(const HttpRequest&) {
  RefreshScrapeMetrics();
  return HttpResponse{200, "text/plain; version=0.0.4",
                      metrics_->RenderPrometheus(), {}};
}

HttpResponse SearchService::HandleHealth(const HttpRequest&) {
  return HttpResponse::Text(200, "ok\n");
}

HttpResponse SearchService::HandleUpdate(const HttpRequest& req) {
  if (live_ == nullptr) {
    return HttpResponse{404, "text/plain", "not a live deployment\n", {}};
  }
  if (req.method != "POST") {
    errors_total_->Inc();
    return HttpResponse::BadRequest("POST a JSON update batch to /update\n");
  }
  Result<live::UpdateBatch> batch = ParseUpdateBody(req.body);
  if (!batch.ok()) {
    errors_total_->Inc();
    return HttpResponse::BadRequest(batch.status().ToString() + "\n");
  }
  live::SnapshotManager::ApplyResult applied;
  Status st = live_->Apply(*batch, &applied);
  if (!st.ok()) {
    errors_total_->Inc();
    JsonWriter w;
    w.BeginObject();
    w.Key("error");
    w.String(st.ToString());
    w.EndObject();
    // The whole batch was rejected atomically: nothing became visible. An
    // IO failure (durable mode: WAL append/fsync) is the server's fault,
    // not the client's.
    int status = st.code() == StatusCode::kNotFound    ? 404
                 : st.code() == StatusCode::kIoError   ? 500
                 : st.code() == StatusCode::kCorruption ? 500
                                                        : 400;
    return HttpResponse{status, "application/json", std::move(w).Take(), {}};
  }
  if (req.Param("compact") == "1") {
    Status cst = live_->CompactOnce();
    if (!cst.ok()) {
      // The apply itself succeeded (and was acknowledged durable per
      // `applied`); only the synchronous compaction failed — in durable
      // mode that is a real IO outcome, not just fault injection.
      errors_total_->Inc();
      JsonWriter w;
      w.BeginObject();
      w.Key("error");
      w.String("compaction failed: " + cst.ToString());
      w.Key("version");
      w.UInt(applied.version);
      w.Key("seq");
      w.UInt(applied.seq);
      w.Key("durable");
      w.Bool(applied.durable);
      w.EndObject();
      return HttpResponse{500, "application/json", std::move(w).Take(), {}};
    }
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("added");
  w.UInt(batch->add.size());
  w.Key("removed");
  w.UInt(batch->remove.size());
  w.Key("text_ops");
  w.UInt(batch->text.size());
  w.Key("version");
  w.UInt(applied.version);
  w.Key("generation");
  w.UInt(live_->generation());
  w.Key("overlay_batches");
  w.UInt(live_->overlay_depth());
  // Durability contract (README): `durable` is whether this batch was
  // fsynced before the acknowledgement; `seq` is its WAL identity (0 in
  // memory-only deployments).
  w.Key("seq");
  w.UInt(applied.seq);
  w.Key("durable");
  w.Bool(applied.durable);
  w.EndObject();
  return HttpResponse::Json(std::move(w).Take());
}

HttpResponse SearchService::HandleSnapshot(const HttpRequest&) {
  if (live_ == nullptr) {
    return HttpResponse{404, "text/plain", "not a live deployment\n", {}};
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("generation");
  w.UInt(live_->generation());
  w.Key("version");
  w.UInt(live_->version());
  w.Key("overlay_batches");
  w.UInt(live_->overlay_depth());
  w.Key("overlay_bytes");
  w.UInt(live_->overlay_bytes());
  w.Key("compaction_state");
  w.String(live_->compaction_state());
  w.Key("compactions");
  w.UInt(live_->compactions());
  w.Key("updates_applied");
  w.UInt(live_->updates_applied());
  w.Key("updates_rejected");
  w.UInt(live_->updates_rejected());
  w.Key("mutations_applied");
  w.UInt(live_->mutations_applied());
  w.Key("snapshots_published");
  w.UInt(live_->snapshots_published());
  w.Key("snapshots_retired");
  w.UInt(live_->snapshots_retired());
  w.Key("snapshots_live");
  w.UInt(live_->snapshots_live());
  w.Key("last_fold_ms");
  w.Double(live_->last_fold_ms());
  w.Key("last_publish_ms");
  w.Double(live_->last_publish_ms());
  w.EndObject();
  return HttpResponse::Json(std::move(w).Take());
}

}  // namespace wikisearch::server
