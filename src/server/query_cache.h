// Thread-safe LRU cache for rendered query results. The paper motivates
// interactive re-querying ("just as in Google web search"); repeated
// queries with identical parameters are served from memory.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace wikisearch::server {

class QueryCache {
 public:
  explicit QueryCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and refreshes its recency, or nullopt.
  std::optional<std::string> Get(const std::string& key);

  /// Inserts/overwrites; evicts the least recently used entry past
  /// capacity. A capacity of 0 disables caching.
  void Put(const std::string& key, std::string value);

  void Clear();

  size_t size() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace wikisearch::server
