// Nonblocking epoll reactor — the event-driven serving tier (DESIGN.md
// §13). N reactor threads each own a SO_REUSEPORT listener, an epoll set
// and the connections the kernel hashed to them; connection state never
// crosses threads. Blocking route handlers (the engine) run on a separate
// handler pool; completed responses are posted back to the owning reactor
// through an eventfd-signalled queue, rendered into pooled head buffers
// and drained on EPOLLOUT — in request order per connection, which is what
// makes HTTP/1.1 pipelining safe.
//
// Connection lifecycle (one state machine per fd):
//
//   accept → [reading] --parse--> [dispatched]* --completion--> [writing]
//      |         |  idle > limit        |  peer RST               |
//      |         +--------→ reap        +---------→ discard       |
//      +-- cap reached → inline 503                               |
//   [writing] --drained--> [reading]   (keep-alive)               |
//   [writing] --drained + close/error/EOF--> close  ←-------------+
//
// Abuse posture: a peer that trickles header bytes (slowloris) never
// refreshes the idle clock — only accept, response completion and write
// progress do — so it is reaped at idle_timeout_ms like a silent peer. A
// peer that pipelines without reading is throttled (EPOLLIN disarmed past
// max_pipeline unanswered requests) and reaped when its write side stalls
// past the same timeout.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "server/http_conn.h"

namespace wikisearch::server {

class EpollReactor {
 public:
  struct Options {
    /// Reactor (event-loop) threads, each with its own SO_REUSEPORT
    /// listener and epoll set. 1 is right for this box; more spreads
    /// accept load by kernel hash.
    int reactor_threads = 1;
    /// Threads running blocking route handlers (the engine). The reactor
    /// never blocks on a handler.
    int handler_threads = 8;
    /// Open-connection cap across all reactors; excess accepts get an
    /// inline 503 + Retry-After. 0 = unlimited.
    size_t max_connections = 0;
    /// A connection with no request in flight and no write progress for
    /// this long is reaped. 0 disables reaping.
    int idle_timeout_ms = 5000;
    /// Unanswered pipelined requests allowed per connection before the
    /// reactor stops reading from it (resumes as responses drain).
    size_t max_pipeline = 32;
    HttpConnParser::Limits limits;
  };

  EpollReactor() : EpollReactor(Options()) {}
  explicit EpollReactor(Options opts);
  ~EpollReactor();
  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  /// Registers a handler for an exact path (any method). Must be called
  /// before Start.
  void Route(const std::string& path, HttpHandler handler);

  /// Replaces the options wholesale. Must be called before Start.
  void SetOptions(const Options& opts);

  /// Binds 127.0.0.1:`port` (0 picks a free port; every reactor's listener
  /// binds the same resolved port via SO_REUSEPORT) and starts the reactor
  /// and handler threads.
  Status Start(uint16_t port);

  /// Stops handler threads first (running handlers finish; their responses
  /// are discarded), then the reactors; every connection fd is closed and
  /// every pooled buffer returned before this returns.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  // Counters. The gauges are exact at any quiescent instant; the totals
  // are monotonic for Counter::AdvanceTo bridging.
  uint64_t requests_served() const { return requests_.load(); }
  size_t open_connections() const { return open_connections_.load(); }
  uint64_t accepted_connections() const { return accepted_.load(); }
  uint64_t rejected_connections() const { return rejected_.load(); }
  uint64_t keepalive_reuse() const { return keepalive_reuse_.load(); }
  uint64_t idle_reaped() const { return idle_reaped_.load(); }
  /// Responses completed by a handler after their connection died.
  uint64_t discarded_responses() const { return discarded_.load(); }
  /// Alive server-owned threads (reactors + handlers); 0 after Stop.
  size_t live_threads() const { return live_threads_.load(); }

  const BufferPool& buffer_pool() const { return pool_; }

 private:
  // A response head buffer + body queued for writing on a connection.
  struct OutMsg {
    std::string head;  // pooled; returned on completion or teardown
    std::string body;
    size_t off = 0;  // bytes of head+body already on the wire
    bool close_after = false;
  };

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    HttpConnParser parser;
    uint64_t next_seq = 0;        // seq assigned to the next parsed request
    uint64_t next_write_seq = 0;  // seq whose response goes on the wire next
    uint64_t written = 0;         // responses fully written
    std::map<uint64_t, OutMsg> ready;  // completed out of order, waiting
    std::deque<OutMsg> outq;           // in order, being written
    bool stop_reading = false;  // close requested / parse error latched
    bool read_closed = false;   // peer EOF (half-close): flush, then close
    uint32_t events = 0;        // epoll interest currently armed
    std::chrono::steady_clock::time_point idle_base;
    uint64_t requests_on_conn = 0;

    Conn(const HttpConnParser::Limits& limits)
        : parser(limits) {}
  };

  // One reactor thread's private world + its two cross-thread mailboxes
  // (completions, stop) signalled through the eventfd.
  struct Loop {
    // Closes the three fds below. Destruction (loops_.clear() in Stop,
    // after the joins) is the ONLY place they are closed: the loop thread
    // must not close them itself, or Stop()'s eventfd wake-up write races
    // a loop that exited via a timeout — possibly onto a recycled fd.
    ~Loop();
    int epoll_fd = -1;
    int event_fd = -1;
    int listen_fd = -1;
    size_t index = 0;
    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
    std::thread thread;

    struct Completion {
      uint64_t conn_id;
      uint64_t seq;
      HttpResponse resp;
      bool keep_alive;
    };
    std::mutex mu;
    std::vector<Completion> completions;
  };

  struct Task {
    size_t loop_index = 0;
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    const HttpHandler* handler = nullptr;  // into routes_, fixed after Start
    HttpRequest req;
    bool keep_alive = true;
  };

  Status OpenListener(Loop* loop, uint16_t port, uint16_t* resolved);
  void RunLoop(Loop* loop);
  void HandlerMain();
  void PostCompletion(size_t loop_index, Loop::Completion completion);

  void AcceptReady(Loop* loop);
  void ReadReady(Loop* loop, Conn* conn);
  /// Parses as many buffered requests as the pipeline limit allows and
  /// dispatches them (handler tasks, or inline 404/parse-error replies).
  /// Returns true if parsing stopped because the pipeline limit was hit.
  bool DispatchParsed(Loop* loop, Conn* conn);
  /// Renders the response for `seq` into a pooled buffer and promotes any
  /// newly in-order responses to the write queue.
  void QueueResponse(Loop* loop, Conn* conn, uint64_t seq, HttpResponse resp,
                     bool keep_alive);
  /// Writes queued responses until the socket would block. Returns false
  /// if the connection was closed (peer gone, or close-after written).
  bool FlushWrites(Loop* loop, Conn* conn);
  /// Alternates parse/dispatch and write until neither can progress, then
  /// settles the connection: close on drained EOF, re-arm epoll interest.
  void Pump(Loop* loop, Conn* conn);
  void DrainCompletions(Loop* loop);
  void UpdateInterest(Loop* loop, Conn* conn);
  void CloseConn(Loop* loop, Conn* conn);
  void SweepIdle(Loop* loop);

  Options opts_;
  std::map<std::string, HttpHandler> routes_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Loop>> loops_;

  std::vector<std::thread> handlers_;
  std::mutex task_mu_;
  std::condition_variable task_cv_;
  std::deque<Task> tasks_;
  bool tasks_stop_ = false;

  BufferPool pool_;
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<uint64_t> requests_{0};
  std::atomic<size_t> open_connections_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> keepalive_reuse_{0};
  std::atomic<uint64_t> idle_reaped_{0};
  std::atomic<uint64_t> discarded_{0};
  std::atomic<size_t> live_threads_{0};
};

}  // namespace wikisearch::server
