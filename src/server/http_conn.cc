#include "server/http_conn.h"

#include <cctype>
#include <cstdlib>

namespace wikisearch::server {

namespace {

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Every '%' must introduce two hex digits. UrlDecode itself is lenient
/// (it leaves malformed escapes alone, which ParseQueryString callers rely
/// on); the strictness belongs at the protocol boundary, where a bad
/// escape in the request target is a client framing bug.
bool ValidPercentEncoding(std::string_view s) {
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size() || HexVal(s[i + 1]) < 0 || HexVal(s[i + 2]) < 0) {
        return false;
      }
      i += 2;
    }
  }
  return true;
}

/// Case-insensitive token search in a comma-separated Connection value.
bool ConnectionHasToken(std::string_view value, std::string_view token) {
  std::string lower = ToLower(value);
  size_t pos = 0;
  while (pos <= lower.size()) {
    size_t end = lower.find(',', pos);
    if (end == std::string::npos) end = lower.size();
    size_t b = pos, e = end;
    while (b < e && (lower[b] == ' ' || lower[b] == '\t')) ++b;
    while (e > b && (lower[e - 1] == ' ' || lower[e - 1] == '\t')) --e;
    if (lower.compare(b, e - b, token) == 0) return true;
    pos = end + 1;
  }
  return false;
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < s.size() && HexVal(s[i + 1]) >= 0 &&
               HexVal(s[i + 2]) >= 0) {
      out += static_cast<char>(HexVal(s[i + 1]) * 16 + HexVal(s[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQueryString(std::string_view qs) {
  std::map<std::string, std::string> params;
  size_t start = 0;
  while (start <= qs.size()) {
    size_t end = qs.find('&', start);
    if (end == std::string_view::npos) end = qs.size();
    std::string_view pair = qs.substr(start, end - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params[UrlDecode(pair)] = "";
      } else {
        params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    start = end + 1;
  }
  return params;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void AppendResponseHead(std::string* out, const HttpResponse& resp,
                        size_t content_length, bool keep_alive) {
  out->append("HTTP/1.1 ");
  out->append(std::to_string(resp.status));
  out->append(" ");
  out->append(HttpStatusText(resp.status));
  out->append("\r\nContent-Type: ");
  out->append(resp.content_type);
  out->append("\r\nContent-Length: ");
  out->append(std::to_string(content_length));
  for (const auto& [key, value] : resp.extra_headers) {
    out->append("\r\n");
    out->append(key);
    out->append(": ");
    out->append(value);
  }
  out->append(keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                         : "\r\nConnection: close\r\n\r\n");
}

std::string BufferPool::Get() {
  std::lock_guard<std::mutex> lock(mu_);
  ++outstanding_;
  if (!free_.empty()) {
    std::string buf = std::move(free_.back());
    free_.pop_back();
    ++reused_;
    return buf;
  }
  ++allocated_;
  return std::string();
}

void BufferPool::Put(std::string buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_ > 0) --outstanding_;
  if (free_.size() < max_retained_) {
    buf.clear();  // keeps capacity; the next Get appends into warm memory
    free_.push_back(std::move(buf));
  }
}

uint64_t BufferPool::allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_;
}

uint64_t BufferPool::reused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reused_;
}

size_t BufferPool::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

size_t BufferPool::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

void HttpConnParser::Feed(const char* data, size_t n) {
  if (errored_) return;  // bytes after a framing error are unparseable
  // Compact once the consumed prefix dominates, so a long-lived keep-alive
  // connection doesn't accrete every request it ever served.
  if (pos_ > 4096 && pos_ >= buf_.size() - pos_) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

HttpConnParser::Next HttpConnParser::Fail(int code, std::string message) {
  errored_ = true;
  error_code_ = code;
  error_message_ = std::move(message);
  return Next::kError;
}

HttpConnParser::Next HttpConnParser::TryNext(Request* out) {
  if (errored_) return Next::kError;
  // RFC 7230 §3.5: ignore CRLF preceding the request line (clients send
  // them between pipelined requests).
  while (pos_ + 1 < buf_.size() && buf_[pos_] == '\r' &&
         buf_[pos_ + 1] == '\n') {
    pos_ += 2;
  }
  if (pos_ >= buf_.size()) return Next::kNeedMore;

  // A bare LF anywhere in the head region is a framing error: we refuse to
  // guess whether the peer means it as a line ending. Scan only as far as
  // the head actually extends — bodies may carry any bytes.
  size_t head_end = buf_.find("\r\n\r\n", pos_);
  size_t scan_end = head_end == std::string::npos ? buf_.size() : head_end + 4;
  for (size_t i = pos_; i < scan_end; ++i) {
    if (buf_[i] == '\n' && (i == pos_ || buf_[i - 1] != '\r')) {
      return Fail(400, "bare LF line ending in request head");
    }
  }
  if (head_end == std::string::npos) {
    if (buf_.size() - pos_ > limits_.max_header_bytes) {
      return Fail(431, "request head exceeds " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    return Next::kNeedMore;
  }
  if (head_end - pos_ > limits_.max_header_bytes) {
    return Fail(431, "request head exceeds " +
                         std::to_string(limits_.max_header_bytes) + " bytes");
  }

  size_t content_length = 0;
  Request parsed;
  Next head = ParseHead(&parsed, &content_length);
  if (head != Next::kRequest) return head;

  if (content_length > limits_.max_body_bytes) {
    return Fail(413, "request body exceeds " +
                         std::to_string(limits_.max_body_bytes) + " bytes");
  }
  size_t body_start = head_end + 4;
  if (buf_.size() - body_start < content_length) return Next::kNeedMore;
  parsed.req.body = buf_.substr(body_start, content_length);
  pos_ = body_start + content_length;
  *out = std::move(parsed);
  return Next::kRequest;
}

HttpConnParser::Next HttpConnParser::ParseHead(Request* out,
                                               size_t* content_length) {
  // Precondition (checked by TryNext): [pos_, head_end) is CRLF-delimited
  // with no bare LF, so line splitting on "\r\n" is unambiguous.
  size_t head_end = buf_.find("\r\n\r\n", pos_);
  size_t line_end = buf_.find("\r\n", pos_);
  std::string_view request_line(buf_.data() + pos_, line_end - pos_);

  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1 || sp1 == 0) {
    return Fail(400, "malformed request line");
  }
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail(400, "unsupported HTTP version");
  }
  if (target.empty() || target[0] != '/') {
    return Fail(400, "malformed request target");
  }
  if (!ValidPercentEncoding(target)) {
    return Fail(400, "bad percent-encoding in request target");
  }

  out->req.method = std::string(method);
  size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) {
    out->req.path = UrlDecode(target);
  } else {
    out->req.path = UrlDecode(target.substr(0, qmark));
    out->req.params = ParseQueryString(target.substr(qmark + 1));
  }

  bool have_content_length = false;
  *content_length = 0;
  size_t pos = line_end + 2;
  while (pos < head_end) {
    size_t eol = buf_.find("\r\n", pos);
    std::string_view line(buf_.data() + pos, eol - pos);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail(400, "malformed header line");
    }
    std::string key = ToLower(line.substr(0, colon));
    size_t vstart = colon + 1;
    while (vstart < line.size() &&
           (line[vstart] == ' ' || line[vstart] == '\t')) {
      ++vstart;
    }
    std::string value(line.substr(vstart));
    if (key == "content-length") {
      if (value.empty()) return Fail(400, "empty Content-Length");
      size_t parsed = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return Fail(400, "non-numeric Content-Length");
        }
        parsed = parsed * 10 + static_cast<size_t>(c - '0');
        if (parsed > (size_t{1} << 40)) {
          return Fail(413, "Content-Length out of range");
        }
      }
      if (have_content_length && parsed != *content_length) {
        return Fail(400, "conflicting Content-Length headers");
      }
      have_content_length = true;
      *content_length = parsed;
    } else if (key == "transfer-encoding") {
      return Fail(501, "Transfer-Encoding not supported");
    }
    out->req.headers[key] = std::move(value);
    pos = eol + 2;
  }

  // Keep-alive: HTTP/1.1 defaults on, opt out with "Connection: close";
  // HTTP/1.0 defaults off, opt in with "Connection: keep-alive".
  auto conn = out->req.headers.find("connection");
  if (version == "HTTP/1.1") {
    out->keep_alive =
        conn == out->req.headers.end() ||
        !ConnectionHasToken(conn->second, "close");
  } else {
    out->keep_alive = conn != out->req.headers.end() &&
                      ConnectionHasToken(conn->second, "keep-alive");
  }
  return Next::kRequest;
}

}  // namespace wikisearch::server
