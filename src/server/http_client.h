// Minimal blocking HTTP client for tests, the throughput bench, and simple
// scripting against a running wikisearch_server.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace wikisearch::server {

struct HttpClientResponse {
  int status = 0;
  std::string body;
};

/// Performs a GET of `target` (path + optional query string, e.g.
/// "/search?q=xml") against 127.0.0.1:`port`.
Result<HttpClientResponse> HttpGet(uint16_t port, const std::string& target);

}  // namespace wikisearch::server
