// Minimal blocking HTTP client for tests, the throughput bench, and simple
// scripting against a running wikisearch_server.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wikisearch::server {

struct HttpClientResponse {
  int status = 0;
  std::string body;
  std::map<std::string, std::string> headers;  // lower-cased keys
};

/// Performs a GET of `target` (path + optional query string, e.g.
/// "/search?q=xml") against 127.0.0.1:`port`.
Result<HttpClientResponse> HttpGet(uint16_t port, const std::string& target);

struct RetryPolicy {
  /// Total attempts (first try included); must be >= 1.
  int max_attempts = 4;
  /// Sleep before retry r is base * 2^r, capped at max_backoff_ms, plus up
  /// to 50% deterministic jitter so synchronized clients fan out.
  double base_backoff_ms = 25.0;
  double max_backoff_ms = 500.0;
  /// Seed of the jitter stream; vary per client for decorrelated retries.
  uint64_t jitter_seed = 1;
};

struct RetryingGetResult {
  HttpClientResponse response;
  /// Attempts actually made (1 = first try succeeded).
  int attempts = 1;
};

/// HttpGet that retries on overload: 429/503 responses and connection
/// failures are retried with capped exponential backoff + jitter; any other
/// status returns immediately. Fails with kResourceExhausted if the final
/// attempt still sees 429/503, or the last connect error otherwise.
Result<RetryingGetResult> HttpGetWithRetry(uint16_t port,
                                           const std::string& target,
                                           const RetryPolicy& policy = {});

/// A persistent HTTP/1.1 connection: keep-alive request/response cycles,
/// pipelining (send N, then read N), raw byte injection for protocol
/// tests, half-close, and RST abort. Response framing is Content-Length
/// based (which is all the server emits). Not thread-safe.
class HttpConnection {
 public:
  HttpConnection() = default;
  ~HttpConnection() { Close(); }
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  Status Connect(uint16_t port);
  bool connected() const { return fd_ >= 0; }

  /// Sends a GET of `target` without a Connection header (keep-alive by
  /// HTTP/1.1 default). Does not read the response.
  Status SendGet(const std::string& target);

  /// Sends bytes exactly as given — the conformance tests' byte-level
  /// delivery primitive (1-byte writes, split headers, pipelined bursts).
  Status SendRaw(std::string_view bytes);

  /// Reads the next response off the connection; trailing bytes of a
  /// pipelined burst stay buffered for the next call.
  Result<HttpClientResponse> ReadResponse();

  /// SendGet + ReadResponse.
  Result<HttpClientResponse> Get(const std::string& target);

  /// Half-close: shuts down the write side, leaving reads open (the
  /// server must still deliver pending responses).
  void ShutdownWrite();

  /// Aborts with RST (SO_LINGER zero) — the deterministic "client died"
  /// signal the abuse tests use.
  void Abort();

  void Close();

 private:
  int fd_ = -1;
  std::string buf_;  // read-ahead past the previous response
};

}  // namespace wikisearch::server
