// Minimal blocking HTTP client for tests, the throughput bench, and simple
// scripting against a running wikisearch_server.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace wikisearch::server {

struct HttpClientResponse {
  int status = 0;
  std::string body;
};

/// Performs a GET of `target` (path + optional query string, e.g.
/// "/search?q=xml") against 127.0.0.1:`port`.
Result<HttpClientResponse> HttpGet(uint16_t port, const std::string& target);

struct RetryPolicy {
  /// Total attempts (first try included); must be >= 1.
  int max_attempts = 4;
  /// Sleep before retry r is base * 2^r, capped at max_backoff_ms, plus up
  /// to 50% deterministic jitter so synchronized clients fan out.
  double base_backoff_ms = 25.0;
  double max_backoff_ms = 500.0;
  /// Seed of the jitter stream; vary per client for decorrelated retries.
  uint64_t jitter_seed = 1;
};

struct RetryingGetResult {
  HttpClientResponse response;
  /// Attempts actually made (1 = first try succeeded).
  int attempts = 1;
};

/// HttpGet that retries on overload: 429/503 responses and connection
/// failures are retried with capped exponential backoff + jitter; any other
/// status returns immediately. Fails with kResourceExhausted if the final
/// attempt still sees 429/503, or the last connect error otherwise.
Result<RetryingGetResult> HttpGetWithRetry(uint16_t port,
                                           const std::string& target,
                                           const RetryPolicy& policy = {});

}  // namespace wikisearch::server
