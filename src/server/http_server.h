// Minimal HTTP/1.1 server on POSIX sockets — the substrate for the
// repository's stand-in of the paper's online WikiSearch service. Scope is
// deliberately small: GET/POST routing, query-string parsing,
// percent-decoding, fixed-size bodies, one worker thread per accepted
// connection (queries are CPU-bound and short).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace wikisearch::server {

struct HttpRequest {
  std::string method;                           // "GET", "POST"
  std::string path;                             // decoded, without query
  std::map<std::string, std::string> params;    // decoded query parameters
  std::map<std::string, std::string> headers;   // lower-cased keys
  std::string body;

  /// Parameter lookup with default.
  std::string Param(const std::string& key, std::string fallback = "") const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Additional response headers (e.g. Retry-After on 429/503).
  std::vector<std::pair<std::string, std::string>> extra_headers;

  static HttpResponse Json(std::string body) {
    return HttpResponse{200, "application/json", std::move(body), {}};
  }
  static HttpResponse Text(int status, std::string body) {
    return HttpResponse{status, "text/plain", std::move(body), {}};
  }
  static HttpResponse NotFound() { return Text(404, "not found\n"); }
  static HttpResponse BadRequest(std::string why) {
    return Text(400, std::move(why));
  }
  /// Load-shedding reply: 429 with a Retry-After hint in seconds.
  static HttpResponse TooManyRequests(int retry_after_s) {
    HttpResponse resp = Text(429, "server overloaded, retry later\n");
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(retry_after_s));
    return resp;
  }
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Percent-decodes a URL component ("%20" -> ' ', '+' -> ' ').
std::string UrlDecode(std::string_view s);

/// Parses "a=1&b=x%20y" into a decoded key/value map.
std::map<std::string, std::string> ParseQueryString(std::string_view qs);

/// Parses a raw HTTP request (request line + headers + optional body, which
/// must already be fully present in `raw`). Exposed for testing.
Result<HttpRequest> ParseHttpRequest(const std::string& raw);

/// Blocking multi-threaded HTTP server.
class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path (any method). Must be called
  /// before Start.
  void Route(const std::string& path, HttpHandler handler);

  /// Caps concurrently-served connections; excess accepts are answered 503
  /// with Retry-After directly from the accept loop, so worker threads stay
  /// bounded. Must be called before Start. 0 means unlimited.
  void SetMaxConnections(size_t cap) { max_connections_ = cap; }

  /// Per-connection socket recv/send timeout; a stalled peer cannot pin a
  /// worker thread forever. Must be called before Start. 0 disables.
  void SetSocketTimeoutMs(int timeout_ms) { socket_timeout_ms_ = timeout_ms; }

  /// Binds 127.0.0.1:`port` (0 picks a free port) and starts the accept
  /// loop on a background thread.
  Status Start(uint16_t port);

  /// Port actually bound (useful with port 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes the listener and joins all threads.
  void Stop();

  bool running() const { return running_.load(); }

  /// Requests served so far.
  uint64_t requests_served() const { return requests_.load(); }

  /// Connections currently being served by worker threads.
  size_t active_connections() const { return active_connections_.load(); }

  /// Accepts rejected with 503 because the connection cap was reached.
  uint64_t rejected_connections() const { return rejected_.load(); }

  /// Worker threads alive right now (served + not yet reaped). Bounded by
  /// the connection cap plus the reap lag of one accept iteration.
  size_t live_worker_threads() const;

 private:
  void AcceptLoop();
  void ServeConnection(uint64_t id, int fd);
  void ReapFinishedWorkers();

  std::map<std::string, HttpHandler> routes_;
  // Atomic: Stop() invalidates the fd while the accept thread reads it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  size_t max_connections_ = 0;
  int socket_timeout_ms_ = 5000;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> active_connections_{0};
  std::thread accept_thread_;
  // Worker threads keyed by a monotonic id. A worker announces completion by
  // appending its id to finished_ids_; the accept loop (and Stop) joins and
  // erases announced workers, so the map never grows beyond the set of live
  // connections — unlike the previous grow-only vector.
  uint64_t next_worker_id_ = 0;
  std::map<uint64_t, std::thread> workers_;
  std::vector<uint64_t> finished_ids_;
  mutable std::mutex workers_mu_;
};

}  // namespace wikisearch::server
