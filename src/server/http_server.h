// Minimal HTTP/1.1 server on POSIX sockets — the substrate for the
// repository's stand-in of the paper's online WikiSearch service. Scope is
// deliberately small: GET/POST routing, query-string parsing,
// percent-decoding, fixed-size bodies, one worker thread per accepted
// connection (queries are CPU-bound and short).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace wikisearch::server {

struct HttpRequest {
  std::string method;                           // "GET", "POST"
  std::string path;                             // decoded, without query
  std::map<std::string, std::string> params;    // decoded query parameters
  std::map<std::string, std::string> headers;   // lower-cased keys
  std::string body;

  /// Parameter lookup with default.
  std::string Param(const std::string& key, std::string fallback = "") const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse Json(std::string body) {
    return HttpResponse{200, "application/json", std::move(body)};
  }
  static HttpResponse Text(int status, std::string body) {
    return HttpResponse{status, "text/plain", std::move(body)};
  }
  static HttpResponse NotFound() { return Text(404, "not found\n"); }
  static HttpResponse BadRequest(std::string why) {
    return Text(400, std::move(why));
  }
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Percent-decodes a URL component ("%20" -> ' ', '+' -> ' ').
std::string UrlDecode(std::string_view s);

/// Parses "a=1&b=x%20y" into a decoded key/value map.
std::map<std::string, std::string> ParseQueryString(std::string_view qs);

/// Parses a raw HTTP request (request line + headers + optional body, which
/// must already be fully present in `raw`). Exposed for testing.
Result<HttpRequest> ParseHttpRequest(const std::string& raw);

/// Blocking multi-threaded HTTP server.
class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path (any method). Must be called
  /// before Start.
  void Route(const std::string& path, HttpHandler handler);

  /// Binds 127.0.0.1:`port` (0 picks a free port) and starts the accept
  /// loop on a background thread.
  Status Start(uint16_t port);

  /// Port actually bound (useful with port 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes the listener and joins all threads.
  void Stop();

  bool running() const { return running_.load(); }

  /// Requests served so far.
  uint64_t requests_served() const { return requests_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, HttpHandler> routes_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex workers_mu_;
};

}  // namespace wikisearch::server
