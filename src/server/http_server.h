// The serving tier's HTTP server: a thin façade over the epoll reactor
// (epoll_reactor.h, DESIGN.md §13) keeping the API the rest of the code
// grew up with — Route/Start/Stop/SetMaxConnections and the counters the
// /metrics bridge reconciles against. Compared to the retired
// thread-per-connection implementation (preserved as ThreadedHttpServer
// for the bench baseline) this one holds a connection in a few hundred
// bytes instead of a thread stack, keeps HTTP/1.1 connections alive,
// accepts pipelined requests, and answers them strictly in order.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/epoll_reactor.h"
#include "server/http_conn.h"

namespace wikisearch::server {

/// Parses a raw HTTP request (request line + headers + optional body, which
/// must already be fully present in `raw`). Exposed for testing; the server
/// itself parses incrementally via HttpConnParser.
Result<HttpRequest> ParseHttpRequest(const std::string& raw);

/// Event-driven HTTP server (epoll reactor under the hood).
class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path (any method). Must be called
  /// before Start.
  void Route(const std::string& path, HttpHandler handler) {
    reactor_.Route(path, std::move(handler));
  }

  /// Caps concurrently-open connections; excess accepts are answered 503
  /// with Retry-After inline from the reactor. Must be called before
  /// Start. 0 means unlimited.
  void SetMaxConnections(size_t cap) { opts_.max_connections = cap; }

  /// Idle timeout: a connection with no request in flight and no write
  /// progress for this long is reaped (slowloris peers never refresh the
  /// clock, so they fall under this too). Must be called before Start.
  /// 0 disables. Kept under its historical name; the reactor has no
  /// per-socket blocking timeouts.
  void SetSocketTimeoutMs(int timeout_ms) {
    opts_.idle_timeout_ms = timeout_ms;
  }
  void SetIdleTimeoutMs(int timeout_ms) {
    opts_.idle_timeout_ms = timeout_ms;
  }

  /// Reactor (event-loop) threads, each with its own SO_REUSEPORT
  /// listener. Must be called before Start.
  void SetReactorThreads(int n) { opts_.reactor_threads = n; }

  /// Threads running blocking route handlers. Must be called before Start.
  void SetHandlerThreads(int n) { opts_.handler_threads = n; }

  /// Unanswered pipelined requests allowed per connection before the
  /// reactor stops reading from it. Must be called before Start.
  void SetMaxPipeline(size_t n) { opts_.max_pipeline = n; }

  /// Binds 127.0.0.1:`port` (0 picks a free port) and starts the reactor
  /// and handler threads.
  Status Start(uint16_t port) {
    reactor_.SetOptions(opts_);
    return reactor_.Start(port);
  }

  /// Port actually bound (useful with port 0).
  uint16_t port() const { return reactor_.port(); }

  /// Stops handler threads, then reactors; all connection fds closed.
  void Stop() { reactor_.Stop(); }

  bool running() const { return reactor_.running(); }

  /// Responses fully written to clients (keep-alive: many per connection).
  uint64_t requests_served() const { return reactor_.requests_served(); }

  /// Connections open right now (the ws_server_open_connections gauge).
  size_t active_connections() const { return reactor_.open_connections(); }

  /// Accepts rejected with 503 because the connection cap was reached.
  uint64_t rejected_connections() const {
    return reactor_.rejected_connections();
  }

  /// Alive server-owned threads (reactors + handlers); 0 after Stop. The
  /// old thread-per-connection meaning — workers not yet reaped — has no
  /// counterpart here: the thread count is fixed at Start, independent of
  /// connection count.
  size_t live_worker_threads() const { return reactor_.live_threads(); }

  // Reactor-specific counters, bridged into /metrics by SearchService.
  uint64_t accepted_connections() const {
    return reactor_.accepted_connections();
  }
  uint64_t keepalive_reuse() const { return reactor_.keepalive_reuse(); }
  uint64_t idle_reaped() const { return reactor_.idle_reaped(); }
  uint64_t discarded_responses() const {
    return reactor_.discarded_responses();
  }
  const BufferPool& buffer_pool() const { return reactor_.buffer_pool(); }

 private:
  EpollReactor::Options opts_;
  EpollReactor reactor_;
};

}  // namespace wikisearch::server
