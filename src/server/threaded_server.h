// The original thread-per-connection HTTP server, kept as the measured
// baseline for the reactor (bench_throughput's thread-per-conn columns) —
// one worker thread and one request per accepted connection, response
// always `Connection: close`. New serving code should use HttpServer (the
// epoll reactor façade, DESIGN.md §13); this class exists so the capacity
// and QPS comparison stays honest against real code, not a description.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/http_conn.h"

namespace wikisearch::server {

class ThreadedHttpServer {
 public:
  ThreadedHttpServer() = default;
  ~ThreadedHttpServer();

  ThreadedHttpServer(const ThreadedHttpServer&) = delete;
  ThreadedHttpServer& operator=(const ThreadedHttpServer&) = delete;

  /// Registers a handler for an exact path (any method). Must be called
  /// before Start.
  void Route(const std::string& path, HttpHandler handler);

  /// Caps concurrently-served connections; excess accepts are answered 503
  /// with Retry-After directly from the accept loop, so worker threads stay
  /// bounded. Must be called before Start. 0 means unlimited.
  void SetMaxConnections(size_t cap) { max_connections_ = cap; }

  /// Per-connection socket recv/send timeout; a stalled peer cannot pin a
  /// worker thread forever. Must be called before Start. 0 disables.
  void SetSocketTimeoutMs(int timeout_ms) { socket_timeout_ms_ = timeout_ms; }

  /// Binds 127.0.0.1:`port` (0 picks a free port) and starts the accept
  /// loop on a background thread.
  Status Start(uint16_t port);

  /// Port actually bound (useful with port 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes the listener and joins all threads.
  void Stop();

  bool running() const { return running_.load(); }

  uint64_t requests_served() const { return requests_.load(); }
  size_t active_connections() const { return active_connections_.load(); }
  uint64_t rejected_connections() const { return rejected_.load(); }

  /// Worker threads alive right now (served + not yet reaped). Bounded by
  /// the connection cap plus the reap lag of one accept iteration.
  size_t live_worker_threads() const;

 private:
  void AcceptLoop();
  void ServeConnection(uint64_t id, int fd);
  void ReapFinishedWorkers();

  std::map<std::string, HttpHandler> routes_;
  // Atomic: Stop() invalidates the fd while the accept thread reads it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  size_t max_connections_ = 0;
  int socket_timeout_ms_ = 5000;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> active_connections_{0};
  std::thread accept_thread_;
  // Worker threads keyed by a monotonic id. A worker announces completion by
  // appending its id to finished_ids_; the accept loop (and Stop) joins and
  // erases announced workers, so the map never grows beyond the set of live
  // connections.
  uint64_t next_worker_id_ = 0;
  std::map<uint64_t, std::thread> workers_;
  std::vector<uint64_t> finished_ids_;
  mutable std::mutex workers_mu_;
};

}  // namespace wikisearch::server
