#include "server/query_scheduler.h"

#include <algorithm>
#include <thread>

namespace wikisearch::server {

namespace {

size_t HardwareWidth() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace

QueryScheduler::QueryScheduler() : QueryScheduler(Options()) {}

QueryScheduler::QueryScheduler(Options opts)
    : opts_(opts),
      resolved_max_running_(opts.max_running != 0 ? opts.max_running
                                                  : HardwareWidth()),
      resolved_total_threads_(opts.total_threads > 0
                                  ? opts.total_threads
                                  : static_cast<int>(HardwareWidth())) {}

int QueryScheduler::GrantThreads(size_t running) const {
  int per = std::max(1, resolved_total_threads_ /
                            static_cast<int>(std::max<size_t>(running, 1)));
  if (opts_.max_threads_per_query > 0) {
    per = std::min(per, opts_.max_threads_per_query);
  }
  return per;
}

QueryScheduler::Outcome QueryScheduler::Run(const std::string& key,
                                            const SearchFn& fn) {
  std::shared_ptr<Flight> flight;
  std::shared_ptr<BatchEpoch> epoch;  // batched path only
  bool leader = true;
  int threads = 1;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Admission: shedding and the high-water mark are decided atomically,
    // so a shed request can never inflate in_flight or the HWM (the exact
    // accounting the old fetch_add/check/fetch_sub window could not give).
    if (opts_.queue_depth != 0 && in_flight_ + 1 > opts_.queue_depth) {
      ++shed_;
      return Outcome{Outcome::Kind::kShed, nullptr};
    }
    ++in_flight_;
    ++admitted_;
    hwm_ = std::max(hwm_, in_flight_);

    if (opts_.single_flight && !key.empty()) {
      auto it = flights_.find(key);
      if (it != flights_.end()) {
        flight = it->second;
        leader = false;
        ++shared_;
      } else {
        flight = std::make_shared<Flight>();
        flights_.emplace(key, flight);
      }
    }
    if (leader && opts_.batch_window_ms <= 0) {
      // Unbatched path — exactly the pre-batching scheduler.
      slot_cv_.wait(lock, [&] { return running_ < resolved_max_running_; });
      ++running_;
      ++executed_;
      threads = GrantThreads(running_);
    } else if (leader) {
      // Micro-batching: join the collecting epoch, or open a new one and
      // become its owner (responsible for dispatching it).
      bool owner = false;
      if (open_epoch_ != nullptr && !open_epoch_->dispatched &&
          open_epoch_->size < std::max<size_t>(opts_.batch_limit, 1)) {
        epoch = open_epoch_;
        ++epoch->size;
        if (epoch->size >= std::max<size_t>(opts_.batch_limit, 1)) {
          slot_cv_.notify_all();  // the owner can dispatch early
        }
      } else {
        epoch = std::make_shared<BatchEpoch>();
        epoch->size = 1;
        epoch->opened = std::chrono::steady_clock::now();
        open_epoch_ = epoch;
        owner = true;
      }
      if (owner) {
        const size_t limit = std::max<size_t>(opts_.batch_limit, 1);
        const auto deadline =
            epoch->opened + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    opts_.batch_window_ms));
        while (!epoch->dispatched) {
          const bool due = epoch->size >= limit ||
                           std::chrono::steady_clock::now() >= deadline;
          if (due && running_ < resolved_max_running_) {
            // Dispatch: the whole epoch takes ONE running slot; every
            // member is an engine execution, and all but the first were
            // merged instead of queueing for their own slot.
            ++running_;
            executing_members_ += epoch->size;
            executed_ += epoch->size;
            ++epochs_;
            merged_ += epoch->size - 1;
            epoch->grant = GrantThreads(executing_members_);
            epoch->dispatched = true;
            if (open_epoch_ == epoch) open_epoch_.reset();
            slot_cv_.notify_all();  // wake the members
            break;
          }
          // Saturated past the window: keep the epoch open and collecting
          // until a slot frees — that is the merge-under-load behavior.
          if (due) {
            slot_cv_.wait(lock);
          } else {
            slot_cv_.wait_until(lock, deadline);
          }
        }
      } else {
        slot_cv_.wait(lock, [&] { return epoch->dispatched; });
      }
      threads = epoch->grant;
    }
  }

  if (!leader) {
    std::shared_ptr<const Result<SearchResult>> shared_result;
    {
      std::unique_lock<std::mutex> fl(flight->mu);
      flight->cv.wait(fl, [&] { return flight->done; });
      shared_result = flight->result;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    return Outcome{Outcome::Kind::kShared, std::move(shared_result)};
  }

  auto result =
      std::make_shared<const Result<SearchResult>>(fn(threads));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch != nullptr) {
      // The epoch's slot is released by its last finisher; earlier
      // finishers only shrink the grant divisor for future epochs.
      --executing_members_;
      if (++epoch->finished == epoch->size) --running_;
    } else {
      --running_;
    }
    --in_flight_;
    // Erase before publishing: a same-key request arriving from here on
    // starts a fresh flight (single-flight dedups in-flight work only;
    // replaying finished results is the response cache's job).
    if (flight != nullptr) flights_.erase(key);
    slot_cv_.notify_all();
  }
  if (flight != nullptr) {
    std::lock_guard<std::mutex> fl(flight->mu);
    flight->result = result;
    flight->done = true;
    flight->cv.notify_all();
  }
  return Outcome{Outcome::Kind::kRan, std::move(result)};
}

void QueryScheduler::set_queue_depth(size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.queue_depth = depth;
}

size_t QueryScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opts_.queue_depth;
}

void QueryScheduler::set_max_running(size_t max_running) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    resolved_max_running_ =
        max_running != 0 ? max_running : HardwareWidth();
  }
  slot_cv_.notify_all();  // a raised cap may unblock waiting leaders
}

size_t QueryScheduler::max_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resolved_max_running_;
}

void QueryScheduler::set_thread_budget(int total_threads,
                                       int max_threads_per_query) {
  std::lock_guard<std::mutex> lock(mu_);
  resolved_total_threads_ = total_threads > 0
                                ? total_threads
                                : static_cast<int>(HardwareWidth());
  opts_.max_threads_per_query = max_threads_per_query;
}

void QueryScheduler::set_single_flight(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.single_flight = on;
}

void QueryScheduler::set_batch_window_ms(double window_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    opts_.batch_window_ms = window_ms;
  }
  slot_cv_.notify_all();  // owners waiting on a stale window re-evaluate
}

double QueryScheduler::batch_window_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opts_.batch_window_ms;
}

void QueryScheduler::set_batch_limit(size_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.batch_limit = limit;
}

size_t QueryScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t QueryScheduler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t QueryScheduler::high_water_mark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hwm_;
}

uint64_t QueryScheduler::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

uint64_t QueryScheduler::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t QueryScheduler::executed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

uint64_t QueryScheduler::shared_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shared_;
}

uint64_t QueryScheduler::merged_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_;
}

uint64_t QueryScheduler::batch_epochs_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_;
}

}  // namespace wikisearch::server
