// The WikiSearch query service: wires a SearchEngine into HTTP routes and
// renders answers as JSON — the repository's counterpart of the paper's
// online system at dbgpucluster-2.d2.comp.nus.edu.sg.
//
// Routes:
//   GET /search?q=<keywords>[&k=][&alpha=][&lambda=][&engine=cpu|seq|dyn|gpu]
//                [&deadline_ms=][&trace=1]
//   GET /stats      — graph, index, cache and server counters (JSON)
//   GET /metrics    — Prometheus text exposition of the metric registry
//   GET /healthz    — liveness probe
//
// Admission control: at most `queue_depth` searches may be in flight
// (running or waiting on the engine mutex); excess requests are shed
// immediately with 429 + Retry-After instead of queueing unboundedly.
//
// Observability (DESIGN.md §8): all service counters live in one
// obs::MetricRegistry — the same registry the engine reports per-query
// counters and latency histograms into — so /metrics, /stats and the
// accessors below can never disagree; there is a single source per count.
// `trace=1` records the query's stage spans and attaches them to the
// response as Chrome trace_event JSON under "trace" (such responses bypass
// the cache in both directions).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "core/engine.h"
#include "core/state_pool.h"
#include "obs/metrics.h"
#include "server/http_server.h"
#include "server/query_cache.h"

namespace wikisearch::server {

/// Renders a SearchResult as the service's JSON document.
std::string SearchResultToJson(const KnowledgeGraph& graph,
                               const SearchResult& result);

class SearchService {
 public:
  /// Graph and index must outlive the service. `metrics` is the registry
  /// service and engine counters report into; null means a registry owned
  /// by this service (so two services never share counters). Pass
  /// &obs::MetricRegistry::Global() to export into the process registry.
  SearchService(const KnowledgeGraph* graph, const InvertedIndex* index,
                SearchOptions defaults = {}, size_t cache_capacity = 256,
                obs::MetricRegistry* metrics = nullptr);

  /// Registers /search, /stats, /metrics and /healthz on the server. The
  /// server pointer is retained so /metrics can bridge its connection
  /// counters into the registry at scrape time.
  void RegisterRoutes(HttpServer* server);

  // Handlers are public so tests can drive them without sockets.
  HttpResponse HandleSearch(const HttpRequest& req);
  HttpResponse HandleStats(const HttpRequest& req);
  HttpResponse HandleMetrics(const HttpRequest& req);
  HttpResponse HandleHealth(const HttpRequest& req);

  const QueryCache& cache() const { return cache_; }
  obs::MetricRegistry* metrics() const { return metrics_; }

  /// Caps searches in flight (running or queued on the engine); excess
  /// requests get 429 + Retry-After. 0 means unlimited.
  void SetQueueDepth(size_t depth) { queue_depth_.store(depth); }

  uint64_t shed_requests() const { return shed_total_->Value(); }
  uint64_t timed_out_queries() const { return timeout_total_->Value(); }
  uint64_t degraded_answers() const { return degraded_total_->Value(); }
  size_t queue_high_water_mark() const { return queue_hwm_.load(); }

 private:
  /// Bridges sources that keep their own monotonic counts (QueryCache, the
  /// HttpServer) into the registry and refreshes the point-in-time gauges.
  /// Called on every /metrics scrape, serialized by scrape_mu_.
  void RefreshScrapeMetrics();

  const KnowledgeGraph* graph_;
  const InvertedIndex* index_;
  SearchOptions defaults_;
  QueryCache cache_;
  // SearchEngine instances are not safe for concurrent queries (shared
  // worker pool); the HTTP layer spawns a thread per connection, so searches
  // are serialized here. Queries are milliseconds; this matches the paper's
  // single-GPU deployment where queries queue at the device anyway.
  std::mutex engine_mu_;
  // Service-scoped state pool: queries reuse one epoch-versioned SearchState
  // instead of re-allocating n*q bytes each (declared before engine_, which
  // holds a pointer into it).
  SearchStatePool state_pool_;
  SearchEngine engine_;

  // Observability. The registry owns the counters; the service holds
  // resolved pointers (stable for the registry's lifetime) so the request
  // path never takes the registry lock.
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;  // when ctor got null
  obs::MetricRegistry* metrics_;
  obs::Counter* queries_total_;
  obs::Counter* errors_total_;
  obs::Counter* shed_total_;
  obs::Counter* timeout_total_;
  obs::Counter* degraded_total_;
  obs::Counter* cache_hits_total_;
  obs::Counter* cache_misses_total_;
  obs::Counter* http_requests_total_;
  obs::Counter* http_rejected_total_;
  std::mutex scrape_mu_;
  HttpServer* server_ = nullptr;  // set by RegisterRoutes

  // Admission control. These stay raw atomics (not gauges): the CAS
  // high-water-mark update and the fetch_add/fetch_sub in-flight window need
  // read-modify-write semantics; gauges mirror them at scrape time.
  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> queue_hwm_{0};
};

}  // namespace wikisearch::server
