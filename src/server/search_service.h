// The WikiSearch query service: wires a SearchEngine into HTTP routes and
// renders answers as JSON — the repository's counterpart of the paper's
// online system at dbgpucluster-2.d2.comp.nus.edu.sg.
//
// Routes:
//   GET /search?q=<keywords>[&k=][&alpha=][&lambda=][&engine=cpu|seq|dyn|gpu]
//                [&deadline_ms=]
//   GET /stats      — graph, index, cache and server counters
//   GET /healthz    — liveness probe
//
// Admission control: at most `queue_depth` searches may be in flight
// (running or waiting on the engine mutex); excess requests are shed
// immediately with 429 + Retry-After instead of queueing unboundedly.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "core/engine.h"
#include "core/state_pool.h"
#include "server/http_server.h"
#include "server/query_cache.h"

namespace wikisearch::server {

/// Renders a SearchResult as the service's JSON document.
std::string SearchResultToJson(const KnowledgeGraph& graph,
                               const SearchResult& result);

class SearchService {
 public:
  /// Graph and index must outlive the service.
  SearchService(const KnowledgeGraph* graph, const InvertedIndex* index,
                SearchOptions defaults = {}, size_t cache_capacity = 256);

  /// Registers /search, /stats and /healthz on the server.
  void RegisterRoutes(HttpServer* server);

  // Handlers are public so tests can drive them without sockets.
  HttpResponse HandleSearch(const HttpRequest& req);
  HttpResponse HandleStats(const HttpRequest& req);
  HttpResponse HandleHealth(const HttpRequest& req);

  const QueryCache& cache() const { return cache_; }

  /// Caps searches in flight (running or queued on the engine); excess
  /// requests get 429 + Retry-After. 0 means unlimited.
  void SetQueueDepth(size_t depth) { queue_depth_.store(depth); }

  uint64_t shed_requests() const { return shed_requests_.load(); }
  uint64_t timed_out_queries() const { return timed_out_queries_.load(); }
  uint64_t degraded_answers() const { return degraded_answers_.load(); }
  size_t queue_high_water_mark() const { return queue_hwm_.load(); }

 private:
  const KnowledgeGraph* graph_;
  const InvertedIndex* index_;
  SearchOptions defaults_;
  QueryCache cache_;
  // SearchEngine instances are not safe for concurrent queries (shared
  // worker pool); the HTTP layer spawns a thread per connection, so searches
  // are serialized here. Queries are milliseconds; this matches the paper's
  // single-GPU deployment where queries queue at the device anyway.
  std::mutex engine_mu_;
  // Service-scoped state pool: queries reuse one epoch-versioned SearchState
  // instead of re-allocating n*q bytes each (declared before engine_, which
  // holds a pointer into it).
  SearchStatePool state_pool_;
  SearchEngine engine_;
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  // Admission control + degradation telemetry.
  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> queue_hwm_{0};
  std::atomic<uint64_t> shed_requests_{0};
  std::atomic<uint64_t> timed_out_queries_{0};
  std::atomic<uint64_t> degraded_answers_{0};
};

}  // namespace wikisearch::server
