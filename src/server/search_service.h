// The WikiSearch query service: wires a SearchEngine into HTTP routes and
// renders answers as JSON — the repository's counterpart of the paper's
// online system at dbgpucluster-2.d2.comp.nus.edu.sg.
//
// Routes:
//   GET /search?q=<keywords>[&k=][&alpha=][&lambda=][&engine=cpu|seq|dyn|gpu]
//                [&deadline_ms=][&trace=1]
//   GET /stats      — graph, index, cache and server counters (JSON)
//   GET /metrics    — Prometheus text exposition of the metric registry
//   GET /healthz    — liveness probe
//
// Concurrent serving path (DESIGN.md §9): there is no engine mutex. The
// SearchEngine is const/thread-safe — every byte of per-query state comes
// from a SearchStatePool or ThreadPoolCache lease — so queries from the
// HTTP layer's per-connection threads run concurrently. A QueryScheduler
// decides, under one lock, which requests are admitted (queue_depth, exact
// high-water mark), which share an identical in-flight execution
// (single-flight), and how many intra-query worker threads each running
// query is granted. A QueryContextCache memoizes per-keyword-set posting
// lists and activation levels across queries.
//
// Observability (DESIGN.md §8): all service counters live in one
// obs::MetricRegistry — the same registry the engine reports per-query
// counters and latency histograms into — so /metrics, /stats and the
// accessors below can never disagree; there is a single source per count.
// `trace=1` records the query's stage spans and attaches them to the
// response as Chrome trace_event JSON under "trace" (such responses bypass
// the response cache and single-flight: spans belong to one execution).
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "core/context_cache.h"
#include "core/engine.h"
#include "core/state_pool.h"
#include "live/snapshot_manager.h"
#include "obs/metrics.h"
#include "server/http_server.h"
#include "server/query_cache.h"
#include "server/query_scheduler.h"

namespace wikisearch::server {

/// Renders a SearchResult as the service's JSON document. Takes a GraphView
/// so live-mode handlers can render against a pinned overlay state; static
/// callers pass the KnowledgeGraph (implicit conversion).
std::string SearchResultToJson(const GraphView& graph,
                               const SearchResult& result);

/// Parses the POST /update JSON body:
///   {"add": [["s","p","o"], ...], "remove": [["s","p","o"], ...],
///    "text": [["node","text"], ...]}
/// All three keys optional. Exposed for tests and the bench driver.
Result<live::UpdateBatch> ParseUpdateBody(const std::string& body);

class SearchService {
 public:
  /// Graph and index must outlive the service. `metrics` is the registry
  /// service and engine counters report into; null means a registry owned
  /// by this service (so two services never share counters). Pass
  /// &obs::MetricRegistry::Global() to export into the process registry.
  /// `context_cache_capacity` bounds the memoized query contexts (0
  /// disables the context cache).
  SearchService(const KnowledgeGraph* graph, const InvertedIndex* index,
                SearchOptions defaults = {}, size_t cache_capacity = 256,
                obs::MetricRegistry* metrics = nullptr,
                size_t context_cache_capacity = 256);

  /// Live-mode service: every query executes against a KbHandle pinned from
  /// `live` (DESIGN.md §10), POST /update and GET /snapshot are served, and
  /// the manager's publish callback is hooked to invalidate both caches
  /// exactly when a compaction bumps the generation. `live` must outlive
  /// the service and must not have a publish callback of its own.
  SearchService(live::SnapshotManager* live, SearchOptions defaults = {},
                size_t cache_capacity = 256,
                obs::MetricRegistry* metrics = nullptr,
                size_t context_cache_capacity = 256);

  /// Registers /search, /stats, /metrics and /healthz on the server (plus
  /// /update and /snapshot in live mode). The server pointer is retained so
  /// /metrics can bridge its connection counters into the registry at
  /// scrape time.
  void RegisterRoutes(HttpServer* server);

  // Handlers are public so tests can drive them without sockets.
  HttpResponse HandleSearch(const HttpRequest& req);
  HttpResponse HandleStats(const HttpRequest& req);
  HttpResponse HandleMetrics(const HttpRequest& req);
  HttpResponse HandleHealth(const HttpRequest& req);
  /// Live mode only (404 otherwise): applies a mutation batch;
  /// `?compact=1` folds and publishes synchronously before responding.
  HttpResponse HandleUpdate(const HttpRequest& req);
  /// Live mode only (404 otherwise): snapshot/overlay/compaction status.
  HttpResponse HandleSnapshot(const HttpRequest& req);

  const QueryCache& cache() const { return cache_; }
  const QueryContextCache& context_cache() const { return context_cache_; }
  obs::MetricRegistry* metrics() const { return metrics_; }

  /// Caps searches in flight (running, waiting for a slot, or joined to a
  /// shared flight); excess requests get 429 + Retry-After. 0 = unlimited.
  void SetQueueDepth(size_t depth) { scheduler_.set_queue_depth(depth); }
  /// Caps simultaneous engine executions. 0 = hardware concurrency.
  void SetMaxConcurrency(size_t n) { scheduler_.set_max_running(n); }
  /// Toggles single-flight deduplication of identical in-flight queries.
  void SetSingleFlight(bool on) { scheduler_.set_single_flight(on); }
  /// Sets the shared intra-query thread budget and the per-query cap.
  void SetThreadBudget(int total_threads, int max_threads_per_query) {
    scheduler_.set_thread_budget(total_threads, max_threads_per_query);
  }
  /// Cross-request micro-batching window: distinct queries admitted within
  /// `ms` (or while the engine is saturated) execute as one batch epoch.
  /// 0 (the default) disables batching — the exact unbatched path.
  void SetBatchWindow(double ms) { scheduler_.set_batch_window_ms(ms); }
  /// Queries per batch epoch before it dispatches regardless of window.
  void SetBatchLimit(size_t limit) { scheduler_.set_batch_limit(limit); }
  /// Drops memoized query contexts and rejects in-flight re-population;
  /// call after the graph or index is rebuilt in place.
  void InvalidateContextCache() { context_cache_.Invalidate(); }

  uint64_t shed_requests() const { return shed_total_->Value(); }
  uint64_t timed_out_queries() const { return timeout_total_->Value(); }
  uint64_t degraded_answers() const { return degraded_total_->Value(); }
  size_t in_flight() const { return scheduler_.in_flight(); }
  size_t queue_high_water_mark() const {
    return scheduler_.high_water_mark();
  }
  uint64_t single_flight_shared() const { return scheduler_.shared_total(); }
  uint64_t batch_merged_queries() const { return scheduler_.merged_total(); }
  uint64_t batch_epochs() const { return scheduler_.batch_epochs_total(); }

 private:
  /// Bridges sources that keep their own monotonic counts (QueryCache, the
  /// scheduler, the context cache, the HttpServer) into the registry and
  /// refreshes the point-in-time gauges. Called on every /metrics scrape,
  /// serialized by scrape_mu_.
  void RefreshScrapeMetrics();

  /// The KB state this request executes against: a pinned live handle, or a
  /// version-0 handle over the bound graph/index in static mode.
  KbHandle CurrentHandle() const;

  const KnowledgeGraph* graph_;  // null in live mode
  const InvertedIndex* index_;   // null in live mode
  live::SnapshotManager* live_ = nullptr;  // null in static mode
  SearchOptions defaults_;
  QueryCache cache_;
  // Per-query engine state only ever comes from these pools' leases
  // (DESIGN.md §9) — that is what lets one engine serve concurrent
  // queries with no mutex. Declared before engine_, which holds pointers
  // into them.
  SearchStatePool state_pool_;
  ExtractionScratchPool scratch_pool_;
  QueryContextCache context_cache_;
  SearchEngine engine_;
  QueryScheduler scheduler_;

  // Observability. The registry owns the counters; the service holds
  // resolved pointers (stable for the registry's lifetime) so the request
  // path never takes the registry lock.
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;  // when ctor got null
  obs::MetricRegistry* metrics_;
  obs::Counter* queries_total_;
  obs::Counter* errors_total_;
  obs::Counter* shed_total_;
  obs::Counter* timeout_total_;
  obs::Counter* degraded_total_;
  obs::Counter* cache_hits_total_;
  obs::Counter* cache_misses_total_;
  obs::Counter* http_requests_total_;
  obs::Counter* http_rejected_total_;
  std::mutex scrape_mu_;
  HttpServer* server_ = nullptr;  // set by RegisterRoutes
};

}  // namespace wikisearch::server
