#include "server/epoll_reactor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace wikisearch::server {

namespace {

// epoll user-data tags. Connection ids start above these.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kEventFdTag = 1;

}  // namespace

EpollReactor::EpollReactor(Options opts)
    : opts_(opts), next_conn_id_(2) {
  if (opts_.reactor_threads < 1) opts_.reactor_threads = 1;
  if (opts_.handler_threads < 1) opts_.handler_threads = 1;
  if (opts_.max_pipeline < 1) opts_.max_pipeline = 1;
}

EpollReactor::~EpollReactor() { Stop(); }

void EpollReactor::Route(const std::string& path, HttpHandler handler) {
  WS_CHECK(!running_.load());
  routes_[path] = std::move(handler);
}

void EpollReactor::SetOptions(const Options& opts) {
  WS_CHECK(!running_.load());
  opts_ = opts;
  if (opts_.reactor_threads < 1) opts_.reactor_threads = 1;
  if (opts_.handler_threads < 1) opts_.handler_threads = 1;
  if (opts_.max_pipeline < 1) opts_.max_pipeline = 1;
}

Status EpollReactor::OpenListener(Loop* loop, uint16_t port,
                                  uint16_t* resolved) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int opt = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));
  // Every reactor binds its own listener to the same port; the kernel
  // hashes incoming connections across them, so accept load spreads with
  // no shared accept lock.
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &opt, sizeof(opt));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("bind() failed (port in use?)");
  }
  if (::listen(fd, 512) < 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *resolved = ntohs(addr.sin_port);
  loop->listen_fd = fd;
  return Status::OK();
}

EpollReactor::Loop::~Loop() {
  if (listen_fd >= 0) ::close(listen_fd);
  if (event_fd >= 0) ::close(event_fd);
  if (epoll_fd >= 0) ::close(epoll_fd);
}

Status EpollReactor::Start(uint16_t port) {
  WS_CHECK(!running_.load());
  stopping_.store(false);
  tasks_stop_ = false;

  uint16_t resolved = port;
  for (int i = 0; i < opts_.reactor_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    // The first bind resolves port 0 to a concrete port; the rest must
    // join it exactly or SO_REUSEPORT balancing silently splits the port.
    Status st = OpenListener(loop.get(), resolved, &resolved);
    if (!st.ok()) {
      loops_.clear();  // ~Loop closes whatever was opened so far
      return st;
    }
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    WS_CHECK(loop->epoll_fd >= 0 && loop->event_fd >= 0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->listen_fd, &ev);
    ev.data.u64 = kEventFdTag;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  port_ = resolved;
  running_.store(true);
  for (int i = 0; i < opts_.handler_threads; ++i) {
    handlers_.emplace_back([this] { HandlerMain(); });
  }
  for (size_t i = 0; i < loops_.size(); ++i) {
    Loop* loop = loops_[i].get();
    loop->index = i;
    loop->thread = std::thread([this, loop] { RunLoop(loop); });
  }
  return Status::OK();
}

void EpollReactor::Stop() {
  if (!running_.exchange(false)) return;
  // Handlers first: a running handler finishes and posts its completion
  // (harmlessly — the reactors are still draining); queued-but-unstarted
  // tasks are dropped with their connections.
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks_stop_ = true;
    tasks_.clear();
  }
  task_cv_.notify_all();
  for (auto& h : handlers_) h.join();
  handlers_.clear();

  stopping_.store(true);
  for (auto& loop : loops_) {
    uint64_t one = 1;
    ssize_t ignored = ::write(loop->event_fd, &one, sizeof(one));
    (void)ignored;
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  loops_.clear();
}

void EpollReactor::PostCompletion(size_t loop_index,
                                  Loop::Completion completion) {
  Loop* loop = loops_[loop_index].get();
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->completions.push_back(std::move(completion));
  }
  uint64_t one = 1;
  ssize_t ignored = ::write(loop->event_fd, &one, sizeof(one));
  (void)ignored;
}

void EpollReactor::HandlerMain() {
  live_threads_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(task_mu_);
      task_cv_.wait(lock, [&] { return tasks_stop_ || !tasks_.empty(); });
      if (tasks_stop_) break;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    HttpResponse resp = (*task.handler)(task.req);
    PostCompletion(task.loop_index,
                   Loop::Completion{task.conn_id, task.seq, std::move(resp),
                                    task.keep_alive});
  }
  live_threads_.fetch_sub(1, std::memory_order_relaxed);
}

void EpollReactor::AcceptReady(Loop* loop) {
  for (;;) {
    int fd = ::accept4(loop->listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    if (opts_.max_connections != 0 &&
        open_connections_.load(std::memory_order_relaxed) >=
            opts_.max_connections) {
      // Shed inline from the reactor: no connection state is created, so
      // an accept flood past the cap costs one rendered 503 each.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp =
          HttpResponse::Text(503, "connection limit reached, retry later\n");
      resp.extra_headers.emplace_back("Retry-After", "1");
      std::string out;
      AppendResponseHead(&out, resp, resp.body.size(), /*keep_alive=*/false);
      out += resp.body;
      ssize_t ignored = ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
      (void)ignored;  // best effort: the peer may already be gone
      ::close(fd);
      continue;
    }
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>(opts_.limits);
    conn->fd = fd;
    conn->id = id;
    conn->idle_base = std::chrono::steady_clock::now();
    conn->events = EPOLLIN | EPOLLRDHUP;
    epoll_event ev{};
    ev.events = conn->events;
    ev.data.u64 = id;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    loop->conns.emplace(id, std::move(conn));
  }
}

void EpollReactor::CloseConn(Loop* loop, Conn* conn) {
  // Undelivered responses (completed but unwritten, or mid-write) die with
  // the connection; their pooled buffers go back, never leaked.
  discarded_.fetch_add(conn->ready.size() + conn->outq.size(),
                       std::memory_order_relaxed);
  for (auto& [seq, msg] : conn->ready) pool_.Put(std::move(msg.head));
  for (auto& msg : conn->outq) pool_.Put(std::move(msg.head));
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  loop->conns.erase(conn->id);  // destroys *conn
}

void EpollReactor::QueueResponse(Loop* loop, Conn* conn, uint64_t seq,
                                 HttpResponse resp, bool keep_alive) {
  (void)loop;
  bool ka = keep_alive && !resp.close_connection;
  OutMsg msg;
  msg.head = pool_.Get();
  AppendResponseHead(&msg.head, resp, resp.body.size(), ka);
  msg.body = std::move(resp.body);
  msg.close_after = !ka;
  conn->ready.emplace(seq, std::move(msg));
  // Promote everything that is now in order: pipelined responses go on the
  // wire strictly in request order no matter when handlers finish.
  while (!conn->ready.empty() &&
         conn->ready.begin()->first == conn->next_write_seq) {
    conn->outq.push_back(std::move(conn->ready.begin()->second));
    conn->ready.erase(conn->ready.begin());
    ++conn->next_write_seq;
  }
}

bool EpollReactor::DispatchParsed(Loop* loop, Conn* conn) {
  while (!conn->stop_reading) {
    if (conn->next_seq - conn->written >= opts_.max_pipeline) {
      return true;  // parse-ahead full; resume as responses drain
    }
    HttpConnParser::Request parsed;
    HttpConnParser::Next next = conn->parser.TryNext(&parsed);
    if (next == HttpConnParser::Next::kNeedMore) return false;
    if (next == HttpConnParser::Next::kError) {
      // The byte stream has no trustworthy request boundary anymore:
      // answer (in order, after any pipelined predecessors) and close.
      uint64_t seq = conn->next_seq++;
      conn->stop_reading = true;
      HttpResponse err = HttpResponse::Text(
          conn->parser.error_code(), conn->parser.error_message() + "\n");
      err.close_connection = true;
      QueueResponse(loop, conn, seq, std::move(err), /*keep_alive=*/false);
      return false;
    }
    uint64_t seq = conn->next_seq++;
    ++conn->requests_on_conn;
    if (conn->requests_on_conn > 1) {
      keepalive_reuse_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!parsed.keep_alive) conn->stop_reading = true;
    auto it = routes_.find(parsed.req.path);
    if (it == routes_.end()) {
      QueueResponse(loop, conn, seq, HttpResponse::NotFound(),
                    parsed.keep_alive);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(task_mu_);
      tasks_.push_back(Task{loop->index, conn->id, seq, &it->second,
                            std::move(parsed.req), parsed.keep_alive});
    }
    task_cv_.notify_one();
  }
  return false;
}

bool EpollReactor::FlushWrites(Loop* loop, Conn* conn) {
  while (!conn->outq.empty()) {
    OutMsg& msg = conn->outq.front();
    const size_t head_size = msg.head.size();
    const size_t total = head_size + msg.body.size();
    if (msg.off >= total) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      ++conn->written;
      conn->idle_base = std::chrono::steady_clock::now();
      pool_.Put(std::move(msg.head));
      bool close_after = msg.close_after;
      conn->outq.pop_front();
      if (close_after) {
        CloseConn(loop, conn);
        return false;
      }
      continue;
    }
    // Zero-copy gather: the rendered head and the handler's body are sent
    // from where they already live.
    iovec iov[2];
    int iov_count = 0;
    if (msg.off < head_size) {
      iov[iov_count++] = {msg.head.data() + msg.off, head_size - msg.off};
      if (!msg.body.empty()) {
        iov[iov_count++] = {msg.body.data(), msg.body.size()};
      }
    } else {
      size_t body_off = msg.off - head_size;
      iov[iov_count++] = {msg.body.data() + body_off,
                          msg.body.size() - body_off};
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<size_t>(iov_count);
    ssize_t n = ::sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      // EPIPE/ECONNRESET: the peer is gone; everything undelivered is
      // discarded and no further write is attempted on the dead fd.
      CloseConn(loop, conn);
      return false;
    }
    msg.off += static_cast<size_t>(n);
    conn->idle_base = std::chrono::steady_clock::now();
  }
  return true;
}

void EpollReactor::Pump(Loop* loop, Conn* conn) {
  for (;;) {
    bool throttled = DispatchParsed(loop, conn);
    if (!FlushWrites(loop, conn)) return;  // connection closed
    bool under_limit =
        conn->next_seq - conn->written < opts_.max_pipeline;
    if (!(throttled && under_limit)) break;
  }
  if (conn->read_closed && conn->outq.empty() &&
      conn->next_write_seq == conn->next_seq) {
    // Peer EOF and every accepted request answered and flushed: a
    // half-closed connection is held open exactly until its responses are
    // delivered.
    CloseConn(loop, conn);
    return;
  }
  UpdateInterest(loop, conn);
}

void EpollReactor::UpdateInterest(Loop* loop, Conn* conn) {
  uint32_t want = EPOLLRDHUP;
  bool under_limit = conn->next_seq - conn->written < opts_.max_pipeline;
  if (!conn->stop_reading && !conn->read_closed && under_limit) {
    want |= EPOLLIN;
  }
  if (!conn->outq.empty()) want |= EPOLLOUT;
  if (want != conn->events) {
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = conn->id;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->events = want;
  }
}

void EpollReactor::ReadReady(Loop* loop, Conn* conn) {
  char buf[16384];
  for (;;) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      // Bytes pipelined after a Connection: close request (or a framing
      // error) are discarded, not parsed.
      if (!conn->stop_reading) {
        conn->parser.Feed(buf, static_cast<size_t>(n));
      }
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      conn->read_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(loop, conn);  // ECONNRESET and friends
    return;
  }
  Pump(loop, conn);
}

void EpollReactor::SweepIdle(Loop* loop) {
  if (opts_.idle_timeout_ms <= 0) return;
  auto now = std::chrono::steady_clock::now();
  auto limit = std::chrono::milliseconds(opts_.idle_timeout_ms);
  std::vector<uint64_t> reap;
  for (auto& [id, conn] : loop->conns) {
    if (now - conn->idle_base <= limit) continue;
    // A connection whose requests are still in the engine (accepted, not
    // yet written, nothing write-stalled) is working, not idle — never
    // reap it. Everything else past the limit is either silent, trickling
    // header bytes (slowloris — partial reads do not refresh idle_base),
    // or not reading its responses (write-stalled).
    bool engine_pending =
        conn->outq.empty() && conn->next_write_seq < conn->next_seq;
    if (engine_pending) continue;
    reap.push_back(id);
  }
  for (uint64_t id : reap) {
    auto it = loop->conns.find(id);
    if (it == loop->conns.end()) continue;
    idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(loop, it->second.get());
  }
}

void EpollReactor::DrainCompletions(Loop* loop) {
  std::vector<Loop::Completion> batch;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    batch.swap(loop->completions);
  }
  for (Loop::Completion& c : batch) {
    auto it = loop->conns.find(c.conn_id);
    if (it == loop->conns.end()) {
      // The client disconnected while the engine ran: the result is
      // dropped here, before any buffer is borrowed or fd written.
      discarded_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Conn* conn = it->second.get();
    QueueResponse(loop, conn, c.seq, std::move(c.resp), c.keep_alive);
    Pump(loop, conn);
  }
}

void EpollReactor::RunLoop(Loop* loop) {
  live_threads_.fetch_add(1, std::memory_order_relaxed);
  const int sweep_ms =
      opts_.idle_timeout_ms > 0
          ? std::clamp(opts_.idle_timeout_ms / 4, 10, 250)
          : 250;
  auto last_sweep = std::chrono::steady_clock::now();
  std::vector<epoll_event> events(128);
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(loop->epoll_fd, events.data(),
                         static_cast<int>(events.size()), sweep_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (tag == kListenerTag) {
        AcceptReady(loop);
        continue;
      }
      if (tag == kEventFdTag) {
        uint64_t v;
        ssize_t ignored = ::read(loop->event_fd, &v, sizeof(v));
        (void)ignored;
        DrainCompletions(loop);
        continue;
      }
      // Look up by id, not pointer: a completion processed earlier in this
      // batch may have closed the connection already (ids never recycle).
      auto it = loop->conns.find(tag);
      if (it == loop->conns.end()) continue;
      Conn* conn = it->second.get();
      if (ev & EPOLLERR) {
        CloseConn(loop, conn);
        continue;
      }
      if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) {
        ReadReady(loop, conn);
        it = loop->conns.find(tag);
        if (it == loop->conns.end()) continue;
        conn = it->second.get();
      }
      if (ev & EPOLLOUT) Pump(loop, conn);
    }
    auto now = std::chrono::steady_clock::now();
    if (now - last_sweep >= std::chrono::milliseconds(sweep_ms)) {
      SweepIdle(loop);
      last_sweep = now;
    }
  }
  // Teardown on the owning thread: every connection fd is closed and every
  // pooled buffer returned before Stop() unblocks. The listener/event/epoll
  // fds stay open — Stop() may still be writing the eventfd to wake other
  // loops; ~Loop closes them after every thread is joined.
  std::vector<uint64_t> ids;
  ids.reserve(loop->conns.size());
  for (auto& [id, conn] : loop->conns) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = loop->conns.find(id);
    if (it != loop->conns.end()) CloseConn(loop, it->second.get());
  }
  live_threads_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace wikisearch::server
