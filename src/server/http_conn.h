// Per-connection HTTP/1.1 machinery for the event-driven serving tier
// (DESIGN.md §13): the shared request/response types, a pool of reusable
// output buffers, and an incremental request parser that accepts input in
// arbitrary fragments — a request may arrive one byte at a time, or sixteen
// pipelined requests may arrive in one read. The parser is a state machine
// over an internal buffer; it never blocks and never copies payload bytes
// more than once (append on Feed, slice on completion).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wikisearch::server {

struct HttpRequest {
  std::string method;                           // "GET", "POST"
  std::string path;                             // decoded, without query
  std::map<std::string, std::string> params;    // decoded query parameters
  std::map<std::string, std::string> headers;   // lower-cased keys
  std::string body;

  /// Parameter lookup with default.
  std::string Param(const std::string& key, std::string fallback = "") const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Additional response headers (e.g. Retry-After on 429/503).
  std::vector<std::pair<std::string, std::string>> extra_headers;
  /// Force `Connection: close` on this response even if the client asked
  /// for keep-alive (set on framing errors, where the request boundary on
  /// the connection can no longer be trusted).
  bool close_connection = false;

  static HttpResponse Json(std::string body) {
    return HttpResponse{200, "application/json", std::move(body), {}, false};
  }
  static HttpResponse Text(int status, std::string body) {
    return HttpResponse{status, "text/plain", std::move(body), {}, false};
  }
  static HttpResponse NotFound() { return Text(404, "not found\n"); }
  static HttpResponse BadRequest(std::string why) {
    return Text(400, std::move(why));
  }
  /// Load-shedding reply: 429 with a Retry-After hint in seconds.
  static HttpResponse TooManyRequests(int retry_after_s) {
    HttpResponse resp = Text(429, "server overloaded, retry later\n");
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(retry_after_s));
    return resp;
  }
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Percent-decodes a URL component ("%20" -> ' ', '+' -> ' ').
std::string UrlDecode(std::string_view s);

/// Parses "a=1&b=x%20y" into a decoded key/value map.
std::map<std::string, std::string> ParseQueryString(std::string_view qs);

const char* HttpStatusText(int status);

/// Renders the status line + headers of `resp` into `out` (appends; the
/// body is NOT appended — the writer sends it from resp.body directly, so
/// large JSON bodies are never copied into the connection buffer).
/// `keep_alive` selects the Connection header value.
void AppendResponseHead(std::string* out, const HttpResponse& resp,
                        size_t content_length, bool keep_alive);

/// Pool of reusable byte buffers for rendered response heads. Connections
/// borrow a buffer per response and return it once the bytes are on the
/// wire (or the connection dies); the pool retains up to `max_retained`
/// empty buffers. `outstanding()` is the leak detector the abuse tests
/// reconcile to zero.
class BufferPool {
 public:
  explicit BufferPool(size_t max_retained = 256)
      : max_retained_(max_retained) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  std::string Get();
  void Put(std::string buf);

  uint64_t allocated() const;   ///< buffers created fresh
  uint64_t reused() const;      ///< Get() served from the free list
  size_t outstanding() const;   ///< borrowed and not yet returned
  size_t retained() const;      ///< idle buffers held by the pool

 private:
  mutable std::mutex mu_;
  std::vector<std::string> free_;
  size_t max_retained_;
  uint64_t allocated_ = 0;
  uint64_t reused_ = 0;
  size_t outstanding_ = 0;
};

/// Incremental HTTP/1.1 request parser. Feed() appends raw bytes; TryNext()
/// extracts at most one complete request per call, so the caller controls
/// the parse-ahead depth (pipelining). The parser is strict where the
/// framing matters: LF-only line endings, malformed request lines, bad
/// percent-encoding in the target, non-numeric or conflicting
/// Content-Length are all hard 400s (431/413 for oversized header/body) —
/// after an error the connection's byte stream has no trustworthy request
/// boundary, so the parser latches the error and the connection must be
/// closed after the error response.
class HttpConnParser {
 public:
  struct Limits {
    size_t max_header_bytes = 16 * 1024;   // request line + headers
    size_t max_body_bytes = 4 * 1024 * 1024;
  };

  struct Request {
    HttpRequest req;
    /// Keep-alive decision from the request: HTTP/1.1 unless
    /// "Connection: close"; HTTP/1.0 only with "Connection: keep-alive".
    bool keep_alive = true;
  };

  enum class Next {
    kRequest,   ///< *out holds a complete request
    kNeedMore,  ///< no complete request buffered yet
    kError,     ///< framing error; error_code()/error_message() describe it
  };

  HttpConnParser() = default;
  explicit HttpConnParser(Limits limits) : limits_(limits) {}

  /// Appends raw bytes from the socket.
  void Feed(const char* data, size_t n);

  /// Extracts the next complete request, if any.
  Next TryNext(Request* out);

  /// HTTP status for the latched error (400, 413 or 431).
  int error_code() const { return error_code_; }
  const std::string& error_message() const { return error_message_; }

  /// Bytes buffered but not yet consumed by a complete request.
  size_t buffered_bytes() const { return buf_.size() - pos_; }
  /// True when the buffer holds a partial (incomplete) request — the state
  /// a slowloris peer keeps a connection in forever.
  bool mid_request() const { return buffered_bytes() > 0 && !errored_; }

 private:
  Next Fail(int code, std::string message);
  Next ParseHead(Request* out, size_t* content_length);

  Limits limits_;
  std::string buf_;
  size_t pos_ = 0;  // consume offset into buf_
  bool errored_ = false;
  int error_code_ = 0;
  std::string error_message_;
};

}  // namespace wikisearch::server
