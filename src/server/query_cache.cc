#include "server/query_cache.h"

namespace wikisearch::server {

std::optional<std::string> QueryCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void QueryCache::Put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace wikisearch::server
