#include "live/manifest.h"

#include <cstdlib>
#include <string_view>

#include "common/crc32.h"
#include "common/fsio.h"
#include "common/json.h"

namespace wikisearch::live {

namespace {

// Shared two-line shape for MANIFEST and CLEAN: JSON + its CRC32.
std::string WithChecksumLine(std::string json) {
  uint32_t crc = Crc32(json.data(), json.size());
  json += '\n';
  json += std::to_string(crc);
  json += '\n';
  return json;
}

Result<JsonValue> ParseChecksummedFile(const std::string& path) {
  std::string data;
  WS_RETURN_NOT_OK(ReadFileToString(path, &data));
  size_t nl = data.find('\n');
  if (nl == std::string::npos) {
    return Status::Corruption(path + ": missing checksum line");
  }
  std::string_view json(data.data(), nl);
  size_t nl2 = data.find('\n', nl + 1);
  std::string crc_line =
      data.substr(nl + 1, (nl2 == std::string::npos ? data.size() : nl2) -
                              nl - 1);
  char* end = nullptr;
  unsigned long long stored = std::strtoull(crc_line.c_str(), &end, 10);
  if (end == crc_line.c_str() || *end != '\0') {
    return Status::Corruption(path + ": malformed checksum line");
  }
  if (Crc32(json.data(), json.size()) != static_cast<uint32_t>(stored)) {
    return Status::Corruption(path + ": checksum mismatch");
  }
  auto parsed = JsonParse(json);
  if (!parsed.ok()) {
    return Status::Corruption(path + ": " + parsed.status().message());
  }
  return parsed;
}

Result<uint64_t> GetU64(const JsonValue& v, const char* key,
                        const std::string& path) {
  const JsonValue* f = v.Find(key);
  if (f == nullptr || !f->is_number()) {
    return Status::Corruption(path + ": missing field " + key);
  }
  return static_cast<uint64_t>(f->number);
}

}  // namespace

Status WriteManifest(const std::string& dir, const Manifest& m,
                     const FaultHook& fault) {
  if (fault) fault("manifest:write");
  JsonWriter w;
  w.BeginObject();
  w.Key("format");
  w.UInt(m.format);
  w.Key("generation");
  w.UInt(m.generation);
  w.Key("snapshot");
  w.String(m.snapshot_file);
  w.Key("last_included_seq");
  w.UInt(m.last_included_seq);
  w.Key("version");
  w.UInt(m.version);
  w.EndObject();
  return WriteFileAtomic(dir + "/" + kManifestFile,
                         WithChecksumLine(std::move(w).Take()));
}

Result<Manifest> ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFile;
  auto v = ParseChecksummedFile(path);
  WS_RETURN_NOT_OK(v.status());
  Manifest m;
  auto format = GetU64(*v, "format", path);
  WS_RETURN_NOT_OK(format.status());
  m.format = static_cast<uint32_t>(*format);
  if (m.format != 1) {
    return Status::Corruption(path + ": unsupported manifest format " +
                              std::to_string(m.format));
  }
  auto gen = GetU64(*v, "generation", path);
  WS_RETURN_NOT_OK(gen.status());
  m.generation = *gen;
  const JsonValue* snap = v->Find("snapshot");
  if (snap == nullptr || !snap->is_string()) {
    return Status::Corruption(path + ": missing field snapshot");
  }
  m.snapshot_file = snap->str;
  auto last = GetU64(*v, "last_included_seq", path);
  WS_RETURN_NOT_OK(last.status());
  m.last_included_seq = *last;
  auto ver = GetU64(*v, "version", path);
  WS_RETURN_NOT_OK(ver.status());
  m.version = *ver;
  return m;
}

Status WriteCleanMarker(const std::string& dir, const CleanMarker& m) {
  JsonWriter w;
  w.BeginObject();
  w.Key("last_seq");
  w.UInt(m.last_seq);
  w.Key("version");
  w.UInt(m.version);
  w.EndObject();
  return WriteFileAtomic(dir + "/" + kCleanMarkerFile,
                         WithChecksumLine(std::move(w).Take()));
}

Result<CleanMarker> ReadCleanMarker(const std::string& dir) {
  const std::string path = dir + "/" + kCleanMarkerFile;
  auto v = ParseChecksummedFile(path);
  WS_RETURN_NOT_OK(v.status());
  CleanMarker m;
  auto last = GetU64(*v, "last_seq", path);
  WS_RETURN_NOT_OK(last.status());
  m.last_seq = *last;
  auto ver = GetU64(*v, "version", path);
  WS_RETURN_NOT_OK(ver.status());
  m.version = *ver;
  return m;
}

Status RemoveCleanMarker(const std::string& dir) {
  return RemoveFile(dir + "/" + kCleanMarkerFile);
}

}  // namespace wikisearch::live
