// Durable snapshot files (DESIGN.md §12): one self-contained `.wssp` file
// per compaction generation holding the compacted CSR graph, the matching
// inverted index, and the cumulative per-node extra text — everything a
// GraphSnapshot carries. Written crash-atomically: serialize to
// `<name>.tmp`, fsync, rename over the final name, fsync the directory. A
// torn snapshot can therefore only ever exist as an ignored `.tmp`.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/search_options.h"
#include "live/snapshot.h"

namespace wikisearch::live {

/// File name within the data dir for a given generation
/// ("snap-<generation>.wssp").
std::string SnapshotFileName(uint64_t generation);

/// If `name` is a snapshot file name, returns true and sets *generation.
bool ParseSnapshotFileName(const std::string& name, uint64_t* generation);

/// Serializes `snap` to `path` with the temp+fsync+rename protocol. Fault
/// points: "snap:write" before serialization, "snap:rename" after the temp
/// file is durable but before it takes the final name.
Status SaveSnapshotFile(const std::string& path, const GraphSnapshot& snap,
                        const FaultHook& fault = nullptr);

/// Loads a snapshot file; validates magic, section framing, and the end
/// marker. `generation` comes back from the file header.
Result<GraphSnapshot> LoadSnapshotFile(const std::string& path);

}  // namespace wikisearch::live
