#include "live/delta_overlay.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "text/tokenizer.h"

namespace wikisearch::live {

namespace {

bool AdjLess(const AdjEntry& a, const AdjEntry& b) {
  // Same comparator as GraphBuilder::Build so merged lists are
  // byte-identical to a from-scratch rebuild's.
  if (a.target != b.target) return a.target < b.target;
  if (a.label != b.label) return a.label < b.label;
  return a.reverse < b.reverse;
}

std::vector<std::string> TermSet(std::string_view text,
                                 const AnalyzerOptions& opts) {
  std::vector<std::string> terms = AnalyzeText(text, opts);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

bool Contains(const std::vector<std::string>& sorted, const std::string& t) {
  return std::binary_search(sorted.begin(), sorted.end(), t);
}

}  // namespace

void DeltaOverlay::Reset(std::shared_ptr<const GraphSnapshot> base) {
  WS_CHECK(base != nullptr);
  base_ = std::move(base);
  base_label_ids_.clear();
  base_label_ids_.reserve(base_->graph.num_labels());
  for (LabelId l = 0; l < static_cast<LabelId>(base_->graph.num_labels());
       ++l) {
    base_label_ids_.emplace(base_->graph.LabelName(l), l);
  }
  gpatch_.reset();
  ipatch_.reset();
  node_text_.clear();
  log_.clear();
}

const std::string* DeltaOverlay::EffectiveText(
    NodeId v, const std::unordered_map<NodeId, std::string>& staged) const {
  if (auto it = staged.find(v); it != staged.end()) return &it->second;
  if (auto it = node_text_.find(v); it != node_text_.end()) return &it->second;
  if (auto it = base_->node_text.find(v); it != base_->node_text.end()) {
    return &it->second;
  }
  return nullptr;
}

Status DeltaOverlay::Apply(const UpdateBatch& batch) {
  WS_CHECK(base_ != nullptr);
  if (batch.empty()) return Status::InvalidArgument("empty update batch");
  const KnowledgeGraph& bg = base_->graph;
  const InvertedIndex& bi = base_->index;
  const AnalyzerOptions& aopts = bi.options();

  // Copy-on-write: every mutation below targets these copies; the live
  // patches (and any pinned view of them) stay untouched until the final
  // swap, which only happens when the whole batch validated.
  auto g = gpatch_ != nullptr ? std::make_shared<GraphOverlayPatch>(*gpatch_)
                              : std::make_shared<GraphOverlayPatch>();
  auto ip = ipatch_ != nullptr ? std::make_shared<IndexOverlayPatch>(*ipatch_)
                               : std::make_shared<IndexOverlayPatch>();
  if (gpatch_ == nullptr) {
    g->num_nodes = g->base_num_nodes = bg.num_nodes();
    g->num_labels = g->base_num_labels = bg.num_labels();
    g->num_triples = bg.num_triples();
    g->num_adjacency_entries = bg.num_adjacency_entries();
    g->touched.assign(bg.num_nodes(), 0);
  }
  if (ipatch_ == nullptr) {
    ip->num_terms = bi.num_terms();
    ip->total_postings = bi.num_postings();
  }
  std::unordered_map<NodeId, std::string> staged_text;

  auto touch_adj = [&](NodeId v) -> std::vector<AdjEntry>& {
    if (g->touched[v] == 0) {
      std::span<const AdjEntry> base_list = bg.Neighbors(v);
      g->merged_adj.emplace(
          v, std::vector<AdjEntry>(base_list.begin(), base_list.end()));
      g->touched[v] = 1;
    }
    return g->merged_adj.find(v)->second;
  };
  auto touch_postings = [&](const std::string& term) -> std::vector<NodeId>& {
    auto it = ip->merged_postings.find(term);
    if (it == ip->merged_postings.end()) {
      std::span<const NodeId> base_list = bi.LookupTerm(term);
      it = ip->merged_postings
               .emplace(term,
                        std::vector<NodeId>(base_list.begin(), base_list.end()))
               .first;
    }
    return it->second;
  };
  auto insert_posting = [&](const std::string& term, NodeId v) {
    std::vector<NodeId>& list = touch_postings(term);
    auto pos = std::lower_bound(list.begin(), list.end(), v);
    if (pos != list.end() && *pos == v) return;
    if (list.empty()) ++ip->num_terms;
    list.insert(pos, v);
    ++ip->total_postings;
  };
  auto remove_posting = [&](const std::string& term, NodeId v) {
    std::vector<NodeId>& list = touch_postings(term);
    auto pos = std::lower_bound(list.begin(), list.end(), v);
    if (pos == list.end() || *pos != v) return;
    list.erase(pos);
    --ip->total_postings;
    if (list.empty()) --ip->num_terms;  // empty merged list == tombstone
  };

  auto resolve_node = [&](const std::string& name) -> NodeId {
    NodeId id = bg.FindNode(name);
    if (id != kInvalidNode) return id;
    auto it = g->new_name_to_id.find(name);
    return it != g->new_name_to_id.end() ? it->second : kInvalidNode;
  };
  auto create_node = [&](const std::string& name) -> NodeId {
    NodeId id = static_cast<NodeId>(g->num_nodes++);
    g->new_names.push_back(name);
    g->new_name_to_id.emplace(name, id);
    g->touched.push_back(1);
    g->merged_adj.emplace(id, std::vector<AdjEntry>());
    // Build() indexes every node name; a node born in the overlay gets its
    // name terms the same way.
    for (const std::string& t : TermSet(name, aopts)) insert_posting(t, id);
    return id;
  };
  auto node_name = [&](NodeId v) -> const std::string& {
    return v < g->base_num_nodes ? bg.NodeName(v)
                                 : g->new_names[v - g->base_num_nodes];
  };

  for (const TripleOp& op : batch.add) {
    if (op.subject.empty() || op.predicate.empty() || op.object.empty()) {
      return Status::InvalidArgument("triple op with an empty field");
    }
    // Subject before object, nodes before label: the exact first-appearance
    // id assignment GraphBuilder::AddTriple performs.
    NodeId s = resolve_node(op.subject);
    if (s == kInvalidNode) s = create_node(op.subject);
    NodeId o = resolve_node(op.object);
    if (o == kInvalidNode) o = create_node(op.object);
    LabelId l;
    if (auto it = base_label_ids_.find(op.predicate);
        it != base_label_ids_.end()) {
      l = it->second;
    } else if (auto nit = g->new_label_to_id.find(op.predicate);
               nit != g->new_label_to_id.end()) {
      l = nit->second;
    } else {
      l = static_cast<LabelId>(g->num_labels++);
      g->new_label_names.push_back(op.predicate);
      g->new_label_to_id.emplace(op.predicate, l);
    }
    AdjEntry fwd{o, l, 0};
    AdjEntry rev{s, l, 1};
    std::vector<AdjEntry>& slist = touch_adj(s);
    slist.insert(std::upper_bound(slist.begin(), slist.end(), fwd, AdjLess),
                 fwd);
    std::vector<AdjEntry>& olist = touch_adj(o);
    olist.insert(std::upper_bound(olist.begin(), olist.end(), rev, AdjLess),
                 rev);
    ++g->num_triples;
    g->num_adjacency_entries += 2;
  }

  for (const TripleOp& op : batch.remove) {
    NodeId s = resolve_node(op.subject);
    NodeId o = resolve_node(op.object);
    LabelId l = kInvalidLabel;
    if (auto it = base_label_ids_.find(op.predicate);
        it != base_label_ids_.end()) {
      l = it->second;
    } else if (auto nit = g->new_label_to_id.find(op.predicate);
               nit != g->new_label_to_id.end()) {
      l = nit->second;
    }
    if (s == kInvalidNode || o == kInvalidNode || l == kInvalidLabel) {
      return Status::NotFound("remove of unknown triple: " + op.subject +
                              " -[" + op.predicate + "]-> " + op.object);
    }
    AdjEntry fwd{o, l, 0};
    std::vector<AdjEntry>& slist = touch_adj(s);
    auto [sfirst, slast] =
        std::equal_range(slist.begin(), slist.end(), fwd, AdjLess);
    if (sfirst == slast) {
      return Status::NotFound("remove of missing triple: " + op.subject +
                              " -[" + op.predicate + "]-> " + op.object);
    }
    slist.erase(sfirst);  // one instance — triples are a multiset
    AdjEntry rev{s, l, 1};
    std::vector<AdjEntry>& olist = touch_adj(o);
    auto [ofirst, olast] =
        std::equal_range(olist.begin(), olist.end(), rev, AdjLess);
    WS_CHECK(ofirst != olast);  // bi-directed invariant
    olist.erase(ofirst);
    --g->num_triples;
    g->num_adjacency_entries -= 2;
  }

  for (const TextOp& op : batch.text) {
    NodeId v = resolve_node(op.node);
    if (v == kInvalidNode) {
      return Status::NotFound("text op on unknown node: " + op.node);
    }
    const std::string* prev = EffectiveText(v, staged_text);
    std::vector<std::string> prev_terms =
        prev != nullptr ? TermSet(*prev, aopts) : std::vector<std::string>();
    std::vector<std::string> new_terms = TermSet(op.text, aopts);
    std::vector<std::string> name_terms = TermSet(node_name(v), aopts);
    // A posting (t, v) goes away iff v no longer carries t from any source:
    // the always-indexed name wins over any text change.
    for (const std::string& t : prev_terms) {
      if (!Contains(new_terms, t) && !Contains(name_terms, t)) {
        remove_posting(t, v);
      }
    }
    for (const std::string& t : new_terms) {
      if (!Contains(prev_terms, t)) insert_posting(t, v);
    }
    staged_text[v] = op.text;
  }

  // Derived stats over the *whole* view: Eq. 2 weights are globally min-max
  // normalized and A is a global sample, so any local change moves them
  // everywhere. Recomputing with the exact rebuild parameters is what keeps
  // overlay answers byte-identical to a cold rebuild's.
  GraphView trial(&bg, g.get());
  g->weights = ComputeNodeWeights(trial);
  DistanceSample ds =
      SampleAverageDistance(trial, cfg_.distance_pairs, cfg_.distance_seed);
  g->average_distance = ds.mean;
  g->avg_dist_deviation = ds.deviation;

  // Commit.
  for (auto& [v, text] : staged_text) node_text_[v] = std::move(text);
  gpatch_ = std::move(g);
  ipatch_ = std::move(ip);
  log_.push_back(batch);
  triples_added_ += batch.add.size();
  triples_removed_ += batch.remove.size();
  text_ops_ += batch.text.size();
  return Status::OK();
}

DeltaOverlay::Checkpoint DeltaOverlay::TakeCheckpoint() const {
  Checkpoint cp;
  cp.gpatch = gpatch_;
  cp.ipatch = ipatch_;
  cp.node_text = node_text_;
  cp.log_size = log_.size();
  cp.triples_added = triples_added_;
  cp.triples_removed = triples_removed_;
  cp.text_ops = text_ops_;
  return cp;
}

void DeltaOverlay::Restore(Checkpoint cp) {
  WS_CHECK(cp.log_size <= log_.size());
  gpatch_ = std::move(cp.gpatch);
  ipatch_ = std::move(cp.ipatch);
  node_text_ = std::move(cp.node_text);
  log_.resize(cp.log_size);
  triples_added_ = cp.triples_added;
  triples_removed_ = cp.triples_removed;
  text_ops_ = cp.text_ops;
}

void DeltaOverlay::Rebase(std::shared_ptr<const GraphSnapshot> new_base,
                          size_t folded) {
  WS_CHECK(folded <= log_.size());
  std::vector<UpdateBatch> tail(log_.begin() + static_cast<long>(folded),
                                log_.end());
  const uint64_t added = triples_added_;
  const uint64_t removed = triples_removed_;
  const uint64_t texts = text_ops_;
  Reset(std::move(new_base));
  for (const UpdateBatch& b : tail) {
    // The tail applied cleanly against the pre-fold state, and the folded
    // snapshot is equivalent to that state, so re-application cannot fail.
    Status st = Apply(b);
    WS_CHECK(st.ok());
  }
  triples_added_ = added;
  triples_removed_ = removed;
  text_ops_ = texts;
}

size_t DeltaOverlay::overlay_bytes() const {
  size_t total = 0;
  if (gpatch_ != nullptr) total += gpatch_->OverlayBytes();
  if (ipatch_ != nullptr) total += ipatch_->OverlayBytes();
  return total;
}

}  // namespace wikisearch::live
