// Background compactor: a single thread that folds the delta overlay into
// fresh snapshots off the serving path. Runs when kicked (the manager's
// depth-threshold trigger, wired up in the constructor) and optionally on a
// fixed interval; every cycle is one SnapshotManager::CompactOnce.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "live/snapshot_manager.h"

namespace wikisearch::live {

class Compactor {
 public:
  struct Options {
    /// Also compact every this-many milliseconds while running (0 = only
    /// when kicked).
    double interval_ms = 0.0;
  };

  /// Registers itself as `manager`'s compaction trigger. One Compactor per
  /// manager; `manager` must outlive it.
  explicit Compactor(SnapshotManager* manager) : Compactor(manager, Options()) {}
  Compactor(SnapshotManager* manager, Options opts);
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  void Start();
  /// Idempotent; joins the thread. The destructor calls it.
  void Stop();

  /// Requests a compaction cycle soon (thread-safe; coalesces).
  void Kick();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Compaction cycles executed (including no-op folds of an empty overlay).
  uint64_t cycles() const { return cycles_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  SnapshotManager* manager_;
  Options opts_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;    // guarded by mu_
  bool kicked_ = false;  // guarded by mu_
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> cycles_{0};
  std::thread thread_;
};

}  // namespace wikisearch::live
