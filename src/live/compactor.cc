#include "live/compactor.h"

#include "common/logging.h"

namespace wikisearch::live {

Compactor::Compactor(SnapshotManager* manager, Options opts)
    : manager_(manager), opts_(opts) {
  WS_CHECK(manager_ != nullptr);
  manager_->SetCompactionTrigger([this] { Kick(); });
}

Compactor::~Compactor() {
  Stop();
  manager_->SetCompactionTrigger(nullptr);
}

void Compactor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_acquire)) return;
  stop_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_.store(false, std::memory_order_release);
}

void Compactor::Kick() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    kicked_ = true;
  }
  cv_.notify_all();
}

void Compactor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (opts_.interval_ms > 0.0) {
      cv_.wait_for(lock,
                   std::chrono::duration<double, std::milli>(opts_.interval_ms),
                   [this] { return stop_ || kicked_; });
      if (stop_) break;
      kicked_ = true;  // interval elapsed: run a cycle regardless
    } else {
      cv_.wait(lock, [this] { return stop_ || kicked_; });
      if (stop_) break;
    }
    kicked_ = false;
    lock.unlock();
    Status st = manager_->CompactOnce();
    if (!st.ok()) {
      WS_LOG("compaction cycle failed: %s", st.message().c_str());
    }
    cycles_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace wikisearch::live
