// SnapshotManager: the live-update subsystem's front door (DESIGN.md §10).
// Publishes refcounted immutable KB states RCU-style — readers pin the
// current LiveState with one lock-free atomic shared_ptr load and keep a
// consistent view for as long as they hold the pin; writers build new
// states off to the side and swap them in atomically. Old snapshots retire
// (are destroyed, counted) when the last lease — in-flight query, cached
// context, or the overlay's base pointer — drops.
//
// Locking: update_mu_ serializes mutators (Apply, and CompactOnce's capture
// + publish sections); compact_mu_ serializes folds. Readers take neither.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "core/search_options.h"
#include "live/delta_overlay.h"
#include "live/snapshot.h"
#include "live/update.h"
#include "live/wal.h"
#include "obs/metrics.h"

namespace wikisearch::live {

/// One published KB state: an immutable base snapshot plus the (possibly
/// null) immutable overlay patches on top of it. Everything here is
/// shared_ptr-owned, so a pinned LiveState keeps its whole object graph
/// alive across any number of later publishes.
struct LiveState {
  std::shared_ptr<const GraphSnapshot> base;
  std::shared_ptr<const GraphOverlayPatch> gpatch;
  std::shared_ptr<const IndexOverlayPatch> ipatch;
  /// Globally monotonic across applies *and* publishes; never reused, so a
  /// recycled snapshot address cannot alias a cache entry (no ABA).
  uint64_t version = 0;
  /// Bumped only on compaction publishes; drives cache invalidation.
  uint64_t generation = 0;

  GraphView graph_view() const { return GraphView(&base->graph, gpatch.get()); }
  IndexView index_view() const { return IndexView(&base->index, ipatch.get()); }
};

class SnapshotManager {
 public:
  struct Config {
    /// Average-distance sampling parameters; every snapshot and overlay
    /// state is (re)attached with these so answers match a cold rebuild.
    size_t distance_pairs = 2000;
    uint64_t distance_seed = 7;
    /// Overlay depth (applied batches) at which Apply fires the compaction
    /// trigger. 0 disables triggering (manual CompactOnce only).
    size_t compact_threshold_batches = 8;
  };

  /// Takes ownership of the initial KB. Weights / average distance are
  /// attached (with cfg's parameters) if the graph lacks them. (Overload
  /// instead of a `= {}` default: GCC cannot brace-default a nested struct
  /// with member initializers inside the enclosing class.)
  SnapshotManager(KnowledgeGraph graph, InvertedIndex index);
  SnapshotManager(KnowledgeGraph graph, InvertedIndex index, Config cfg);

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // --- durable mode (DESIGN.md §12) ---

  struct DurabilityOptions {
    std::string data_dir;
    FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
    /// Flusher period for FsyncPolicy::kInterval.
    double fsync_interval_ms = 5.0;
  };

  /// What recovery found when a durable manager was opened.
  struct RecoveryInfo {
    bool recovered = false;       // directory held prior durable state
    bool clean_shutdown = false;  // CLEAN marker found (and consumed)
    bool wal_tail_torn = false;   // a torn final record was discarded
    uint64_t replayed_batches = 0;
    uint64_t generation = 0;      // serving generation after recovery
    uint64_t version = 0;         // serving version after recovery
    double recovery_ms = 0.0;
  };

  /// What an individual durable Apply acknowledged.
  struct ApplyResult {
    /// Published version. Reassigned deterministically on recovery; `seq`
    /// is the durable identity of a batch, version is a cache key.
    uint64_t version = 0;
    uint64_t seq = 0;      // WAL sequence number; 0 in memory-only mode
    /// True iff the record was fsynced before this acknowledgement (always
    /// under FsyncPolicy::kAlways; opportunistic under kInterval/kNever).
    bool durable = false;
  };

  /// True if `data_dir` holds a durable state a prior OpenDurable created
  /// (i.e. booting will recover instead of starting fresh).
  static bool HasDurableState(const std::string& data_dir);

  /// Opens (or creates) a durable manager on `dopts.data_dir`. A fresh
  /// directory persists `graph`/`index` as the generation-1 snapshot; an
  /// existing one IGNORES them and recovers: loads the manifest's snapshot,
  /// replays the WAL tail through the ordinary Apply path (tolerating a
  /// torn final record unless the CLEAN marker promises there is none), and
  /// resumes. A second recovery of the same directory is idempotent.
  static Result<std::unique_ptr<SnapshotManager>> OpenDurable(
      KnowledgeGraph graph, InvertedIndex index, Config cfg,
      DurabilityOptions dopts, RecoveryInfo* info = nullptr);

  /// Lock-free: pins the currently published state.
  std::shared_ptr<const LiveState> Pin() const {
    return state_.load(std::memory_order_acquire);
  }
  /// Pin() packaged for SearchEngine's KbHandle overloads: views bind the
  /// pinned state, `version` keys caches, `pin` holds the lease.
  KbHandle PinHandle() const;

  /// Applies one batch atomically and publishes the new overlay state.
  /// Serialized with other mutators; never blocks readers. On rejection
  /// (validation failure) the published state is unchanged. In durable mode
  /// the batch is WAL-appended before it becomes visible, and a failed
  /// append rolls the overlay back — the log and the overlay never diverge.
  Status Apply(const UpdateBatch& batch) { return Apply(batch, nullptr); }
  Status Apply(const UpdateBatch& batch, ApplyResult* out);

  /// Flushes + fsyncs the WAL through the last appended record (honored
  /// under every fsync policy). No-op in memory-only mode.
  Status SyncWal();

  /// Graceful-shutdown hand-off: fsyncs the WAL and writes the CLEAN
  /// marker. Call only after mutators are drained — a later Apply would
  /// invalidate the marker's promise (recovery then fails hard).
  Status ShutdownDurable();

  /// Folds the current overlay into a fresh compacted snapshot off the
  /// serving path, then atomically publishes it with a bumped generation.
  /// Batches applied *during* the fold survive: they are rebased onto the
  /// new snapshot inside the publish section. Serialized with other folds.
  Status CompactOnce();

  /// Invoked after every generation bump (outside update_mu_, in publish
  /// order) — the server hooks cache invalidation here. Set before serving.
  void SetPublishCallback(std::function<void(uint64_t generation)> cb) {
    publish_cb_ = std::move(cb);
  }
  /// Invoked (outside update_mu_) when an Apply pushes the overlay depth to
  /// cfg.compact_threshold_batches — the Compactor's kick. Set before
  /// serving.
  void SetCompactionTrigger(std::function<void()> cb) {
    compaction_trigger_ = std::move(cb);
  }
  /// Test-only fault/stall points: "live:apply" (inside the apply lock,
  /// before mutating), "live:fold" (off-lock, before the fold),
  /// "live:publish" (inside the publish lock, before the swap). In durable
  /// mode the hook is also forwarded to the WAL ("wal:append", "wal:fsync",
  /// "wal:truncate") and fires at "snap:write" / "snap:rename" /
  /// "manifest:write" during a durable compaction.
  void SetFaultHook(FaultHook hook) {
    fault_ = std::move(hook);
    if (wal_) wal_->SetFaultHook(fault_);
  }
  /// Observes ws_live_apply_ms / ws_live_fold_ms / ws_live_publish_ms into
  /// `registry` (null disables). Set before serving.
  void SetMetricRegistry(obs::MetricRegistry* registry) {
    metrics_ = registry;
  }

  // -- stats (all safe to read concurrently) --
  uint64_t generation() const { return generation_.load(); }
  uint64_t version() const { return version_.load(); }
  size_t overlay_depth() const { return overlay_depth_.load(); }
  size_t overlay_bytes() const { return overlay_bytes_.load(); }
  uint64_t updates_applied() const { return updates_.load(); }
  uint64_t updates_rejected() const { return rejected_.load(); }
  uint64_t mutations_applied() const { return mutations_.load(); }
  uint64_t compactions() const { return compactions_.load(); }
  uint64_t snapshots_published() const { return published_.load(); }
  uint64_t snapshots_retired() const { return retired_->load(); }
  /// Snapshots currently alive (published - retired).
  uint64_t snapshots_live() const {
    return published_.load() - retired_->load();
  }
  /// "idle" | "folding" | "publishing".
  const char* compaction_state() const;
  double last_fold_ms() const { return last_fold_ms_.load(); }
  double last_publish_ms() const { return last_publish_ms_.load(); }

  // -- durable-mode stats (zero / false in memory-only mode) --
  bool durable() const { return wal_ != nullptr; }
  const DurabilityOptions& durability_options() const { return dopts_; }
  uint64_t wal_last_seq() const { return wal_ ? wal_->written_seq() : 0; }
  uint64_t wal_synced_seq() const { return wal_ ? wal_->synced_seq() : 0; }
  uint64_t wal_appends() const { return wal_ ? wal_->appends_total() : 0; }
  uint64_t wal_fsyncs() const { return wal_ ? wal_->fsyncs_total() : 0; }
  uint64_t wal_bytes() const { return wal_ ? wal_->bytes_written() : 0; }
  uint64_t wal_rotations() const { return wal_ ? wal_->rotations_total() : 0; }
  uint64_t wal_segments_deleted() const { return wal_gc_deleted_.load(); }
  /// Last WAL sequence folded into the durable snapshot (manifest's
  /// truncation point).
  uint64_t wal_base_seq() const { return wal_base_seq_stat_.load(); }
  uint64_t manifest_generation() const { return manifest_gen_.load(); }
  uint64_t replayed_batches() const { return replayed_; }
  bool clean_boot() const { return clean_boot_; }

  const Config& config() const { return cfg_; }

 private:
  /// The real constructor: adopts an already-materialized snapshot and the
  /// version/generation to resume at (1/1 for a fresh KB; the recovered
  /// values when OpenDurable replays a directory).
  SnapshotManager(GraphSnapshot snap, Config cfg, uint64_t version,
                  uint64_t generation);

  std::shared_ptr<const GraphSnapshot> WrapSnapshot(GraphSnapshot&& snap);
  void ObserveMs(const char* name, double ms);

  Config cfg_;
  /// Shared with snapshot deleters so retirement counting survives the
  /// manager (pinned snapshots may outlive it).
  std::shared_ptr<std::atomic<uint64_t>> retired_;

  std::mutex update_mu_;
  std::mutex compact_mu_;
  DeltaOverlay overlay_;  // guarded by update_mu_
  std::atomic<std::shared_ptr<const LiveState>> state_;

  std::function<void(uint64_t)> publish_cb_;
  std::function<void()> compaction_trigger_;
  FaultHook fault_;
  obs::MetricRegistry* metrics_ = nullptr;

  std::atomic<uint64_t> generation_{1};
  std::atomic<uint64_t> version_{1};
  std::atomic<size_t> overlay_depth_{0};
  std::atomic<size_t> overlay_bytes_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> mutations_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> published_{0};
  std::atomic<int> compaction_phase_{0};  // 0 idle, 1 folding, 2 publishing
  std::atomic<double> last_fold_ms_{0.0};
  std::atomic<double> last_publish_ms_{0.0};

  // --- durable mode (all null/zero in memory-only managers) ---
  DurabilityOptions dopts_;
  std::unique_ptr<WalWriter> wal_;
  /// Last WAL sequence folded into the current base snapshot; the next
  /// Apply appends wal_base_seq_ + overlay depth + 1. Guarded by update_mu_.
  uint64_t wal_base_seq_ = 0;
  /// Last appended WAL sequence. Guarded by update_mu_.
  uint64_t last_seq_ = 0;
  std::atomic<uint64_t> wal_base_seq_stat_{0};  // wal_base_seq_ for /stats
  std::atomic<uint64_t> manifest_gen_{0};
  std::atomic<uint64_t> wal_gc_deleted_{0};
  uint64_t replayed_ = 0;    // set before serving
  bool clean_boot_ = false;  // set before serving
};

}  // namespace wikisearch::live
