// An immutable, compacted knowledge-base state: the unit the live-update
// subsystem publishes and retires (DESIGN.md §10). A snapshot owns a fully
// materialized CSR graph (weights + sampled average distance attached) and
// the matching inverted index; queries never see anything that is not
// either one of these or a read-through overlay on top of one.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "graph/csr_graph.h"
#include "graph/types.h"
#include "text/inverted_index.h"

namespace wikisearch::live {

struct GraphSnapshot {
  KnowledgeGraph graph;
  InvertedIndex index;
  /// Extra searchable text per node (beyond the always-indexed name),
  /// cumulative as of this snapshot. Kept so later TextOps can diff the
  /// previous effective terms of a node when computing posting deltas.
  std::unordered_map<NodeId, std::string> node_text;
  /// Bumped on every compaction publish; caches key invalidation off it.
  uint64_t generation = 0;
};

}  // namespace wikisearch::live
