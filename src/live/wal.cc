#include "live/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/fsio.h"
#include "common/logging.h"

namespace wikisearch::live {

namespace {

// Record header: payload length, checksum over (seq ‖ payload), sequence.
constexpr size_t kHeaderBytes = sizeof(uint32_t) * 2 + sizeof(uint64_t);
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

struct Cursor {
  std::string_view data;
  size_t pos = 0;

  bool Take(void* dst, size_t n) {
    if (data.size() - pos < n) return false;
    std::memcpy(dst, data.data() + pos, n);
    pos += n;
    return true;
  }
  bool TakeString(std::string* s) {
    uint32_t len = 0;
    if (!Take(&len, sizeof(len))) return false;
    if (data.size() - pos < len) return false;
    s->assign(data.data() + pos, len);
    pos += len;
    return true;
  }
};

uint32_t RecordCrc(uint64_t seq, std::string_view payload) {
  uint32_t crc = Crc32(&seq, sizeof(seq));
  return Crc32(payload.data(), payload.size(), crc);
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "never") return FsyncPolicy::kNever;
  return Status::InvalidArgument("unknown fsync policy: " + name +
                                 " (expected always|interval|never)");
}

void EncodeBatch(const UpdateBatch& batch, std::string* out) {
  PutU32(out, static_cast<uint32_t>(batch.add.size()));
  PutU32(out, static_cast<uint32_t>(batch.remove.size()));
  PutU32(out, static_cast<uint32_t>(batch.text.size()));
  for (const TripleOp& t : batch.add) {
    PutString(out, t.subject);
    PutString(out, t.predicate);
    PutString(out, t.object);
  }
  for (const TripleOp& t : batch.remove) {
    PutString(out, t.subject);
    PutString(out, t.predicate);
    PutString(out, t.object);
  }
  for (const TextOp& t : batch.text) {
    PutString(out, t.node);
    PutString(out, t.text);
  }
}

Status DecodeBatch(std::string_view data, UpdateBatch* out) {
  Cursor c{data};
  uint32_t na = 0, nr = 0, nt = 0;
  if (!c.Take(&na, sizeof(na)) || !c.Take(&nr, sizeof(nr)) ||
      !c.Take(&nt, sizeof(nt))) {
    return Status::Corruption("batch payload too short for op counts");
  }
  out->add.resize(na);
  out->remove.resize(nr);
  out->text.resize(nt);
  for (TripleOp& t : out->add) {
    if (!c.TakeString(&t.subject) || !c.TakeString(&t.predicate) ||
        !c.TakeString(&t.object)) {
      return Status::Corruption("batch payload truncated in add ops");
    }
  }
  for (TripleOp& t : out->remove) {
    if (!c.TakeString(&t.subject) || !c.TakeString(&t.predicate) ||
        !c.TakeString(&t.object)) {
      return Status::Corruption("batch payload truncated in remove ops");
    }
  }
  for (TextOp& t : out->text) {
    if (!c.TakeString(&t.node) || !c.TakeString(&t.text)) {
      return Status::Corruption("batch payload truncated in text ops");
    }
  }
  if (c.pos != data.size()) {
    return Status::Corruption("batch payload has trailing bytes");
  }
  return Status::OK();
}

std::string WalSegmentName(uint64_t start_seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", start_seq);
  return buf;
}

Result<std::vector<WalSegment>> ListWalSegments(const std::string& dir) {
  auto names = ListDir(dir);
  WS_RETURN_NOT_OK(names.status());
  std::vector<WalSegment> out;
  for (const std::string& n : *names) {
    uint64_t start = 0;
    char tail = 0;
    // Exact-shape match: "wal-" + 20 digits + ".log".
    if (n.size() == 4 + 20 + 4 &&
        std::sscanf(n.c_str(), "wal-%20" SCNu64 ".lo%c", &start, &tail) == 2 &&
        tail == 'g') {
      out.push_back(WalSegment{start, dir + "/" + n});
    }
  }
  // ListDir sorts lexicographically == numerically for zero-padded names.
  return out;
}

Result<WalReadResult> ReadWalFile(const std::string& path) {
  std::string data;
  WS_RETURN_NOT_OK(ReadFileToString(path, &data));
  WalReadResult out;
  size_t pos = 0;
  auto torn = [&](const std::string& why) {
    out.torn = true;
    out.diagnostic = path + ": " + why + " at offset " + std::to_string(pos) +
                     " (file size " + std::to_string(data.size()) + ")";
    out.valid_bytes = pos;
    return out;
  };
  while (pos < data.size()) {
    if (data.size() - pos < kHeaderBytes) {
      return torn("truncated record header");
    }
    uint32_t len = 0, crc = 0;
    uint64_t seq = 0;
    std::memcpy(&len, data.data() + pos, sizeof(len));
    std::memcpy(&crc, data.data() + pos + 4, sizeof(crc));
    std::memcpy(&seq, data.data() + pos + 8, sizeof(seq));
    if (len > kMaxPayloadBytes) {
      return torn("implausible payload length " + std::to_string(len));
    }
    if (data.size() - pos - kHeaderBytes < len) {
      return torn("truncated payload (want " + std::to_string(len) +
                  " bytes, have " +
                  std::to_string(data.size() - pos - kHeaderBytes) + ")");
    }
    std::string_view payload(data.data() + pos + kHeaderBytes, len);
    if (RecordCrc(seq, payload) != crc) {
      return torn("checksum mismatch for seq " + std::to_string(seq));
    }
    // A checksum-valid record that doesn't decode cannot be produced by
    // truncation — it is real corruption, not a torn tail.
    WalRecord rec;
    rec.seq = seq;
    Status st = DecodeBatch(payload, &rec.batch);
    if (!st.ok()) {
      return Status::Corruption(path + ": seq " + std::to_string(seq) + ": " +
                                st.message());
    }
    out.records.push_back(std::move(rec));
    pos += kHeaderBytes + len;
    out.valid_bytes = pos;
  }
  return out;
}

WalWriter::WalWriter(std::string dir, uint64_t segment_start,
                     uint64_t last_seq, WalOptions opts)
    : dir_(std::move(dir)), opts_(opts), segment_start_(segment_start) {
  written_seq_.store(last_seq, std::memory_order_relaxed);
  synced_seq_.store(last_seq, std::memory_order_relaxed);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   uint64_t segment_start,
                                                   uint64_t last_seq,
                                                   const WalOptions& opts) {
  std::unique_ptr<WalWriter> w(
      new WalWriter(dir, segment_start, last_seq, opts));
  const std::string path = dir + "/" + WalSegmentName(segment_start);
  // Append mode: recovery reopens the (truncated-to-valid) tail segment and
  // continues it; a fresh directory creates segment 1.
  w->fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (w->fd_ < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  WS_RETURN_NOT_OK(FsyncDir(dir));  // make the segment's creation durable
  if (opts.policy == FsyncPolicy::kInterval) w->StartFlusher();
  return w;
}

WalWriter::~WalWriter() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(stop_mu_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    flusher_.join();
  }
  if (fd_ >= 0) ::close(fd_);
}

void WalWriter::SetFaultHook(FaultHook hook) { fault_ = std::move(hook); }

Status WalWriter::Append(uint64_t seq, const UpdateBatch& batch) {
  WS_CHECK(seq == written_seq_.load(std::memory_order_relaxed) + 1);
  encode_buf_.clear();
  encode_buf_.resize(kHeaderBytes);
  EncodeBatch(batch, &encode_buf_);
  const uint32_t len =
      static_cast<uint32_t>(encode_buf_.size() - kHeaderBytes);
  const uint32_t crc = RecordCrc(
      seq, std::string_view(encode_buf_.data() + kHeaderBytes, len));
  std::memcpy(encode_buf_.data(), &len, sizeof(len));
  std::memcpy(encode_buf_.data() + 4, &crc, sizeof(crc));
  std::memcpy(encode_buf_.data() + 8, &seq, sizeof(seq));
  if (fault_) fault_("wal:append");
  size_t off = 0;
  while (off < encode_buf_.size()) {
    ssize_t n = ::write(fd_, encode_buf_.data() + off,
                        encode_buf_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Chop any partially written bytes so the segment tail stays a clean
      // record boundary for later appends; if even that fails, a restart
      // recovers via the torn-tail path.
      Status st = Status::IoError(std::string("wal append write: ") +
                                  std::strerror(errno));
      off_t end = ::lseek(fd_, 0, SEEK_END);
      if (end >= static_cast<off_t>(off)) {
        (void)::ftruncate(fd_, end - static_cast<off_t>(off));
      }
      return st;
    }
    off += static_cast<size_t>(n);
  }
  written_seq_.store(seq, std::memory_order_release);
  appends_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(encode_buf_.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status WalWriter::SyncLocked(bool foreground) {
  const uint64_t target = written_seq_.load(std::memory_order_acquire);
  if (synced_seq_.load(std::memory_order_relaxed) >= target) {
    return Status::OK();
  }
  if (foreground && fault_) fault_("wal:fsync");
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::string("wal fsync: ") + std::strerror(errno));
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  synced_seq_.store(target, std::memory_order_release);
  return Status::OK();
}

Status WalWriter::SyncTo(uint64_t seq) {
  if (opts_.policy == FsyncPolicy::kNever) return Status::OK();
  if (synced_seq_.load(std::memory_order_acquire) >= seq) return Status::OK();
  std::lock_guard<std::mutex> lk(sync_mu_);
  WS_RETURN_NOT_OK(flusher_error_);
  if (synced_seq_.load(std::memory_order_relaxed) >= seq) return Status::OK();
  return SyncLocked(/*foreground=*/true);
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lk(sync_mu_);
  WS_RETURN_NOT_OK(flusher_error_);
  return SyncLocked(/*foreground=*/true);
}

Status WalWriter::Rotate(uint64_t next_start) {
  if (segment_start_ == next_start) return Status::OK();  // still empty
  WS_CHECK(next_start == written_seq_.load(std::memory_order_relaxed) + 1);
  std::lock_guard<std::mutex> lk(sync_mu_);
  // The closing segment is fsynced unconditionally (even under kNever):
  // rotation precedes a manifest that implies this data is on disk, and any
  // in-flight SyncTo waiter must never fsync a swapped fd.
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::string("wal rotate fsync: ") +
                           std::strerror(errno));
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  synced_seq_.store(written_seq_.load(std::memory_order_relaxed),
                    std::memory_order_release);
  const std::string path = dir_ + "/" + WalSegmentName(next_start);
  int nfd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                   0644);
  if (nfd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  WS_RETURN_NOT_OK(FsyncDir(dir_));
  ::close(fd_);
  fd_ = nfd;
  segment_start_ = next_start;
  rotations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<uint64_t> WalWriter::DeleteSegmentsCoveredBy(uint64_t last_included) {
  if (fault_) fault_("wal:truncate");
  auto segs = ListWalSegments(dir_);
  WS_RETURN_NOT_OK(segs.status());
  uint64_t deleted = 0;
  for (size_t i = 0; i + 1 < segs->size(); ++i) {
    const WalSegment& s = (*segs)[i];
    // Deletable iff every record in it is folded into the snapshot: its own
    // start is covered and the next segment starts at or before
    // last_included+1 (so no record here can exceed last_included).
    if (s.start == segment_start_) continue;  // never the open segment
    if (s.start <= last_included && (*segs)[i + 1].start <= last_included + 1) {
      WS_RETURN_NOT_OK(RemoveFile(s.path));
      ++deleted;
    }
  }
  if (deleted > 0) WS_RETURN_NOT_OK(FsyncDir(dir_));
  return deleted;
}

void WalWriter::StartFlusher() {
  flusher_ = std::thread([this] {
    const auto period = std::chrono::duration<double, std::milli>(
        opts_.interval_ms <= 0.0 ? 1.0 : opts_.interval_ms);
    std::unique_lock<std::mutex> lk(stop_mu_);
    while (!stop_) {
      stop_cv_.wait_for(lk, period, [this] { return stop_; });
      if (stop_) break;
      lk.unlock();
      {
        std::lock_guard<std::mutex> sl(sync_mu_);
        if (flusher_error_.ok()) {
          // Background sync skips the fault hook: a test crash exception
          // must not escape on a detached thread.
          Status st = SyncLocked(/*foreground=*/false);
          if (!st.ok()) flusher_error_ = st;
        }
      }
      lk.lock();
    }
  });
}

}  // namespace wikisearch::live
