// Delta overlay: accepts online mutation batches against an immutable base
// GraphSnapshot and maintains copy-on-write GraphOverlayPatch /
// IndexOverlayPatch objects that queries merge read-through (DESIGN.md §10).
//
// Concurrency contract: DeltaOverlay itself is NOT thread-safe — the
// SnapshotManager serializes all writers under its update mutex. Readers
// never touch the overlay: they pin a published LiveState whose patch
// pointers are immutable shared_ptrs; Apply builds *new* patch objects and
// swaps the pointers, so a pinned state keeps serving its old patches
// untouched.
//
// Equivalence contract: after any sequence of applied batches, the
// (base + patches) view is structurally identical — ids, adjacency order,
// node weights, sampled average distance, posting lists — to a from-scratch
// GraphBuilder/InvertedIndex::Build replay of the same history. That is
// what makes overlay answers byte-identical to a cold rebuild's.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph_view.h"
#include "live/snapshot.h"
#include "live/update.h"
#include "text/index_view.h"

namespace wikisearch::live {

class DeltaOverlay {
 public:
  struct Config {
    /// Parameters for re-sampling the average distance A after each batch —
    /// must match what the base snapshot was attached with, or overlay
    /// states would diverge from a cold rebuild.
    size_t distance_pairs = 2000;
    uint64_t distance_seed = 7;
  };

  // Two overloads rather than `Config cfg = {}`: GCC late-parses a nested
  // struct's default member initializers, so a braced default argument for
  // it cannot be used inside the enclosing class.
  DeltaOverlay() : DeltaOverlay(Config()) {}
  explicit DeltaOverlay(Config cfg) : cfg_(cfg) {}

  /// Resets the overlay to empty on top of `base`; drops the batch log.
  void Reset(std::shared_ptr<const GraphSnapshot> base);

  /// Applies one batch atomically: validates and stages every op into
  /// copies of the current patches, and only on full success swaps them in
  /// and appends the batch to the log. On any failure (unknown node in a
  /// remove/text op, missing triple, empty batch) nothing changes.
  Status Apply(const UpdateBatch& batch);

  /// Rebases onto a freshly folded snapshot: the first `folded` batches of
  /// the log are already part of `new_base`; the tail is re-applied on top.
  void Rebase(std::shared_ptr<const GraphSnapshot> new_base, size_t folded);

  /// Rollback point for the durable Apply path: if the WAL append fails
  /// after a batch was staged and committed into the overlay, Restore()
  /// rewinds to the state TakeCheckpoint() captured, keeping the overlay in
  /// lockstep with the log. Cheap: the patches are COW shared_ptr copies;
  /// only the (small, overlay-scoped) text-override map is deep-copied.
  struct Checkpoint {
    std::shared_ptr<const GraphOverlayPatch> gpatch;
    std::shared_ptr<const IndexOverlayPatch> ipatch;
    std::unordered_map<NodeId, std::string> node_text;
    size_t log_size = 0;
    uint64_t triples_added = 0;
    uint64_t triples_removed = 0;
    uint64_t text_ops = 0;
  };
  Checkpoint TakeCheckpoint() const;
  void Restore(Checkpoint cp);

  const std::shared_ptr<const GraphSnapshot>& base() const { return base_; }
  /// Null when the overlay is empty (depth 0).
  const std::shared_ptr<const GraphOverlayPatch>& graph_patch() const {
    return gpatch_;
  }
  const std::shared_ptr<const IndexOverlayPatch>& index_patch() const {
    return ipatch_;
  }

  /// Number of applied-but-not-yet-folded batches.
  size_t depth() const { return log_.size(); }
  const std::vector<UpdateBatch>& log() const { return log_; }
  /// Per-node extra-text overrides accumulated since base (empty string =
  /// cleared, overriding any base text).
  const std::unordered_map<NodeId, std::string>& node_text() const {
    return node_text_;
  }

  size_t overlay_bytes() const;

  // Cumulative mutation counters across the overlay's lifetime (survive
  // Rebase; bridged into metrics by the manager).
  uint64_t triples_added() const { return triples_added_; }
  uint64_t triples_removed() const { return triples_removed_; }
  uint64_t text_ops() const { return text_ops_; }

 private:
  /// The node's current effective extra text: staged > overlay > base.
  const std::string* EffectiveText(
      NodeId v,
      const std::unordered_map<NodeId, std::string>& staged) const;

  Config cfg_;
  std::shared_ptr<const GraphSnapshot> base_;
  /// name -> id for the base graph's labels (KnowledgeGraph keeps no label
  /// map of its own); rebuilt on every Reset/Rebase.
  std::unordered_map<std::string, LabelId> base_label_ids_;
  std::shared_ptr<const GraphOverlayPatch> gpatch_;
  std::shared_ptr<const IndexOverlayPatch> ipatch_;
  std::unordered_map<NodeId, std::string> node_text_;
  std::vector<UpdateBatch> log_;
  uint64_t triples_added_ = 0;
  uint64_t triples_removed_ = 0;
  uint64_t text_ops_ = 0;
};

}  // namespace wikisearch::live
