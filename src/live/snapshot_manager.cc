#include "live/snapshot_manager.h"

#include <utility>
#include <vector>

#include "common/fsio.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "live/manifest.h"
#include "live/persist.h"

namespace wikisearch::live {

SnapshotManager::SnapshotManager(KnowledgeGraph graph, InvertedIndex index)
    : SnapshotManager(std::move(graph), std::move(index), Config()) {}

SnapshotManager::SnapshotManager(KnowledgeGraph graph, InvertedIndex index,
                                 Config cfg)
    : SnapshotManager(
          [&] {
            GraphSnapshot snap;
            snap.graph = std::move(graph);
            snap.index = std::move(index);
            return snap;
          }(),
          cfg, /*version=*/1, /*generation=*/1) {}

SnapshotManager::SnapshotManager(GraphSnapshot snap, Config cfg,
                                 uint64_t version, uint64_t generation)
    : cfg_(cfg),
      retired_(std::make_shared<std::atomic<uint64_t>>(0)),
      overlay_(DeltaOverlay::Config{cfg.distance_pairs, cfg.distance_seed}) {
  if (!snap.graph.has_weights()) AttachNodeWeights(&snap.graph);
  if (snap.graph.average_distance() <= 0.0) {
    AttachAverageDistance(&snap.graph, cfg_.distance_pairs,
                          cfg_.distance_seed);
  }
  snap.generation = generation;
  version_.store(version, std::memory_order_relaxed);
  generation_.store(generation, std::memory_order_relaxed);
  std::shared_ptr<const GraphSnapshot> base = WrapSnapshot(std::move(snap));
  overlay_.Reset(base);
  auto st = std::make_shared<LiveState>();
  st->base = std::move(base);
  st->version = version;
  st->generation = generation;
  state_.store(std::shared_ptr<const LiveState>(std::move(st)));
}

std::shared_ptr<const GraphSnapshot> SnapshotManager::WrapSnapshot(
    GraphSnapshot&& snap) {
  published_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<std::atomic<uint64_t>> retired = retired_;
  return std::shared_ptr<const GraphSnapshot>(
      new GraphSnapshot(std::move(snap)), [retired](const GraphSnapshot* p) {
        retired->fetch_add(1, std::memory_order_relaxed);
        delete p;
      });
}

KbHandle SnapshotManager::PinHandle() const {
  std::shared_ptr<const LiveState> st = Pin();
  KbHandle kb;
  kb.graph = st->graph_view();
  kb.index = st->index_view();
  kb.version = st->version;
  kb.pin = std::move(st);
  return kb;
}

Status SnapshotManager::Apply(const UpdateBatch& batch, ApplyResult* out) {
  WallTimer timer;
  bool trigger = false;
  uint64_t seq = 0;
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    if (fault_) fault_("live:apply");
    // In durable mode a failed WAL append must undo the just-committed
    // overlay mutation — the log and the overlay never diverge.
    DeltaOverlay::Checkpoint cp;
    if (wal_) cp = overlay_.TakeCheckpoint();
    Status st = overlay_.Apply(batch);
    if (!st.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return st;
    }
    if (wal_) {
      seq = last_seq_ + 1;
      Status ws = wal_->Append(seq, batch);
      if (!ws.ok()) {
        overlay_.Restore(std::move(cp));
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return ws;
      }
      last_seq_ = seq;
    }
    std::shared_ptr<const LiveState> cur =
        state_.load(std::memory_order_acquire);
    auto next = std::make_shared<LiveState>();
    next->base = overlay_.base();
    next->gpatch = overlay_.graph_patch();
    next->ipatch = overlay_.index_patch();
    next->version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
    version = next->version;
    next->generation = cur->generation;
    state_.store(std::shared_ptr<const LiveState>(std::move(next)),
                 std::memory_order_release);
    overlay_depth_.store(overlay_.depth(), std::memory_order_relaxed);
    overlay_bytes_.store(overlay_.overlay_bytes(), std::memory_order_relaxed);
    updates_.fetch_add(1, std::memory_order_relaxed);
    mutations_.fetch_add(batch.num_ops(), std::memory_order_relaxed);
    trigger = cfg_.compact_threshold_batches > 0 &&
              overlay_.depth() >= cfg_.compact_threshold_batches;
  }
  // Group commit happens outside update_mu_: concurrent acknowledgers share
  // one fsync, and new appends are not blocked behind it.
  bool durable = false;
  if (wal_ != nullptr) {
    if (dopts_.fsync_policy == FsyncPolicy::kAlways) {
      WS_RETURN_NOT_OK(wal_->SyncTo(seq));
      durable = true;
    } else {
      durable = wal_->synced_seq() >= seq;
    }
  }
  if (out != nullptr) {
    out->version = version;
    out->seq = seq;
    out->durable = durable;
  }
  ObserveMs("ws_live_apply_ms", timer.ElapsedMs());
  if (trigger && compaction_trigger_) compaction_trigger_();
  return Status::OK();
}

Status SnapshotManager::CompactOnce() {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);

  // Capture a consistent fold input: the published state *is* the overlay's
  // (base + patches) at capture time, and `folded` marks how much of the
  // batch log it covers.
  std::shared_ptr<const LiveState> pinned;
  size_t folded = 0;
  uint64_t captured_base_seq = 0;
  std::unordered_map<NodeId, std::string> overlay_text;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    pinned = state_.load(std::memory_order_acquire);
    folded = overlay_.depth();
    captured_base_seq = wal_base_seq_;
    overlay_text = overlay_.node_text();
  }
  if (folded == 0) return Status::OK();  // nothing to fold
  // WAL sequences are 1:1 with accepted applies, so the fold covers exactly
  // seqs (captured_base_seq, captured_base_seq + folded].
  const uint64_t last_included = captured_base_seq + folded;

  // Fold off the serving path: no lock held, queries and applies proceed.
  compaction_phase_.store(1, std::memory_order_release);
  if (fault_) fault_("live:fold");
  WallTimer fold_timer;
  GraphSnapshot next_snap;
  next_snap.graph = MaterializeGraph(pinned->graph_view());
  next_snap.index = pinned->base->index;  // copy, then apply posting deltas
  if (pinned->ipatch != nullptr) {
    for (const auto& [term, list] : pinned->ipatch->merged_postings) {
      next_snap.index.SetTermPostings(term, list);
    }
  }
  next_snap.node_text = pinned->base->node_text;
  for (const auto& [v, text] : overlay_text) {
    if (text.empty()) {
      next_snap.node_text.erase(v);
    } else {
      next_snap.node_text[v] = text;
    }
  }
  next_snap.generation = pinned->generation + 1;
  last_fold_ms_.store(fold_timer.ElapsedMs(), std::memory_order_relaxed);

  // Durable mode: make the folded snapshot crash-safe on disk *before*
  // publishing it. A failure (or a simulated crash at snap:write /
  // snap:rename) aborts the compaction cleanly — the overlay, the WAL, and
  // the published state are untouched, and at most a .tmp file leaks (boot
  // GC sweeps it).
  std::string snap_file;
  if (wal_ != nullptr) {
    snap_file = SnapshotFileName(next_snap.generation);
    WS_RETURN_NOT_OK(SaveSnapshotFile(dopts_.data_dir + "/" + snap_file,
                                      next_snap, fault_));
  }
  std::shared_ptr<const GraphSnapshot> new_base =
      WrapSnapshot(std::move(next_snap));

  // Publish: rebase the overlay tail (batches applied during the fold) onto
  // the new snapshot and swap the state in. Mutators are briefly excluded;
  // readers never block — they keep loading whichever state is current.
  uint64_t gen = 0;
  uint64_t published_version = 0;
  WallTimer publish_timer;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    compaction_phase_.store(2, std::memory_order_release);
    if (wal_ != nullptr) {
      // Close the current segment before the manifest can reference past
      // it. Rotation failure aborts the publish with every in-memory and
      // on-disk structure still consistent (the new snapshot file becomes
      // an orphan; boot GC sweeps it).
      Status rs = wal_->Rotate(last_seq_ + 1);
      if (!rs.ok()) {
        compaction_phase_.store(0, std::memory_order_release);
        return rs;
      }
      wal_base_seq_ = last_included;
      wal_base_seq_stat_.store(last_included, std::memory_order_relaxed);
    }
    overlay_.Rebase(new_base, folded);
    auto next = std::make_shared<LiveState>();
    next->base = std::move(new_base);
    next->gpatch = overlay_.graph_patch();
    next->ipatch = overlay_.index_patch();
    next->version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
    published_version = next->version;
    gen = generation_.fetch_add(1, std::memory_order_relaxed) + 1;
    next->generation = gen;
    WS_CHECK(gen == pinned->generation + 1);  // folds are serialized
    if (fault_) fault_("live:publish");
    state_.store(std::shared_ptr<const LiveState>(std::move(next)),
                 std::memory_order_release);
    overlay_depth_.store(overlay_.depth(), std::memory_order_relaxed);
    overlay_bytes_.store(overlay_.overlay_bytes(), std::memory_order_relaxed);
  }
  last_publish_ms_.store(publish_timer.ElapsedMs(), std::memory_order_relaxed);
  compactions_.fetch_add(1, std::memory_order_relaxed);
  compaction_phase_.store(0, std::memory_order_release);
  ObserveMs("ws_live_fold_ms", last_fold_ms_.load());
  ObserveMs("ws_live_publish_ms", last_publish_ms_.load());

  // Durable mode: commit the compaction on disk, then garbage-collect what
  // it superseded. A crash (or failure) before the manifest lands simply
  // means the compaction "didn't happen" durably — recovery replays the
  // full WAL tail onto the previous snapshot, which is equivalent content
  // (the overlay ≡ cold-rebuild contract), just an older generation.
  Status durable_st = Status::OK();
  if (wal_ != nullptr) {
    Manifest m;
    m.generation = gen;
    m.snapshot_file = snap_file;
    m.last_included_seq = last_included;
    m.version = published_version;
    durable_st = WriteManifest(dopts_.data_dir, m, fault_);
    if (durable_st.ok()) {
      manifest_gen_.store(gen, std::memory_order_relaxed);
      auto deleted = wal_->DeleteSegmentsCoveredBy(last_included);
      if (deleted.ok()) {
        wal_gc_deleted_.fetch_add(*deleted, std::memory_order_relaxed);
      } else {
        durable_st = deleted.status();
      }
      // Superseded snapshot files are unreferenced once the manifest names
      // the new one.
      auto names = ListDir(dopts_.data_dir);
      if (names.ok()) {
        for (const std::string& n : *names) {
          uint64_t file_gen = 0;
          if (ParseSnapshotFileName(n, &file_gen) && file_gen != gen) {
            (void)RemoveFile(dopts_.data_dir + "/" + n);
          }
        }
      }
    }
  }
  // Outside update_mu_ but inside compact_mu_, so callbacks arrive in
  // publish order and may call back into the manager freely. The callback
  // fires even if the durable commit failed: the in-memory publish DID
  // happen, so caches must invalidate regardless.
  if (publish_cb_) publish_cb_(gen);
  return durable_st;
}

bool SnapshotManager::HasDurableState(const std::string& data_dir) {
  return PathExists(data_dir + "/" + kManifestFile);
}

Status SnapshotManager::SyncWal() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

Status SnapshotManager::ShutdownDurable() {
  if (wal_ == nullptr) return Status::OK();
  // update_mu_ excludes racing mutators, so the marker's (last_seq, version)
  // promise is exact. Lock order update_mu_ -> sync_mu_ matches the
  // rotation path.
  std::lock_guard<std::mutex> lock(update_mu_);
  WS_RETURN_NOT_OK(wal_->Sync());
  CleanMarker marker;
  marker.last_seq = last_seq_;
  marker.version = version_.load(std::memory_order_relaxed);
  return WriteCleanMarker(dopts_.data_dir, marker);
}

Result<std::unique_ptr<SnapshotManager>> SnapshotManager::OpenDurable(
    KnowledgeGraph graph, InvertedIndex index, Config cfg,
    DurabilityOptions dopts, RecoveryInfo* info) {
  WallTimer timer;
  WS_RETURN_NOT_OK(EnsureDir(dopts.data_dir));
  WalOptions wopts;
  wopts.policy = dopts.fsync_policy;
  wopts.interval_ms = dopts.fsync_interval_ms;
  RecoveryInfo rec;

  std::unique_ptr<SnapshotManager> mgr;
  uint64_t last_seq = 0;       // last sequence on disk after replay
  uint64_t base_seq = 0;       // manifest truncation point
  uint64_t segment_start = 1;  // WAL segment to (re)open for appending

  if (!HasDurableState(dopts.data_dir)) {
    // Fresh directory: the passed-in KB becomes the generation-1 snapshot.
    // No MANIFEST means no durable lineage — anything else lying around
    // (stale segments from a half-created directory, a lone CLEAN marker)
    // must not leak into the new one.
    {
      auto names = ListDir(dopts.data_dir);
      WS_RETURN_NOT_OK(names.status());
      for (const std::string& n : *names) {
        uint64_t ignored = 0;
        const bool is_tmp =
            n.size() > 4 && n.compare(n.size() - 4, 4, ".tmp") == 0;
        if (n.rfind("wal-", 0) == 0 || ParseSnapshotFileName(n, &ignored) ||
            n == kCleanMarkerFile || is_tmp) {
          WS_RETURN_NOT_OK(RemoveFile(dopts.data_dir + "/" + n));
        }
      }
    }
    mgr.reset(new SnapshotManager(std::move(graph), std::move(index), cfg));
    const std::string snap_file = SnapshotFileName(1);
    WS_RETURN_NOT_OK(SaveSnapshotFile(dopts.data_dir + "/" + snap_file,
                                      *mgr->Pin()->base, nullptr));
    Manifest m;
    m.generation = 1;
    m.snapshot_file = snap_file;
    m.last_included_seq = 0;
    m.version = 1;
    WS_RETURN_NOT_OK(WriteManifest(dopts.data_dir, m, nullptr));
    mgr->manifest_gen_.store(1, std::memory_order_relaxed);
  } else {
    rec.recovered = true;
    auto manifest = ReadManifest(dopts.data_dir);
    WS_RETURN_NOT_OK(manifest.status());
    auto clean = ReadCleanMarker(dopts.data_dir);
    if (!clean.ok() && clean.status().code() != StatusCode::kNotFound) {
      return clean.status();
    }
    rec.clean_shutdown = clean.ok();

    auto snap = LoadSnapshotFile(dopts.data_dir + "/" +
                                 manifest->snapshot_file);
    WS_RETURN_NOT_OK(snap.status());
    if (snap->generation != manifest->generation) {
      return Status::Corruption("snapshot/manifest generation mismatch: " +
                                std::to_string(snap->generation) + " vs " +
                                std::to_string(manifest->generation));
    }
    mgr.reset(new SnapshotManager(std::move(*snap), cfg, manifest->version,
                                  manifest->generation));
    mgr->manifest_gen_.store(manifest->generation, std::memory_order_relaxed);

    // Replay the WAL tail through the ordinary Apply path (durability not
    // yet enabled, so nothing is re-logged and no compaction triggers).
    base_seq = manifest->last_included_seq;
    uint64_t expected = base_seq + 1;
    auto segments = ListWalSegments(dopts.data_dir);
    WS_RETURN_NOT_OK(segments.status());
    for (size_t i = 0; i < segments->size(); ++i) {
      const WalSegment& seg = (*segments)[i];
      auto read = ReadWalFile(seg.path);
      WS_RETURN_NOT_OK(read.status());
      if (read->torn) {
        // A torn record is legal only as the very tail of an unclean
        // shutdown; anywhere else (or after a CLEAN promise) it is real
        // corruption.
        if (rec.clean_shutdown || i + 1 != segments->size()) {
          return Status::Corruption("torn WAL record not at tail: " +
                                    read->diagnostic);
        }
        rec.wal_tail_torn = true;
        WS_RETURN_NOT_OK(TruncateFile(seg.path, read->valid_bytes));
      }
      for (const WalRecord& r : read->records) {
        if (r.seq <= base_seq) continue;  // already folded in the snapshot
        if (r.seq != expected) {
          return Status::Corruption(
              "WAL sequence gap: expected " + std::to_string(expected) +
              ", found " + std::to_string(r.seq) + " in " + seg.path);
        }
        Status st = mgr->Apply(r.batch);
        if (!st.ok()) {
          // Only accepted batches are logged, and acceptance is
          // deterministic — a replay rejection means the directory and the
          // log disagree.
          return Status::Corruption("WAL replay of seq " +
                                    std::to_string(r.seq) +
                                    " rejected: " + st.ToString());
        }
        ++rec.replayed_batches;
        ++expected;
      }
    }
    last_seq = expected - 1;
    if (rec.clean_shutdown) {
      if (clean->last_seq != last_seq) {
        return Status::Corruption(
            "CLEAN marker promises last_seq " +
            std::to_string(clean->last_seq) + " but WAL replay ended at " +
            std::to_string(last_seq));
      }
      if (clean->version != mgr->version()) {
        return Status::Corruption(
            "CLEAN marker promises version " +
            std::to_string(clean->version) + " but replay reached " +
            std::to_string(mgr->version()));
      }
      WS_RETURN_NOT_OK(RemoveCleanMarker(dopts.data_dir));
    }
    if (!segments->empty()) {
      segment_start = segments->back().start;
    } else {
      segment_start = last_seq + 1;
    }

    // Boot GC: segments fully folded into the snapshot, snapshot files the
    // manifest no longer names, and interrupted .tmp writes.
    auto names = ListDir(dopts.data_dir);
    WS_RETURN_NOT_OK(names.status());
    for (const std::string& n : *names) {
      uint64_t file_gen = 0;
      if (ParseSnapshotFileName(n, &file_gen) &&
          file_gen != manifest->generation) {
        WS_RETURN_NOT_OK(RemoveFile(dopts.data_dir + "/" + n));
      }
      if (n.size() > 4 && n.compare(n.size() - 4, 4, ".tmp") == 0) {
        WS_RETURN_NOT_OK(RemoveFile(dopts.data_dir + "/" + n));
      }
    }
  }

  auto wal = WalWriter::Open(dopts.data_dir, segment_start, last_seq, wopts);
  WS_RETURN_NOT_OK(wal.status());
  mgr->dopts_ = dopts;
  mgr->wal_ = std::move(*wal);
  mgr->wal_base_seq_ = base_seq;
  mgr->wal_base_seq_stat_.store(base_seq, std::memory_order_relaxed);
  mgr->last_seq_ = last_seq;
  mgr->replayed_ = rec.replayed_batches;
  mgr->clean_boot_ = rec.clean_shutdown;
  if (rec.recovered) {
    // Sweep segments the previous life never got to GC (e.g. a crash right
    // after the manifest landed but before its truncation pass ran).
    auto deleted = mgr->wal_->DeleteSegmentsCoveredBy(base_seq);
    WS_RETURN_NOT_OK(deleted.status());
    mgr->wal_gc_deleted_.fetch_add(*deleted, std::memory_order_relaxed);
  }
  rec.generation = mgr->generation();
  rec.version = mgr->version();
  rec.recovery_ms = timer.ElapsedMs();
  if (info != nullptr) *info = rec;
  return mgr;
}

const char* SnapshotManager::compaction_state() const {
  switch (compaction_phase_.load(std::memory_order_acquire)) {
    case 1:
      return "folding";
    case 2:
      return "publishing";
    default:
      return "idle";
  }
}

void SnapshotManager::ObserveMs(const char* name, double ms) {
  if (metrics_ == nullptr) return;
  metrics_->GetHistogram(name)->Observe(ms);
}

}  // namespace wikisearch::live
