#include "live/snapshot_manager.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"

namespace wikisearch::live {

SnapshotManager::SnapshotManager(KnowledgeGraph graph, InvertedIndex index)
    : SnapshotManager(std::move(graph), std::move(index), Config()) {}

SnapshotManager::SnapshotManager(KnowledgeGraph graph, InvertedIndex index,
                                 Config cfg)
    : cfg_(cfg),
      retired_(std::make_shared<std::atomic<uint64_t>>(0)),
      overlay_(DeltaOverlay::Config{cfg.distance_pairs, cfg.distance_seed}) {
  if (!graph.has_weights()) AttachNodeWeights(&graph);
  if (graph.average_distance() <= 0.0) {
    AttachAverageDistance(&graph, cfg_.distance_pairs, cfg_.distance_seed);
  }
  GraphSnapshot snap;
  snap.graph = std::move(graph);
  snap.index = std::move(index);
  snap.generation = 1;
  std::shared_ptr<const GraphSnapshot> base = WrapSnapshot(std::move(snap));
  overlay_.Reset(base);
  auto st = std::make_shared<LiveState>();
  st->base = std::move(base);
  st->version = 1;
  st->generation = 1;
  state_.store(std::shared_ptr<const LiveState>(std::move(st)));
}

std::shared_ptr<const GraphSnapshot> SnapshotManager::WrapSnapshot(
    GraphSnapshot&& snap) {
  published_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<std::atomic<uint64_t>> retired = retired_;
  return std::shared_ptr<const GraphSnapshot>(
      new GraphSnapshot(std::move(snap)), [retired](const GraphSnapshot* p) {
        retired->fetch_add(1, std::memory_order_relaxed);
        delete p;
      });
}

KbHandle SnapshotManager::PinHandle() const {
  std::shared_ptr<const LiveState> st = Pin();
  KbHandle kb;
  kb.graph = st->graph_view();
  kb.index = st->index_view();
  kb.version = st->version;
  kb.pin = std::move(st);
  return kb;
}

Status SnapshotManager::Apply(const UpdateBatch& batch) {
  WallTimer timer;
  bool trigger = false;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    if (fault_) fault_("live:apply");
    Status st = overlay_.Apply(batch);
    if (!st.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return st;
    }
    std::shared_ptr<const LiveState> cur =
        state_.load(std::memory_order_acquire);
    auto next = std::make_shared<LiveState>();
    next->base = overlay_.base();
    next->gpatch = overlay_.graph_patch();
    next->ipatch = overlay_.index_patch();
    next->version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
    next->generation = cur->generation;
    state_.store(std::shared_ptr<const LiveState>(std::move(next)),
                 std::memory_order_release);
    overlay_depth_.store(overlay_.depth(), std::memory_order_relaxed);
    overlay_bytes_.store(overlay_.overlay_bytes(), std::memory_order_relaxed);
    updates_.fetch_add(1, std::memory_order_relaxed);
    mutations_.fetch_add(batch.num_ops(), std::memory_order_relaxed);
    trigger = cfg_.compact_threshold_batches > 0 &&
              overlay_.depth() >= cfg_.compact_threshold_batches;
  }
  ObserveMs("ws_live_apply_ms", timer.ElapsedMs());
  if (trigger && compaction_trigger_) compaction_trigger_();
  return Status::OK();
}

Status SnapshotManager::CompactOnce() {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);

  // Capture a consistent fold input: the published state *is* the overlay's
  // (base + patches) at capture time, and `folded` marks how much of the
  // batch log it covers.
  std::shared_ptr<const LiveState> pinned;
  size_t folded = 0;
  std::unordered_map<NodeId, std::string> overlay_text;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    pinned = state_.load(std::memory_order_acquire);
    folded = overlay_.depth();
    overlay_text = overlay_.node_text();
  }
  if (folded == 0) return Status::OK();  // nothing to fold

  // Fold off the serving path: no lock held, queries and applies proceed.
  compaction_phase_.store(1, std::memory_order_release);
  if (fault_) fault_("live:fold");
  WallTimer fold_timer;
  GraphSnapshot next_snap;
  next_snap.graph = MaterializeGraph(pinned->graph_view());
  next_snap.index = pinned->base->index;  // copy, then apply posting deltas
  if (pinned->ipatch != nullptr) {
    for (const auto& [term, list] : pinned->ipatch->merged_postings) {
      next_snap.index.SetTermPostings(term, list);
    }
  }
  next_snap.node_text = pinned->base->node_text;
  for (const auto& [v, text] : overlay_text) {
    if (text.empty()) {
      next_snap.node_text.erase(v);
    } else {
      next_snap.node_text[v] = text;
    }
  }
  next_snap.generation = pinned->generation + 1;
  last_fold_ms_.store(fold_timer.ElapsedMs(), std::memory_order_relaxed);
  std::shared_ptr<const GraphSnapshot> new_base =
      WrapSnapshot(std::move(next_snap));

  // Publish: rebase the overlay tail (batches applied during the fold) onto
  // the new snapshot and swap the state in. Mutators are briefly excluded;
  // readers never block — they keep loading whichever state is current.
  uint64_t gen = 0;
  WallTimer publish_timer;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    compaction_phase_.store(2, std::memory_order_release);
    overlay_.Rebase(new_base, folded);
    auto next = std::make_shared<LiveState>();
    next->base = std::move(new_base);
    next->gpatch = overlay_.graph_patch();
    next->ipatch = overlay_.index_patch();
    next->version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
    gen = generation_.fetch_add(1, std::memory_order_relaxed) + 1;
    next->generation = gen;
    WS_CHECK(gen == pinned->generation + 1);  // folds are serialized
    if (fault_) fault_("live:publish");
    state_.store(std::shared_ptr<const LiveState>(std::move(next)),
                 std::memory_order_release);
    overlay_depth_.store(overlay_.depth(), std::memory_order_relaxed);
    overlay_bytes_.store(overlay_.overlay_bytes(), std::memory_order_relaxed);
  }
  last_publish_ms_.store(publish_timer.ElapsedMs(), std::memory_order_relaxed);
  compactions_.fetch_add(1, std::memory_order_relaxed);
  compaction_phase_.store(0, std::memory_order_release);
  ObserveMs("ws_live_fold_ms", last_fold_ms_.load());
  ObserveMs("ws_live_publish_ms", last_publish_ms_.load());
  // Outside update_mu_ but inside compact_mu_, so callbacks arrive in
  // publish order and may call back into the manager freely.
  if (publish_cb_) publish_cb_(gen);
  return Status::OK();
}

const char* SnapshotManager::compaction_state() const {
  switch (compaction_phase_.load(std::memory_order_acquire)) {
    case 1:
      return "folding";
    case 2:
      return "publishing";
    default:
      return "idle";
  }
}

void SnapshotManager::ObserveMs(const char* name, double ms) {
  if (metrics_ == nullptr) return;
  metrics_->GetHistogram(name)->Observe(ms);
}

}  // namespace wikisearch::live
