// MANIFEST: the single source of truth for what a durable data directory
// contains (DESIGN.md §12). A two-line text file — one JSON object naming
// the current snapshot file, its generation, the last WAL sequence folded
// into it, and the version it publishes at; then the decimal CRC32 of the
// first line. Written atomically (temp + fsync + rename + dir fsync), so
// recovery always sees either the old manifest or the new one.
//
// CLEAN is a sibling marker written at graceful shutdown and consumed
// (deleted) on boot: its presence certifies the WAL tail is complete and
// fsynced, letting recovery skip torn-tail tolerance and treat any
// irregularity as hard corruption.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/search_options.h"

namespace wikisearch::live {

inline constexpr const char kManifestFile[] = "MANIFEST";
inline constexpr const char kCleanMarkerFile[] = "CLEAN";

struct Manifest {
  uint32_t format = 1;
  uint64_t generation = 0;
  std::string snapshot_file;     // name within the data dir ("snap-G.wssp")
  uint64_t last_included_seq = 0;  // WAL records <= this are in the snapshot
  uint64_t version = 0;          // published version at snapshot time
};

/// Atomically replaces `dir`/MANIFEST. Fault point "manifest:write" fires
/// before any byte is written.
Status WriteManifest(const std::string& dir, const Manifest& m,
                     const FaultHook& fault = nullptr);

/// Reads and checksum-verifies `dir`/MANIFEST. NotFound when absent,
/// Corruption on any mismatch.
Result<Manifest> ReadManifest(const std::string& dir);

/// Graceful-shutdown receipt: the WAL is flushed and complete through
/// `last_seq`, the published version was `version`.
struct CleanMarker {
  uint64_t last_seq = 0;
  uint64_t version = 0;
};

Status WriteCleanMarker(const std::string& dir, const CleanMarker& m);
/// NotFound when absent (i.e. the previous process did not shut down
/// cleanly), Corruption when unreadable.
Result<CleanMarker> ReadCleanMarker(const std::string& dir);
Status RemoveCleanMarker(const std::string& dir);

}  // namespace wikisearch::live
