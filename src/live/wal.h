// Write-ahead log for live updates (DESIGN.md §12). Every accepted
// UpdateBatch is appended — length-prefixed, CRC32-checksummed, and
// monotonically sequenced — *before* the new overlay state becomes visible,
// so a crash can lose at most un-acknowledged work.
//
// On-disk layout: the data directory holds segment files named
// `wal-<start>.log` where <start> is the zero-padded sequence number of the
// segment's first record. Each record is:
//
//   uint32 payload_len | uint32 crc32(seq ‖ payload) | uint64 seq | payload
//
// with the payload a self-contained encoding of one UpdateBatch. Records
// never span segments. A torn final record (crash mid-append) is detected by
// the length/CRC and discarded by recovery; anything before it is intact.
//
// Group commit: Append() only issues the write(2); acknowledgement-time
// durability is SyncTo(seq), which fsyncs once on behalf of every append
// that raced in before it (leader/follower on an internal mutex). The fsync
// policy knob decides who calls it: `always` syncs before every ack,
// `interval_ms` runs a background flusher, `never` leaves it to the OS.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/search_options.h"
#include "live/update.h"

namespace wikisearch::live {

/// When an acknowledged Apply is guaranteed to survive a machine crash.
enum class FsyncPolicy {
  kAlways,    // fsync before every acknowledgement (group commit)
  kInterval,  // background fsync every interval_ms; bounded loss window
  kNever,     // write(2) only; survives process crash, not power loss
};

const char* FsyncPolicyName(FsyncPolicy policy);
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);

struct WalOptions {
  FsyncPolicy policy = FsyncPolicy::kAlways;
  /// Flusher period for FsyncPolicy::kInterval, in milliseconds.
  double interval_ms = 5.0;
};

/// Serializes `batch` into `*out` (appending) in the WAL payload format.
void EncodeBatch(const UpdateBatch& batch, std::string* out);

/// Inverse of EncodeBatch over exactly `data`; Corruption on any mismatch.
Status DecodeBatch(std::string_view data, UpdateBatch* out);

/// Segment file name for a given first-record sequence number
/// ("wal-00000000000000000001.log" — zero-padded so lexicographic order is
/// numeric order).
std::string WalSegmentName(uint64_t start_seq);

struct WalSegment {
  uint64_t start = 0;   // sequence number of the segment's first record
  std::string path;
};

/// WAL segments present in `dir`, sorted by start sequence. Non-WAL names
/// are ignored.
Result<std::vector<WalSegment>> ListWalSegments(const std::string& dir);

struct WalRecord {
  uint64_t seq = 0;
  UpdateBatch batch;
};

struct WalReadResult {
  std::vector<WalRecord> records;  // whole, checksum-valid records in order
  uint64_t valid_bytes = 0;        // file offset just past the last good record
  bool torn = false;               // trailing bytes that don't form a record
  std::string diagnostic;          // human-readable reason when torn
};

/// Scans one segment file. Stops at the first record whose header, length,
/// or checksum doesn't hold and reports it via `torn`/`diagnostic` — every
/// record *returned* is whole and checksum-valid. Only a decode failure of a
/// checksum-valid payload (impossible by truncation) is a hard error.
Result<WalReadResult> ReadWalFile(const std::string& path);

/// Appender for the currently open segment. Thread compatibility: Append()
/// and Rotate() must be externally serialized (SnapshotManager calls them
/// under its update lock); Sync()/SyncTo() may be called concurrently from
/// any thread.
class WalWriter {
 public:
  /// Opens segment `wal-<segment_start>.log` in `dir` for appending
  /// (creating it if absent — recovery reopens the tail segment, a fresh
  /// directory starts at segment 1). `last_seq` is the most recent sequence
  /// number already on disk (0 if none); Append expects last_seq+1 next.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 uint64_t segment_start,
                                                 uint64_t last_seq,
                                                 const WalOptions& opts);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends record `seq` (must be exactly written_seq()+1). Issues the
  /// write(2) but no fsync. Fault point "wal:append" fires before the write.
  Status Append(uint64_t seq, const UpdateBatch& batch);

  /// Group commit: returns once every record up to `seq` is fsynced. The
  /// caller that takes the sync lock flushes through the current write
  /// frontier, so concurrent acknowledgers share one fsync. Fault point
  /// "wal:fsync" fires before the fsync. No-op under FsyncPolicy::kNever.
  Status SyncTo(uint64_t seq);

  /// Fsyncs everything written so far (shutdown / manual flush). Honored
  /// under every policy, including kNever.
  Status Sync();

  /// Closes the current segment (fsyncing it unconditionally, so no later
  /// manifest can reference data that isn't durable) and starts
  /// `wal-<next_start>.log`. No-op if the current segment is still empty.
  /// Serialized with Append by the caller.
  Status Rotate(uint64_t next_start);

  /// Deletes every segment whose records all have seq <= last_included
  /// (provable from the *next* segment's start; the open segment is never
  /// deleted). Fault point "wal:truncate" fires before the first unlink.
  /// Returns the number of segments deleted.
  Result<uint64_t> DeleteSegmentsCoveredBy(uint64_t last_included);

  void SetFaultHook(FaultHook hook);

  uint64_t written_seq() const {
    return written_seq_.load(std::memory_order_acquire);
  }
  uint64_t synced_seq() const {
    return synced_seq_.load(std::memory_order_acquire);
  }
  uint64_t segment_start() const { return segment_start_; }
  uint64_t appends_total() const { return appends_.load(); }
  uint64_t fsyncs_total() const { return fsyncs_.load(); }
  uint64_t bytes_written() const { return bytes_.load(); }
  uint64_t rotations_total() const { return rotations_.load(); }
  const WalOptions& options() const { return opts_; }

 private:
  WalWriter(std::string dir, uint64_t segment_start, uint64_t last_seq,
            WalOptions opts);

  /// Fsync through the current write frontier; sync_mu_ must be held.
  /// Background (flusher) syncs skip the fault hook so a test crash point
  /// can't escape on a detached thread.
  Status SyncLocked(bool foreground);
  void StartFlusher();

  const std::string dir_;
  const WalOptions opts_;
  FaultHook fault_;  // set before serving; read from mutator threads

  // fd_ is written only under BOTH the caller's append serialization and
  // sync_mu_ (Rotate); Append reads it append-serialized, syncs read it
  // under sync_mu_.
  int fd_ = -1;
  uint64_t segment_start_ = 0;

  std::atomic<uint64_t> written_seq_{0};
  std::atomic<uint64_t> synced_seq_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> rotations_{0};

  std::mutex sync_mu_;
  Status flusher_error_;  // guarded by sync_mu_; surfaced on next sync
  std::thread flusher_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;

  std::string encode_buf_;  // Append scratch; append-serialized like fd_
};

}  // namespace wikisearch::live
