#include "live/persist.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/fsio.h"
#include "graph/graph_io.h"

namespace wikisearch::live {

namespace {

constexpr char kSnapMagic[4] = {'W', 'S', 'S', 'P'};
constexpr uint32_t kSnapFormat = 1;
// Trailing marker proving serialization ran to completion; a snapshot is
// only ever read through the rename protocol, so this is belt & braces
// against filesystems reordering the rename past the data flush.
constexpr uint32_t kSnapEndMarker = 0x50535357;  // "WSSP" little-endian

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) return Status::IoError("short write");
  return Status::OK();
}

Status ReadAll(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::IoError("short read / truncated snapshot");
  }
  return Status::OK();
}

}  // namespace

std::string SnapshotFileName(uint64_t generation) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snap-%" PRIu64 ".wssp", generation);
  return buf;
}

bool ParseSnapshotFileName(const std::string& name, uint64_t* generation) {
  uint64_t gen = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "snap-%" SCNu64 ".wss%c", &gen, &tail) == 2 &&
      tail == 'p' && name == SnapshotFileName(gen)) {
    *generation = gen;
    return true;
  }
  return false;
}

Status SaveSnapshotFile(const std::string& path, const GraphSnapshot& snap,
                        const FaultHook& fault) {
  if (fault) fault("snap:write");
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return Status::IoError("cannot open for write: " + tmp);
    WS_RETURN_NOT_OK(WriteAll(f.get(), kSnapMagic, sizeof(kSnapMagic)));
    WS_RETURN_NOT_OK(WriteAll(f.get(), &kSnapFormat, sizeof(kSnapFormat)));
    WS_RETURN_NOT_OK(
        WriteAll(f.get(), &snap.generation, sizeof(snap.generation)));
    WS_RETURN_NOT_OK(WriteGraphTo(f.get(), snap.graph));
    WS_RETURN_NOT_OK(snap.index.SaveTo(f.get()));
    // Node-text section, sorted by id so the file is deterministic for a
    // given snapshot.
    std::vector<NodeId> ids;
    ids.reserve(snap.node_text.size());
    for (const auto& [v, text] : snap.node_text) ids.push_back(v);
    std::sort(ids.begin(), ids.end());
    uint64_t count = ids.size();
    WS_RETURN_NOT_OK(WriteAll(f.get(), &count, sizeof(count)));
    for (NodeId v : ids) {
      const std::string& text = snap.node_text.at(v);
      uint64_t id64 = v;
      uint32_t len = static_cast<uint32_t>(text.size());
      WS_RETURN_NOT_OK(WriteAll(f.get(), &id64, sizeof(id64)));
      WS_RETURN_NOT_OK(WriteAll(f.get(), &len, sizeof(len)));
      WS_RETURN_NOT_OK(WriteAll(f.get(), text.data(), len));
    }
    WS_RETURN_NOT_OK(
        WriteAll(f.get(), &kSnapEndMarker, sizeof(kSnapEndMarker)));
    if (std::fflush(f.get()) != 0) {
      return Status::IoError("fflush failed: " + tmp);
    }
    if (::fsync(::fileno(f.get())) != 0) {
      return Status::IoError("fsync failed: " + tmp);
    }
  }
  if (fault) fault("snap:rename");
  WS_RETURN_NOT_OK(RenameFile(tmp, path));
  return FsyncDir(DirName(path));
}

Result<GraphSnapshot> LoadSnapshotFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char magic[4];
  WS_RETURN_NOT_OK(ReadAll(f.get(), magic, sizeof(magic)));
  if (std::memcmp(magic, kSnapMagic, sizeof(kSnapMagic)) != 0) {
    return Status::Corruption("bad magic; not a WSSP file: " + path);
  }
  uint32_t format = 0;
  WS_RETURN_NOT_OK(ReadAll(f.get(), &format, sizeof(format)));
  if (format != kSnapFormat) {
    return Status::Corruption("unsupported snapshot format: " + path);
  }
  GraphSnapshot snap;
  WS_RETURN_NOT_OK(
      ReadAll(f.get(), &snap.generation, sizeof(snap.generation)));
  auto graph = ReadGraphFrom(f.get());
  WS_RETURN_NOT_OK(graph.status());
  snap.graph = std::move(*graph);
  auto index = InvertedIndex::LoadFrom(f.get());
  WS_RETURN_NOT_OK(index.status());
  snap.index = std::move(*index);
  uint64_t count = 0;
  WS_RETURN_NOT_OK(ReadAll(f.get(), &count, sizeof(count)));
  if (count > (1ULL << 30)) {
    return Status::Corruption("implausible node-text count: " + path);
  }
  snap.node_text.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id64 = 0;
    uint32_t len = 0;
    WS_RETURN_NOT_OK(ReadAll(f.get(), &id64, sizeof(id64)));
    WS_RETURN_NOT_OK(ReadAll(f.get(), &len, sizeof(len)));
    if (len > (1u << 24)) {
      return Status::Corruption("implausible node-text size: " + path);
    }
    std::string text(len, '\0');
    WS_RETURN_NOT_OK(ReadAll(f.get(), text.data(), len));
    snap.node_text.emplace(static_cast<NodeId>(id64), std::move(text));
  }
  uint32_t end = 0;
  WS_RETURN_NOT_OK(ReadAll(f.get(), &end, sizeof(end)));
  if (end != kSnapEndMarker) {
    return Status::Corruption("missing end marker (incomplete snapshot): " +
                              path);
  }
  return snap;
}

}  // namespace wikisearch::live
