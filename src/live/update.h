// Online mutation vocabulary of the live-update subsystem (DESIGN.md §10).
// A batch is the unit of atomicity: either every op in it becomes visible
// in one published overlay state, or none does (validation failure rejects
// the whole batch). Names, not ids, address nodes and labels — ids are an
// artifact of first-appearance order and are assigned by the overlay
// exactly as a from-scratch GraphBuilder replay would assign them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wikisearch::live {

/// One directed labeled triple, by display names. Adds create unknown
/// subjects/objects/predicates; removes require the exact triple to exist
/// (one instance of it — duplicates are a multiset, per RDF).
struct TripleOp {
  std::string subject;
  std::string predicate;
  std::string object;
};

/// Replaces the extra searchable text attached to an existing node (the
/// node's name is always indexed on top). An empty `text` clears it.
struct TextOp {
  std::string node;
  std::string text;
};

struct UpdateBatch {
  std::vector<TripleOp> add;
  std::vector<TripleOp> remove;
  std::vector<TextOp> text;

  bool empty() const { return add.empty() && remove.empty() && text.empty(); }
  size_t num_ops() const { return add.size() + remove.size() + text.size(); }
};

}  // namespace wikisearch::live
