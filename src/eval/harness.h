// Shared infrastructure for the bench/ binaries that regenerate the paper's
// tables and figures: dataset preparation (generate + weight + sample A +
// index), engine profiling over a workload, environment-variable scaling,
// and fixed-width table printing in the paper's row format.
#pragma once

#include <string>
#include <vector>

#include "banks/banks.h"
#include "core/engine.h"
#include "gen/wikigen.h"
#include "gen/workload.h"

namespace wikisearch::eval {

/// A fully prepared dataset: generated KB with node weights and sampled
/// average distance attached, plus its inverted index.
struct DatasetBundle {
  gen::GeneratedKb kb;
  InvertedIndex index;
  std::string name;
};

/// Generates and prepares a dataset. Prints a one-line progress note to
/// stderr (generation takes a few seconds at bench scales).
DatasetBundle PrepareDataset(const gen::WikiGenConfig& config,
                             const std::string& name);

/// Scales a generator config by WS_SCALE (float, default 1.0) so the same
/// bench binaries can run from CI-quick to paper-scale.
gen::WikiGenConfig ScaledConfig(gen::WikiGenConfig config);

/// Per-query time budget for the BANKS baselines: WS_BENCH_TIME_LIMIT_MS,
/// default 2000 (the paper's 500 s cap, scaled; timed-out queries are
/// recorded at the cap exactly as the paper does).
double BanksTimeLimitMs();

/// Number of workload queries per configuration: WS_BENCH_QUERIES,
/// default 8 (the paper averages 50).
size_t BenchQueryCount();

/// Average per-phase timings of the Central Graph engine over a workload.
struct ProfiledRun {
  PhaseTimings avg;            // per-query averages
  double avg_answers = 0.0;
  double avg_centrals = 0.0;
  /// Stage-2 candidate accounting averages; extracted + pruned + skipped
  /// equals avg_centrals (the engine WS_CHECKs the partition per query).
  double avg_extracted = 0.0;
  double avg_pruned = 0.0;
  double avg_skipped = 0.0;
  size_t peak_storage_bytes = 0;
  /// Queries that hit the per-query deadline and degraded to partial
  /// answers (the engine-side counterpart of BanksRun::timeouts).
  size_t timeouts = 0;
};
/// Profiles the engine under the same per-query budget the BANKS baselines
/// get: when opts.deadline_ms is 0, WS_BENCH_TIME_LIMIT_MS applies, so
/// engine-vs-baseline comparisons cap runaway queries identically. At bench
/// scales the engine never comes near the default 2000 ms budget, so timings
/// are unaffected; pass an explicit opts.deadline_ms to study degradation.
///
/// Stage timings are derived from the query's obs spans — the same spans the
/// server's /metrics and trace exports read — rather than a separate set of
/// timers, and the harness checks span sums against the engine's
/// PhaseTimings as exact FP equality. Bench JSON and server metrics
/// therefore cannot disagree about stage cost (DESIGN.md §8).
ProfiledRun ProfileEngine(const DatasetBundle& data,
                          const std::vector<gen::Query>& queries,
                          const SearchOptions& opts);

/// Average total time of a BANKS baseline over a workload (timed-out
/// queries counted at the budget).
struct BanksRun {
  double avg_total_ms = 0.0;
  size_t timeouts = 0;
};
BanksRun ProfileBanks(const DatasetBundle& data,
                      const std::vector<gen::Query>& queries,
                      const banks::BanksOptions& opts);

/// Fixed-width table printing helpers. When the WS_CSV_DIR environment
/// variable names a directory, every table is additionally written there as
/// a CSV file named after a slug of its title, so plots can be regenerated
/// from bench runs.
void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);

/// Slug used for the CSV file name of a table title (exposed for tests).
std::string CsvSlug(const std::string& title);
std::string FmtMs(double ms);
std::string FmtPct(double fraction);

}  // namespace wikisearch::eval
