#include "eval/relevance.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace wikisearch::eval {

RelevanceJudge::RelevanceJudge(const gen::GeneratedKb* kb) : kb_(kb) {}

int32_t RelevanceJudge::KeywordHome(const std::string& keyword) const {
  const auto& terms = kb_->meta.community_terms;
  for (size_t c = 0; c < terms.size(); ++c) {
    if (std::find(terms[c].begin(), terms[c].end(), keyword) !=
        terms[c].end()) {
      return static_cast<int32_t>(c);
    }
  }
  return -1;
}

bool RelevanceJudge::IsRelevant(const gen::Query& query,
                                const AnswerGraph& answer) const {
  const size_t q = query.keywords.size();
  if (answer.keyword_nodes.size() != q) return false;

  // Every keyword must be covered at all.
  for (size_t i = 0; i < q; ++i) {
    if (answer.keyword_nodes[i].empty()) return false;
  }
  if (query.target_community < 0) return true;  // Q10/Q11 mode

  // Topical coherence: keywords with a planted home community must be
  // covered by at least one node of that community.
  const auto& community_of = kb_->meta.community_of_node;
  for (size_t i = 0; i < q; ++i) {
    int32_t home = KeywordHome(query.keywords[i]);
    if (home < 0) continue;
    bool ok = false;
    for (NodeId v : answer.keyword_nodes[i]) {
      if (community_of[v] == home) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }

  // Phrase integrity: some retained node covers >= 2 query keywords.
  if (q >= 2) {
    std::unordered_map<NodeId, int> counts;
    for (size_t i = 0; i < q; ++i) {
      for (NodeId v : answer.keyword_nodes[i]) ++counts[v];
    }
    bool cooccurs = false;
    for (const auto& [v, c] : counts) {
      if (c >= 2) {
        cooccurs = true;
        break;
      }
    }
    if (!cooccurs) return false;
  }
  return true;
}

double RelevanceJudge::TopKPrecision(const gen::Query& query,
                                     const std::vector<AnswerGraph>& answers,
                                     int k) const {
  size_t limit = std::min<size_t>(answers.size(), static_cast<size_t>(k));
  if (limit == 0) return 0.0;
  size_t relevant = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (IsRelevant(query, answers[i])) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(limit);
}

}  // namespace wikisearch::eval
