// Automatic relevance judgment for the effectiveness experiments
// (Fig. 11/12). The paper judges answers manually; its judges reward
// topical coherence and keyword (phrase) co-occurrence and penalize answers
// that cover keywords with scattered, off-topic nodes. The planted
// communities of the synthetic KB let us mechanize exactly that criterion
// (DESIGN.md, substitution 6):
//
//  * every keyword belonging to a planted community's vocabulary must be
//    covered by a node of that community (topical coherence), and
//  * at least one retained node must cover two or more query keywords
//    (phrase integrity / co-occurrence), for multi-keyword queries.
//
// Queries with target_community < 0 (the paper's Q10/Q11) accept any
// connected covering answer, matching the paper's observation that all
// systems score 100% there.
#pragma once

#include <vector>

#include "core/answer.h"
#include "gen/wikigen.h"
#include "gen/workload.h"

namespace wikisearch::eval {

/// Judges answers of one query against the generator metadata.
class RelevanceJudge {
 public:
  RelevanceJudge(const gen::GeneratedKb* kb);

  /// True if `answer` is relevant for `query`. `answer.keyword_nodes[i]`
  /// must correspond to query.keywords[i] (workloads guarantee every
  /// keyword has matches, so no keyword is dropped by the engines).
  bool IsRelevant(const gen::Query& query, const AnswerGraph& answer) const;

  /// Fraction of relevant answers among the first k returned (precision
  /// over returned answers, capped at k).
  double TopKPrecision(const gen::Query& query,
                       const std::vector<AnswerGraph>& answers, int k) const;

  /// Home community of a raw keyword: the planted community whose
  /// vocabulary contains it, or -1 if it is a global term.
  int32_t KeywordHome(const std::string& keyword) const;

 private:
  const gen::GeneratedKb* kb_;
};

}  // namespace wikisearch::eval
