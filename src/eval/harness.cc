#include "eval/harness.h"

#include <cinttypes>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "common/logging.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "obs/trace.h"

namespace wikisearch::eval {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

}  // namespace

DatasetBundle PrepareDataset(const gen::WikiGenConfig& config,
                             const std::string& name) {
  DatasetBundle bundle;
  bundle.name = name;
  WS_LOG("generating dataset %s (%zu entities)...", name.c_str(),
         config.num_entities);
  bundle.kb = gen::Generate(config);
  AttachNodeWeights(&bundle.kb.graph);
  AttachAverageDistance(&bundle.kb.graph);
  bundle.index = InvertedIndex::Build(bundle.kb.graph);
  WS_LOG("dataset %s ready: %zu nodes, %zu triples, A=%.2f, %zu terms",
         name.c_str(), bundle.kb.graph.num_nodes(),
         bundle.kb.graph.num_triples(), bundle.kb.graph.average_distance(),
         bundle.index.num_terms());
  return bundle;
}

gen::WikiGenConfig ScaledConfig(gen::WikiGenConfig config) {
  double scale = EnvDouble("WS_SCALE", 1.0);
  if (scale == 1.0) return config;
  auto scaled = [scale](size_t v) {
    return static_cast<size_t>(std::max(1.0, std::round(v * scale)));
  };
  config.num_entities = scaled(config.num_entities);
  config.num_topic_nodes =
      std::max(config.num_communities, scaled(config.num_topic_nodes));
  config.vocab_size = std::max<size_t>(
      config.vocab_size,
      config.num_summary_nodes + config.num_communities * config.community_vocab + 256);
  return config;
}

double BanksTimeLimitMs() { return EnvDouble("WS_BENCH_TIME_LIMIT_MS", 2000.0); }

size_t BenchQueryCount() {
  return static_cast<size_t>(EnvDouble("WS_BENCH_QUERIES", 8.0));
}

ProfiledRun ProfileEngine(const DatasetBundle& data,
                          const std::vector<gen::Query>& queries,
                          const SearchOptions& opts) {
  ProfiledRun run;
  SearchOptions capped = opts;
  if (capped.deadline_ms <= 0.0) capped.deadline_ms = BanksTimeLimitMs();
  SearchEngine engine(&data.kb.graph, &data.index, capped);
  // Bench timings are read from the query's spans, not a separate timer
  // set; benches measure no metric registry overhead on top of tracing.
  capped.record_metrics = false;
  obs::TraceContext trace;
  capped.trace = &trace;
  size_t count = 0;
  for (const gen::Query& q : queries) {
    trace.Clear();
    Result<SearchResult> res = engine.SearchKeywords(q.keywords, capped);
    WS_CHECK(res.ok());
    if (res->stats.timed_out) ++run.timeouts;
    // Rebuild the stage breakdown from spans. ScopedStage feeds the same
    // elapsed double to the span and to PhaseTimings in the same order, so
    // the two decompositions agree exactly — asserted here on every bench
    // query, which is what makes bench JSON and server metrics two views of
    // one measurement rather than two measurements.
    PhaseTimings from_spans;
    from_spans.init_ms = trace.SumDurationsMs("bottomup/init");
    from_spans.enqueue_ms = trace.SumDurationsMs("bottomup/enqueue");
    from_spans.identify_ms = trace.SumDurationsMs("bottomup/identify");
    from_spans.expansion_ms = trace.SumDurationsMs("bottomup/expand");
    from_spans.topdown_ms = trace.SumDurationsMs("topdown");
    from_spans.transfer_ms = res->timings.transfer_ms;  // modeled, unspanned
    from_spans.total_ms = res->timings.total_ms;
    from_spans.levels = res->timings.levels;
    WS_CHECK(from_spans.init_ms == res->timings.init_ms);
    WS_CHECK(from_spans.enqueue_ms == res->timings.enqueue_ms);
    WS_CHECK(from_spans.identify_ms == res->timings.identify_ms);
    WS_CHECK(from_spans.expansion_ms == res->timings.expansion_ms);
    WS_CHECK(from_spans.topdown_ms == res->timings.topdown_ms);
    run.avg += from_spans;
    run.avg_answers += static_cast<double>(res->answers.size());
    run.avg_centrals += static_cast<double>(res->stats.num_centrals);
    run.avg_extracted += static_cast<double>(res->stats.candidates_extracted);
    run.avg_pruned += static_cast<double>(res->stats.candidates_pruned);
    run.avg_skipped += static_cast<double>(res->stats.candidates_skipped);
    run.peak_storage_bytes =
        std::max(run.peak_storage_bytes,
                 res->stats.running_storage_bytes +
                     res->stats.pre_storage_bytes);
    ++count;
  }
  if (count > 0) {
    run.avg /= static_cast<double>(count);
    run.avg_answers /= static_cast<double>(count);
    run.avg_centrals /= static_cast<double>(count);
    run.avg_extracted /= static_cast<double>(count);
    run.avg_pruned /= static_cast<double>(count);
    run.avg_skipped /= static_cast<double>(count);
  }
  return run;
}

BanksRun ProfileBanks(const DatasetBundle& data,
                      const std::vector<gen::Query>& queries,
                      const banks::BanksOptions& opts) {
  BanksRun run;
  banks::BanksEngine engine(&data.kb.graph, &data.index);
  size_t count = 0;
  for (const gen::Query& q : queries) {
    Result<banks::BanksResult> res = engine.SearchKeywords(q.keywords, opts);
    WS_CHECK(res.ok());
    // The paper records timed-out queries at the cap when averaging.
    run.avg_total_ms +=
        res->timed_out ? opts.time_limit_ms : res->elapsed_ms;
    if (res->timed_out) ++run.timeouts;
    ++count;
  }
  if (count > 0) run.avg_total_ms /= static_cast<double>(count);
  return run;
}

namespace {

// CSV sink: PrintHeader opens <WS_CSV_DIR>/<slug>.csv and PrintRow appends.
std::FILE* g_csv = nullptr;

void CsvWriteCells(const std::vector<std::string>& cells) {
  if (g_csv == nullptr) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    std::string escaped = cells[i];
    bool quote = escaped.find_first_of(",\"\n") != std::string::npos;
    if (quote) {
      std::string q = "\"";
      for (char c : escaped) {
        if (c == '\"') q += '\"';
        q += c;
      }
      q += '\"';
      escaped = std::move(q);
    }
    std::fprintf(g_csv, "%s%s", i == 0 ? "" : ",", escaped.c_str());
  }
  std::fprintf(g_csv, "\n");
  std::fflush(g_csv);
}

}  // namespace

std::string CsvSlug(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("----------------");
  std::printf("\n");
  const char* dir = std::getenv("WS_CSV_DIR");
  if (g_csv != nullptr) {
    std::fclose(g_csv);
    g_csv = nullptr;
  }
  if (dir != nullptr && *dir != '\0') {
    std::string path = std::string(dir) + "/" + CsvSlug(title) + ".csv";
    g_csv = std::fopen(path.c_str(), "w");
    if (g_csv == nullptr) {
      WS_LOG("cannot open CSV sink %s", path.c_str());
    } else {
      CsvWriteCells(columns);
    }
  }
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-16s", c.c_str());
  std::printf("\n");
  CsvWriteCells(cells);
}

std::string FmtMs(double ms) {
  char buf[64];
  if (ms < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ms", ms);
  }
  return buf;
}

std::string FmtPct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

}  // namespace wikisearch::eval
