// Per-phase wall-clock breakdown of a query, matching the profiling
// categories of the paper's Fig. 6/7/9/10: Initialization, Enqueuing
// Frontier, Identifying Central Nodes, Expansion, Top-down Processing,
// Total. kGpuSim additionally reports the modeled device->host transfer.
#pragma once

namespace wikisearch {

struct PhaseTimings {
  double init_ms = 0.0;
  double enqueue_ms = 0.0;
  double identify_ms = 0.0;
  double expansion_ms = 0.0;
  double topdown_ms = 0.0;
  /// Modeled GPU->CPU transfer of the node-keyword matrix (kGpuSim only).
  double transfer_ms = 0.0;
  double total_ms = 0.0;
  int levels = 0;

  PhaseTimings& operator+=(const PhaseTimings& o) {
    init_ms += o.init_ms;
    enqueue_ms += o.enqueue_ms;
    identify_ms += o.identify_ms;
    expansion_ms += o.expansion_ms;
    topdown_ms += o.topdown_ms;
    transfer_ms += o.transfer_ms;
    total_ms += o.total_ms;
    levels += o.levels;
    return *this;
  }

  PhaseTimings& operator/=(double d) {
    init_ms /= d;
    enqueue_ms /= d;
    identify_ms /= d;
    expansion_ms /= d;
    topdown_ms /= d;
    transfer_ms /= d;
    total_ms /= d;
    return *this;
  }
};

}  // namespace wikisearch
