#include "core/bottom_up.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"

namespace wikisearch {

namespace {

/// Algorithm 2 body for one frontier node and one BFS instance at level l.
/// Writes are single-valued per cell at a given level (Thm. V.2), so no
/// synchronization is needed beyond relaxed atomics.
inline void ExpandFrontierInstance(const KnowledgeGraph& g,
                                   const ActivationMap& act,
                                   SearchState* state, NodeId vf, size_t i,
                                   int l) {
  Level hif = state->Hit(vf, i);
  if (hif == kLevelInf || static_cast<int>(hif) > l) return;
  for (const AdjEntry& e : g.Neighbors(vf)) {
    NodeId vn = e.target;
    if (state->Hit(vn, i) != kLevelInf) continue;  // hit once per instance
    if (!state->IsKeywordNode(vn)) {
      // Non-keyword nodes may only be hit once their activation level is
      // reached; retry this frontier at the next level otherwise.
      int an = act.Level(g.NodeWeight(vn));
      if (an > l + 1) {
        state->FlagFrontier(vf);
        continue;
      }
    }
    state->SetHit(vn, i, static_cast<Level>(l + 1));
    state->FlagFrontier(vn);
  }
}

/// Frontier-level gate of Algorithm 2 (lines 2-7). Returns true if vf may
/// expand at level l.
inline bool FrontierMayExpand(const KnowledgeGraph& g,
                              const ActivationMap& act, SearchState* state,
                              NodeId vf, int l) {
  if (state->IsCentral(vf)) return false;  // unavailable once identified
  int af = act.Level(g.NodeWeight(vf));
  if (af > l) {
    // Keyword-node compromise (Sec. IV-B): hit freely, expand only once the
    // global level reaches the activation level. Applies to all nodes.
    state->FlagFrontier(vf);
    return false;
  }
  return true;
}

}  // namespace

BottomUpResult BottomUpSearch(const QueryContext& ctx,
                              const SearchOptions& opts, ThreadPool* pool,
                              SearchState* state, PhaseTimings* timings,
                              bool gpu_style,
                              const ProgressCallback& progress) {
  const KnowledgeGraph& g = *ctx.graph;
  const ActivationMap& act = ctx.activation;
  const size_t n = g.num_nodes();
  const size_t q = ctx.num_keywords();
  BottomUpResult result;
  WallTimer timer;

  // ---- Initialization (fork/join in Alg. 1 line 2) ------------------------
  timer.Restart();
  state->Init(ctx.keyword_nodes);
  timings->init_ms += timer.ElapsedMs();

  std::vector<NodeId>& frontier = state->frontier();
  std::vector<CentralCandidate> level_candidates;
  const size_t wanted = static_cast<size_t>(std::max(opts.top_k, 1));

  int l = 0;
  const int lmax = std::min(ctx.lmax, 250);  // Level is one byte
  while (true) {
    // ---- Enqueuing frontiers ----------------------------------------------
    timer.Restart();
    if (!gpu_style) {
      // Paper: on CPU, a sequential scan beats locked parallel writes.
      frontier.clear();
      for (NodeId v = 0; v < n; ++v) {
        if (state->IsFrontierFlagged(v)) {
          frontier.push_back(v);
          state->ClearFrontierFlag(v);
        }
      }
    } else {
      // GPU shape: parallel compaction with an atomic write cursor (the
      // "locked" enqueue that pays off only with GPU memory bandwidth).
      frontier.resize(n);
      std::atomic<size_t> cursor{0};
      pool->ParallelForChunked(n, DefaultGrain(n, pool->threads()),
                               [&](size_t lo, size_t hi) {
                                 for (size_t v = lo; v < hi; ++v) {
                                   NodeId node = static_cast<NodeId>(v);
                                   if (!state->IsFrontierFlagged(node)) {
                                     continue;
                                   }
                                   state->ClearFrontierFlag(node);
                                   size_t at = cursor.fetch_add(
                                       1, std::memory_order_relaxed);
                                   frontier[at] = node;
                                 }
                               });
      frontier.resize(cursor.load(std::memory_order_relaxed));
    }
    timings->enqueue_ms += timer.ElapsedMs();

    if (frontier.empty()) {
      result.frontier_exhausted = true;
      break;
    }
    result.peak_frontier = std::max(result.peak_frontier, frontier.size());
    result.total_frontier_work += frontier.size();

    // ---- Identifying Central Nodes (Lemma V.1) -----------------------------
    timer.Restart();
    level_candidates.assign(frontier.size(), CentralCandidate{kInvalidNode, 0});
    std::atomic<size_t> ncand{0};
    pool->ParallelForDynamic(
        frontier.size(), DefaultGrain(frontier.size(), pool->threads()),
        [&](size_t idx) {
          NodeId v = frontier[idx];
          if (state->IsCentral(v)) return;
          for (size_t i = 0; i < q; ++i) {
            if (state->Hit(v, i) == kLevelInf) return;
          }
          state->MarkCentral(v);
          size_t at = ncand.fetch_add(1, std::memory_order_relaxed);
          level_candidates[at] = CentralCandidate{v, l};
        });
    level_candidates.resize(ncand.load(std::memory_order_relaxed));
    // Deterministic order regardless of scheduling.
    std::sort(level_candidates.begin(), level_candidates.end(),
              [](const CentralCandidate& a, const CentralCandidate& b) {
                return a.node < b.node;
              });
    for (const CentralCandidate& c : level_candidates) {
      if (state->centrals().size() < opts.max_central_candidates) {
        state->centrals().push_back(c);
      }
    }
    timings->identify_ms += timer.ElapsedMs();

    if (progress) {
      LevelProgress snapshot{l, frontier.size(), state->centrals().size()};
      if (!progress(snapshot)) {
        result.cancelled = true;
        result.levels = l;
        break;
      }
    }

    // Stop at the smallest depth d with >= k Central Graphs (Def. 4).
    if (state->centrals().size() >= wanted) {
      result.levels = l;
      break;
    }
    if (l >= lmax) {
      result.levels = l;
      break;
    }

    // ---- Expansion (Algorithm 2) -------------------------------------------
    timer.Restart();
    if (!gpu_style) {
      // CPU-Par: coarse grain — one dynamic task per frontier node.
      pool->ParallelForDynamic(
          frontier.size(), DefaultGrain(frontier.size(), pool->threads()),
          [&](size_t idx) {
            NodeId vf = frontier[idx];
            if (!FrontierMayExpand(g, act, state, vf, l)) return;
            for (size_t i = 0; i < q; ++i) {
              ExpandFrontierInstance(g, act, state, vf, i, l);
            }
          });
    } else {
      // GPU shape: one warp per (frontier, BFS-instance) pair; the pair's
      // neighbor loop plays the role of the warp's threads.
      const size_t pairs = frontier.size() * q;
      pool->ParallelForDynamic(
          pairs, DefaultGrain(pairs, pool->threads()), [&](size_t idx) {
            NodeId vf = frontier[idx / q];
            size_t i = idx % q;
            if (!FrontierMayExpand(g, act, state, vf, l)) return;
            ExpandFrontierInstance(g, act, state, vf, i, l);
          });
    }
    timings->expansion_ms += timer.ElapsedMs();

    ++l;
    result.levels = l;
  }
  timings->levels = result.levels;
  return result;
}

}  // namespace wikisearch
