#include "core/bottom_up.h"

#include <algorithm>
#include <bit>
#include <span>

#include "common/logging.h"
#include "common/timer.h"
#include "core/kernel/kernel.h"
#include "obs/trace.h"

namespace wikisearch {

namespace {

/// Frontier positions are identified in blocks of this many hit-mask probes
/// per kernel call, so the vector path amortizes its setup while the
/// position buffer stays on the worker's stack.
inline constexpr size_t kIdentifyBlock = 256;

/// Algorithm 2 body for one frontier node and one BFS instance at level l —
/// the paper's instance-major formulation, retained verbatim as the
/// `legacy_instance_expansion` ablation baseline (one adjacency pass per hit
/// instance; bench_kernel measures the neighbor-major kernels against it).
/// Writes are single-valued per cell at a given level (Thm. V.2), so no
/// synchronization is needed beyond relaxed atomics. `worker` indexes the
/// executing pool worker's frontier buffer.
inline void ExpandFrontierInstance(const GraphView& g,
                                   const QueryContext& ctx,
                                   SearchState* state, NodeId vf, size_t i,
                                   int l, int worker) {
  // All probes go against the row-major mirror, i.e. the memory shape the
  // pre-kernel engine probed (one cache line per (neighbor, instance));
  // SetHit keeps both matrices coherent. Probing the compact matrix here
  // would silently grant this baseline the layout change under test.
  Level hif = state->HitAos(vf, i);
  if (hif == kLevelInf || static_cast<int>(hif) > l) return;
  for (const AdjEntry& e : g.Neighbors(vf)) {
    NodeId vn = e.target;
    if (state->HitAos(vn, i) != kLevelInf) continue;  // hit once per instance
    if (!state->IsKeywordNode(vn)) {
      // Non-keyword nodes may only be hit once their activation level is
      // reached; retry this frontier at the next level otherwise.
      if (ctx.activation_level[vn] > l + 1) {
        state->PushFrontier(vf, worker);
        continue;
      }
    }
    state->SetHit(vn, i, static_cast<Level>(l + 1));
    state->PushFrontier(vn, worker);
  }
}

/// Frontier-level gate of Algorithm 2 (lines 2-7). Returns true if vf may
/// expand at level l.
inline bool FrontierMayExpand(const QueryContext& ctx, SearchState* state,
                              NodeId vf, int l, int worker,
                              bool single_worker) {
  if (state->IsCentral(vf)) return false;  // unavailable once identified
  if (ctx.activation_level[vf] > l) {
    // Keyword-node compromise (Sec. IV-B): hit freely, expand only once the
    // global level reaches the activation level. Applies to all nodes.
    if (single_worker) {
      state->PushFrontierSingle(vf);
    } else {
      state->PushFrontier(vf, worker);
    }
    return false;
  }
  return true;
}

}  // namespace

BottomUpResult BottomUpSearch(const QueryContext& ctx,
                              const SearchOptions& opts, ThreadPool* pool,
                              SearchState* state, PhaseTimings* timings,
                              bool gpu_style,
                              const ProgressCallback& progress,
                              const Deadline& deadline) {
  const GraphView& g = ctx.graph;
  const size_t n = g.num_nodes();
  const size_t q = ctx.num_keywords();
  const FaultHook& fault = opts.fault_injection;
  BottomUpResult result;
  obs::TraceContext* trace = opts.trace;
  obs::ScopedStage stage_span(trace, "bottomup");

  // Hot-loop kernels, resolved once per search (DESIGN.md §11). Every
  // implementation commits byte-identical state, so this choice can only
  // change speed.
  const kernel::Ops& ops = kernel::Select(opts.kernel_isa);
  result.kernel = ops.name;

  // The CPU shape appends discovered frontiers to per-worker buffers during
  // expansion, so the level-end enqueue costs O(frontier) instead of an
  // O(n) scan of the flag array. The GPU shape keeps the flag-array
  // compaction (that is the execution model being simulated), and
  // use_frontier_buffers=false preserves the legacy scan for ablation.
  const bool buffered = !gpu_style && opts.use_frontier_buffers;

  // ---- Initialization (fork/join in Alg. 1 line 2) ------------------------
  {
    obs::ScopedStage stage(trace, "bottomup/init", &timings->init_ms);
    state->ConfigureFrontierBuffers(buffered ? pool->threads() : 0);
    if (opts.legacy_instance_expansion) state->EnableAosMirror();
    state->Init(ctx.keyword_nodes);
  }

  std::vector<NodeId>& frontier = state->frontier();
  std::vector<uint64_t>& frontier_masks = state->frontier_masks();
  std::vector<CentralCandidate> level_candidates;
  std::vector<NodeId> gpu_scratch;  // block-local compaction staging
  const size_t wanted = static_cast<size_t>(std::max(opts.top_k, 1));
  const uint64_t full_mask = state->FullMask();
  const std::atomic<uint64_t>* hit_words = state->hit_mask_words();

  kernel::ExpandContext ectx;
  ectx.hit_mask = hit_words;
  ectx.hit_gate = ctx.hit_gate.data();
  ectx.activation_level = ctx.activation_level.data();
  ectx.graph = g;
  // Prefetch target only — null under a delta overlay, where touched-node
  // adjacency lives off-CSR (reads always go through GraphView::Neighbors).
  ectx.csr_offsets = (g.base() != nullptr && g.patch() == nullptr)
                         ? g.base()->offsets().data()
                         : nullptr;
  ectx.state = state;
  ectx.single_worker = pool->threads() == 1;

  int l = 0;
  const int lmax = std::min(ctx.lmax, 250);  // Level is one byte
  while (true) {
    if (fault) fault("bottomup:level");
    // Per-level deadline check: every completed level left exact hitting
    // levels and centrals behind, so breaking here yields valid partial
    // answers.
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }

    // One span per level iteration. Every early exit below renames it to
    // "bottomup/level(partial)", so the number of spans still named
    // "bottomup/level" when the loop ends equals the number of fully
    // completed levels — i.e. SearchStats::levels_completed (the invariant
    // tests/trace_test.cc asserts across all exit paths).
    obs::ScopedStage level_span(trace, "bottomup/level");

    // ---- Enqueuing frontiers ----------------------------------------------
    {
    obs::ScopedStage stage(trace, "bottomup/enqueue", &timings->enqueue_ms);
    if (buffered) {
      // Concatenate the per-worker buffers; the atomic flag exchange in
      // PushFrontier already guarantees each node appears exactly once.
      // (An ascending-order frontier — via post-drain sort or a flag-array
      // compaction — was measured here and lost: the O(F log F) / O(n)
      // reorder cost exceeds the CSR-locality it buys at these scales.)
      state->DrainFrontierBuffers();
    } else if (!gpu_style) {
      // Legacy shape: sequential scan of all n flags (the paper's CPU
      // enqueue; kept as the bench_frontier baseline). The kernel scans 8
      // flag words per compare on the AVX2 path.
      frontier.resize(n);
      size_t cnt = ops.collect_flagged(state->frontier_flag_words(),
                                       state->epoch(), 0,
                                       static_cast<NodeId>(n),
                                       frontier.data());
      frontier.resize(cnt);
      for (NodeId v : frontier) state->ClearFrontierFlag(v);
    } else {
      // GPU shape: parallel flag-array compaction (the execution model
      // being simulated). Each chunk collects its flagged nodes into its
      // own staging slice, then claims one cursor slot per *block* instead
      // of the old per-node fetch_add. The concatenation order depends on
      // scheduling, so the frontier is sorted afterwards — making this
      // shape's frontier order deterministic — and the strict check below
      // mirrors the CPU-shape identify invariant: a duplicate node here
      // means the compaction double-collected.
      frontier.resize(n);
      gpu_scratch.resize(n);
      std::atomic<size_t> cursor{0};
      pool->ParallelForChunked(
          n, DefaultGrain(n, pool->threads()), [&](size_t lo, size_t hi) {
            NodeId* buf = gpu_scratch.data() + lo;
            size_t cnt = ops.collect_flagged(
                state->frontier_flag_words(), state->epoch(),
                static_cast<NodeId>(lo), static_cast<NodeId>(hi), buf);
            if (cnt == 0) return;
            for (size_t j = 0; j < cnt; ++j) {
              state->ClearFrontierFlag(buf[j]);
            }
            size_t at = cursor.fetch_add(cnt, std::memory_order_relaxed);
            std::copy_n(buf, cnt, frontier.data() + at);
          });
      frontier.resize(cursor.load(std::memory_order_relaxed));
      std::sort(frontier.begin(), frontier.end());
      for (size_t j = 1; j < frontier.size(); ++j) {
        WS_CHECK(frontier[j - 1] < frontier[j]);
      }
    }
    }

    if (frontier.empty()) {
      level_span.Rename("bottomup/level(partial)");
      result.frontier_exhausted = true;
      break;
    }
    result.peak_frontier = std::max(result.peak_frontier, frontier.size());
    result.total_frontier_work += frontier.size();

    // ---- Identifying Central Nodes (Lemma V.1) -----------------------------
    {
    obs::ScopedStage stage(trace, "bottomup/identify", &timings->identify_ms);
    level_candidates.assign(frontier.size(),
                            CentralCandidate{kInvalidNode, 0});
    std::atomic<size_t> ncand{0};
    if (opts.legacy_instance_expansion) {
      // Ablation baseline keeps the pre-kernel identify verbatim: one live
      // HitMask compare per node, no snapshot. The instance-major expansion
      // re-derives its instance sets from the live mask, so charging this
      // baseline for a snapshot it never reads would bias bench_kernel
      // against it.
      pool->ParallelForDynamic(
          frontier.size(), DefaultGrain(frontier.size(), pool->threads()),
          [&](size_t idx) {
            NodeId v = frontier[idx];
            if (state->IsCentral(v)) return;
            if (state->HitMask(v) != full_mask) return;
            state->MarkCentral(v);
            size_t at = ncand.fetch_add(1, std::memory_order_relaxed);
            level_candidates[at] = CentralCandidate{v, l};
          });
    } else {
    // The identify pass doubles as the expand-mask snapshot: no level-(l+1)
    // write exists yet, so each mask it loads is exactly the fixed instance
    // set {i : Hit(frontier[j], i) <= l} the node expands at this level
    // (every write racing with the expansion below records level l+1, which
    // this snapshot provably excludes). That stability is what lets the
    // neighbor-major kernel replace one adjacency pass per hit instance
    // with a single pass per node — and the snapshot hands the expansion
    // phase its masks as one dense array instead of q matrix probes per
    // node.
    frontier_masks.resize(frontier.size());
    pool->ParallelForChunked(
        frontier.size(), DefaultGrain(frontier.size(), pool->threads()),
        [&](size_t lo, size_t hi) {
          // Full-mask probes run through the kernel in blocks (4 masks per
          // compare on the AVX2 path); survivors — rare — take the scalar
          // commit path below.
          uint32_t sel[kIdentifyBlock];
          for (size_t b = lo; b < hi; b += kIdentifyBlock) {
            size_t len = std::min(kIdentifyBlock, hi - b);
            size_t cnt = ops.select_full_masks(frontier.data() + b, len,
                                               hit_words, full_mask, sel,
                                               frontier_masks.data() + b);
            for (size_t s = 0; s < cnt; ++s) {
              size_t p = b + sel[s];
              // Consume the node for this level's expansion: a zeroed
              // snapshot mask is the expansion kernels' central test (a
              // non-central frontier node always carries >= 1 bit), saving
              // one random central_flag_ probe per frontier node there.
              frontier_masks[p] = 0;
              NodeId v = frontier[p];
              // Defensive: with zeroed masks a consumed central is never
              // re-pushed, but identification must stay at-most-once per
              // node regardless of how the frontier was produced.
              if (state->IsCentral(v)) continue;
              state->MarkCentral(v);
              size_t at = ncand.fetch_add(1, std::memory_order_relaxed);
              level_candidates[at] = CentralCandidate{v, l};
            }
          }
        });
    }
    level_candidates.resize(ncand.load(std::memory_order_relaxed));
    // Candidates of one level are committed in ascending NodeId order no
    // matter which worker buffer or schedule produced them, so the
    // max_central_candidates cut and all downstream tie-breaks are
    // deterministic across thread counts (see DESIGN.md).
    std::sort(level_candidates.begin(), level_candidates.end(),
              [](const CentralCandidate& a, const CentralCandidate& b) {
                return a.node < b.node;
              });
    for (size_t c = 0; c < level_candidates.size(); ++c) {
      // Strict: the frontier is duplicate-free, so each node is identified
      // at most once per level.
      WS_CHECK(c == 0 || level_candidates[c - 1].node <
                             level_candidates[c].node);
      if (state->centrals().size() < opts.max_central_candidates) {
        state->centrals().push_back(level_candidates[c]);
      }
    }
    }

    if (fault) fault("bottomup:identify");
    if (progress) {
      LevelProgress snapshot{l, frontier.size(), state->centrals().size()};
      if (!progress(snapshot)) {
        level_span.Rename("bottomup/level(partial)");
        result.cancelled = true;
        result.levels = l;
        break;
      }
    }

    // Stop at the smallest depth d with >= k Central Graphs (Def. 4).
    if (state->centrals().size() >= wanted) {
      level_span.Rename("bottomup/level(partial)");
      result.levels = l;
      break;
    }
    if (l >= lmax) {
      level_span.Rename("bottomup/level(partial)");
      result.levels = l;
      break;
    }

    // ---- Expansion (Algorithm 2) -------------------------------------------
    // Per-chunk deadline gate: the leading item of each claimed chunk reads
    // the clock (amortizing the check over `grain` items) and trips a shared
    // flag on expiry, after which every worker stops claiming work. A level
    // abandoned mid-expansion leaves only exact state behind — concurrent
    // writes all write the same value (Thm. V.2), so a partial set of them
    // is indistinguishable from a smaller schedule — and the loop below
    // exits before identifying the incomplete level. The flag is shared by
    // all fork-joins of the level, so an expiry in one degree tier stops
    // the remaining tiers at their first chunk.
    std::atomic<bool> expired{deadline.Expired()};
    auto chunk_gate = [&](size_t idx, size_t grain) {
      if (expired.load(std::memory_order_relaxed)) return false;
      if (idx % grain == 0) {
        if (fault) fault("bottomup:chunk");
        if (deadline.Expired()) {
          expired.store(true, std::memory_order_relaxed);
          return false;
        }
      }
      return true;
    };
    // Neighbor-major expansion of one frontier node (or a hub sub-range of
    // one): the instance set is computed once, each neighbor is resolved
    // against all of its outstanding instances in a single kernel pass, and
    // the activation re-flag is raised at most once per node per level —
    // versus the legacy path's flag-per-blocked-(instance, neighbor), which
    // hammered the same frontier_flag_ word from the inner loop. Whole
    // chunks of frontier nodes go through one kernel call
    // (expand_frontier_chunk / expand_position_chunk), so per-node work
    // carries no indirect-call overhead; only hub sub-ranges dispatch
    // per item.
    ectx.level = l;
    ectx.frontier = frontier.data();
    ectx.frontier_masks = frontier_masks.data();
    auto expand_node_range = [&](int worker, size_t pos, size_t nb_begin,
                                 size_t nb_end) {
      const uint64_t expand = frontier_masks[pos];
      if (expand == 0) return;  // central: consumed at identify
      NodeId vf = frontier[pos];
      if (ctx.activation_level[vf] > l) {
        // Frontier-level activation gate; one re-flag per sub-range, the
        // flag exchange deduplicates.
        if (ectx.single_worker) {
          state->PushFrontierSingle(vf);
        } else {
          state->PushFrontier(vf, worker);
        }
        return;
      }
      std::span<const AdjEntry> nb = g.Neighbors(vf);
      if (ops.expand_range(ectx, expand, nb.data() + nb_begin,
                           nb_end - nb_begin, worker)) {
        // Hoisted activation re-flag: at most once per call.
        if (ectx.single_worker) {
          state->PushFrontierSingle(vf);
        } else {
          state->PushFrontier(vf, worker);
        }
      }
    };
    {
    obs::ScopedStage stage(trace, "bottomup/expand", &timings->expansion_ms);
    if (gpu_style) {
      // GPU shape: one warp per (frontier, BFS-instance) pair; the pair's
      // neighbor run goes through the same kernel with a one-bit instance
      // mask, so the committed state is bit-for-bit the CPU shape's.
      const size_t pairs = frontier.size() * q;
      const size_t grain = DefaultGrain(pairs, pool->threads());
      pool->ParallelForDynamicWorker(
          pairs, grain, [&](int worker, size_t idx) {
            if (!chunk_gate(idx, grain)) return;
            NodeId vf = frontier[idx / q];
            size_t i = idx % q;
            // The snapshot bit subsumes both the old hit-bit test and the
            // Hit(vf, i) <= l level check; identify zeroes the mask of every
            // consumed central, so all of its pairs skip here. Non-central
            // frontier nodes keep >= 1 snapshot bit, so the skip cannot
            // starve the FrontierMayExpand re-flag side effect.
            if ((frontier_masks[idx / q] & (1ULL << i)) == 0) return;
            if (!FrontierMayExpand(ctx, state, vf, l, worker,
                                   ectx.single_worker)) {
              return;
            }
            std::span<const AdjEntry> nb = g.Neighbors(vf);
            if (ops.expand_range(ectx, 1ULL << i, nb.data(), nb.size(),
                                 worker)) {
              if (ectx.single_worker) {
                state->PushFrontierSingle(vf);  // hoisted re-flag
              } else {
                state->PushFrontier(vf, worker);  // hoisted re-flag
              }
            }
          });
    } else if (opts.legacy_instance_expansion) {
      // Ablation baseline: the paper's instance-major loop (one adjacency
      // pass per hit instance) on the same state layout.
      const size_t grain = DefaultGrain(frontier.size(), pool->threads());
      pool->ParallelForDynamicWorker(
          frontier.size(), grain, [&](int worker, size_t idx) {
            if (!chunk_gate(idx, grain)) return;
            NodeId vf = frontier[idx];
            // The ablation baseline keeps the atomic push path regardless of
            // pool width: it models the pre-kernel engine.
            if (!FrontierMayExpand(ctx, state, vf, l, worker, false)) return;
            for (uint64_t m = state->HitMask(vf); m != 0; m &= m - 1) {
              size_t i = static_cast<size_t>(std::countr_zero(m));
              ExpandFrontierInstance(g, ctx, state, vf, i, l, worker);
            }
          });
    } else if (!opts.degree_bucketed_expansion) {
      // Flat schedule: uniform grain, one kernel call per claimed chunk.
      const size_t grain = DefaultGrain(frontier.size(), pool->threads());
      pool->ParallelForChunkedWorker(
          frontier.size(), grain, [&](int worker, size_t lo, size_t hi) {
            // Sub-chunking keeps the deadline-gate granularity at `grain`
            // even when the pool hands one worker the whole range
            // (single-thread pools, tail chunks).
            for (size_t b = lo; b < hi; b += grain) {
              if (!chunk_gate(b, grain)) return;
              ops.expand_frontier_chunk(ectx, b, std::min(hi, b + grain),
                                        worker);
            }
          });
    } else {
      // Degree-bucketed schedule (DESIGN.md §11): low-degree nodes batch
      // coarsely (task overhead dominates their work), mid-degree nodes get
      // finer chunks, and hubs are pre-split into bounded sub-ranges so one
      // celebrity node cannot serialize the level. Up to three fork-joins;
      // correctness is schedule-independent (Thm. V.2 + the fixed expand
      // mask), which kernel_equivalence_test's commit-order property checks.
      ExpandPlan& plan = state->expand_plan();
      plan.Clear();
      for (size_t idx = 0; idx < frontier.size(); ++idx) {
        const size_t deg = g.Degree(frontier[idx]);
        if (deg <= kernel::kTierSmallMaxDegree) {
          plan.small.push_back(static_cast<uint32_t>(idx));
        } else if (deg < kernel::kTierHubMinDegree) {
          plan.mid.push_back(static_cast<uint32_t>(idx));
        } else {
          for (size_t b = 0; b < deg; b += kernel::kHubSubRange) {
            plan.hub.push_back(ExpandItem{
                static_cast<uint32_t>(idx), static_cast<uint32_t>(b),
                static_cast<uint32_t>(
                    std::min(deg, b + kernel::kHubSubRange))});
          }
        }
      }
      if (!plan.small.empty()) {
        const size_t grain = DefaultGrain(plan.small.size(), pool->threads());
        pool->ParallelForChunkedWorker(
            plan.small.size(), grain, [&](int worker, size_t lo, size_t hi) {
              for (size_t b = lo; b < hi; b += grain) {
                if (!chunk_gate(b, grain)) return;
                ops.expand_position_chunk(ectx, plan.small.data() + b,
                                          std::min(hi, b + grain) - b,
                                          worker);
              }
            });
      }
      if (!plan.mid.empty()) {
        const size_t grain = std::max<size_t>(
            1, DefaultGrain(plan.mid.size(), pool->threads()) / 4);
        pool->ParallelForChunkedWorker(
            plan.mid.size(), grain, [&](int worker, size_t lo, size_t hi) {
              for (size_t b = lo; b < hi; b += grain) {
                if (!chunk_gate(b, grain)) return;
                ops.expand_position_chunk(ectx, plan.mid.data() + b,
                                          std::min(hi, b + grain) - b,
                                          worker);
              }
            });
      }
      if (!plan.hub.empty()) {
        pool->ParallelForDynamicWorker(
            plan.hub.size(), 1, [&](int worker, size_t t) {
              if (!chunk_gate(t, 1)) return;
              const ExpandItem& it = plan.hub[t];
              expand_node_range(worker, it.pos, it.begin, it.end);
            });
      }
    }
    }
    if (expired.load(std::memory_order_relaxed)) {
      // The partially expanded level is never drained or identified; its
      // stragglers sit in the worker buffers until the next Init records
      // them as dirty.
      level_span.Rename("bottomup/level(partial)");
      result.timed_out = true;
      break;
    }

    ++l;
    result.levels = l;
  }
  timings->levels = result.levels;
  return result;
}

}  // namespace wikisearch
