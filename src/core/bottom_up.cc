#include "core/bottom_up.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace wikisearch {

namespace {

/// Algorithm 2 body for one frontier node and one BFS instance at level l.
/// Writes are single-valued per cell at a given level (Thm. V.2), so no
/// synchronization is needed beyond relaxed atomics. `worker` indexes the
/// executing pool worker's frontier buffer.
inline void ExpandFrontierInstance(const GraphView& g,
                                   const QueryContext& ctx,
                                   SearchState* state, NodeId vf, size_t i,
                                   int l, int worker) {
  Level hif = state->Hit(vf, i);
  if (hif == kLevelInf || static_cast<int>(hif) > l) return;
  for (const AdjEntry& e : g.Neighbors(vf)) {
    NodeId vn = e.target;
    if (state->Hit(vn, i) != kLevelInf) continue;  // hit once per instance
    if (!state->IsKeywordNode(vn)) {
      // Non-keyword nodes may only be hit once their activation level is
      // reached; retry this frontier at the next level otherwise.
      if (ctx.activation_level[vn] > l + 1) {
        state->PushFrontier(vf, worker);
        continue;
      }
    }
    state->SetHit(vn, i, static_cast<Level>(l + 1));
    state->PushFrontier(vn, worker);
  }
}

/// Frontier-level gate of Algorithm 2 (lines 2-7). Returns true if vf may
/// expand at level l.
inline bool FrontierMayExpand(const QueryContext& ctx, SearchState* state,
                              NodeId vf, int l, int worker) {
  if (state->IsCentral(vf)) return false;  // unavailable once identified
  if (ctx.activation_level[vf] > l) {
    // Keyword-node compromise (Sec. IV-B): hit freely, expand only once the
    // global level reaches the activation level. Applies to all nodes.
    state->PushFrontier(vf, worker);
    return false;
  }
  return true;
}

}  // namespace

BottomUpResult BottomUpSearch(const QueryContext& ctx,
                              const SearchOptions& opts, ThreadPool* pool,
                              SearchState* state, PhaseTimings* timings,
                              bool gpu_style,
                              const ProgressCallback& progress,
                              const Deadline& deadline) {
  const GraphView& g = ctx.graph;
  const size_t n = g.num_nodes();
  const size_t q = ctx.num_keywords();
  const FaultHook& fault = opts.fault_injection;
  BottomUpResult result;
  obs::TraceContext* trace = opts.trace;
  obs::ScopedStage stage_span(trace, "bottomup");

  // The CPU shape appends discovered frontiers to per-worker buffers during
  // expansion, so the level-end enqueue costs O(frontier) instead of an
  // O(n) scan of the flag array. The GPU shape keeps the flag-array
  // compaction (that is the execution model being simulated), and
  // use_frontier_buffers=false preserves the legacy scan for ablation.
  const bool buffered = !gpu_style && opts.use_frontier_buffers;

  // ---- Initialization (fork/join in Alg. 1 line 2) ------------------------
  {
    obs::ScopedStage stage(trace, "bottomup/init", &timings->init_ms);
    state->ConfigureFrontierBuffers(buffered ? pool->threads() : 0);
    state->Init(ctx.keyword_nodes);
  }

  std::vector<NodeId>& frontier = state->frontier();
  std::vector<CentralCandidate> level_candidates;
  const size_t wanted = static_cast<size_t>(std::max(opts.top_k, 1));
  const uint64_t full_mask = state->FullMask();

  int l = 0;
  const int lmax = std::min(ctx.lmax, 250);  // Level is one byte
  while (true) {
    if (fault) fault("bottomup:level");
    // Per-level deadline check: every completed level left exact hitting
    // levels and centrals behind, so breaking here yields valid partial
    // answers.
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }

    // One span per level iteration. Every early exit below renames it to
    // "bottomup/level(partial)", so the number of spans still named
    // "bottomup/level" when the loop ends equals the number of fully
    // completed levels — i.e. SearchStats::levels_completed (the invariant
    // tests/trace_test.cc asserts across all exit paths).
    obs::ScopedStage level_span(trace, "bottomup/level");

    // ---- Enqueuing frontiers ----------------------------------------------
    {
    obs::ScopedStage stage(trace, "bottomup/enqueue", &timings->enqueue_ms);
    if (buffered) {
      // Concatenate the per-worker buffers; the atomic flag exchange in
      // PushFrontier already guarantees each node appears exactly once.
      state->DrainFrontierBuffers();
    } else if (!gpu_style) {
      // Legacy shape: sequential scan of all n flags (the paper's CPU
      // enqueue; kept as the bench_frontier baseline).
      frontier.clear();
      for (NodeId v = 0; v < n; ++v) {
        if (state->IsFrontierFlagged(v)) {
          frontier.push_back(v);
          state->ClearFrontierFlag(v);
        }
      }
    } else {
      // GPU shape: parallel compaction with an atomic write cursor (the
      // "locked" enqueue that pays off only with GPU memory bandwidth).
      frontier.resize(n);
      std::atomic<size_t> cursor{0};
      pool->ParallelForChunked(n, DefaultGrain(n, pool->threads()),
                               [&](size_t lo, size_t hi) {
                                 for (size_t v = lo; v < hi; ++v) {
                                   NodeId node = static_cast<NodeId>(v);
                                   if (!state->IsFrontierFlagged(node)) {
                                     continue;
                                   }
                                   state->ClearFrontierFlag(node);
                                   size_t at = cursor.fetch_add(
                                       1, std::memory_order_relaxed);
                                   frontier[at] = node;
                                 }
                               });
      frontier.resize(cursor.load(std::memory_order_relaxed));
    }
    }

    if (frontier.empty()) {
      level_span.Rename("bottomup/level(partial)");
      result.frontier_exhausted = true;
      break;
    }
    result.peak_frontier = std::max(result.peak_frontier, frontier.size());
    result.total_frontier_work += frontier.size();

    // ---- Identifying Central Nodes (Lemma V.1) -----------------------------
    {
    obs::ScopedStage stage(trace, "bottomup/identify", &timings->identify_ms);
    level_candidates.assign(frontier.size(), CentralCandidate{kInvalidNode, 0});
    std::atomic<size_t> ncand{0};
    pool->ParallelForDynamic(
        frontier.size(), DefaultGrain(frontier.size(), pool->threads()),
        [&](size_t idx) {
          NodeId v = frontier[idx];
          if (state->IsCentral(v)) return;
          // One load + compare instead of q matrix probes: bit i of the hit
          // mask is maintained by SetHit's fetch_or.
          if (state->HitMask(v) != full_mask) return;
          state->MarkCentral(v);
          size_t at = ncand.fetch_add(1, std::memory_order_relaxed);
          level_candidates[at] = CentralCandidate{v, l};
        });
    level_candidates.resize(ncand.load(std::memory_order_relaxed));
    // Candidates of one level are committed in ascending NodeId order no
    // matter which worker buffer or schedule produced them, so the
    // max_central_candidates cut and all downstream tie-breaks are
    // deterministic across thread counts (see DESIGN.md).
    std::sort(level_candidates.begin(), level_candidates.end(),
              [](const CentralCandidate& a, const CentralCandidate& b) {
                return a.node < b.node;
              });
    for (size_t c = 0; c < level_candidates.size(); ++c) {
      // Strict: the frontier is duplicate-free, so each node is identified
      // at most once per level.
      WS_CHECK(c == 0 || level_candidates[c - 1].node <
                             level_candidates[c].node);
      if (state->centrals().size() < opts.max_central_candidates) {
        state->centrals().push_back(level_candidates[c]);
      }
    }
    }

    if (fault) fault("bottomup:identify");
    if (progress) {
      LevelProgress snapshot{l, frontier.size(), state->centrals().size()};
      if (!progress(snapshot)) {
        level_span.Rename("bottomup/level(partial)");
        result.cancelled = true;
        result.levels = l;
        break;
      }
    }

    // Stop at the smallest depth d with >= k Central Graphs (Def. 4).
    if (state->centrals().size() >= wanted) {
      level_span.Rename("bottomup/level(partial)");
      result.levels = l;
      break;
    }
    if (l >= lmax) {
      level_span.Rename("bottomup/level(partial)");
      result.levels = l;
      break;
    }

    // ---- Expansion (Algorithm 2) -------------------------------------------
    // Per-chunk deadline gate: the leading item of each claimed chunk reads
    // the clock (amortizing the check over `grain` items) and trips a shared
    // flag on expiry, after which every worker stops claiming work. A level
    // abandoned mid-expansion leaves only exact state behind — concurrent
    // writes all write the same value (Thm. V.2), so a partial set of them
    // is indistinguishable from a smaller schedule — and the loop below
    // exits before identifying the incomplete level.
    std::atomic<bool> expired{deadline.Expired()};
    auto chunk_gate = [&](size_t idx, size_t grain) {
      if (expired.load(std::memory_order_relaxed)) return false;
      if (idx % grain == 0) {
        if (fault) fault("bottomup:chunk");
        if (deadline.Expired()) {
          expired.store(true, std::memory_order_relaxed);
          return false;
        }
      }
      return true;
    };
    {
    obs::ScopedStage stage(trace, "bottomup/expand", &timings->expansion_ms);
    if (!gpu_style) {
      // CPU-Par: coarse grain — one dynamic task per frontier node.
      const size_t grain = DefaultGrain(frontier.size(), pool->threads());
      pool->ParallelForDynamicWorker(
          frontier.size(), grain, [&](int worker, size_t idx) {
            if (!chunk_gate(idx, grain)) return;
            NodeId vf = frontier[idx];
            if (!FrontierMayExpand(ctx, state, vf, l, worker)) return;
            // Only instances that have hit vf can expand from it; iterate
            // the set bits instead of probing all q levels.
            for (uint64_t m = state->HitMask(vf); m != 0; m &= m - 1) {
              size_t i = static_cast<size_t>(std::countr_zero(m));
              ExpandFrontierInstance(g, ctx, state, vf, i, l, worker);
            }
          });
    } else {
      // GPU shape: one warp per (frontier, BFS-instance) pair; the pair's
      // neighbor loop plays the role of the warp's threads.
      const size_t pairs = frontier.size() * q;
      const size_t grain = DefaultGrain(pairs, pool->threads());
      pool->ParallelForDynamicWorker(
          pairs, grain, [&](int worker, size_t idx) {
            if (!chunk_gate(idx, grain)) return;
            NodeId vf = frontier[idx / q];
            size_t i = idx % q;
            // Every frontier node has >= 1 hit bit, so the skip cannot
            // starve the FrontierMayExpand re-flag side effect.
            if ((state->HitMask(vf) & (1ULL << i)) == 0) return;
            if (!FrontierMayExpand(ctx, state, vf, l, worker)) return;
            ExpandFrontierInstance(g, ctx, state, vf, i, l, worker);
          });
    }
    }
    if (expired.load(std::memory_order_relaxed)) {
      // The partially expanded level is never drained or identified; its
      // stragglers sit in the worker buffers until the next Init records
      // them as dirty.
      level_span.Rename("bottomup/level(partial)");
      result.timed_out = true;
      break;
    }

    ++l;
    result.levels = l;
  }
  timings->levels = result.levels;
  return result;
}

}  // namespace wikisearch
