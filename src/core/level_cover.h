// Level-cover pruning and answer materialization (Sec. V-C).
//
// Keyword nodes of a Central Graph are bucketed by how many distinct query
// keywords they contain; the Central Node sits at the top. Buckets are
// consumed from most- to fewest-contributing; the moment the accumulated
// nodes cover every keyword, all remaining buckets are pruned together with
// the hitting paths that exist only to serve them (Fig. 5). The survivors'
// hitting paths are re-walked forward through the per-keyword DAGs so the
// final answer stays connected to the Central Node.
#pragma once

#include <functional>

#include "core/answer.h"
#include "core/extraction.h"

namespace wikisearch {

/// Materializes the final AnswerGraph from an extraction result.
/// `keyword_mask(v)` returns the bitmask of query keywords contained in v.
/// With `enable_level_cover == false` the full Central Graph is kept
/// (ablation mode). The score is filled per Eq. 6 with `lambda`.
AnswerGraph BuildAnswer(const GraphView& g, const ExtractedGraph& eg,
                        size_t num_keywords,
                        const std::function<uint64_t(NodeId)>& keyword_mask,
                        bool enable_level_cover, double lambda);

struct ExtractionScratch;

/// BuildAnswer into pooled scratch memory and a reusable output graph:
/// byte-identical result, zero per-candidate heap allocations once scratch
/// and `out`'s vectors are warm. The keyword mask is a direct array view
/// instead of a std::function, and the per-keyword forward adjacency is a
/// binary search over eg's sorted edge lists instead of per-candidate hash
/// maps. `eg` may alias scratch->eg (the extraction output).
void BuildAnswerInto(const GraphView& g, const ExtractedGraph& eg,
                     size_t num_keywords, const KeywordMaskView& keyword_mask,
                     bool enable_level_cover, double lambda,
                     ExtractionScratch* scratch, AnswerGraph* out);

}  // namespace wikisearch
