#include "core/extraction_scratch.h"

namespace wikisearch {

ExtractionScratchPool::Lease ExtractionScratchPool::Acquire(size_t num_nodes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Shelf& shelf : shelves_) {
      if (shelf.key != num_nodes || shelf.idle.empty()) continue;
      std::unique_ptr<ExtractionScratch> s = std::move(shelf.idle.back());
      shelf.idle.pop_back();
      ++reused_;
      return Lease(this, std::move(s));
    }
    ++created_;
  }
  // Allocation outside the lock: sizing the stamp arrays is O(n).
  return Lease(this, std::make_unique<ExtractionScratch>(num_nodes));
}

void ExtractionScratchPool::Return(std::unique_ptr<ExtractionScratch> scratch) {
  const size_t key = scratch->num_nodes();
  std::lock_guard<std::mutex> lock(mu_);
  for (Shelf& shelf : shelves_) {
    if (shelf.key != key) continue;
    if (shelf.idle.size() < kMaxIdlePerKey) {
      shelf.idle.push_back(std::move(scratch));
    }
    return;
  }
  Shelf shelf;
  shelf.key = key;
  shelf.idle.push_back(std::move(scratch));
  shelves_.push_back(std::move(shelf));
}

void ExtractionScratchPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  shelves_.clear();
}

size_t ExtractionScratchPool::idle_scratches() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Shelf& shelf : shelves_) total += shelf.idle.size();
  return total;
}

size_t ExtractionScratchPool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

size_t ExtractionScratchPool::reused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reused_;
}

ExtractionScratchPool& GlobalExtractionScratchPool() {
  static ExtractionScratchPool* pool = new ExtractionScratchPool();
  return *pool;
}

}  // namespace wikisearch
