#include "core/bfs_state.h"

#include <cstring>

#include "common/logging.h"

namespace wikisearch {

SearchState::SearchState(size_t num_nodes, size_t num_keywords)
    : n_(num_nodes), q_(num_keywords) {
  WS_CHECK(q_ >= 1 && q_ <= 64);
  m_ = std::make_unique<std::atomic<Level>[]>(n_ * q_);
  frontier_flag_ = std::make_unique<std::atomic<uint8_t>[]>(n_);
  central_flag_ = std::make_unique<std::atomic<uint8_t>[]>(n_);
  keyword_node_.assign(n_, 0);
  keyword_mask_.assign(n_, 0);
}

void SearchState::Init(const std::vector<std::vector<NodeId>>& keyword_nodes) {
  WS_CHECK(keyword_nodes.size() == q_);
  // atomic<Level> is layout-compatible with its byte; bulk-fill to "infinity"
  // exactly as the paper initializes M on device.
  std::memset(reinterpret_cast<void*>(m_.get()), 0xFF,
              n_ * q_ * sizeof(std::atomic<Level>));
  std::memset(reinterpret_cast<void*>(frontier_flag_.get()), 0,
              n_ * sizeof(std::atomic<uint8_t>));
  std::memset(reinterpret_cast<void*>(central_flag_.get()), 0,
              n_ * sizeof(std::atomic<uint8_t>));
  for (size_t i = 0; i < q_; ++i) {
    for (NodeId v : keyword_nodes[i]) {
      WS_CHECK(v < n_);
      SetHit(v, i, 0);
      FlagFrontier(v);
      keyword_node_[v] = 1;
      keyword_mask_[v] |= (1ULL << i);
    }
  }
  frontier_.clear();
  centrals_.clear();
}

size_t SearchState::RunningStorageBytes() const {
  return n_ * q_ * sizeof(Level)       // node-keyword matrix M
         + n_ * sizeof(uint8_t)        // FIdentifier
         + n_ * sizeof(uint8_t)        // CIdentifier
         + n_ * sizeof(uint8_t)        // keyword-node bitmap
         + n_ * sizeof(uint64_t)       // keyword masks
         + frontier_.capacity() * sizeof(NodeId) +
         centrals_.capacity() * sizeof(CentralCandidate);
}

}  // namespace wikisearch
