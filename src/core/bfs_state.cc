#include "core/bfs_state.h"

#include <cstring>

#include "common/logging.h"

namespace wikisearch {

SearchState::SearchState(size_t num_nodes, size_t keyword_capacity)
    : n_(num_nodes), cap_(keyword_capacity), q_(keyword_capacity) {
  WS_CHECK(cap_ >= 1 && cap_ <= 64);
  // make_unique value-initializes: level bytes start at 0 (unreachable —
  // hit masks start empty) and flag cells at epoch 0, which is invalid
  // because query epochs start at 1.
  m_ = std::make_unique<std::atomic<Level>[]>(n_ * cap_);
  frontier_flag_ = std::make_unique<std::atomic<uint32_t>[]>(n_);
  central_flag_ = std::make_unique<std::atomic<uint32_t>[]>(n_);
  hit_mask_ = std::make_unique<std::atomic<uint64_t>[]>(n_);
  keyword_node_.assign(n_, 0);
  keyword_mask_.assign(n_, 0);
}

void SearchState::EnableAosMirror() {
  if (aos_) return;
  // Zero cells read as epoch 0 — invalid — so no seeding pass is needed,
  // exactly like the level matrix in the constructor.
  aos_ = std::make_unique<std::atomic<uint32_t>[]>(n_ * cap_);
}

void SearchState::ConfigureFrontierBuffers(int workers) {
  // Buffers may still hold nodes flagged in the final level of the previous
  // query (the level loop breaks without a drain once >= k centrals exist).
  // Their hit masks are dirty, so record them before the buffers resize.
  for (std::vector<NodeId>& buf : buffers_) {
    dirty_nodes_.insert(dirty_nodes_.end(), buf.begin(), buf.end());
    buf.clear();
  }
  buffers_.resize(static_cast<size_t>(workers < 0 ? 0 : workers));
}

void SearchState::DrainFrontierBuffers() {
  frontier_.clear();
  for (std::vector<NodeId>& buf : buffers_) {
    for (NodeId v : buf) {
      frontier_flag_[v].store(0, std::memory_order_relaxed);
      frontier_.push_back(v);
    }
    // Everything that was ever a frontier had SetHit called on it this
    // query; remember it so the next Init can clear its hit mask.
    dirty_nodes_.insert(dirty_nodes_.end(), buf.begin(), buf.end());
    buf.clear();
  }
}

void SearchState::ClearHitMasks() {
  std::memset(reinterpret_cast<void*>(hit_mask_.get()), 0,
              n_ * sizeof(std::atomic<uint64_t>));
}

void SearchState::HardReset() {
  std::memset(reinterpret_cast<void*>(m_.get()), 0,
              n_ * cap_ * sizeof(std::atomic<Level>));
  if (aos_) {
    std::memset(reinterpret_cast<void*>(aos_.get()), 0,
                n_ * cap_ * sizeof(std::atomic<uint32_t>));
  }
  std::memset(reinterpret_cast<void*>(frontier_flag_.get()), 0,
              n_ * sizeof(std::atomic<uint32_t>));
  std::memset(reinterpret_cast<void*>(central_flag_.get()), 0,
              n_ * sizeof(std::atomic<uint32_t>));
  ClearHitMasks();
  keyword_node_.assign(n_, 0);
  keyword_mask_.assign(n_, 0);
  dirty_nodes_.clear();
  mask_dirty_all_ = false;
  epoch_ = 0;
}

void SearchState::Init(const std::vector<std::vector<NodeId>>& keyword_nodes) {
  q_ = keyword_nodes.size();
  WS_CHECK(q_ >= 1 && q_ <= cap_);

  // Flush nodes still sitting in buffers (flagged but never drained) into
  // the dirty list before the epoch bump forgets they were flagged.
  for (std::vector<NodeId>& buf : buffers_) {
    dirty_nodes_.insert(dirty_nodes_.end(), buf.begin(), buf.end());
    buf.clear();
  }

  if (epoch_ >= kEpochMax) HardReset();
  ++epoch_;

  // Hit masks are the one structure the epoch cannot version (all 64 bits
  // are keyword bits), so they are cleared explicitly: in full when the
  // upcoming or previous search ran without buffer tracking, otherwise only
  // for the nodes the previous query actually touched.
  if (buffers_.empty()) {
    ClearHitMasks();
    dirty_nodes_.clear();
    mask_dirty_all_ = true;  // this query's hits will go unrecorded
  } else if (mask_dirty_all_ || dirty_nodes_.size() >= n_ / 2) {
    ClearHitMasks();
    dirty_nodes_.clear();
    mask_dirty_all_ = false;
  } else {
    for (NodeId v : dirty_nodes_) {
      hit_mask_[v].store(0, std::memory_order_relaxed);
    }
    dirty_nodes_.clear();
  }

  for (size_t i = 0; i < q_; ++i) {
    for (NodeId v : keyword_nodes[i]) {
      WS_CHECK(v < n_);
      SetHit(v, i, 0);
      PushFrontier(v, /*worker=*/0);
      if (keyword_node_[v] != epoch_) {
        keyword_node_[v] = epoch_;
        keyword_mask_[v] = 0;
      }
      keyword_mask_[v] |= (1ULL << i);
    }
  }
  frontier_.clear();
  centrals_.clear();
}

size_t SearchState::RunningStorageBytes() const {
  size_t buffered = 0;
  for (const std::vector<NodeId>& buf : buffers_) {
    buffered += buf.capacity() * sizeof(NodeId);
  }
  return n_ * cap_ * sizeof(Level)      // M: n rows of cap_ level bytes
         // Ablation-only epoch-stamped mirror (zero in production engines).
         + (aos_ ? n_ * cap_ * sizeof(uint32_t) : 0)
         + n_ * sizeof(uint32_t)        // FIdentifier (epoch-stamped)
         + n_ * sizeof(uint32_t)        // CIdentifier (epoch-stamped)
         + n_ * sizeof(uint64_t)        // per-node keyword-hit masks
         + n_ * sizeof(uint32_t)        // keyword-node epoch stamps
         + n_ * sizeof(uint64_t)        // keyword masks
         + frontier_.capacity() * sizeof(NodeId) +
         dirty_nodes_.capacity() * sizeof(NodeId) + buffered +
         centrals_.capacity() * sizeof(CentralCandidate) +
         expand_plan_.CapacityBytes() +  // degree-tier schedule scratch
         frontier_masks_.capacity() * sizeof(uint64_t);
}

}  // namespace wikisearch
