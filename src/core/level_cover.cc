#include "core/level_cover.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "core/extraction_scratch.h"

namespace wikisearch {

AnswerGraph BuildAnswer(const GraphView& g, const ExtractedGraph& eg,
                        size_t num_keywords,
                        const std::function<uint64_t(NodeId)>& keyword_mask,
                        bool enable_level_cover, double lambda) {
  const size_t q = num_keywords;
  WS_CHECK(q >= 1 && q <= 64);
  const uint64_t full_mask = (q == 64) ? ~0ULL : ((1ULL << q) - 1);

  AnswerGraph answer;
  answer.central = eg.central;
  answer.depth = eg.depth;

  // Per-keyword DAG node sets and forward adjacency (pred -> succs).
  std::vector<std::unordered_set<NodeId>> dag_nodes(q);
  std::vector<std::unordered_map<NodeId, std::vector<NodeId>>> dag_fwd(q);
  for (size_t i = 0; i < q; ++i) {
    dag_nodes[i].insert(eg.central);
    for (const auto& [pred, succ] : eg.dag[i]) {
      dag_nodes[i].insert(pred);
      dag_nodes[i].insert(succ);
      dag_fwd[i][pred].push_back(succ);
    }
  }

  // ---- Level-cover selection of keyword nodes ------------------------------
  // kept = keyword nodes surviving the pruning (always includes the central
  // node's own contribution).
  std::unordered_set<NodeId> kept;
  if (enable_level_cover) {
    uint64_t covered = keyword_mask(eg.central) & full_mask;
    kept.insert(eg.central);
    // Bucket keyword nodes (other than the central) by contribution count.
    std::map<int, std::vector<NodeId>, std::greater<int>> buckets;
    std::unordered_set<NodeId> seen;
    for (size_t i = 0; i < q; ++i) {
      for (NodeId v : dag_nodes[i]) {
        if (v == eg.central || !seen.insert(v).second) continue;
        uint64_t mask = keyword_mask(v) & full_mask;
        if (mask == 0) continue;  // not a keyword node
        buckets[std::popcount(mask)].push_back(v);
      }
    }
    for (auto& [count, nodes] : buckets) {
      if (covered == full_mask) break;  // prune all remaining buckets
      // Nodes never cause pruning within their own level: add the whole
      // bucket before re-checking coverage.
      for (NodeId v : nodes) {
        kept.insert(v);
        covered |= keyword_mask(v) & full_mask;
      }
    }
  }

  // ---- Rebuild retained hitting paths --------------------------------------
  std::unordered_set<NodeId> retained_nodes;
  std::set<std::pair<NodeId, NodeId>> retained_pairs;
  retained_nodes.insert(eg.central);

  std::vector<NodeId> stack;
  std::unordered_set<NodeId> visited;
  for (size_t i = 0; i < q; ++i) {
    // Anchors: surviving keyword nodes that lie in B_i's DAG and contain
    // keyword i. If the pruning removed all of them (keyword i covered by a
    // node outside DAG_i), fall back to B_i's own sources so the answer
    // still physically connects keyword i to the Central Node.
    std::vector<NodeId> anchors;
    for (NodeId v : dag_nodes[i]) {
      if ((keyword_mask(v) >> i) & 1) {
        if (!enable_level_cover || kept.count(v)) anchors.push_back(v);
      }
    }
    if (anchors.empty()) {
      for (NodeId v : dag_nodes[i]) {
        if ((keyword_mask(v) >> i) & 1) anchors.push_back(v);
      }
    }
    // Forward reachability from the anchors through DAG_i.
    stack.assign(anchors.begin(), anchors.end());
    visited.clear();
    visited.insert(stack.begin(), stack.end());
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      retained_nodes.insert(v);
      auto it = dag_fwd[i].find(v);
      if (it == dag_fwd[i].end()) continue;
      for (NodeId succ : it->second) {
        retained_pairs.emplace(v, succ);
        if (visited.insert(succ).second) stack.push_back(succ);
      }
    }
  }
  for (const auto& [u, v] : retained_pairs) retained_nodes.insert(v);

  // ---- Materialize --------------------------------------------------------
  answer.nodes.assign(retained_nodes.begin(), retained_nodes.end());
  std::sort(answer.nodes.begin(), answer.nodes.end());
  for (const auto& [u, v] : retained_pairs) {
    AppendEdgesBetween(g, u, v, &answer.edges);
  }
  std::sort(answer.edges.begin(), answer.edges.end());
  answer.edges.erase(std::unique(answer.edges.begin(), answer.edges.end()),
                     answer.edges.end());

  answer.keyword_nodes.assign(q, {});
  for (NodeId v : answer.nodes) {
    uint64_t mask = keyword_mask(v) & full_mask;
    while (mask != 0) {
      int i = std::countr_zero(mask);
      answer.keyword_nodes[static_cast<size_t>(i)].push_back(v);
      mask &= mask - 1;
    }
  }
  answer.score = ScoreAnswer(g, answer, lambda);
  return answer;
}

void BuildAnswerInto(const GraphView& g, const ExtractedGraph& eg,
                     size_t num_keywords, const KeywordMaskView& keyword_mask,
                     bool enable_level_cover, double lambda,
                     ExtractionScratch* s, AnswerGraph* out) {
  const size_t q = num_keywords;
  WS_CHECK(q >= 1 && q <= 64);
  const uint64_t full_mask = (q == 64) ? ~0ULL : ((1ULL << q) - 1);

  out->central = eg.central;
  out->depth = eg.depth;
  out->nodes.clear();
  out->edges.clear();
  if (out->keyword_nodes.size() != q) out->keyword_nodes.resize(q);
  for (std::vector<NodeId>& kn : out->keyword_nodes) kn.clear();

  // Per-node DAG membership bitmask + distinct-node list, replacing the q
  // per-DAG unordered_sets (a node's membership in DAG i is bit i). The
  // forward adjacency needs no map at all: eg.dag[i] is sorted by
  // (pred, succ), so a node's successors are a binary-searched run.
  s->dag_member.Clear();
  s->node_list.clear();
  auto add_member = [&](NodeId v, size_t i) {
    if (s->dag_member.Or(v, 1ULL << i)) s->node_list.push_back(v);
  };
  for (size_t i = 0; i < q; ++i) {
    add_member(eg.central, i);
    for (const auto& [pred, succ] : eg.dag[i]) {
      add_member(pred, i);
      add_member(succ, i);
    }
  }
  struct PredLess {
    bool operator()(const std::pair<NodeId, NodeId>& e, NodeId v) const {
      return e.first < v;
    }
    bool operator()(NodeId v, const std::pair<NodeId, NodeId>& e) const {
      return v < e.first;
    }
  };
  auto fwd_range = [&](size_t i, NodeId v) {
    const auto& dag = eg.dag[i];
    return std::equal_range(dag.begin(), dag.end(), v, PredLess{});
  };

  // ---- Level-cover selection of keyword nodes ------------------------------
  // kept = keyword nodes surviving the pruning (always includes the central
  // node's own contribution). Same bucket semantics as BuildAnswer: whole
  // equal-count groups are added before the coverage recheck, so the sort
  // order within a group cannot affect the kept set.
  s->kept.Clear();
  if (enable_level_cover) {
    uint64_t covered = keyword_mask[eg.central] & full_mask;
    s->kept.Insert(eg.central);
    s->bucket_pairs.clear();
    for (NodeId v : s->node_list) {
      if (v == eg.central) continue;
      const uint64_t mask = keyword_mask[v] & full_mask;
      if (mask == 0) continue;  // not a keyword node
      s->bucket_pairs.emplace_back(std::popcount(mask), v);
    }
    std::sort(s->bucket_pairs.begin(), s->bucket_pairs.end(),
              [](const std::pair<int, NodeId>& a,
                 const std::pair<int, NodeId>& b) { return a.first > b.first; });
    size_t gi = 0;
    while (gi < s->bucket_pairs.size()) {
      if (covered == full_mask) break;  // prune all remaining buckets
      const int count = s->bucket_pairs[gi].first;
      size_t ge = gi;
      while (ge < s->bucket_pairs.size() && s->bucket_pairs[ge].first == count) {
        ++ge;
      }
      // Nodes never cause pruning within their own level: add the whole
      // bucket before re-checking coverage.
      for (size_t j = gi; j < ge; ++j) {
        NodeId v = s->bucket_pairs[j].second;
        s->kept.Insert(v);
        covered |= keyword_mask[v] & full_mask;
      }
      gi = ge;
    }
  }

  // ---- Rebuild retained hitting paths --------------------------------------
  s->retained.Clear();
  s->retained_list.clear();
  s->retained_pairs.clear();
  auto retain = [&](NodeId v) {
    if (s->retained.Insert(v)) s->retained_list.push_back(v);
  };
  retain(eg.central);

  for (size_t i = 0; i < q; ++i) {
    // Anchors: surviving keyword nodes that lie in B_i's DAG and contain
    // keyword i. If the pruning removed all of them (keyword i covered by a
    // node outside DAG_i), fall back to B_i's own sources so the answer
    // still physically connects keyword i to the Central Node.
    s->anchors.clear();
    for (NodeId v : s->node_list) {
      if (((s->dag_member.Get(v) >> i) & 1) == 0) continue;
      if (((keyword_mask[v] >> i) & 1) == 0) continue;
      if (!enable_level_cover || s->kept.Contains(v)) s->anchors.push_back(v);
    }
    if (s->anchors.empty()) {
      for (NodeId v : s->node_list) {
        if (((s->dag_member.Get(v) >> i) & 1) == 0) continue;
        if ((keyword_mask[v] >> i) & 1) s->anchors.push_back(v);
      }
    }
    // Forward reachability from the anchors through DAG_i.
    s->stack.assign(s->anchors.begin(), s->anchors.end());
    s->visited.Clear();
    for (NodeId v : s->anchors) s->visited.Insert(v);
    while (!s->stack.empty()) {
      NodeId v = s->stack.back();
      s->stack.pop_back();
      retain(v);
      auto [lo, hi] = fwd_range(i, v);
      for (auto it = lo; it != hi; ++it) {
        s->retained_pairs.emplace_back(v, it->second);
        if (s->visited.Insert(it->second)) s->stack.push_back(it->second);
      }
    }
  }
  std::sort(s->retained_pairs.begin(), s->retained_pairs.end());
  s->retained_pairs.erase(
      std::unique(s->retained_pairs.begin(), s->retained_pairs.end()),
      s->retained_pairs.end());
  for (const auto& [u, v] : s->retained_pairs) retain(v);

  // ---- Materialize --------------------------------------------------------
  out->nodes.assign(s->retained_list.begin(), s->retained_list.end());
  std::sort(out->nodes.begin(), out->nodes.end());
  for (const auto& [u, v] : s->retained_pairs) {
    AppendEdgesBetween(g, u, v, &out->edges);
  }
  std::sort(out->edges.begin(), out->edges.end());
  out->edges.erase(std::unique(out->edges.begin(), out->edges.end()),
                   out->edges.end());

  for (NodeId v : out->nodes) {
    uint64_t mask = keyword_mask[v] & full_mask;
    while (mask != 0) {
      int i = std::countr_zero(mask);
      out->keyword_nodes[static_cast<size_t>(i)].push_back(v);
      mask &= mask - 1;
    }
  }
  out->score = ScoreAnswer(g, *out, lambda);
}

}  // namespace wikisearch
