#include "core/level_cover.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace wikisearch {

AnswerGraph BuildAnswer(const GraphView& g, const ExtractedGraph& eg,
                        size_t num_keywords,
                        const std::function<uint64_t(NodeId)>& keyword_mask,
                        bool enable_level_cover, double lambda) {
  const size_t q = num_keywords;
  WS_CHECK(q >= 1 && q <= 64);
  const uint64_t full_mask = (q == 64) ? ~0ULL : ((1ULL << q) - 1);

  AnswerGraph answer;
  answer.central = eg.central;
  answer.depth = eg.depth;

  // Per-keyword DAG node sets and forward adjacency (pred -> succs).
  std::vector<std::unordered_set<NodeId>> dag_nodes(q);
  std::vector<std::unordered_map<NodeId, std::vector<NodeId>>> dag_fwd(q);
  for (size_t i = 0; i < q; ++i) {
    dag_nodes[i].insert(eg.central);
    for (const auto& [pred, succ] : eg.dag[i]) {
      dag_nodes[i].insert(pred);
      dag_nodes[i].insert(succ);
      dag_fwd[i][pred].push_back(succ);
    }
  }

  // ---- Level-cover selection of keyword nodes ------------------------------
  // kept = keyword nodes surviving the pruning (always includes the central
  // node's own contribution).
  std::unordered_set<NodeId> kept;
  if (enable_level_cover) {
    uint64_t covered = keyword_mask(eg.central) & full_mask;
    kept.insert(eg.central);
    // Bucket keyword nodes (other than the central) by contribution count.
    std::map<int, std::vector<NodeId>, std::greater<int>> buckets;
    std::unordered_set<NodeId> seen;
    for (size_t i = 0; i < q; ++i) {
      for (NodeId v : dag_nodes[i]) {
        if (v == eg.central || !seen.insert(v).second) continue;
        uint64_t mask = keyword_mask(v) & full_mask;
        if (mask == 0) continue;  // not a keyword node
        buckets[std::popcount(mask)].push_back(v);
      }
    }
    for (auto& [count, nodes] : buckets) {
      if (covered == full_mask) break;  // prune all remaining buckets
      // Nodes never cause pruning within their own level: add the whole
      // bucket before re-checking coverage.
      for (NodeId v : nodes) {
        kept.insert(v);
        covered |= keyword_mask(v) & full_mask;
      }
    }
  }

  // ---- Rebuild retained hitting paths --------------------------------------
  std::unordered_set<NodeId> retained_nodes;
  std::set<std::pair<NodeId, NodeId>> retained_pairs;
  retained_nodes.insert(eg.central);

  std::vector<NodeId> stack;
  std::unordered_set<NodeId> visited;
  for (size_t i = 0; i < q; ++i) {
    // Anchors: surviving keyword nodes that lie in B_i's DAG and contain
    // keyword i. If the pruning removed all of them (keyword i covered by a
    // node outside DAG_i), fall back to B_i's own sources so the answer
    // still physically connects keyword i to the Central Node.
    std::vector<NodeId> anchors;
    for (NodeId v : dag_nodes[i]) {
      if ((keyword_mask(v) >> i) & 1) {
        if (!enable_level_cover || kept.count(v)) anchors.push_back(v);
      }
    }
    if (anchors.empty()) {
      for (NodeId v : dag_nodes[i]) {
        if ((keyword_mask(v) >> i) & 1) anchors.push_back(v);
      }
    }
    // Forward reachability from the anchors through DAG_i.
    stack.assign(anchors.begin(), anchors.end());
    visited.clear();
    visited.insert(stack.begin(), stack.end());
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      retained_nodes.insert(v);
      auto it = dag_fwd[i].find(v);
      if (it == dag_fwd[i].end()) continue;
      for (NodeId succ : it->second) {
        retained_pairs.emplace(v, succ);
        if (visited.insert(succ).second) stack.push_back(succ);
      }
    }
  }
  for (const auto& [u, v] : retained_pairs) retained_nodes.insert(v);

  // ---- Materialize --------------------------------------------------------
  answer.nodes.assign(retained_nodes.begin(), retained_nodes.end());
  std::sort(answer.nodes.begin(), answer.nodes.end());
  for (const auto& [u, v] : retained_pairs) {
    AppendEdgesBetween(g, u, v, &answer.edges);
  }
  std::sort(answer.edges.begin(), answer.edges.end());
  answer.edges.erase(std::unique(answer.edges.begin(), answer.edges.end()),
                     answer.edges.end());

  answer.keyword_nodes.assign(q, {});
  for (NodeId v : answer.nodes) {
    uint64_t mask = keyword_mask(v) & full_mask;
    while (mask != 0) {
      int i = std::countr_zero(mask);
      answer.keyword_nodes[static_cast<size_t>(i)].push_back(v);
      mask &= mask - 1;
    }
  }
  answer.score = ScoreAnswer(g, answer, lambda);
  return answer;
}

}  // namespace wikisearch
