#include "core/extraction.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "core/extraction_scratch.h"

namespace wikisearch {

namespace {

/// Depth (identification level) of a central node: its max hitting level
/// (Lemma V.1). Only valid when all keywords hit v.
int CentralDepth(const HitLevels& hits, NodeId v, size_t q) {
  int d = 0;
  for (size_t i = 0; i < q; ++i) {
    d = std::max(d, static_cast<int>(hits.Hit(v, i)));
  }
  return d;
}

}  // namespace

ExtractedGraph ExtractCentralGraph(const QueryContext& ctx,
                                   const HitLevels& hits,
                                   CentralCandidate central) {
  const GraphView& g = ctx.graph;
  const size_t q = ctx.num_keywords();

  ExtractedGraph out;
  out.central = central.node;
  out.depth = central.depth;
  out.dag.resize(q);

  std::vector<NodeId> queue;
  std::unordered_set<NodeId> visited;
  for (size_t i = 0; i < q; ++i) {
    queue.clear();
    visited.clear();
    queue.push_back(central.node);
    visited.insert(central.node);
    // Standard BFS from the Central Node, extracting predecessors by the
    // Thm. V.4 recurrence.
    for (size_t head = 0; head < queue.size(); ++head) {
      NodeId vf = queue[head];
      const int hf = static_cast<int>(hits.Hit(vf, i));
      if (hf == 0) continue;  // a B_i source: nothing precedes it
      WS_CHECK(hf != static_cast<int>(kLevelInf));
      const bool vf_is_keyword = hits.IsKeywordNode(vf);
      const int af = ctx.activation_level[vf];
      const int expand_level = hf - 1;  // level at which predecessors fired
      for (const AdjEntry& e : g.Neighbors(vf)) {
        NodeId vn = e.target;
        Level hn_raw = hits.Hit(vn, i);
        if (hn_raw == kLevelInf) continue;
        const int hn = static_cast<int>(hn_raw);
        const int an = ctx.activation_level[vn];
        const int expected = vf_is_keyword
                                 ? 1 + std::max(an, hn)
                                 : 1 + std::max({an, hn, af - 1});
        if (hf != expected) continue;
        // A node identified as a Central Node stops expanding (Sec. III-B);
        // exclude predecessors that were already central when this edge
        // would have fired.
        if (vn != central.node && hits.IsCentral(vn) &&
            CentralDepth(hits, vn, q) <= expand_level) {
          continue;
        }
        // Parallel edges between the same pair yield one DAG edge.
        if (!out.dag[i].empty() && out.dag[i].back().first == vn &&
            out.dag[i].back().second == vf) {
          continue;
        }
        out.dag[i].emplace_back(vn, vf);
        if (visited.insert(vn).second) queue.push_back(vn);
      }
    }
    // Deduplicate DAG edges (a pair can repeat when vf is reached via
    // different adjacency entries).
    std::sort(out.dag[i].begin(), out.dag[i].end());
    out.dag[i].erase(std::unique(out.dag[i].begin(), out.dag[i].end()),
                     out.dag[i].end());
  }
  return out;
}

CentralDepthIndex::CentralDepthIndex(
    const std::vector<CentralCandidate>& centrals)
    : sorted_(centrals) {
  std::sort(sorted_.begin(), sorted_.end(),
            [](const CentralCandidate& a, const CentralCandidate& b) {
              return a.node < b.node;
            });
}

int CentralDepthIndex::Lookup(NodeId v) const {
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), v,
      [](const CentralCandidate& c, NodeId node) { return c.node < node; });
  if (it == sorted_.end() || it->node != v) return -1;
  return it->depth;
}

void ExtractCentralGraphInto(const QueryContext& ctx, const HitLevels& hits,
                             CentralCandidate central,
                             const CentralDepthIndex& depths,
                             ExtractionScratch* scratch) {
  const GraphView& g = ctx.graph;
  const size_t q = ctx.num_keywords();

  ExtractedGraph& out = scratch->eg;
  out.central = central.node;
  out.depth = central.depth;
  if (out.dag.size() < q) out.dag.resize(q);

  std::vector<NodeId>& queue = scratch->queue;
  EpochSet& visited = scratch->visited;
  for (size_t i = 0; i < q; ++i) {
    out.dag[i].clear();
    queue.clear();
    visited.Clear();
    queue.push_back(central.node);
    visited.Insert(central.node);
    // Same backward BFS as ExtractCentralGraph; only the container
    // implementations differ (epoch set, reused vectors, indexed depth
    // probe), so the dag edge lists come out byte-identical.
    for (size_t head = 0; head < queue.size(); ++head) {
      NodeId vf = queue[head];
      const int hf = static_cast<int>(hits.Hit(vf, i));
      if (hf == 0) continue;  // a B_i source: nothing precedes it
      WS_CHECK(hf != static_cast<int>(kLevelInf));
      const bool vf_is_keyword = hits.IsKeywordNode(vf);
      const int af = ctx.activation_level[vf];
      const int expand_level = hf - 1;  // level at which predecessors fired
      for (const AdjEntry& e : g.Neighbors(vf)) {
        NodeId vn = e.target;
        Level hn_raw = hits.Hit(vn, i);
        if (hn_raw == kLevelInf) continue;
        const int hn = static_cast<int>(hn_raw);
        const int an = ctx.activation_level[vn];
        const int expected = vf_is_keyword
                                 ? 1 + std::max(an, hn)
                                 : 1 + std::max({an, hn, af - 1});
        if (hf != expected) continue;
        // A node identified as a Central Node stops expanding (Sec. III-B);
        // exclude predecessors that were already central when this edge
        // would have fired. The committed-centrals index answers the depth
        // probe; a cap-dropped central falls back to the hit-level scan.
        if (vn != central.node && hits.IsCentral(vn)) {
          int dn = depths.Lookup(vn);
          if (dn < 0) dn = CentralDepth(hits, vn, q);
          if (dn <= expand_level) continue;
        }
        // Parallel edges between the same pair yield one DAG edge.
        if (!out.dag[i].empty() && out.dag[i].back().first == vn &&
            out.dag[i].back().second == vf) {
          continue;
        }
        out.dag[i].emplace_back(vn, vf);
        if (visited.Insert(vn)) queue.push_back(vn);
      }
    }
    // Deduplicate DAG edges (a pair can repeat when vf is reached via
    // different adjacency entries).
    std::sort(out.dag[i].begin(), out.dag[i].end());
    out.dag[i].erase(std::unique(out.dag[i].begin(), out.dag[i].end()),
                     out.dag[i].end());
  }
}

}  // namespace wikisearch
