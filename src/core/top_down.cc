#include "core/top_down.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <mutex>
#include <numeric>

#include "common/logging.h"
#include "common/timer.h"
#include "core/level_cover.h"
#include "obs/trace.h"

namespace wikisearch {

namespace {

/// Greedy nested-dedup selection over the sorted prefix [0, limit):
/// identical to the historical SelectTopK loop, on pointers. Clears and
/// fills *selected, stopping at k selections.
void GreedySelect(const std::vector<const AnswerGraph*>& sorted, size_t limit,
                  size_t k, bool dedup,
                  std::vector<const AnswerGraph*>* selected) {
  selected->clear();
  for (size_t i = 0; i < limit && selected->size() < k; ++i) {
    const AnswerGraph* cand = sorted[i];
    if (dedup) {
      // Nested Central Graphs repeat information (Sec. VI-B): whenever a
      // candidate's node set contains — or is contained in — an already
      // selected answer, keep only the better-scored representative.
      bool nested = false;
      for (const AnswerGraph* s : *selected) {
        if (cand->ContainsAllNodesOf(*s) || s->ContainsAllNodesOf(*cand)) {
          nested = true;
          break;
        }
      }
      if (nested) continue;
    }
    selected->push_back(cand);
  }
}

}  // namespace

std::vector<AnswerGraph> SelectTopK(std::vector<AnswerGraph> candidates,
                                    const SearchOptions& opts) {
  const size_t k = static_cast<size_t>(std::max(opts.top_k, 0));
  const size_t m = candidates.size();
  if (k == 0 || m == 0) return {};
  std::vector<const AnswerGraph*> ptrs(m);
  for (size_t i = 0; i < m; ++i) ptrs[i] = &candidates[i];
  const auto less = [](const AnswerGraph* a, const AnswerGraph* b) {
    return AnswerOrder(*a, *b);
  };
  // Widening partial sort: only the prefix that can reach the top-k is ever
  // ordered. Without dedup the first min(m, k) positions suffice; dedup can
  // consume more, so the prefix doubles until k selections emerge or the
  // whole list is ordered (== the historical full sort). Selections are
  // prefix-determined, so each round's greedy result is exactly what the
  // full sort would have produced over that prefix.
  std::vector<const AnswerGraph*> selected;
  size_t prefix = std::min(m, k);
  for (;;) {
    std::partial_sort(ptrs.begin(), ptrs.begin() + prefix, ptrs.end(), less);
    GreedySelect(ptrs, prefix, k, opts.dedup_answers, &selected);
    if (selected.size() >= k || prefix == m) break;
    prefix = std::min(m, prefix * 2);
  }
  std::vector<AnswerGraph> out;
  out.reserve(selected.size());
  for (const AnswerGraph* p : selected) {
    out.push_back(std::move(*const_cast<AnswerGraph*>(p)));
  }
  return out;
}

StateCandidateBuilder::StateCandidateBuilder(
    const QueryContext& ctx, const SearchOptions& opts, const HitLevels& hits,
    const KeywordMaskView& mask, const std::vector<CentralCandidate>& centrals,
    ExtractionScratchPool* scratch_pool, int max_workers)
    : ctx_(ctx),
      opts_(opts),
      hits_(hits),
      mask_(mask),
      centrals_(centrals),
      depth_index_(centrals),
      scratch_(scratch_pool, ctx.graph.num_nodes(),
               static_cast<size_t>(std::max(max_workers, 1))) {}

void StateCandidateBuilder::Build(int worker, size_t candidate_index,
                                  AnswerGraph* out) {
  ExtractionScratch& s = scratch_.Get(worker);
  ExtractCentralGraphInto(ctx_, hits_, centrals_[candidate_index],
                          depth_index_, &s);
  BuildAnswerInto(ctx_.graph, s.eg, ctx_.num_keywords(), mask_,
                  opts_.enable_level_cover, opts_.lambda, &s, out);
}

namespace {

// Per-slot outcome of the bounded driver; aggregated after the join so the
// workers never contend on shared counters.
constexpr uint8_t kSlotSkipped = 0;
constexpr uint8_t kSlotExtracted = 1;
constexpr uint8_t kSlotPruned = 2;

/// Completion bookkeeping of the bounded driver. Slots are claimed in
/// ascending order (the parallel-for's atomic counter), so `watermark` — the
/// length of the contiguous done prefix — lower-bounds the slot of every
/// candidate not yet finished, and with slots sorted by ascending score
/// lower bound, lb[watermark] lower-bounds every unfinished candidate's
/// true score. That is what makes one certification over the done snapshot
/// prune all unclaimed candidates exactly (DESIGN.md §14).
struct CertState {
  std::mutex mu;
  std::vector<uint8_t> done;
  /// All done answers, insertion-sorted by AnswerOrder as they complete:
  /// each certification attempt then reads the k-th best in O(1) instead of
  /// re-sorting the done set (the attempt-time sort dominated the driver's
  /// overhead on no-prune queries).
  std::vector<const AnswerGraph*> sorted_done;
  size_t watermark = 0;
  size_t done_count = 0;
  size_t last_attempt = 0;
  bool certifying = false;
};

}  // namespace

std::vector<AnswerGraph> RunBoundedTopDown(
    const QueryContext& ctx, const SearchOptions& opts, ThreadPool* pool,
    const std::vector<CentralCandidate>& centrals,
    const KeywordMaskView& /*mask*/, CandidateBuilder* builder,
    PhaseTimings* timings, const Deadline& deadline, TopDownInfo* info,
    const char* candidate_fault_point) {
  obs::TraceContext* trace = opts.trace;
  obs::ScopedStage stage_span(trace, "topdown", &timings->topdown_ms);
  const FaultHook& fault = opts.fault_injection;
  const size_t m = centrals.size();
  const size_t k = static_cast<size_t>(std::max(opts.top_k, 0));
  // Bound pruning needs admissibility (nonnegative weights) and something to
  // prune (m > k); otherwise run exhaustively — the served set is identical
  // either way.
  const bool use_bound =
      opts.enable_topdown_bound && ctx.weights_nonneg && k > 0 && m > k;

  std::vector<AnswerGraph> answers(m);
  std::vector<uint8_t> status(m, kSlotSkipped);
  std::vector<uint32_t> order;   // slot -> candidate index (bounded mode)
  std::vector<double> lb;        // by slot, ascending (bounded mode)
  CertState cert;
  std::atomic<bool> stop{false};
  std::atomic<bool> expired{false};
  {
    obs::ScopedStage extract_span(trace, "topdown/extract");
    if (use_bound) {
      // Admissible per-candidate lower bound. The missing set M is the
      // keywords whose T_i the central node itself is NOT a member of (the
      // hit bits are useless here — every keyword hits every central by
      // definition): the answer must witness each i in M with a non-central
      // node of T_i, one node can witness at most
      // ctx.max_keyword_multiplicity of them, so the answer pays at least
      // the sum of the ceil(|M| / multiplicity) smallest per-keyword min
      // weights (pick one distinct representative keyword per witness; see
      // DESIGN.md §14), and never less than the largest single one. Bound:
      // depth^lambda * (w(central) + that cover term), mirroring
      // ScoreAnswer's factor exactly (core/answer.h).
      const size_t q = ctx.num_keywords();
      const uint64_t full = q == 64 ? ~0ULL : (1ULL << q) - 1;
      std::vector<uint32_t> by_node(m);
      std::iota(by_node.begin(), by_node.end(), 0u);
      std::sort(by_node.begin(), by_node.end(), [&](uint32_t a, uint32_t b) {
        return centrals[a].node < centrals[b].node;
      });
      std::vector<uint64_t> match_by_idx(m, 0);
      for (size_t i = 0; i < q; ++i) {
        for (NodeId v : ctx.keyword_nodes[i]) {
          auto it = std::lower_bound(
              by_node.begin(), by_node.end(), v,
              [&](uint32_t a, NodeId node) { return centrals[a].node < node; });
          if (it != by_node.end() && centrals[*it].node == v) {
            match_by_idx[*it] |= 1ULL << i;
          }
        }
      }
      std::vector<double> lb_by_idx(m);
      std::vector<double> miss_w;
      miss_w.reserve(q);
      for (size_t idx = 0; idx < m; ++idx) {
        const CentralCandidate& c = centrals[idx];
        uint64_t missing = full & ~match_by_idx[idx];
        miss_w.clear();
        double extra = 0.0;
        while (missing != 0) {
          const int i = std::countr_zero(missing);
          const double w = ctx.min_keyword_weight[static_cast<size_t>(i)];
          extra = std::max(extra, w);
          miss_w.push_back(w);
          missing &= missing - 1;
        }
        const size_t r =
            miss_w.empty()
                ? 0
                : (miss_w.size() + ctx.max_keyword_multiplicity - 1) /
                      ctx.max_keyword_multiplicity;
        if (r > 1) {
          std::sort(miss_w.begin(), miss_w.end());
          double sum = 0.0;
          for (size_t j = 0; j < r; ++j) sum += miss_w[j];
          // This ascending FP sum can exceed the node-order sum inside
          // ScoreAnswer by a relative O((r + answer_size) * eps); deflating
          // by 2^-17 (~7.6e-6, far below the bound's structural slack)
          // dominates that error for any 32-bit node count, so the
          // cover-sum variant stays admissible in double arithmetic, not
          // just over the reals (DESIGN.md §14). The max variant needs no
          // deflation — its FP argument is exact (core/answer.h).
          sum *= 1.0 - 0x1p-17;
          extra = std::max(extra, sum);
        }
        lb_by_idx[idx] = ScoreLowerBound(
            c.depth, opts.lambda, ctx.graph.NodeWeight(c.node), extra);
      }
      order.resize(m);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (lb_by_idx[a] != lb_by_idx[b]) return lb_by_idx[a] < lb_by_idx[b];
        return a < b;
      });
      lb.resize(m);
      for (size_t p = 0; p < m; ++p) lb[p] = lb_by_idx[order[p]];
      cert.done.assign(m, 0);
      cert.sorted_done.reserve(m);
    }
    // Certification backoff: re-sorting the done set on every completion
    // would be quadratic; every cert_interval completions is enough to stop
    // within one interval of the earliest provable cutoff.
    const size_t cert_interval = std::max<size_t>(8, k / 4);
    pool->ParallelForDynamicWorker(m, /*grain=*/1, [&](int worker, size_t p) {
      if (fault) fault(candidate_fault_point);
      // Order matters for the accounting contract: a slot claimed after the
      // top-k is certified counts as pruned even if the deadline has also
      // expired (the bound alone suffices to drop it).
      if (use_bound && stop.load(std::memory_order_relaxed)) {
        status[p] = kSlotPruned;
        return;
      }
      if (expired.load(std::memory_order_relaxed)) return;
      if (deadline.Expired()) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      const size_t idx = use_bound ? order[p] : p;
      builder->Build(worker, idx, &answers[p]);
      status[p] = kSlotExtracted;
      if (!use_bound) return;

      bool attempt = false;
      bool quick_pass = false;
      size_t snap_watermark = 0;
      std::vector<const AnswerGraph*> snap_sorted;
      {
        std::lock_guard<std::mutex> lock(cert.mu);
        cert.done[p] = 1;
        ++cert.done_count;
        while (cert.watermark < m && cert.done[cert.watermark] != 0) {
          ++cert.watermark;
        }
        const AnswerGraph* a = &answers[p];
        cert.sorted_done.insert(
            std::upper_bound(cert.sorted_done.begin(), cert.sorted_done.end(),
                             a,
                             [](const AnswerGraph* x, const AnswerGraph* y) {
                               return AnswerOrder(*x, *y);
                             }),
            a);
        if (!stop.load(std::memory_order_relaxed) && !cert.certifying &&
            cert.watermark < m && cert.done_count >= k &&
            cert.done_count - cert.last_attempt >= cert_interval) {
          cert.certifying = true;
          cert.last_attempt = cert.done_count;
          snap_watermark = cert.watermark;
          attempt = true;
          // Exact necessary condition, O(1): the greedy k-th selection never
          // scores better than the k-th best of the done set (dedup can only
          // push it later), so certification is hopeless unless that beats
          // the watermark bound. Without dedup it is also sufficient.
          quick_pass = cert.sorted_done.size() >= k &&
                       cert.sorted_done[k - 1]->score < lb[snap_watermark];
          if (quick_pass && opts.dedup_answers) {
            snap_sorted = cert.sorted_done;
          }
        }
      }
      if (!attempt) return;
      if (fault) fault("topdown:bound");
      // Certification: greedy top-k over the done snapshot. Every candidate
      // outside the snapshot (in-flight or unclaimed) has slot >=
      // snap_watermark, hence true score >= lb[snap_watermark]; if that
      // strictly exceeds the k-th selection's score, no later completion can
      // enter or reorder the served top-k, so everything still unclaimed is
      // pruned. Answers of done slots are immutable and published via
      // cert.mu, so reading them outside the lock is safe.
      bool certified = quick_pass;
      if (quick_pass && opts.dedup_answers) {
        std::vector<const AnswerGraph*> selected;
        GreedySelect(snap_sorted, snap_sorted.size(), k, /*dedup=*/true,
                     &selected);
        certified = selected.size() == k &&
                    selected.back()->score < lb[snap_watermark];
      }
      if (certified) stop.store(true, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(cert.mu);
        cert.certifying = false;
      }
    });
  }
  size_t extracted = 0;
  size_t pruned = 0;
  size_t skipped = 0;
  std::vector<AnswerGraph> built;
  for (size_t p = 0; p < m; ++p) {
    switch (status[p]) {
      case kSlotExtracted:
        ++extracted;
        built.push_back(std::move(answers[p]));
        break;
      case kSlotPruned:
        ++pruned;
        break;
      default:
        ++skipped;
        break;
    }
  }
  WS_CHECK(extracted + pruned + skipped == m);
  if (info != nullptr) {
    info->candidates_extracted = extracted;
    info->candidates_pruned = pruned;
    info->candidates_skipped = skipped;
    info->timed_out = expired.load(std::memory_order_relaxed);
  }
  obs::ScopedStage rank_span(trace, "topdown/rank");
  return SelectTopK(std::move(built), opts);
}

std::vector<AnswerGraph> TopDownProcess(
    const QueryContext& ctx, const SearchOptions& opts, ThreadPool* pool,
    const HitLevels& hits, const std::vector<CentralCandidate>& centrals,
    const std::function<uint64_t(NodeId)>& keyword_mask,
    PhaseTimings* timings, const Deadline& deadline, TopDownInfo* info) {
  obs::TraceContext* trace = opts.trace;
  obs::ScopedStage stage_span(trace, "topdown", &timings->topdown_ms);
  const FaultHook& fault = opts.fault_injection;
  std::vector<AnswerGraph> candidates(centrals.size());
  std::atomic<bool> expired{false};
  {
    obs::ScopedStage extract_span(trace, "topdown/extract");
    // One thread recovers one or more Central Graphs (dynamic scheduling, as
    // the paper does with OpenMP). The deadline is checked before each
    // candidate; a skipped candidate leaves its kInvalidNode placeholder,
    // filtered below.
    pool->ParallelForDynamic(
        centrals.size(), /*grain=*/1, [&](size_t idx) {
          if (fault) fault("topdown:candidate");
          if (expired.load(std::memory_order_relaxed)) return;
          if (deadline.Expired()) {
            expired.store(true, std::memory_order_relaxed);
            return;
          }
          ExtractedGraph eg = ExtractCentralGraph(ctx, hits, centrals[idx]);
          candidates[idx] =
              BuildAnswer(ctx.graph, eg, ctx.num_keywords(), keyword_mask,
                          opts.enable_level_cover, opts.lambda);
        });
    if (expired.load(std::memory_order_relaxed)) {
      size_t kept = 0;
      for (AnswerGraph& cand : candidates) {
        if (cand.central != kInvalidNode) candidates[kept++] = std::move(cand);
      }
      if (info != nullptr) {
        info->candidates_skipped = candidates.size() - kept;
        info->timed_out = true;
      }
      candidates.resize(kept);
    }
  }
  if (info != nullptr) info->candidates_extracted = candidates.size();
  obs::ScopedStage rank_span(trace, "topdown/rank");
  return SelectTopK(std::move(candidates), opts);
}

}  // namespace wikisearch
