#include "core/top_down.h"

#include <algorithm>
#include <atomic>

#include "common/timer.h"
#include "core/level_cover.h"
#include "obs/trace.h"

namespace wikisearch {

std::vector<AnswerGraph> SelectTopK(std::vector<AnswerGraph> candidates,
                                    const SearchOptions& opts) {
  std::sort(candidates.begin(), candidates.end(), AnswerOrder);
  std::vector<AnswerGraph> selected;
  const size_t k = static_cast<size_t>(std::max(opts.top_k, 0));
  for (AnswerGraph& cand : candidates) {
    if (selected.size() >= k) break;
    if (opts.dedup_answers) {
      // Nested Central Graphs repeat information (Sec. VI-B): whenever a
      // candidate's node set contains — or is contained in — an already
      // selected answer, keep only the better-scored representative.
      bool nested = false;
      for (const AnswerGraph& s : selected) {
        if (cand.ContainsAllNodesOf(s) || s.ContainsAllNodesOf(cand)) {
          nested = true;
          break;
        }
      }
      if (nested) continue;
    }
    selected.push_back(std::move(cand));
  }
  return selected;
}

std::vector<AnswerGraph> TopDownProcess(
    const QueryContext& ctx, const SearchOptions& opts, ThreadPool* pool,
    const HitLevels& hits, const std::vector<CentralCandidate>& centrals,
    const std::function<uint64_t(NodeId)>& keyword_mask,
    PhaseTimings* timings, const Deadline& deadline, TopDownInfo* info) {
  obs::TraceContext* trace = opts.trace;
  obs::ScopedStage stage_span(trace, "topdown", &timings->topdown_ms);
  const FaultHook& fault = opts.fault_injection;
  std::vector<AnswerGraph> candidates(centrals.size());
  std::atomic<bool> expired{false};
  {
    obs::ScopedStage extract_span(trace, "topdown/extract");
    // One thread recovers one or more Central Graphs (dynamic scheduling, as
    // the paper does with OpenMP). The deadline is checked before each
    // candidate; a skipped candidate leaves its kInvalidNode placeholder,
    // filtered below.
    pool->ParallelForDynamic(
        centrals.size(), /*grain=*/1, [&](size_t idx) {
          if (fault) fault("topdown:candidate");
          if (expired.load(std::memory_order_relaxed)) return;
          if (deadline.Expired()) {
            expired.store(true, std::memory_order_relaxed);
            return;
          }
          ExtractedGraph eg = ExtractCentralGraph(ctx, hits, centrals[idx]);
          candidates[idx] =
              BuildAnswer(ctx.graph, eg, ctx.num_keywords(), keyword_mask,
                          opts.enable_level_cover, opts.lambda);
        });
    if (expired.load(std::memory_order_relaxed)) {
      size_t kept = 0;
      for (AnswerGraph& cand : candidates) {
        if (cand.central != kInvalidNode) candidates[kept++] = std::move(cand);
      }
      if (info != nullptr) {
        info->candidates_skipped = candidates.size() - kept;
        info->timed_out = true;
      }
      candidates.resize(kept);
    }
  }
  obs::ScopedStage rank_span(trace, "topdown/rank");
  return SelectTopK(std::move(candidates), opts);
}

}  // namespace wikisearch
