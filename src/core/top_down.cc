#include "core/top_down.h"

#include <algorithm>

#include "common/timer.h"
#include "core/level_cover.h"

namespace wikisearch {

std::vector<AnswerGraph> SelectTopK(std::vector<AnswerGraph> candidates,
                                    const SearchOptions& opts) {
  std::sort(candidates.begin(), candidates.end(), AnswerOrder);
  std::vector<AnswerGraph> selected;
  const size_t k = static_cast<size_t>(std::max(opts.top_k, 0));
  for (AnswerGraph& cand : candidates) {
    if (selected.size() >= k) break;
    if (opts.dedup_answers) {
      // Nested Central Graphs repeat information (Sec. VI-B): whenever a
      // candidate's node set contains — or is contained in — an already
      // selected answer, keep only the better-scored representative.
      bool nested = false;
      for (const AnswerGraph& s : selected) {
        if (cand.ContainsAllNodesOf(s) || s.ContainsAllNodesOf(cand)) {
          nested = true;
          break;
        }
      }
      if (nested) continue;
    }
    selected.push_back(std::move(cand));
  }
  return selected;
}

std::vector<AnswerGraph> TopDownProcess(
    const QueryContext& ctx, const SearchOptions& opts, ThreadPool* pool,
    const HitLevels& hits, const std::vector<CentralCandidate>& centrals,
    const std::function<uint64_t(NodeId)>& keyword_mask,
    PhaseTimings* timings) {
  WallTimer timer;
  std::vector<AnswerGraph> candidates(centrals.size());
  // One thread recovers one or more Central Graphs (dynamic scheduling, as
  // the paper does with OpenMP).
  pool->ParallelForDynamic(
      centrals.size(), /*grain=*/1, [&](size_t idx) {
        ExtractedGraph eg = ExtractCentralGraph(ctx, hits, centrals[idx]);
        candidates[idx] =
            BuildAnswer(*ctx.graph, eg, ctx.num_keywords(), keyword_mask,
                        opts.enable_level_cover, opts.lambda);
      });
  std::vector<AnswerGraph> result = SelectTopK(std::move(candidates), opts);
  timings->topdown_ms += timer.ElapsedMs();
  return result;
}

}  // namespace wikisearch
