// Resolves KernelIsa requests against what was compiled in and what the
// host CPU / environment allows. See kernel.h for the policy.
#include "core/kernel/kernel.h"

#include "common/cpu_features.h"

#if defined(__SANITIZE_THREAD__)
#define WIKISEARCH_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WIKISEARCH_TSAN_BUILD 1
#endif
#endif

namespace wikisearch::kernel {

#ifdef WIKISEARCH_HAVE_AVX2
const Ops& Avx2Ops();  // kernel_avx2.cc
#endif

bool Avx2Compiled() {
#ifdef WIKISEARCH_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool Avx2Usable() {
#if !defined(WIKISEARCH_HAVE_AVX2) || defined(WIKISEARCH_TSAN_BUILD)
  // TSan cannot model the speculative wide loads in expand_range (the
  // race-safety argument lives in kernel.h), so sanitized builds always run
  // the scalar kernels.
  return false;
#else
  return CpuHasAvx2() && !ForceScalarKernels();
#endif
}

const Ops& Select(KernelIsa isa) {
  if (isa == KernelIsa::kScalar) return ScalarOps();
#ifdef WIKISEARCH_HAVE_AVX2
  if (Avx2Usable()) return Avx2Ops();
#endif
  return ScalarOps();
}

}  // namespace wikisearch::kernel
