// Runtime-dispatched hot-loop kernels of the bottom-up stage (DESIGN.md
// §11). The three loops that dominate a level — Central-Node
// identification, frontier-flag scanning, and neighbor expansion — are
// factored into an Ops vtable with a portable scalar implementation (always
// built) and an AVX2 implementation (built when the toolchain supports
// -mavx2, selected only when cpuid reports AVX2 at run time).
//
// Contract: every Ops implementation produces byte-identical search state —
// same hit cells, same flags, same candidate sets in the same committed
// order — for any schedule (kernel_equivalence_test proves it across all
// engine kinds, thread counts and deadline fault points). Vectorization may
// only change *when* memory is read, never what is written:
//
//  * select_full_masks / collect_flagged run between fork-join barriers, so
//    their inputs are quiescent and wide loads are race-free;
//  * expand_range's unrolled skip test reads hit masks that race with
//    concurrent fetch_or stores, but every read goes through the relaxed
//    atomic, and a stale value is harmless: hit bits only get set within a
//    query, so an observed 1 is real (skip is safe) and an observed 0
//    merely forwards the neighbor to a tail that re-reads before acting.
//    The AVX2 TU is still kept out of TSan builds: its *scan* kernels
//    reinterpret the atomic arrays as plain words for the wide loads, an
//    idiom TSan cannot credit even though those phases are quiescent.
//
// Scalar fallback is forced by the WIKISEARCH_FORCE_SCALAR environment
// variable (the test suite's second ISA pass) and by ThreadSanitizer
// builds.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/search_options.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "graph/types.h"

namespace wikisearch {

class SearchState;

namespace kernel {

/// Degree-tier thresholds of the bucketed expansion schedule (DESIGN.md
/// §11): nodes with degree <= kTierSmallMaxDegree are batched coarsely,
/// nodes above kTierHubMinDegree are split into sub-ranges of at most
/// kHubSubRange neighbors (one dynamic task each), everything between gets
/// fine-grained whole-node tasks.
inline constexpr size_t kTierSmallMaxDegree = 32;
inline constexpr size_t kTierHubMinDegree = 1024;
inline constexpr size_t kHubSubRange = 512;

/// Everything the expansion kernel needs besides the neighbor run itself.
/// All pointers borrow from the query's SearchState / QueryContext.
struct ExpandContext {
  const std::atomic<uint64_t>* hit_mask = nullptr;  // per-node hit bitmasks
  /// QueryContext::hit_gate — a_v with keyword nodes forced to zero, so the
  /// per-survivor gate is one byte load (no separate keyword-stamp probe).
  const uint8_t* hit_gate = nullptr;
  /// Raw a_v table for the frontier-level gate (applies to keyword nodes
  /// too: hit freely, expand only once the level reaches a_v).
  const uint8_t* activation_level = nullptr;
  /// Current-level frontier and its snapshot expand masks (parallel
  /// arrays; see select_full_masks). Rebound every level — the vectors
  /// may reallocate between levels.
  const NodeId* frontier = nullptr;
  const uint64_t* frontier_masks = nullptr;
  /// Raw CSR offset array of the base graph, or nullptr when the view has a
  /// delta overlay (whose touched-node adjacency lives in a hash map no
  /// pointer arithmetic can reach). Only used as a prefetch target: the
  /// chunk kernels warm the *next* frontier node's offset cell while the
  /// current node expands, hiding the one dependent random load that
  /// serializes the per-node pipeline. Reads still go through
  /// GraphView::Neighbors.
  const uint64_t* csr_offsets = nullptr;
  GraphView graph;        // adjacency of the pinned snapshot
  int level = 0;          // current level l; new hits are written at l+1
  SearchState* state = nullptr;
  /// True when the search runs on a width-1 pool (fully inline, one
  /// worker): discovery writes take the plain-store fast path instead of
  /// lock-prefixed RMWs (SetHitMultiSingle / PushFrontierSingle).
  bool single_worker = false;
};

struct Ops {
  const char* name;

  /// Scans hit_mask[frontier[j]] for j in [0, count) and writes the j of
  /// every full mask (== full_mask) to out; returns how many. Positions are
  /// emitted in ascending j, so the caller's commit order is independent of
  /// the ISA. `out` must hold `count` entries.
  ///
  /// Every loaded mask is also stored to masks_out[j] (`count` entries):
  /// identify runs between fork-join barriers, before any level-(l+1) write
  /// exists, so masks_out[j] is exactly the fixed instance set
  /// {i : Hit(frontier[j], i) <= l} that frontier[j] expands at this level —
  /// captured here for free instead of re-derived from the level matrix
  /// (q probes per node) in the expansion phase.
  size_t (*select_full_masks)(const NodeId* frontier, size_t count,
                              const std::atomic<uint64_t>* hit_mask,
                              uint64_t full_mask, uint32_t* out,
                              uint64_t* masks_out);

  /// Appends every v in [begin, end) with flags[v] == epoch to out (in
  /// ascending v); returns how many. `out` must hold `end - begin` entries.
  size_t (*collect_flagged)(const std::atomic<uint32_t>* flags,
                            uint32_t epoch, NodeId begin, NodeId end,
                            NodeId* out);

  /// Algorithm 2's inner loop, neighbor-major: for each entry of the run
  /// [nb, nb + count), hits every instance of `expand` that has not already
  /// hit the target (SetHitMulti + PushFrontier), honoring keyword-node and
  /// activation gating. Returns true if any neighbor was activation-blocked
  /// (the caller re-flags the frontier node once — the hoisted re-flag).
  /// `expand` is the fixed set {i : Hit(vf, i) <= level}; see bottom_up.cc
  /// for why it cannot change during the level.
  bool (*expand_range)(const ExpandContext& c, uint64_t expand,
                       const AdjEntry* nb, size_t count, int worker);

  /// Expands frontier[idx] for every idx in [lo, hi) — one flat-schedule
  /// chunk. Runs the whole per-node pipeline (central/activation frontier
  /// gate, snapshot mask, adjacency pass, hoisted re-flag) inside the
  /// kernel TU, so the per-node cost carries no indirect call: the caller
  /// dispatches once per chunk, not once per frontier node.
  void (*expand_frontier_chunk)(const ExpandContext& c, size_t lo, size_t hi,
                                int worker);

  /// Same pipeline over frontier[pos[t]] for t in [0, count) — one
  /// degree-tier chunk of the bucketed schedule (pos points into
  /// ExpandPlan::small or ::mid).
  void (*expand_position_chunk)(const ExpandContext& c, const uint32_t* pos,
                                size_t count, int worker);
};

/// The portable implementation (always available).
const Ops& ScalarOps();

/// True iff the AVX2 translation unit was compiled in (WIKISEARCH_AVX2).
bool Avx2Compiled();

/// True iff AVX2 kernels can actually run now: compiled in, cpuid reports
/// AVX2, not a TSan build, and WIKISEARCH_FORCE_SCALAR is not set.
bool Avx2Usable();

/// Resolves a KernelIsa request against availability. kAuto and kAvx2 both
/// yield the AVX2 ops when Avx2Usable(), scalar otherwise.
const Ops& Select(KernelIsa isa);

}  // namespace kernel
}  // namespace wikisearch
