// Portable scalar kernels — the reference implementation every other ISA
// variant must match byte-for-byte, and the fallback dispatched on CPUs
// without AVX2, under WIKISEARCH_FORCE_SCALAR, and in TSan builds.
#include "core/kernel/kernel_inline.h"

namespace wikisearch::kernel {

namespace {

size_t SelectFullMasksScalar(const NodeId* frontier, size_t count,
                             const std::atomic<uint64_t>* hit_mask,
                             uint64_t full_mask, uint32_t* out,
                             uint64_t* masks_out) {
  size_t n_out = 0;
  for (size_t j = 0; j < count; ++j) {
    if (j + internal::kPrefetchAhead < count) {
      __builtin_prefetch(&hit_mask[frontier[j + internal::kPrefetchAhead]],
                         0, 1);
    }
    uint64_t mask = hit_mask[frontier[j]].load(std::memory_order_relaxed);
    masks_out[j] = mask;
    if (mask == full_mask) {
      out[n_out++] = static_cast<uint32_t>(j);
    }
  }
  return n_out;
}

size_t CollectFlaggedScalar(const std::atomic<uint32_t>* flags,
                            uint32_t epoch, NodeId begin, NodeId end,
                            NodeId* out) {
  size_t n_out = 0;
  for (NodeId v = begin; v < end; ++v) {
    if (flags[v].load(std::memory_order_relaxed) == epoch) {
      out[n_out++] = v;
    }
  }
  return n_out;
}

bool ExpandRangeScalar(const ExpandContext& c, uint64_t expand,
                       const AdjEntry* nb, size_t count, int worker) {
  return internal::ExpandRangeUnrolled(c, expand, nb, count, worker);
}

void ExpandFrontierChunkScalar(const ExpandContext& c, size_t lo, size_t hi,
                               int worker) {
  internal::ExpandFrontierChunkImpl(c, lo, hi, worker);
}

void ExpandPositionChunkScalar(const ExpandContext& c, const uint32_t* pos,
                               size_t count, int worker) {
  internal::ExpandPositionChunkImpl(c, pos, count, worker);
}

}  // namespace

const Ops& ScalarOps() {
  static constexpr Ops ops = {
      "scalar",
      &SelectFullMasksScalar,
      &CollectFlaggedScalar,
      &ExpandRangeScalar,
      &ExpandFrontierChunkScalar,
      &ExpandPositionChunkScalar,
  };
  return ops;
}

}  // namespace wikisearch::kernel
