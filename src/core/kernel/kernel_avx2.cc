// AVX2 kernel variants. This translation unit is compiled with -mavx2 only
// when WIKISEARCH_AVX2 is enabled; it is *dispatched* only when cpuid
// reports AVX2 at run time (kernel::Select), so the rest of the binary
// stays runnable on any x86-64.
//
// Equivalence with the scalar kernels is structural: the vector code only
// *prefilters* (which frontier positions have full masks, which flag words
// match the epoch); every surviving element goes through the same scalar
// tail (kernel_inline.h) that the scalar TU uses, and both scan kernels run
// between fork-join barriers over quiescent arrays (kernel.h).
//
// Gather indices: select_full_masks uses 32-bit-indexed gathers, which are
// signed — fine for any graph this engine can hold (NodeId is 32-bit and
// SearchState allocates n*cap 32-bit cells, so n >= 2^31 is out of reach
// long before the sign bit matters).
#include "core/kernel/kernel_inline.h"

#ifdef WIKISEARCH_HAVE_AVX2

#include <immintrin.h>

namespace wikisearch::kernel {

namespace {

size_t SelectFullMasksAvx2(const NodeId* frontier, size_t count,
                           const std::atomic<uint64_t>* hit_mask,
                           uint64_t full_mask, uint32_t* out,
                           uint64_t* masks_out) {
  const long long* masks = reinterpret_cast<const long long*>(hit_mask);
  const __m256i vfull = _mm256_set1_epi64x(static_cast<long long>(full_mask));
  size_t n_out = 0;
  size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    __m256i ids = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(frontier + j));
    __m128i lo = _mm256_castsi256_si128(ids);
    __m128i hi = _mm256_extracti128_si256(ids, 1);
    __m256i m0 = _mm256_i32gather_epi64(masks, lo, 8);
    __m256i m1 = _mm256_i32gather_epi64(masks, hi, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(masks_out + j), m0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(masks_out + j + 4), m1);
    unsigned bits =
        static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(m0, vfull)))) |
        (static_cast<unsigned>(_mm256_movemask_pd(
             _mm256_castsi256_pd(_mm256_cmpeq_epi64(m1, vfull))))
         << 4);
    while (bits != 0) {
      out[n_out++] = static_cast<uint32_t>(
          j + static_cast<unsigned>(__builtin_ctz(bits)));
      bits &= bits - 1;
    }
  }
  for (; j < count; ++j) {
    uint64_t mask = hit_mask[frontier[j]].load(std::memory_order_relaxed);
    masks_out[j] = mask;
    if (mask == full_mask) {
      out[n_out++] = static_cast<uint32_t>(j);
    }
  }
  return n_out;
}

size_t CollectFlaggedAvx2(const std::atomic<uint32_t>* flags, uint32_t epoch,
                          NodeId begin, NodeId end, NodeId* out) {
  const uint32_t* words = reinterpret_cast<const uint32_t*>(flags);
  const __m256i vep = _mm256_set1_epi32(static_cast<int>(epoch));
  size_t n_out = 0;
  NodeId v = begin;
  for (; v + 8 <= end; v += 8) {
    __m256i f = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + v));
    unsigned bits = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(f, vep))));
    while (bits != 0) {
      out[n_out++] = v + static_cast<NodeId>(__builtin_ctz(bits));
      bits &= bits - 1;
    }
  }
  for (; v < end; ++v) {
    if (flags[v].load(std::memory_order_relaxed) == epoch) out[n_out++] = v;
  }
  return n_out;
}

bool ExpandRangeAvx2(const ExpandContext& c, uint64_t expand,
                     const AdjEntry* nb, size_t count, int worker) {
  // Same unrolled skip-test body as the scalar TU (compiled here under
  // -mavx2). A gathered variant (vpgatherqq on the neighbor targets +
  // testz) was measured slower on the target host: the microcoded gather
  // costs more than the well-predicted branches it removes, and the skip
  // test's loads are the cheap part of this loop.
  return internal::ExpandRangeUnrolled(c, expand, nb, count, worker);
}

void ExpandFrontierChunkAvx2(const ExpandContext& c, size_t lo, size_t hi,
                             int worker) {
  internal::ExpandFrontierChunkImpl(c, lo, hi, worker);
}

void ExpandPositionChunkAvx2(const ExpandContext& c, const uint32_t* pos,
                             size_t count, int worker) {
  internal::ExpandPositionChunkImpl(c, pos, count, worker);
}

}  // namespace

const Ops& Avx2Ops() {
  static constexpr Ops ops = {
      "avx2",
      &SelectFullMasksAvx2,
      &CollectFlaggedAvx2,
      &ExpandRangeAvx2,
      &ExpandFrontierChunkAvx2,
      &ExpandPositionChunkAvx2,
  };
  return ops;
}

}  // namespace wikisearch::kernel

#endif  // WIKISEARCH_HAVE_AVX2
