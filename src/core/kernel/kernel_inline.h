// Shared scalar building blocks of the kernel variants. The AVX2 kernels
// use the same per-neighbor tail after their vector prefilters, so the two
// translation units stay byte-identical by construction wherever a vector
// lane falls back to scalar.
#pragma once

#include <atomic>
#include <span>

#include "core/bfs_state.h"
#include "core/kernel/kernel.h"

namespace wikisearch::kernel::internal {

/// Distance (in neighbor entries) the expansion loop prefetches ahead. One
/// hit-mask line per neighbor is the dominant miss; the adjacency run
/// itself is sequential and needs no help.
inline constexpr size_t kPrefetchAhead = 8;

/// Distance (in frontier nodes) the chunk kernels prefetch CSR offset cells
/// ahead. Each node's pipeline starts with a dependent random load of
/// offsets[vf]; warming it a few nodes early overlaps that miss with the
/// preceding nodes' adjacency work.
inline constexpr size_t kNodeLookahead = 4;

/// Processes one neighbor entry exactly as Algorithm 2 requires. Returns
/// true if the neighbor was activation-blocked (caller accumulates the
/// hoisted re-flag). `mask` is the caller's (possibly slightly stale) read
/// of hit_mask[vn]: staleness only inflates `todo` with bits another worker
/// is committing at the same level, and re-committing those is idempotent —
/// SetHitMulti re-stores the same level-(l+1) cell values (Thm. V.2) and
/// PushFrontier deduplicates via its flag exchange.
inline bool ExpandOneNeighbor(const ExpandContext& c, uint64_t expand,
                              NodeId vn, uint64_t mask, int worker) {
  uint64_t todo = expand & ~mask;
  if (todo == 0) return false;  // every instance already hit vn
  // hit_gate is zero for keyword nodes (they are hit freely), a_v otherwise.
  if (static_cast<int>(c.hit_gate[vn]) > c.level + 1) {
    // The caller retries the frontier node at the next level.
    return true;
  }
  if (c.single_worker) {
    c.state->SetHitMultiSingle(vn, mask, todo,
                               static_cast<Level>(c.level + 1));
    c.state->PushFrontierSingle(vn);
  } else {
    c.state->SetHitMulti(vn, todo, static_cast<Level>(c.level + 1));
    c.state->PushFrontier(vn, worker);
  }
  return false;
}

/// Shared expand_range body: unrolled by 4 with an AND-combined skip test.
/// Mid-search most neighbors are already hit by every expanding instance,
/// so one combined test retires 4 neighbors with a single (almost always
/// not-taken) branch; survivors reuse the already-loaded mask (see
/// ExpandOneNeighbor for why a stale read is harmless). Both ISA TUs
/// instantiate this; measured on the target host it beats a gathered
/// variant, whose microcoded index loads cost more than the branches they
/// remove.
inline bool ExpandRangeUnrolled(const ExpandContext& c, uint64_t expand,
                                const AdjEntry* nb, size_t count,
                                int worker) {
  bool blocked = false;
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    if (j + 8 <= count) {
      // One hit-mask line per upcoming neighbor; the AdjEntry run itself is
      // sequential and the hardware prefetcher owns it.
      __builtin_prefetch(&c.hit_mask[nb[j + 4].target], 0, 1);
      __builtin_prefetch(&c.hit_mask[nb[j + 5].target], 0, 1);
      __builtin_prefetch(&c.hit_mask[nb[j + 6].target], 0, 1);
      __builtin_prefetch(&c.hit_mask[nb[j + 7].target], 0, 1);
    }
    const uint64_t m0 = c.hit_mask[nb[j].target].load(std::memory_order_relaxed);
    const uint64_t m1 =
        c.hit_mask[nb[j + 1].target].load(std::memory_order_relaxed);
    const uint64_t m2 =
        c.hit_mask[nb[j + 2].target].load(std::memory_order_relaxed);
    const uint64_t m3 =
        c.hit_mask[nb[j + 3].target].load(std::memory_order_relaxed);
    if ((expand & ~(m0 & m1 & m2 & m3)) == 0) continue;
    blocked |= ExpandOneNeighbor(c, expand, nb[j].target, m0, worker);
    blocked |= ExpandOneNeighbor(c, expand, nb[j + 1].target, m1, worker);
    blocked |= ExpandOneNeighbor(c, expand, nb[j + 2].target, m2, worker);
    blocked |= ExpandOneNeighbor(c, expand, nb[j + 3].target, m3, worker);
  }
  for (; j < count; ++j) {
    if (j + kPrefetchAhead < count) {
      __builtin_prefetch(&c.hit_mask[nb[j + kPrefetchAhead].target], 0, 1);
    }
    const NodeId vn = nb[j].target;
    const uint64_t m = c.hit_mask[vn].load(std::memory_order_relaxed);
    blocked |= ExpandOneNeighbor(c, expand, vn, m, worker);
  }
  return blocked;
}

/// Full per-frontier-node pipeline of Algorithm 2: frontier gate (central
/// nodes are consumed; activation-deferred nodes re-flag and retry next
/// level), snapshot expand mask, adjacency pass, and the hoisted
/// activation re-flag. Lives here so the chunk ops inline it — the
/// per-node work then costs no indirect call.
///
/// The central-node skip is folded into the snapshot: identify zeroes the
/// expand mask of every position it selects, and a non-central frontier
/// node always carries >= 1 snapshot bit (it was pushed because some
/// instance hit it), so `expand == 0` *is* the IsCentral test — one
/// sequential mask read replaces a random central_flag_ probe per node.
/// The mask check must run before the activation gate for exactly that
/// reason: a consumed central must not be re-flagged.
inline void ExpandOneFrontierNode(const ExpandContext& c, size_t pos,
                                  int worker) {
  const uint64_t expand = c.frontier_masks[pos];
  if (expand == 0) return;  // central: unavailable once identified
  const NodeId vf = c.frontier[pos];
  bool reflag = false;
  if (static_cast<int>(c.activation_level[vf]) > c.level) {
    // Keyword-node compromise (Sec. IV-B): hit freely, expand only once
    // the global level reaches the activation level. Applies to all nodes.
    reflag = true;
  } else {
    std::span<const AdjEntry> nb = c.graph.Neighbors(vf);
    // Hoisted activation re-flag: at most once per node per level.
    reflag = ExpandRangeUnrolled(c, expand, nb.data(), nb.size(), worker);
  }
  if (!reflag) return;
  if (c.single_worker) {
    c.state->PushFrontierSingle(vf);
  } else {
    c.state->PushFrontier(vf, worker);
  }
}

/// Flat-schedule chunk body: frontier[pos] for pos in [lo, hi), warming the
/// CSR offset cell of the node kNodeLookahead ahead (see ExpandContext::
/// csr_offsets). Both ISA TUs wrap this, keeping the chunk loops identical.
inline void ExpandFrontierChunkImpl(const ExpandContext& c, size_t lo,
                                    size_t hi, int worker) {
  for (size_t pos = lo; pos < hi; ++pos) {
    if (c.csr_offsets != nullptr && pos + kNodeLookahead < hi) {
      __builtin_prefetch(c.csr_offsets + c.frontier[pos + kNodeLookahead],
                         0, 1);
    }
    ExpandOneFrontierNode(c, pos, worker);
  }
}

/// Degree-tier chunk body: frontier[pos[t]] for t in [0, count), same
/// lookahead prefetch through the position indirection.
inline void ExpandPositionChunkImpl(const ExpandContext& c,
                                    const uint32_t* pos, size_t count,
                                    int worker) {
  for (size_t t = 0; t < count; ++t) {
    if (c.csr_offsets != nullptr && t + kNodeLookahead < count) {
      __builtin_prefetch(
          c.csr_offsets + c.frontier[pos[t + kNodeLookahead]], 0, 1);
    }
    ExpandOneFrontierNode(c, pos[t], worker);
  }
}

}  // namespace wikisearch::kernel::internal
