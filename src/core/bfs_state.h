// Flat search state of the lock-free bottom-up stage (Sec. V-B):
//
//  * M            — the node-keyword matrix of hitting levels. Each cell is
//                   a single level byte whose validity comes from the node's
//                   hit mask (bit i set => cell (v, i) was written this
//                   query), so no per-cell epoch stamp is needed and the
//                   matrix is 4x denser than the epoch|level packing it
//                   replaced. Cell (v, i) lives at m[v * cap + i]: a
//                   discovery that hits several instances of one node at
//                   once (SetHitMulti) writes into the node's contiguous
//                   cap-byte row — one cache line per discovery — and the
//                   top-down stage's per-node Hit probes walk the same row
//                   (DESIGN.md §11). No bottom-up phase reads M at all:
//                   identify and expansion run on the hit masks alone;
//  * FIdentifier  — epoch-stamped: a node is a frontier for the next level
//                   iff its stamp equals the current query epoch;
//  * CIdentifier  — epoch-stamped Central-Node marker;
//  * hit mask     — one atomic 64-bit bitmask per node, bit i set iff BFS
//                   instance i has hit the node this query (maintained with
//                   fetch_or in SetHit), so Central-Node identification is a
//                   single load + popcount instead of q matrix probes;
//  * per-thread frontier buffers — workers append newly flagged nodes to
//                   their own buffer during expansion; the level-end enqueue
//                   drains the buffers instead of scanning all n flags.
//
// All mutable cells are relaxed atomics: the algorithm's correctness argument
// (Thm. V.2) is that every concurrent write to the same cell writes the same
// value, so no ordering is required; atomics keep that reasoning free of
// C++ data-race UB at zero cost on x86.
//
// Lifecycle: a state is allocated once for (num_nodes, keyword capacity) and
// reused across queries (see SearchStatePool in core/state_pool.h). Init()
// starts a new query epoch; allocation-free except for buffer growth.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"

namespace wikisearch {

/// A Central Node discovered in stage 1, with its Central Graph depth
/// (Lemma V.1: the BFS level at which it was identified).
struct CentralCandidate {
  NodeId node;
  int depth;
};

/// One expansion work item of the degree-bucketed schedule: the neighbor
/// sub-range [begin, end) of the frontier node at `pos` in the frontier
/// array. Non-hub nodes get one item covering their whole adjacency; hubs
/// are split into bounded sub-ranges so no single node serializes a worker
/// chunk (DESIGN.md §11).
struct ExpandItem {
  uint32_t pos;
  uint32_t begin;
  uint32_t end;
};

/// Reusable per-level scratch of the degree-bucketed expansion schedule.
/// Lives in SearchState so pooled states amortize the allocations exactly
/// like the frontier buffers.
struct ExpandPlan {
  /// Frontier positions with degree <= kTierSmallMaxDegree (coarse grain).
  std::vector<uint32_t> small;
  /// Frontier positions with degree in (small, hub) (fine grain).
  std::vector<uint32_t> mid;
  /// Hub sub-ranges, one dynamic task each.
  std::vector<ExpandItem> hub;

  void Clear() {
    small.clear();
    mid.clear();
    hub.clear();
  }
  size_t CapacityBytes() const {
    return small.capacity() * sizeof(uint32_t) +
           mid.capacity() * sizeof(uint32_t) +
           hub.capacity() * sizeof(ExpandItem);
  }
};

class SearchState {
 public:
  /// Allocates state for `num_nodes` nodes and up to `keyword_capacity` BFS
  /// instances. Init() sets the active keyword count of each query, which
  /// may be anything in [1, keyword_capacity]; the matrix stride stays the
  /// capacity so pooled states can serve differently-sized queries.
  SearchState(size_t num_nodes, size_t keyword_capacity);

  size_t num_nodes() const { return n_; }
  /// Active BFS instances of the current query (set by Init).
  size_t num_keywords() const { return q_; }
  size_t keyword_capacity() const { return cap_; }

  /// Hitting level of v w.r.t. BFS instance i (kLevelInf if not hit in the
  /// current query). The hit-mask bit gates validity: level bytes of
  /// earlier queries are never cleared, but their mask bits are (Init), so
  /// a stale byte is unreachable. Mask bit and level byte are two separate
  /// relaxed cells, which is only coherent because all reads happen either
  /// by the writing worker or after a fork-join barrier — no stage reads
  /// Hit() concurrently with another worker's SetHit.
  Level Hit(NodeId v, size_t i) const {
    if (((hit_mask_[v].load(std::memory_order_relaxed) >> i) & 1) == 0) {
      return kLevelInf;
    }
    return m_[v * cap_ + i].load(std::memory_order_relaxed);
  }
  void SetHit(NodeId v, size_t i, Level l) {
    m_[v * cap_ + i].store(l, std::memory_order_relaxed);
    if (aos_) {
      aos_[v * cap_ + i].store((epoch_ << 8) | static_cast<uint32_t>(l),
                               std::memory_order_relaxed);
    }
    hit_mask_[v].fetch_or(1ULL << i, std::memory_order_relaxed);
  }
  /// Records level `l` for every instance in `instances` (a bitmask) at
  /// once: one byte store per set bit — all landing in v's contiguous
  /// cap_-byte row, i.e. one cache line per discovery no matter how many
  /// instances arrive together — but a *single* fetch_or into the hit mask.
  /// The neighbor-major expansion kernel discovers all of a neighbor's
  /// outstanding instances together, so the per-instance RMW of repeated
  /// SetHit calls would be pure overhead.
  void SetHitMulti(NodeId v, uint64_t instances, Level l) {
    for (uint64_t m = instances; m != 0; m &= m - 1) {
      size_t i = static_cast<size_t>(std::countr_zero(m));
      m_[v * cap_ + i].store(l, std::memory_order_relaxed);
      if (aos_) {
        aos_[v * cap_ + i].store((epoch_ << 8) | static_cast<uint32_t>(l),
                                 std::memory_order_relaxed);
      }
    }
    hit_mask_[v].fetch_or(instances, std::memory_order_relaxed);
  }
  /// SetHitMulti for a single-worker search (ThreadPool with threads()==1
  /// runs fully inline): with no concurrent writers the lock-prefixed
  /// fetch_or — ~20 cycles per discovery on x86 — degrades to a plain
  /// store of old_mask | instances (old_mask is the mask the caller already
  /// loaded for its skip test, exact under one worker).
  void SetHitMultiSingle(NodeId v, uint64_t old_mask, uint64_t instances,
                         Level l) {
    for (uint64_t m = instances; m != 0; m &= m - 1) {
      size_t i = static_cast<size_t>(std::countr_zero(m));
      m_[v * cap_ + i].store(l, std::memory_order_relaxed);
      if (aos_) {
        aos_[v * cap_ + i].store((epoch_ << 8) | static_cast<uint32_t>(l),
                                 std::memory_order_relaxed);
      }
    }
    hit_mask_[v].store(old_mask | instances, std::memory_order_relaxed);
  }

  /// Reconstructs the pre-kernel hit matrix — epoch-stamped 4-byte cells at
  /// aos[v * cap + i] — alongside the compact one, so the instance-major
  /// ablation path (legacy_instance_expansion) probes the same memory shape
  /// the pre-kernel engine probed: a 4x larger n*cap*4-byte matrix whose
  /// per-cell (epoch << 8 | level) packing it must unpack on every probe,
  /// instead of silently inheriting the layout change under test.
  /// Once enabled, SetHit* mirrors every write; the allocation persists
  /// for the state's lifetime (pooled states pay it once). Epoch stamping
  /// makes cross-query staleness self-invalidating, exactly as pre-kernel.
  void EnableAosMirror();
  bool aos_mirror_enabled() const { return aos_ != nullptr; }
  /// Hit() against the row-major mirror (ablation reads only).
  Level HitAos(NodeId v, size_t i) const {
    uint32_t cell = aos_[v * cap_ + i].load(std::memory_order_relaxed);
    if ((cell >> 8) != epoch_) return kLevelInf;
    return static_cast<Level>(cell & 0xFFu);
  }

  /// Bitmask of BFS instances that have hit v this query (bit i set iff
  /// Hit(v, i) != kLevelInf). Central identification compares it against
  /// FullMask() — one load + compare instead of q matrix probes — and
  /// expansion iterates only its set bits.
  uint64_t HitMask(NodeId v) const {
    return hit_mask_[v].load(std::memory_order_relaxed);
  }
  /// Mask with one bit per active BFS instance.
  uint64_t FullMask() const {
    return q_ == 64 ? ~0ULL : (1ULL << q_) - 1;
  }

  bool IsFrontierFlagged(NodeId v) const {
    return frontier_flag_[v].load(std::memory_order_relaxed) == epoch_;
  }
  /// Sets the FIdentifier only. Searches using per-thread buffers must call
  /// PushFrontier instead, or the node will never be enqueued (buffered
  /// enqueue does not scan the flag array).
  void FlagFrontier(NodeId v) {
    frontier_flag_[v].store(epoch_, std::memory_order_relaxed);
  }
  void ClearFrontierFlag(NodeId v) {
    frontier_flag_[v].store(0, std::memory_order_relaxed);
  }

  /// Flags v as a next-level frontier; if per-thread buffers are configured,
  /// the first flagger this level also appends v to `worker`'s buffer (the
  /// atomic exchange makes the append unique, so the drained frontier is
  /// duplicate-free without a dedup pass).
  void PushFrontier(NodeId v, int worker) {
    // Test before exchanging: high-degree nodes are re-flagged by many
    // frontiers per level, and the plain load dodges the RMW for all but
    // the first (test-and-test-and-set).
    if (frontier_flag_[v].load(std::memory_order_relaxed) == epoch_) return;
    uint32_t prev =
        frontier_flag_[v].exchange(epoch_, std::memory_order_relaxed);
    if (prev == epoch_) return;  // lost the race: someone else appended
    if (!buffers_.empty()) {
      buffers_[static_cast<size_t>(worker)].push_back(v);
    }
  }

  /// PushFrontier for a single-worker search: no race to lose, so the
  /// atomic exchange degrades to a plain flag store.
  void PushFrontierSingle(NodeId v) {
    if (frontier_flag_[v].load(std::memory_order_relaxed) == epoch_) return;
    frontier_flag_[v].store(epoch_, std::memory_order_relaxed);
    if (!buffers_.empty()) {
      buffers_[0].push_back(v);
    }
  }

  /// Enables (workers >= 1) or disables (workers == 0) per-thread frontier
  /// buffers. Must be called before Init; with buffers disabled, hit masks
  /// are bulk-cleared at Init and the caller compacts the flag array itself
  /// (legacy scan / GPU-style enqueue).
  void ConfigureFrontierBuffers(int workers);

  /// Concatenates the per-thread buffers into frontier() (clearing the flags
  /// of drained nodes) — work proportional to the frontier, not to n. Order
  /// within the frontier depends on scheduling; see DESIGN.md for why that
  /// cannot leak into results.
  void DrainFrontierBuffers();

  bool IsCentral(NodeId v) const {
    return central_flag_[v].load(std::memory_order_relaxed) == epoch_;
  }
  void MarkCentral(NodeId v) {
    central_flag_[v].store(epoch_, std::memory_order_relaxed);
  }

  /// True if v contains at least one query keyword (a "keyword node"); such
  /// nodes may be *hit* regardless of activation level (Sec. IV-B).
  bool IsKeywordNode(NodeId v) const { return keyword_node_[v] == epoch_; }

  /// Bitmask of keywords contained in v (bit i set iff Hit(v,i)==0 was
  /// seeded at initialization). Valid after Init.
  uint64_t KeywordMask(NodeId v) const {
    return keyword_node_[v] == epoch_ ? keyword_mask_[v] : 0;
  }

  /// Starts a new query epoch, seeds M with the keyword node sets T_i and
  /// flags them as the level-0 frontier. O(sum |T_i|) when the state is
  /// reused with buffers enabled; the epoch bump invalidates M, both
  /// identifier arrays and the keyword bitmap without touching them.
  void Init(const std::vector<std::vector<NodeId>>& keyword_nodes);

  std::vector<NodeId>& frontier() { return frontier_; }
  const std::vector<NodeId>& frontier() const { return frontier_; }

  std::vector<CentralCandidate>& centrals() { return centrals_; }
  const std::vector<CentralCandidate>& centrals() const { return centrals_; }

  /// Current query epoch (for tests; 0 only before the first Init).
  uint32_t epoch() const { return epoch_; }

  // --- raw views for the vector kernels (core/kernel/) -----------------------
  // The kernels operate on the underlying words directly: identification and
  // the enqueue scans run between expansion joins (no concurrent writers),
  // and the expansion kernel's speculative wide loads are safe because hit
  // bits only get set within a query (any observed 1 is real; a stale 0 is
  // rechecked through the atomic before acting). See DESIGN.md §11.
  const std::atomic<uint64_t>* hit_mask_words() const {
    return hit_mask_.get();
  }
  const std::atomic<uint32_t>* frontier_flag_words() const {
    return frontier_flag_.get();
  }
  const std::atomic<uint32_t>* central_flag_words() const {
    return central_flag_.get();
  }
  /// Epoch stamps of keyword nodes (IsKeywordNode(v) == stamp[v] == epoch).
  const uint32_t* keyword_stamps() const { return keyword_node_.data(); }
  /// Raw keyword bitmasks, valid where keyword_stamps()[v] == epoch() —
  /// the array behind KeywordMask(v), exposed so the top-down stage reads
  /// masks through a KeywordMaskView (one inlined probe) instead of a
  /// std::function call per node visit.
  const uint64_t* keyword_mask_words() const { return keyword_mask_.data(); }

  /// Degree-bucketed expansion scratch (reused across levels and queries).
  ExpandPlan& expand_plan() { return expand_plan_; }

  /// Per-level snapshot of each frontier node's hit mask, captured by the
  /// identify kernel (between fork-join barriers, before any level-(l+1)
  /// write exists) — so entry `pos` is exactly the fixed instance set
  /// {i : Hit(frontier[pos], i) <= l} the node expands at this level, and
  /// the expansion kernels never re-derive it from the level matrix
  /// (q probes per node). Indexed like frontier().
  std::vector<uint64_t>& frontier_masks() { return frontier_masks_; }

  /// Bytes of the dynamic search state (M + identifiers + masks + frontier),
  /// the "running storage" on top of pre-storage in the paper's Table IV.
  /// M matches the paper's n*q level bytes exactly: validity lives in the
  /// hit masks, so cells carry no epoch stamp (DESIGN.md §11).
  size_t RunningStorageBytes() const;

 private:
  // Epochs version the flag arrays and the ablation mirror's cells (upper
  // 24 bits there), so they live in [1, kEpochMax]; hitting the cap forces
  // one bulk reset (HardReset).
  static constexpr uint32_t kEpochMax = 0xFFFFFFu;

  void HardReset();
  void ClearHitMasks();

  size_t n_;
  size_t cap_;  // keyword capacity == matrix stride
  size_t q_;    // active keywords of the current query, <= cap_
  uint32_t epoch_ = 0;
  std::unique_ptr<std::atomic<Level>[]> m_;
  // Row-major pre-kernel matrix mirror; null unless EnableAosMirror().
  std::unique_ptr<std::atomic<uint32_t>[]> aos_;
  std::unique_ptr<std::atomic<uint32_t>[]> frontier_flag_;
  std::unique_ptr<std::atomic<uint32_t>[]> central_flag_;
  std::unique_ptr<std::atomic<uint64_t>[]> hit_mask_;
  std::vector<uint32_t> keyword_node_;  // epoch stamp of keyword nodes
  std::vector<uint64_t> keyword_mask_;
  std::vector<NodeId> frontier_;
  std::vector<CentralCandidate> centrals_;
  // Per-worker frontier buffers (empty when buffered enqueue is disabled).
  std::vector<std::vector<NodeId>> buffers_;
  // Nodes whose hit_mask_ may be non-zero from this query: drained frontier
  // entries accumulate here so the next Init can clear masks in time
  // proportional to the previous query's work instead of n.
  std::vector<NodeId> dirty_nodes_;
  // True when the previous query dirtied masks without recording them
  // (buffers disabled), so the next Init must bulk-clear.
  bool mask_dirty_all_ = false;
  // Degree-tier scratch of the bucketed expansion schedule.
  ExpandPlan expand_plan_;
  // Per-level hit-mask snapshot of the frontier (see frontier_masks()).
  std::vector<uint64_t> frontier_masks_;
};

static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t) &&
                  std::atomic<uint64_t>::is_always_lock_free,
              "kernels reinterpret the atomic hit-mask array as plain words");
static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t) &&
                  std::atomic<uint32_t>::is_always_lock_free,
              "kernels reinterpret the atomic flag arrays as plain words");
static_assert(sizeof(std::atomic<Level>) == sizeof(Level) &&
                  std::atomic<Level>::is_always_lock_free,
              "level matrix cells must stay 1 byte");

}  // namespace wikisearch
