// Flat search state of the lock-free bottom-up stage (Sec. V-B):
//
//  * M            — the node-keyword matrix of hitting levels, one byte per
//                   (node, keyword) as in the paper;
//  * FIdentifier  — 1 if the node becomes a frontier at the next level;
//  * CIdentifier  — 1 if the node has been identified as a Central Node;
//  * the joint frontier array shared by all BFS instances.
//
// All mutable cells are relaxed atomics: the algorithm's correctness argument
// (Thm. V.2) is that every concurrent write to the same cell writes the same
// value, so no ordering is required; atomics keep that reasoning free of
// C++ data-race UB at zero cost on x86.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"

namespace wikisearch {

/// A Central Node discovered in stage 1, with its Central Graph depth
/// (Lemma V.1: the BFS level at which it was identified).
struct CentralCandidate {
  NodeId node;
  int depth;
};

class SearchState {
 public:
  /// Allocates state for `num_nodes` nodes and `num_keywords` BFS instances.
  SearchState(size_t num_nodes, size_t num_keywords);

  size_t num_nodes() const { return n_; }
  size_t num_keywords() const { return q_; }

  /// Hitting level of v w.r.t. BFS instance i (kLevelInf if not hit).
  Level Hit(NodeId v, size_t i) const {
    return m_[v * q_ + i].load(std::memory_order_relaxed);
  }
  void SetHit(NodeId v, size_t i, Level l) {
    m_[v * q_ + i].store(l, std::memory_order_relaxed);
  }

  bool IsFrontierFlagged(NodeId v) const {
    return frontier_flag_[v].load(std::memory_order_relaxed) != 0;
  }
  void FlagFrontier(NodeId v) {
    frontier_flag_[v].store(1, std::memory_order_relaxed);
  }
  void ClearFrontierFlag(NodeId v) {
    frontier_flag_[v].store(0, std::memory_order_relaxed);
  }

  bool IsCentral(NodeId v) const {
    return central_flag_[v].load(std::memory_order_relaxed) != 0;
  }
  void MarkCentral(NodeId v) {
    central_flag_[v].store(1, std::memory_order_relaxed);
  }

  /// True if v contains at least one query keyword (a "keyword node"); such
  /// nodes may be *hit* regardless of activation level (Sec. IV-B).
  bool IsKeywordNode(NodeId v) const { return keyword_node_[v] != 0; }

  /// Bitmask of keywords contained in v (bit i set iff Hit(v,i)==0 was
  /// seeded at initialization). Valid after Init.
  uint64_t KeywordMask(NodeId v) const { return keyword_mask_[v]; }

  /// Seeds M with the keyword node sets T_i and flags them as the level-0
  /// frontier.
  void Init(const std::vector<std::vector<NodeId>>& keyword_nodes);

  std::vector<NodeId>& frontier() { return frontier_; }
  const std::vector<NodeId>& frontier() const { return frontier_; }

  std::vector<CentralCandidate>& centrals() { return centrals_; }
  const std::vector<CentralCandidate>& centrals() const { return centrals_; }

  /// Bytes of the dynamic search state (M + identifiers + frontier), the
  /// "running storage" on top of pre-storage in the paper's Table IV.
  size_t RunningStorageBytes() const;

 private:
  size_t n_;
  size_t q_;
  std::unique_ptr<std::atomic<Level>[]> m_;
  std::unique_ptr<std::atomic<uint8_t>[]> frontier_flag_;
  std::unique_ptr<std::atomic<uint8_t>[]> central_flag_;
  std::vector<uint8_t> keyword_node_;
  std::vector<uint64_t> keyword_mask_;
  std::vector<NodeId> frontier_;
  std::vector<CentralCandidate> centrals_;
};

}  // namespace wikisearch
