// Flat search state of the lock-free bottom-up stage (Sec. V-B):
//
//  * M            — the node-keyword matrix of hitting levels. Each cell
//                   packs (query epoch << 8 | level) into one 32-bit word so
//                   a new query invalidates the whole matrix by bumping the
//                   epoch instead of memsetting n*q bytes;
//  * FIdentifier  — epoch-stamped: a node is a frontier for the next level
//                   iff its stamp equals the current query epoch;
//  * CIdentifier  — epoch-stamped Central-Node marker;
//  * hit mask     — one atomic 64-bit bitmask per node, bit i set iff BFS
//                   instance i has hit the node this query (maintained with
//                   fetch_or in SetHit), so Central-Node identification is a
//                   single load + popcount instead of q matrix probes;
//  * per-thread frontier buffers — workers append newly flagged nodes to
//                   their own buffer during expansion; the level-end enqueue
//                   drains the buffers instead of scanning all n flags.
//
// All mutable cells are relaxed atomics: the algorithm's correctness argument
// (Thm. V.2) is that every concurrent write to the same cell writes the same
// value, so no ordering is required; atomics keep that reasoning free of
// C++ data-race UB at zero cost on x86.
//
// Lifecycle: a state is allocated once for (num_nodes, keyword capacity) and
// reused across queries (see SearchStatePool in core/state_pool.h). Init()
// starts a new query epoch; allocation-free except for buffer growth.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"

namespace wikisearch {

/// A Central Node discovered in stage 1, with its Central Graph depth
/// (Lemma V.1: the BFS level at which it was identified).
struct CentralCandidate {
  NodeId node;
  int depth;
};

class SearchState {
 public:
  /// Allocates state for `num_nodes` nodes and up to `keyword_capacity` BFS
  /// instances. Init() sets the active keyword count of each query, which
  /// may be anything in [1, keyword_capacity]; the matrix stride stays the
  /// capacity so pooled states can serve differently-sized queries.
  SearchState(size_t num_nodes, size_t keyword_capacity);

  size_t num_nodes() const { return n_; }
  /// Active BFS instances of the current query (set by Init).
  size_t num_keywords() const { return q_; }
  size_t keyword_capacity() const { return cap_; }

  /// Hitting level of v w.r.t. BFS instance i (kLevelInf if not hit in the
  /// current query epoch).
  Level Hit(NodeId v, size_t i) const {
    uint32_t cell = m_[v * cap_ + i].load(std::memory_order_relaxed);
    if ((cell >> 8) != epoch_) return kLevelInf;
    return static_cast<Level>(cell & 0xFFu);
  }
  void SetHit(NodeId v, size_t i, Level l) {
    m_[v * cap_ + i].store((epoch_ << 8) | static_cast<uint32_t>(l),
                           std::memory_order_relaxed);
    hit_mask_[v].fetch_or(1ULL << i, std::memory_order_relaxed);
  }

  /// Bitmask of BFS instances that have hit v this query (bit i set iff
  /// Hit(v, i) != kLevelInf). Central identification compares it against
  /// FullMask() — one load + compare instead of q matrix probes — and
  /// expansion iterates only its set bits.
  uint64_t HitMask(NodeId v) const {
    return hit_mask_[v].load(std::memory_order_relaxed);
  }
  /// Mask with one bit per active BFS instance.
  uint64_t FullMask() const {
    return q_ == 64 ? ~0ULL : (1ULL << q_) - 1;
  }

  bool IsFrontierFlagged(NodeId v) const {
    return frontier_flag_[v].load(std::memory_order_relaxed) == epoch_;
  }
  /// Sets the FIdentifier only. Searches using per-thread buffers must call
  /// PushFrontier instead, or the node will never be enqueued (buffered
  /// enqueue does not scan the flag array).
  void FlagFrontier(NodeId v) {
    frontier_flag_[v].store(epoch_, std::memory_order_relaxed);
  }
  void ClearFrontierFlag(NodeId v) {
    frontier_flag_[v].store(0, std::memory_order_relaxed);
  }

  /// Flags v as a next-level frontier; if per-thread buffers are configured,
  /// the first flagger this level also appends v to `worker`'s buffer (the
  /// atomic exchange makes the append unique, so the drained frontier is
  /// duplicate-free without a dedup pass).
  void PushFrontier(NodeId v, int worker) {
    // Test before exchanging: high-degree nodes are re-flagged by many
    // frontiers per level, and the plain load dodges the RMW for all but
    // the first (test-and-test-and-set).
    if (frontier_flag_[v].load(std::memory_order_relaxed) == epoch_) return;
    uint32_t prev =
        frontier_flag_[v].exchange(epoch_, std::memory_order_relaxed);
    if (prev == epoch_) return;  // lost the race: someone else appended
    if (!buffers_.empty()) {
      buffers_[static_cast<size_t>(worker)].push_back(v);
    }
  }

  /// Enables (workers >= 1) or disables (workers == 0) per-thread frontier
  /// buffers. Must be called before Init; with buffers disabled, hit masks
  /// are bulk-cleared at Init and the caller compacts the flag array itself
  /// (legacy scan / GPU-style enqueue).
  void ConfigureFrontierBuffers(int workers);

  /// Concatenates the per-thread buffers into frontier() (clearing the flags
  /// of drained nodes) — work proportional to the frontier, not to n. Order
  /// within the frontier depends on scheduling; see DESIGN.md for why that
  /// cannot leak into results.
  void DrainFrontierBuffers();

  bool IsCentral(NodeId v) const {
    return central_flag_[v].load(std::memory_order_relaxed) == epoch_;
  }
  void MarkCentral(NodeId v) {
    central_flag_[v].store(epoch_, std::memory_order_relaxed);
  }

  /// True if v contains at least one query keyword (a "keyword node"); such
  /// nodes may be *hit* regardless of activation level (Sec. IV-B).
  bool IsKeywordNode(NodeId v) const { return keyword_node_[v] == epoch_; }

  /// Bitmask of keywords contained in v (bit i set iff Hit(v,i)==0 was
  /// seeded at initialization). Valid after Init.
  uint64_t KeywordMask(NodeId v) const {
    return keyword_node_[v] == epoch_ ? keyword_mask_[v] : 0;
  }

  /// Starts a new query epoch, seeds M with the keyword node sets T_i and
  /// flags them as the level-0 frontier. O(sum |T_i|) when the state is
  /// reused with buffers enabled; the epoch bump invalidates M, both
  /// identifier arrays and the keyword bitmap without touching them.
  void Init(const std::vector<std::vector<NodeId>>& keyword_nodes);

  std::vector<NodeId>& frontier() { return frontier_; }
  const std::vector<NodeId>& frontier() const { return frontier_; }

  std::vector<CentralCandidate>& centrals() { return centrals_; }
  const std::vector<CentralCandidate>& centrals() const { return centrals_; }

  /// Current query epoch (for tests; 0 only before the first Init).
  uint32_t epoch() const { return epoch_; }

  /// Bytes of the dynamic search state (M + identifiers + masks + frontier),
  /// the "running storage" on top of pre-storage in the paper's Table IV.
  /// The epoch scheme widens M cells from 1 to 4 bytes — the price of O(1)
  /// cross-query invalidation.
  size_t RunningStorageBytes() const;

 private:
  // Epochs are packed into the upper 24 bits of M cells, so they live in
  // [1, kEpochMax]; hitting the cap forces one bulk reset (HardReset).
  static constexpr uint32_t kEpochMax = 0xFFFFFFu;

  void HardReset();
  void ClearHitMasks();

  size_t n_;
  size_t cap_;  // keyword capacity == matrix stride
  size_t q_;    // active keywords of the current query, <= cap_
  uint32_t epoch_ = 0;
  std::unique_ptr<std::atomic<uint32_t>[]> m_;
  std::unique_ptr<std::atomic<uint32_t>[]> frontier_flag_;
  std::unique_ptr<std::atomic<uint32_t>[]> central_flag_;
  std::unique_ptr<std::atomic<uint64_t>[]> hit_mask_;
  std::vector<uint32_t> keyword_node_;  // epoch stamp of keyword nodes
  std::vector<uint64_t> keyword_mask_;
  std::vector<NodeId> frontier_;
  std::vector<CentralCandidate> centrals_;
  // Per-worker frontier buffers (empty when buffered enqueue is disabled).
  std::vector<std::vector<NodeId>> buffers_;
  // Nodes whose hit_mask_ may be non-zero from this query: drained frontier
  // entries accumulate here so the next Init can clear masks in time
  // proportional to the previous query's work instead of n.
  std::vector<NodeId> dirty_nodes_;
  // True when the previous query dirtied masks without recording them
  // (buffers disabled), so the next Init must bulk-clear.
  bool mask_dirty_all_ = false;
};

}  // namespace wikisearch
