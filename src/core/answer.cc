#include "core/answer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wikisearch {

bool AnswerGraph::ContainsNode(NodeId v) const {
  return std::binary_search(nodes.begin(), nodes.end(), v);
}

bool AnswerGraph::ContainsAllNodesOf(const AnswerGraph& other) const {
  if (other.nodes.size() > nodes.size()) return false;
  return std::includes(nodes.begin(), nodes.end(), other.nodes.begin(),
                       other.nodes.end());
}

double ScoreAnswer(const GraphView& g, const AnswerGraph& answer,
                   double lambda) {
  double weight_sum = 0.0;
  for (NodeId v : answer.nodes) weight_sum += g.NodeWeight(v);
  return std::pow(static_cast<double>(answer.depth), lambda) * weight_sum;
}

double ScoreLowerBound(int depth, double lambda, double central_weight,
                       double extra_min_weight) {
  // Must mirror ScoreAnswer's depth factor exactly: the bound's FP argument
  // multiplies both sides by the same double.
  return std::pow(static_cast<double>(depth), lambda) *
         (central_weight + extra_min_weight);
}

bool AnswerOrder(const AnswerGraph& a, const AnswerGraph& b) {
  if (a.score != b.score) return a.score < b.score;
  if (a.depth != b.depth) return a.depth < b.depth;
  if (a.nodes.size() != b.nodes.size()) return a.nodes.size() < b.nodes.size();
  return a.central < b.central;
}

void AppendEdgesBetween(const GraphView& g, NodeId u, NodeId v,
                        std::vector<AnswerEdge>* edges) {
  std::span<const AdjEntry> adj = g.Neighbors(u);
  // Adjacency lists are sorted by target; binary-search the range.
  auto lo = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const AdjEntry& e, NodeId target) { return e.target < target; });
  for (auto it = lo; it != adj.end() && it->target == v; ++it) {
    if (it->reverse) {
      edges->push_back(AnswerEdge{v, u, it->label});
    } else {
      edges->push_back(AnswerEdge{u, v, it->label});
    }
  }
}

std::string FormatAnswer(const GraphView& g, const AnswerGraph& answer,
                         const std::vector<std::string>& keywords) {
  std::ostringstream out;
  out << "CentralGraph(center=\"" << g.NodeName(answer.central)
      << "\", depth=" << answer.depth << ", score=" << answer.score << ")\n";
  out << "  nodes:\n";
  for (NodeId v : answer.nodes) {
    out << "    [" << v << "] " << g.NodeName(v);
    std::string tags;
    for (size_t i = 0; i < answer.keyword_nodes.size(); ++i) {
      const auto& kn = answer.keyword_nodes[i];
      if (std::binary_search(kn.begin(), kn.end(), v)) {
        tags += tags.empty() ? "" : ",";
        tags += i < keywords.size() ? keywords[i] : std::to_string(i);
      }
    }
    if (!tags.empty()) out << "  {" << tags << "}";
    out << "\n";
  }
  out << "  edges:\n";
  for (const AnswerEdge& e : answer.edges) {
    out << "    " << g.NodeName(e.src) << " --" << g.LabelName(e.label)
        << "--> " << g.NodeName(e.dst) << "\n";
  }
  return out.str();
}

}  // namespace wikisearch
