#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/logging.h"
#include "common/timer.h"
#include "core/activation.h"
#include "core/bottom_up.h"
#include "core/engine_dynamic.h"
#include "core/query_context.h"
#include "core/top_down.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wikisearch {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSequential:
      return "Sequential";
    case EngineKind::kCpuParallel:
      return "CPU-Par";
    case EngineKind::kCpuDynamic:
      return "CPU-Par-d";
    case EngineKind::kGpuSim:
      return "GPU-Par(sim)";
  }
  return "Unknown";
}

SearchEngine::SearchEngine(const KnowledgeGraph* graph,
                           const InvertedIndex* index, SearchOptions defaults)
    : graph_(graph), index_(index), defaults_(defaults) {}

SearchEngine::SearchEngine(SearchOptions defaults)
    : graph_(nullptr), index_(nullptr), defaults_(defaults) {}

SearchEngine::~SearchEngine() = default;

KbHandle SearchEngine::BoundHandle() const {
  WS_CHECK(graph_ != nullptr && index_ != nullptr);
  return KbHandle{GraphView(*graph_), IndexView(*index_), 0, nullptr};
}

Result<SearchResult> SearchEngine::Search(const std::string& query) const {
  return Search(query, defaults_);
}

Result<SearchResult> SearchEngine::Search(const std::string& query,
                                          const SearchOptions& opts) const {
  return Search(BoundHandle(), query, opts);
}

Result<SearchResult> SearchEngine::SearchKeywords(
    const std::vector<std::string>& keywords,
    const SearchOptions& opts) const {
  return SearchKeywordsProgressive(BoundHandle(), keywords, opts, nullptr);
}

Result<SearchResult> SearchEngine::SearchKeywordsProgressive(
    const std::vector<std::string>& keywords, const SearchOptions& opts,
    const ProgressCallback& progress) const {
  return SearchKeywordsProgressive(BoundHandle(), keywords, opts, progress);
}

Result<SearchResult> SearchEngine::Search(const KbHandle& kb,
                                          const std::string& query,
                                          const SearchOptions& opts) const {
  return SearchKeywords(kb, kb.index.AnalyzeQuery(query), opts);
}

Result<SearchResult> SearchEngine::SearchKeywords(
    const KbHandle& kb, const std::vector<std::string>& keywords,
    const SearchOptions& opts) const {
  return SearchKeywordsProgressive(kb, keywords, opts, nullptr);
}

std::shared_ptr<const CachedQueryContext> SearchEngine::ResolveContext(
    const KbHandle& kb, const std::vector<std::string>& keywords,
    const SearchOptions& opts, obs::TraceContext* trace,
    Status* error) const {
  // The trace skeleton (one index_lookup and one activation span per query)
  // is emitted on the hit path too: a hit simply makes both spans ~empty.
  std::string key;
  uint64_t generation = 0;
  std::shared_ptr<const CachedQueryContext> hit;
  std::vector<std::vector<NodeId>> t_i;
  std::vector<std::string> used;
  std::vector<std::string> dropped;
  {
    obs::ScopedStage stage(trace, "search/index_lookup");
    if (context_cache_ != nullptr) {
      key = QueryContextCache::MakeKey(kb.graph.base(), kb.index.base(),
                                       kb.version, keywords, opts.alpha,
                                       opts.enable_activation, opts.max_level);
      generation = context_cache_->generation();
      hit = context_cache_->Get(key);
    }
    if (hit == nullptr) {
      // Miss (or no cache): resolve keyword node sets T_i, dropping
      // keywords without matches.
      for (const std::string& kw : keywords) {
        std::span<const NodeId> postings = kb.index.Lookup(kw);
        if (postings.empty()) {
          dropped.push_back(kw);
          continue;
        }
        t_i.emplace_back(postings.begin(), postings.end());
        used.push_back(kw);
      }
    }
  }
  if (hit != nullptr) {
    obs::ScopedStage act(trace, "search/activation");
    return hit;
  }
  if (t_i.empty()) {
    *error = Status::NotFound("no query keyword matches any node");
    return nullptr;
  }
  if (t_i.size() > 64) {
    *error = Status::InvalidArgument("at most 64 keywords are supported");
    return nullptr;
  }

  int lmax = opts.max_level;
  if (lmax <= 0) {
    lmax = 2 * static_cast<int>(std::ceil(kb.graph.average_distance())) + 2;
  }
  obs::ScopedStage act(trace, "search/activation");
  ActivationMap activation(kb.graph.average_distance(), opts.alpha,
                           opts.enable_activation);
  // The cached context carries the handle's pin: a memoized context built
  // over a live snapshot keeps that snapshot alive even after a publish
  // retires it from the serving path.
  auto built = std::make_shared<CachedQueryContext>(
      QueryContext(kb.graph, std::move(used), std::move(t_i), activation,
                   lmax),
      std::move(dropped), kb.pin);
  if (context_cache_ != nullptr) context_cache_->Put(key, built, generation);
  return built;
}

Result<SearchResult> SearchEngine::SearchKeywordsProgressive(
    const KbHandle& kb, const std::vector<std::string>& keywords,
    const SearchOptions& opts, const ProgressCallback& progress) const {
  if (!kb.graph.has_weights()) {
    return Status::FailedPrecondition(
        "graph has no node weights; call AttachNodeWeights first");
  }
  if (kb.graph.average_distance() <= 0.0) {
    return Status::FailedPrecondition(
        "graph has no sampled average distance; call AttachAverageDistance");
  }
  if (opts.alpha <= 0.0 || opts.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must lie in (0, 1)");
  }
  if (keywords.empty()) {
    return Status::InvalidArgument("empty keyword query");
  }

  SearchResult result;
  WallTimer total_timer;
  obs::TraceContext* trace = opts.trace;
  // Root span of the query; every stage below nests inside it. Closed by
  // scope exit on every return path, so the caller always gets a balanced
  // span tree.
  obs::ScopedStage search_span(trace, "search");

  Status context_error = Status::OK();
  std::shared_ptr<const CachedQueryContext> cached =
      ResolveContext(kb, keywords, opts, trace, &context_error);
  if (cached == nullptr) return context_error;
  const QueryContext& ctx = cached->ctx;
  result.keywords = ctx.keywords;
  result.stats.dropped_keywords = cached->dropped_keywords;
  result.stats.num_keywords_used = ctx.num_keywords();

  const bool sequential = opts.engine == EngineKind::kSequential;
  // Lease a worker pool for the query's duration: concurrent queries get
  // distinct pools (a pool runs one fork-join job at a time), repeated
  // same-width queries reuse cached ones.
  ThreadPoolCache::Lease pool_lease =
      pool_cache_.Acquire(sequential ? 1 : opts.threads);
  ThreadPool* pool = pool_lease.get();

  result.stats.pre_storage_bytes = kb.graph.PreStorageBytes();

  // Anytime execution: the whole query runs under one deadline, split so the
  // bottom-up stage may consume only its fraction of the budget and
  // extraction always gets the rest. deadline_ms = 0 keeps every check a
  // single branch and the results bit-identical to the unbounded path.
  const Deadline query_deadline = Deadline::AfterMs(opts.deadline_ms);
  const Deadline bottom_deadline =
      query_deadline.SubBudget(opts.bottom_up_budget_fraction);

  if (opts.engine == EngineKind::kCpuDynamic) {
    internal::DynamicRunInfo info;
    result.answers =
        internal::RunDynamicEngine(ctx, opts, pool, &result.timings, &info,
                                   progress, query_deadline, scratch_pool_);
    result.stats.num_centrals = info.num_centrals;
    result.stats.levels = info.levels;
    result.stats.frontier_exhausted = info.frontier_exhausted;
    result.stats.peak_frontier = info.peak_frontier;
    result.stats.total_frontier_work = info.total_frontier_work;
    result.stats.running_storage_bytes = info.running_storage_bytes;
    result.stats.cancelled = info.cancelled;
    result.stats.timed_out = info.timed_out;
    result.stats.candidates_skipped = info.candidates_skipped;
    result.stats.candidates_pruned = info.candidates_pruned;
    result.stats.candidates_extracted = info.candidates_extracted;
    result.stats.levels_completed = info.levels;
  } else {
    const bool gpu_style = opts.engine == EngineKind::kGpuSim;
    // Lease a pooled state instead of allocating n*q fresh bytes per query;
    // BottomUpSearch's Init starts the new epoch that invalidates whatever
    // the previous query left behind. The lease stays alive through the
    // top-down stage, which reads hitting levels out of the state.
    SearchStatePool::Lease lease =
        state_pool_->Acquire(kb.graph.num_nodes(), ctx.num_keywords());
    SearchState& state = *lease;
    BottomUpResult bottom = BottomUpSearch(ctx, opts, pool, &state,
                                           &result.timings, gpu_style,
                                           progress, bottom_deadline);
    result.stats.cancelled = bottom.cancelled;
    result.stats.timed_out = bottom.timed_out;
    if (gpu_style) {
      // Model the device->host transfer of M at the paper's quoted
      // ~12 GB/s PCIe bandwidth (Sec. V-B): bytes / 12e6 gives ms.
      double bytes = static_cast<double>(kb.graph.num_nodes()) *
                     static_cast<double>(ctx.num_keywords());
      result.timings.transfer_ms += bytes / 12e6;
    }
    if (opts.fault_injection) opts.fault_injection("stage:topdown");
    StateHitLevels hits(state);
    TopDownInfo td_info;
    if (opts.legacy_topdown_extraction) {
      auto mask = [&state](NodeId v) { return state.KeywordMask(v); };
      result.answers = TopDownProcess(ctx, opts, pool, hits, state.centrals(),
                                      mask, &result.timings, query_deadline,
                                      &td_info);
    } else {
      KeywordMaskView mask{state.keyword_mask_words(), state.keyword_stamps(),
                           state.epoch()};
      StateCandidateBuilder builder(ctx, opts, hits, mask, state.centrals(),
                                    scratch_pool_, pool->threads());
      result.answers = RunBoundedTopDown(ctx, opts, pool, state.centrals(),
                                         mask, &builder, &result.timings,
                                         query_deadline, &td_info,
                                         "topdown:candidate");
    }
    result.stats.timed_out |= td_info.timed_out;
    result.stats.candidates_skipped = td_info.candidates_skipped;
    result.stats.candidates_pruned = td_info.candidates_pruned;
    result.stats.candidates_extracted = td_info.candidates_extracted;
    result.stats.num_centrals = state.centrals().size();
    result.stats.levels = bottom.levels;
    result.stats.levels_completed = bottom.levels;
    result.stats.frontier_exhausted = bottom.frontier_exhausted;
    result.stats.peak_frontier = bottom.peak_frontier;
    result.stats.total_frontier_work = bottom.total_frontier_work;
    result.stats.running_storage_bytes = state.RunningStorageBytes();
  }
  result.stats.degraded = result.stats.timed_out || result.stats.cancelled ||
                          result.stats.candidates_skipped > 0;
  if (query_deadline.enabled()) {
    result.stats.deadline_left_ms = query_deadline.RemainingMs();
  }

  result.timings.total_ms = total_timer.ElapsedMs() +
                            result.timings.transfer_ms;
  if (opts.record_metrics) RecordSearchMetrics(opts, result, &pool_lease);
  return result;
}

void SearchEngine::RecordSearchMetrics(const SearchOptions& opts,
                                       const SearchResult& result,
                                       ThreadPoolCache::Lease* pool_lease)
    const {
  obs::MetricRegistry& reg = opts.metrics != nullptr
                                 ? *opts.metrics
                                 : obs::MetricRegistry::Global();
  const PhaseTimings& t = result.timings;
  const SearchStats& s = result.stats;
  std::string engine_label = "{engine=\"";
  engine_label += EngineKindName(opts.engine);
  engine_label += "\"}";

  reg.GetCounter("ws_search_total" + engine_label)->Inc();
  reg.GetCounter("ws_search_levels_total")
      ->Inc(static_cast<uint64_t>(std::max(s.levels_completed, 0)));
  reg.GetCounter("ws_search_centrals_total")->Inc(s.num_centrals);
  reg.GetCounter("ws_search_answers_total")->Inc(result.answers.size());
  // Stage-2 candidate accounting; the three counters partition
  // ws_search_centrals_total exactly (extracted + pruned + skipped ==
  // centrals for every query and engine kind).
  reg.GetCounter("ws_search_candidates_extracted_total")
      ->Inc(s.candidates_extracted);
  reg.GetCounter("ws_search_candidates_pruned_total")
      ->Inc(s.candidates_pruned);
  reg.GetCounter("ws_search_candidates_skipped_total")
      ->Inc(s.candidates_skipped);
  if (s.timed_out) reg.GetCounter("ws_search_timeout_total")->Inc();
  if (s.degraded) reg.GetCounter("ws_search_degraded_total")->Inc();

  reg.GetHistogram("ws_search_latency_ms" + engine_label)->Observe(t.total_ms);
  // Stage histograms record exactly the PhaseTimings doubles, so histogram
  // sums equal SearchStats/PhaseTimings sums with no FP slack (transfer_ms
  // is excluded: it is modeled, not measured).
  reg.GetHistogram("ws_search_stage_ms{stage=\"init\"}")->Observe(t.init_ms);
  reg.GetHistogram("ws_search_stage_ms{stage=\"enqueue\"}")
      ->Observe(t.enqueue_ms);
  reg.GetHistogram("ws_search_stage_ms{stage=\"identify\"}")
      ->Observe(t.identify_ms);
  reg.GetHistogram("ws_search_stage_ms{stage=\"expansion\"}")
      ->Observe(t.expansion_ms);
  reg.GetHistogram("ws_search_stage_ms{stage=\"topdown\"}")
      ->Observe(t.topdown_ms);

  // Worker-pool utilization: the pool counts jobs and busy time
  // monotonically; publish the delta since the last query that held this
  // pool. The watermarks live in the lease entry, which this query holds
  // exclusively, so concurrent queries publish disjoint deltas.
  ThreadPoolCache::Entry& entry = pool_lease->entry();
  uint64_t jobs = entry.pool->jobs_launched();
  uint64_t busy = entry.pool->busy_micros();
  reg.GetCounter("ws_pool_jobs_total")->Inc(jobs - entry.published_jobs);
  reg.GetCounter("ws_pool_busy_micros_total")
      ->Inc(busy - entry.published_busy_us);
  entry.published_jobs = jobs;
  entry.published_busy_us = busy;
}

}  // namespace wikisearch
