#include "core/node_weight.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace wikisearch {

double RawDegreeOfSummary(const GraphView& g, NodeId v) {
  // Count in-edges per label. Adjacency lists are label-sorted per target
  // but not globally, so accumulate in a small map (in-label cardinality is
  // tiny for most nodes).
  std::unordered_map<LabelId, uint64_t> counts;
  for (const AdjEntry& e : g.Neighbors(v)) {
    if (e.reverse) ++counts[e.label];
  }
  if (counts.empty()) return 0.0;
  double num = 0.0, den = 0.0;
  for (const auto& [label, c] : counts) {
    double cd = static_cast<double>(c);
    num += cd * std::log2(1.0 + cd);
    den += cd;
  }
  return num / den;
}

std::vector<double> ComputeNodeWeights(const GraphView& g) {
  const size_t n = g.num_nodes();
  std::vector<double> w(n, 0.0);
  for (NodeId v = 0; v < n; ++v) w[v] = RawDegreeOfSummary(g, v);
  auto [mn_it, mx_it] = std::minmax_element(w.begin(), w.end());
  double mn = *mn_it, mx = *mx_it;
  double range = mx - mn;
  if (range <= 0.0) {
    std::fill(w.begin(), w.end(), 0.0);
    return w;
  }
  for (double& x : w) x = (x - mn) / range;
  return w;
}

void AttachNodeWeights(KnowledgeGraph* g) {
  Status st = g->SetNodeWeights(ComputeNodeWeights(*g));
  (void)st;  // size always matches by construction
}

}  // namespace wikisearch
