#include "core/engine_dynamic.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "core/extraction.h"
#include "core/level_cover.h"
#include "core/top_down.h"
#include "obs/trace.h"

namespace wikisearch::internal {

namespace {

/// Per-node dynamically allocated search data — what the paper's CPU-Par-d
/// maintains instead of the flat node-keyword matrix. Hitting-path parents
/// are recorded during the search, so stage 2 needs no extraction.
struct DynNode {
  std::unordered_map<uint32_t, Level> hit;
  std::unordered_map<uint32_t, std::vector<NodeId>> parents;
  uint64_t keyword_mask = 0;
  bool central = false;
  int central_depth = -1;
};

class DynamicState {
 public:
  DynamicState(size_t n, size_t q) : q_(q), nodes_(n) {}

  static constexpr size_t kStripes = 1024;

  std::mutex& StripeFor(NodeId v) { return stripes_[v % kStripes]; }

  /// Must be called with StripeFor(v) held.
  DynNode& NodeLocked(NodeId v) {
    if (!nodes_[v]) nodes_[v] = std::make_unique<DynNode>();
    return *nodes_[v];
  }

  const DynNode* NodeOrNull(NodeId v) const { return nodes_[v].get(); }

  void FlagFrontier(NodeId v) {
    std::lock_guard<std::mutex> lock(frontier_mu_);
    next_frontier_.insert(v);
  }

  /// Drains the flagged set into a sorted frontier vector.
  std::vector<NodeId> TakeFrontier() {
    std::lock_guard<std::mutex> lock(frontier_mu_);
    std::vector<NodeId> frontier(next_frontier_.begin(), next_frontier_.end());
    next_frontier_.clear();
    std::sort(frontier.begin(), frontier.end());
    return frontier;
  }

  size_t EstimateStorageBytes() const {
    size_t bytes = nodes_.size() * sizeof(void*);
    for (const auto& ptr : nodes_) {
      if (!ptr) continue;
      bytes += sizeof(DynNode);
      bytes += ptr->hit.size() * 32;  // entry + bucket overhead estimate
      for (const auto& [kw, par] : ptr->parents) {
        bytes += 32 + par.capacity() * sizeof(NodeId);
      }
    }
    return bytes;
  }

  size_t q() const { return q_; }

 private:
  size_t q_;
  std::vector<std::unique_ptr<DynNode>> nodes_;
  std::mutex stripes_[kStripes];
  std::mutex frontier_mu_;
  std::unordered_set<NodeId> next_frontier_;
};

/// HitLevels adapter so the shared BuildAnswer/selection code can read the
/// dynamic structures (used only after the search, when they are frozen).
class DynamicHitLevels final : public HitLevels {
 public:
  explicit DynamicHitLevels(const DynamicState& state) : state_(state) {}
  Level Hit(NodeId v, size_t i) const override {
    const DynNode* n = state_.NodeOrNull(v);
    if (n == nullptr) return kLevelInf;
    auto it = n->hit.find(static_cast<uint32_t>(i));
    return it == n->hit.end() ? kLevelInf : it->second;
  }
  bool IsKeywordNode(NodeId v) const override {
    const DynNode* n = state_.NodeOrNull(v);
    return n != nullptr && n->keyword_mask != 0;
  }
  bool IsCentral(NodeId v) const override {
    const DynNode* n = state_.NodeOrNull(v);
    return n != nullptr && n->central;
  }

 private:
  const DynamicState& state_;
};

/// Rebuilds the hitting-path DAGs for one central from recorded parents.
ExtractedGraph BuildFromParents(const DynamicState& state,
                                CentralCandidate central, size_t q) {
  ExtractedGraph eg;
  eg.central = central.node;
  eg.depth = central.depth;
  eg.dag.resize(q);
  std::vector<NodeId> queue;
  std::unordered_set<NodeId> visited;
  for (size_t i = 0; i < q; ++i) {
    queue.assign(1, central.node);
    visited.clear();
    visited.insert(central.node);
    for (size_t head = 0; head < queue.size(); ++head) {
      NodeId child = queue[head];
      const DynNode* n = state.NodeOrNull(child);
      if (n == nullptr) continue;
      auto it = n->parents.find(static_cast<uint32_t>(i));
      if (it == n->parents.end()) continue;
      for (NodeId parent : it->second) {
        eg.dag[i].emplace_back(parent, child);
        if (visited.insert(parent).second) queue.push_back(parent);
      }
    }
    std::sort(eg.dag[i].begin(), eg.dag[i].end());
    eg.dag[i].erase(std::unique(eg.dag[i].begin(), eg.dag[i].end()),
                    eg.dag[i].end());
  }
  return eg;
}

/// BuildFromParents into pooled scratch: same traversal, but the queue and
/// visited set are epoch-reused and the DAGs land in scratch->eg with their
/// capacity intact. Byte-identical output (the per-i edge lists are sorted
/// and uniqued either way).
void BuildFromParentsInto(const DynamicState& state, CentralCandidate central,
                          size_t q, ExtractionScratch* s) {
  ExtractedGraph& eg = s->eg;
  eg.central = central.node;
  eg.depth = central.depth;
  if (eg.dag.size() < q) eg.dag.resize(q);
  for (size_t i = 0; i < q; ++i) {
    std::vector<std::pair<NodeId, NodeId>>& dag = eg.dag[i];
    dag.clear();
    s->queue.assign(1, central.node);
    s->visited.Clear();
    s->visited.Insert(central.node);
    for (size_t head = 0; head < s->queue.size(); ++head) {
      NodeId child = s->queue[head];
      const DynNode* n = state.NodeOrNull(child);
      if (n == nullptr) continue;
      auto it = n->parents.find(static_cast<uint32_t>(i));
      if (it == n->parents.end()) continue;
      for (NodeId parent : it->second) {
        dag.emplace_back(parent, child);
        if (s->visited.Insert(parent)) s->queue.push_back(parent);
      }
    }
    std::sort(dag.begin(), dag.end());
    dag.erase(std::unique(dag.begin(), dag.end()), dag.end());
  }
}

/// CandidateBuilder over the frozen DynamicState: recorded parents replace
/// extraction; the keyword-mask view reads a dense per-query array seeded
/// exactly like DynNode::keyword_mask (only initialization ever sets it).
class DynCandidateBuilder final : public CandidateBuilder {
 public:
  DynCandidateBuilder(const QueryContext& ctx, const SearchOptions& opts,
                      const DynamicState& state,
                      const std::vector<CentralCandidate>& centrals,
                      const KeywordMaskView& mask,
                      ExtractionScratchPool* scratch_pool, int max_workers)
      : ctx_(ctx),
        opts_(opts),
        state_(state),
        centrals_(centrals),
        mask_(mask),
        scratch_(scratch_pool, ctx.graph.num_nodes(),
                 static_cast<size_t>(std::max(max_workers, 1))) {}

  void Build(int worker, size_t candidate_index, AnswerGraph* out) override {
    ExtractionScratch& s = scratch_.Get(worker);
    BuildFromParentsInto(state_, centrals_[candidate_index],
                         ctx_.num_keywords(), &s);
    BuildAnswerInto(ctx_.graph, s.eg, ctx_.num_keywords(), mask_,
                    opts_.enable_level_cover, opts_.lambda, &s, out);
  }

 private:
  const QueryContext& ctx_;
  const SearchOptions& opts_;
  const DynamicState& state_;
  const std::vector<CentralCandidate>& centrals_;
  KeywordMaskView mask_;
  PerWorkerScratch scratch_;
};

}  // namespace

std::vector<AnswerGraph> RunDynamicEngine(const QueryContext& ctx,
                                          const SearchOptions& opts,
                                          ThreadPool* pool,
                                          PhaseTimings* timings,
                                          DynamicRunInfo* info,
                                          const ProgressCallback& progress,
                                          const Deadline& deadline,
                                          ExtractionScratchPool* scratch_pool) {
  const GraphView& g = ctx.graph;
  const size_t n = g.num_nodes();
  const size_t q = ctx.num_keywords();
  const FaultHook& fault = opts.fault_injection;
  // Same stage split as the lock-free path: the search may consume only its
  // fraction of the budget so the top-down materialization always gets a
  // slice.
  const Deadline search_deadline =
      deadline.SubBudget(opts.bottom_up_budget_fraction);
  // Same span names as the lock-free path (obs/trace.h): tooling that reads
  // traces never branches on engine kind.
  obs::TraceContext* trace = opts.trace;
  std::optional<obs::ScopedStage> stage_span;
  stage_span.emplace(trace, "bottomup");

  // ---- Initialization (locked, dynamic allocation per keyword node) -------
  DynamicState state(n, q);
  std::vector<uint8_t> is_keyword(n, 0);
  {
    obs::ScopedStage stage(trace, "bottomup/init", &timings->init_ms);
    for (size_t i = 0; i < q; ++i) {
      for (NodeId v : ctx.keyword_nodes[i]) is_keyword[v] = 1;
    }
    pool->ParallelForDynamic(q, 1, [&](size_t i) {
      for (NodeId v : ctx.keyword_nodes[i]) {
        std::lock_guard<std::mutex> lock(state.StripeFor(v));
        DynNode& node = state.NodeLocked(v);
        node.hit[static_cast<uint32_t>(i)] = 0;
        node.keyword_mask |= (1ULL << i);
        state.FlagFrontier(v);
      }
    });
  }

  std::vector<CentralCandidate> centrals;
  std::mutex centrals_mu;
  const size_t wanted = static_cast<size_t>(std::max(opts.top_k, 1));
  const int lmax = std::min(ctx.lmax, 250);

  int l = 0;
  while (true) {
    if (fault) fault("dynamic:level");
    if (search_deadline.Expired()) {
      info->timed_out = true;
      break;
    }
    // One span per level, renamed "(partial)" on early exits so the count of
    // "bottomup/level" spans equals levels_completed (see bottom_up.cc).
    obs::ScopedStage level_span(trace, "bottomup/level");
    std::vector<NodeId> frontier;
    {
      obs::ScopedStage stage(trace, "bottomup/enqueue", &timings->enqueue_ms);
      frontier = state.TakeFrontier();
    }
    if (frontier.empty()) {
      level_span.Rename("bottomup/level(partial)");
      info->frontier_exhausted = true;
      break;
    }
    info->peak_frontier = std::max(info->peak_frontier, frontier.size());
    info->total_frontier_work += frontier.size();

    // ---- Identify Central Nodes -------------------------------------------
    {
    obs::ScopedStage stage(trace, "bottomup/identify", &timings->identify_ms);
    std::vector<CentralCandidate> found;
    pool->ParallelForDynamic(
        frontier.size(), DefaultGrain(frontier.size(), pool->threads()),
        [&](size_t idx) {
          NodeId v = frontier[idx];
          std::lock_guard<std::mutex> lock(state.StripeFor(v));
          DynNode& node = state.NodeLocked(v);
          if (node.central || node.hit.size() != q) return;
          node.central = true;
          node.central_depth = l;
          std::lock_guard<std::mutex> clock(centrals_mu);
          found.push_back(CentralCandidate{v, l});
        });
    std::sort(found.begin(), found.end(),
              [](const CentralCandidate& a, const CentralCandidate& b) {
                return a.node < b.node;
              });
    for (const CentralCandidate& c : found) {
      if (centrals.size() < opts.max_central_candidates) centrals.push_back(c);
    }
    }

    if (progress) {
      LevelProgress snapshot{l, frontier.size(), centrals.size()};
      if (!progress(snapshot)) {
        level_span.Rename("bottomup/level(partial)");
        info->cancelled = true;
        info->levels = l;
        break;
      }
    }

    if (centrals.size() >= wanted || l >= lmax) {
      level_span.Rename("bottomup/level(partial)");
      info->levels = l;
      break;
    }

    // ---- Expansion (locked reads and writes) --------------------------------
    // Per-chunk deadline gate, mirroring the lock-free path: the leading
    // item of each claimed chunk reads the clock; on expiry workers stop
    // claiming work and the partially expanded level is abandoned (the
    // per-query DynamicState needs no cleanup).
    std::atomic<bool> expired{search_deadline.Expired()};
    const size_t grain = DefaultGrain(frontier.size(), pool->threads());
    {
    obs::ScopedStage stage(trace, "bottomup/expand", &timings->expansion_ms);
    pool->ParallelForDynamic(
        frontier.size(), grain, [&](size_t idx) {
          if (expired.load(std::memory_order_relaxed)) return;
          if (idx % grain == 0) {
            if (fault) fault("dynamic:chunk");
            if (search_deadline.Expired()) {
              expired.store(true, std::memory_order_relaxed);
              return;
            }
          }
          NodeId vf = frontier[idx];
          // Snapshot vf's state under its lock.
          std::unordered_map<uint32_t, Level> hits_copy;
          bool central;
          {
            std::lock_guard<std::mutex> lock(state.StripeFor(vf));
            DynNode& node = state.NodeLocked(vf);
            central = node.central;
            hits_copy = node.hit;
          }
          if (central) return;
          int af = ctx.activation_level[vf];
          if (af > l) {
            state.FlagFrontier(vf);
            return;
          }
          for (const auto& [kw, h] : hits_copy) {
            if (static_cast<int>(h) > l) continue;
            for (const AdjEntry& e : g.Neighbors(vf)) {
              NodeId vn = e.target;
              if (!is_keyword[vn]) {
                int an = ctx.activation_level[vn];
                if (an > l + 1) {
                  state.FlagFrontier(vf);
                  continue;
                }
              }
              bool newly_hit = false;
              {
                std::lock_guard<std::mutex> lock(state.StripeFor(vn));
                DynNode& node = state.NodeLocked(vn);
                auto it = node.hit.find(kw);
                if (it != node.hit.end()) {
                  // Hit at the same level by several frontiers: all of them
                  // are hitting-path parents.
                  if (static_cast<int>(it->second) == l + 1) {
                    node.parents[kw].push_back(vf);
                  }
                } else {
                  node.hit[kw] = static_cast<Level>(l + 1);
                  node.parents[kw].push_back(vf);
                  newly_hit = true;
                }
              }
              if (newly_hit) state.FlagFrontier(vn);
            }
          }
        });
    }
    if (expired.load(std::memory_order_relaxed)) {
      level_span.Rename("bottomup/level(partial)");
      info->timed_out = true;
      break;
    }

    ++l;
    info->levels = l;
  }
  timings->levels = info->levels;
  info->num_centrals = centrals.size();
  info->running_storage_bytes = state.EstimateStorageBytes();
  stage_span.reset();  // close "bottomup" before "topdown" opens

  // ---- Top-down: no extraction needed; prune + rank recorded graphs -------
  if (!opts.legacy_topdown_extraction) {
    // Dense per-query keyword-mask array: initialization is the only writer
    // of DynNode::keyword_mask, so seeding from T_i reproduces it exactly.
    std::vector<uint64_t> mask_words(n, 0);
    for (size_t i = 0; i < q; ++i) {
      for (NodeId v : ctx.keyword_nodes[i]) mask_words[v] |= (1ULL << i);
    }
    const KeywordMaskView mask_view{mask_words.data(), nullptr, 0};
    if (scratch_pool == nullptr) scratch_pool = &GlobalExtractionScratchPool();
    DynCandidateBuilder builder(ctx, opts, state, centrals, mask_view,
                                scratch_pool, pool->threads());
    TopDownInfo td_info;
    std::vector<AnswerGraph> answers =
        RunBoundedTopDown(ctx, opts, pool, centrals, mask_view, &builder,
                          timings, deadline, &td_info, "dynamic:topdown");
    info->candidates_skipped = td_info.candidates_skipped;
    info->candidates_pruned = td_info.candidates_pruned;
    info->candidates_extracted = td_info.candidates_extracted;
    info->timed_out |= td_info.timed_out;
    return answers;
  }
  obs::ScopedStage td_span(trace, "topdown", &timings->topdown_ms);
  std::vector<AnswerGraph> candidates(centrals.size());
  std::atomic<bool> td_expired{false};
  {
    obs::ScopedStage extract_span(trace, "topdown/extract");
    pool->ParallelForDynamic(centrals.size(), 1, [&](size_t idx) {
      if (fault) fault("dynamic:topdown");
      if (td_expired.load(std::memory_order_relaxed)) return;
      if (deadline.Expired()) {
        td_expired.store(true, std::memory_order_relaxed);
        return;
      }
      ExtractedGraph eg = BuildFromParents(state, centrals[idx], q);
      auto mask = [&state](NodeId v) {
        const DynNode* node = state.NodeOrNull(v);
        return node == nullptr ? 0ULL : node->keyword_mask;
      };
      candidates[idx] = BuildAnswer(g, eg, q, mask, opts.enable_level_cover,
                                    opts.lambda);
    });
    if (td_expired.load(std::memory_order_relaxed)) {
      size_t kept = 0;
      for (AnswerGraph& cand : candidates) {
        if (cand.central != kInvalidNode) candidates[kept++] = std::move(cand);
      }
      info->candidates_skipped = candidates.size() - kept;
      info->timed_out = true;
      candidates.resize(kept);
    }
  }
  info->candidates_extracted = candidates.size();
  obs::ScopedStage rank_span(trace, "topdown/rank");
  return SelectTopK(std::move(candidates), opts);
}

}  // namespace wikisearch::internal
