#include "core/activation.h"

#include <cmath>

#include "common/logging.h"

namespace wikisearch {

ActivationMap::ActivationMap(double average_distance, double alpha,
                             bool enabled)
    : a_(average_distance), alpha_(alpha), enabled_(enabled) {
  WS_CHECK(alpha > 0.0 && alpha < 1.0);
  WS_CHECK(average_distance >= 0.0);
}

std::vector<size_t> ActivationDistribution(const KnowledgeGraph& g,
                                           double alpha, size_t buckets) {
  WS_CHECK(g.has_weights());
  ActivationMap map(g.average_distance(), alpha);
  std::vector<size_t> hist(buckets, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    size_t level = static_cast<size_t>(map.Level(g.NodeWeight(v)));
    if (level >= buckets) level = buckets - 1;
    ++hist[level];
  }
  return hist;
}

}  // namespace wikisearch
