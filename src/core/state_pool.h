// A reusable pool of SearchState instances, keyed on (num_nodes, keyword
// capacity). One SearchState is ~n*q bytes of matrix plus ~26n bytes of
// per-node arrays; before the pool every query allocated and zero-filled
// that from scratch, which dominated short queries and multiplied under
// concurrent server/batch load. Pooled states are invalidated between
// queries by SearchState's epoch bump, so a reused state costs O(sum |T_i|)
// to re-seed instead of O(n*q) to re-allocate.
//
// Keyword counts are rounded up to the next power of two (min 4, max 64) so
// a 3-keyword query reuses the state a 4-keyword query created; the matrix
// stride is the capacity, the active keyword count is set by Init.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/bfs_state.h"

namespace wikisearch {

/// Thread-safe pool. Acquire returns an RAII lease that gives the state
/// back on destruction; states for other (n, capacity) keys are unaffected.
class SearchStatePool {
 public:
  SearchStatePool() = default;
  SearchStatePool(const SearchStatePool&) = delete;
  SearchStatePool& operator=(const SearchStatePool&) = delete;

  /// Move-only lease on a pooled SearchState.
  class Lease {
   public:
    Lease() = default;
    Lease(SearchStatePool* pool, std::unique_ptr<SearchState> state)
        : pool_(pool), state_(std::move(state)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), state_(std::move(other.state_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        state_ = std::move(other.state_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    SearchState* get() const { return state_.get(); }
    SearchState& operator*() const { return *state_; }
    SearchState* operator->() const { return state_.get(); }

   private:
    void Release() {
      if (pool_ != nullptr && state_ != nullptr) {
        pool_->Return(std::move(state_));
      }
      pool_ = nullptr;
    }

    SearchStatePool* pool_ = nullptr;
    std::unique_ptr<SearchState> state_;
  };

  /// Returns a state sized for `num_nodes` nodes and at least `num_keywords`
  /// BFS instances, reusing an idle one when the key matches. The state is
  /// NOT initialized: callers run SearchState::Init (via BottomUpSearch) to
  /// start their query epoch.
  Lease Acquire(size_t num_nodes, size_t num_keywords);

  /// Rounds a keyword count up to the pool's capacity granularity.
  static size_t CapacityFor(size_t num_keywords);

  /// Drops all idle states (e.g. after a graph swap).
  void Clear();

  size_t idle_states() const;
  /// Lifetime counters, for tests and /stats.
  size_t created() const;
  size_t reused() const;

 private:
  void Return(std::unique_ptr<SearchState> state);

  // Keep a few idle states per key: enough for batch concurrency without
  // pinning unbounded memory after a load spike.
  static constexpr size_t kMaxIdlePerKey = 8;

  struct Shelf {
    std::pair<size_t, size_t> key;  // (num_nodes, capacity)
    std::vector<std::unique_ptr<SearchState>> idle;
  };

  mutable std::mutex mu_;
  std::vector<Shelf> shelves_;
  size_t created_ = 0;
  size_t reused_ = 0;
};

/// Process-wide pool shared by all SearchEngine instances that are not given
/// an explicit pool. Never destroyed (avoids shutdown-order issues).
SearchStatePool& GlobalSearchStatePool();

}  // namespace wikisearch
