#include "core/context_cache.h"

#include <algorithm>
#include <cstdio>
#include <functional>

namespace wikisearch {

namespace {

// Up to 8 shards so concurrent queries with different keys rarely contend on
// one mutex; fewer when the capacity is tiny so per-shard capacities stay
// >= 1 and the total bound stays exact.
constexpr size_t kMaxShards = 8;

size_t ShardCountFor(size_t capacity) {
  if (capacity == 0) return 1;
  return std::min<size_t>(kMaxShards, capacity);
}

}  // namespace

QueryContextCache::QueryContextCache(size_t capacity)
    : capacity_(capacity), shard_count_(ShardCountFor(capacity)) {
  shards_.reserve(shard_count_);
  for (size_t i = 0; i < shard_count_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string QueryContextCache::MakeKey(const void* graph, const void* index,
                                       uint64_t version,
                                       const std::vector<std::string>& keywords,
                                       double alpha, bool enable_activation,
                                       int max_level) {
  char head[128];
  std::snprintf(head, sizeof(head), "%p|%p|%llu|%.17g|%d|%d", graph, index,
                static_cast<unsigned long long>(version), alpha,
                enable_activation ? 1 : 0, max_level);
  std::string key(head);
  for (const std::string& kw : keywords) {
    key += '\x1f';  // cannot occur inside an analyzed term
    key += kw;
  }
  return key;
}

QueryContextCache::Shard& QueryContextCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shard_count_];
}

size_t QueryContextCache::ShardCapacity(size_t shard) const {
  // Distribute the capacity exactly: the first (capacity % shards) shards
  // get one extra slot, so the per-shard caps sum to capacity.
  return capacity_ / shard_count_ + (shard < capacity_ % shard_count_ ? 1 : 0);
}

std::shared_ptr<const CachedQueryContext> QueryContextCache::Get(
    const std::string& key) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void QueryContextCache::Put(const std::string& key,
                            std::shared_ptr<const CachedQueryContext> value,
                            uint64_t generation) {
  if (capacity_ == 0 || value == nullptr) return;
  // A context built against a since-invalidated index must not re-enter.
  if (generation != generation_.load(std::memory_order_acquire)) return;
  const size_t shard_id =
      std::hash<std::string>{}(key) % shard_count_;
  Shard& shard = *shards_[shard_id];
  const size_t cap = ShardCapacity(shard_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (cap == 0) return;  // this shard holds nothing at tiny capacities
  shard.lru.push_front(Entry{key, std::move(value)});
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > cap) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryContextCache::Invalidate() {
  // Bump first: a Put racing with the invalidation either observes the new
  // generation (and is dropped) or inserts before the sweep below clears it.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

size_t QueryContextCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace wikisearch
