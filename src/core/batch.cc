#include "core/batch.h"

#include <atomic>
#include <thread>

#include "core/state_pool.h"

namespace wikisearch {

std::vector<Result<SearchResult>> BatchSearch(
    const KnowledgeGraph* graph, const InvertedIndex* index,
    const std::vector<std::vector<std::string>>& queries,
    const BatchOptions& opts) {
  std::vector<Result<SearchResult>> results(
      queries.size(), Result<SearchResult>(Status::Internal("not run")));
  if (queries.empty()) return results;

  const int workers =
      std::max(1, std::min<int>(opts.concurrency,
                                static_cast<int>(queries.size())));
  std::atomic<size_t> cursor{0};
  // Batch-scoped state pool: at steady state each worker holds one leased
  // SearchState, so the batch allocates `workers` states total instead of
  // one per query (kMaxIdlePerKey bounds what it retains between claims).
  SearchStatePool state_pool;
  auto worker = [&] {
    // One engine (and worker pool) per thread; queries share only the
    // immutable graph, index and state pool.
    SearchEngine engine(graph, index, opts.search);
    engine.SetStatePool(&state_pool);
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) break;
      results[i] = engine.SearchKeywords(queries[i], opts.search);
    }
  };
  if (workers == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace wikisearch
