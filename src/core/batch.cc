#include "core/batch.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "core/context_cache.h"
#include "core/state_pool.h"
#include "server/query_scheduler.h"

namespace wikisearch {

std::vector<Result<SearchResult>> BatchSearch(
    const KnowledgeGraph* graph, const InvertedIndex* index,
    const std::vector<std::vector<std::string>>& queries,
    const BatchOptions& opts) {
  std::vector<Result<SearchResult>> results(
      queries.size(), Result<SearchResult>(Status::Internal("not run")));
  if (queries.empty()) return results;

  const int workers =
      std::max(1, std::min<int>(opts.concurrency,
                                static_cast<int>(queries.size())));
  // One shared engine: Search is const/thread-safe, per-query state comes
  // from the leases below. Batch-scoped pools keep the batch's memory
  // footprint at O(workers) states and let repeated keyword sets share one
  // context build.
  SearchStatePool state_pool;
  QueryContextCache context_cache(/*capacity=*/256);
  SearchEngine engine(graph, index, opts.search);
  engine.SetStatePool(&state_pool);
  engine.SetContextCache(&context_cache);

  // The same scheduler the HTTP service runs on: `concurrency` running
  // slots, each granted the configured intra-query width, and duplicate
  // keyword lists in the batch collapsed onto one engine execution.
  server::QueryScheduler::Options sched_opts;
  sched_opts.max_running = static_cast<size_t>(workers);
  sched_opts.total_threads = workers * std::max(opts.search.threads, 1);
  sched_opts.max_threads_per_query = std::max(opts.search.threads, 1);
  // A trace context cannot be shared between deduplicated executions.
  sched_opts.single_flight = opts.search.trace == nullptr;
  server::QueryScheduler scheduler(sched_opts);

  std::atomic<size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) break;
      std::string key;
      for (const std::string& kw : queries[i]) {
        key += kw;
        key += '\x1f';
      }
      server::QueryScheduler::Outcome out =
          scheduler.Run(key, [&, i](int threads) {
            SearchOptions search = opts.search;
            search.threads = threads;
            return engine.SearchKeywords(queries[i], search);
          });
      // queue_depth is unlimited, so nothing is ever shed.
      results[i] = *out.result;
    }
  };
  if (workers == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace wikisearch
