// Stage 2: top-down processing (Sec. V-C) — extract each Central Graph from
// its Central Node, apply level-cover pruning, score with Eq. 6 and select
// the final top-k (dropping answers nested inside already-selected ones).
// Runs on CPU threads in all engine variants, as in the paper.
#pragma once

#include <vector>

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "core/answer.h"
#include "core/bfs_state.h"
#include "core/extraction.h"
#include "core/phase_timings.h"
#include "core/query_context.h"
#include "core/search_options.h"

namespace wikisearch {

/// How many Central Graph candidates stage 2 dropped unprocessed because the
/// deadline expired (answers degrade to the extracted subset).
struct TopDownInfo {
  size_t candidates_skipped = 0;
  bool timed_out = false;
};

/// Extracts, prunes, scores and ranks all Central Graph candidates,
/// returning the final top-k answers sorted best-first. The deadline is
/// checked between candidates: extraction of one Central Graph is the unit
/// of work that is never interrupted, so every returned answer is complete
/// and exact even when later candidates are shed (`info->timed_out`).
std::vector<AnswerGraph> TopDownProcess(
    const QueryContext& ctx, const SearchOptions& opts, ThreadPool* pool,
    const HitLevels& hits, const std::vector<CentralCandidate>& centrals,
    const std::function<uint64_t(NodeId)>& keyword_mask,
    PhaseTimings* timings, const Deadline& deadline = Deadline(),
    TopDownInfo* info = nullptr);

/// Final selection shared with the dynamic engine: sorts candidate answers,
/// removes nested duplicates (when opts.dedup_answers) and truncates to
/// top_k.
std::vector<AnswerGraph> SelectTopK(std::vector<AnswerGraph> candidates,
                                    const SearchOptions& opts);

}  // namespace wikisearch
