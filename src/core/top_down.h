// Stage 2: top-down processing (Sec. V-C) — extract each Central Graph from
// its Central Node, apply level-cover pruning, score with Eq. 6 and select
// the final top-k (dropping answers nested inside already-selected ones).
// Runs on CPU threads in all engine variants, as in the paper.
#pragma once

#include <vector>

#include "common/thread_pool.h"
#include "core/answer.h"
#include "core/bfs_state.h"
#include "core/extraction.h"
#include "core/phase_timings.h"
#include "core/query_context.h"
#include "core/search_options.h"

namespace wikisearch {

/// Extracts, prunes, scores and ranks all Central Graph candidates,
/// returning the final top-k answers sorted best-first.
std::vector<AnswerGraph> TopDownProcess(
    const QueryContext& ctx, const SearchOptions& opts, ThreadPool* pool,
    const HitLevels& hits, const std::vector<CentralCandidate>& centrals,
    const std::function<uint64_t(NodeId)>& keyword_mask,
    PhaseTimings* timings);

/// Final selection shared with the dynamic engine: sorts candidate answers,
/// removes nested duplicates (when opts.dedup_answers) and truncates to
/// top_k.
std::vector<AnswerGraph> SelectTopK(std::vector<AnswerGraph> candidates,
                                    const SearchOptions& opts);

}  // namespace wikisearch
