// Stage 2: top-down processing (Sec. V-C) — extract each Central Graph from
// its Central Node, apply level-cover pruning, score with Eq. 6 and select
// the final top-k (dropping answers nested inside already-selected ones).
// Runs on CPU threads in all engine variants, as in the paper.
//
// Two drivers share the candidate plumbing:
//  * RunBoundedTopDown — the production path: candidates are processed in
//    ascending order of an admissible score lower bound; once the bound of
//    every unprocessed candidate provably exceeds the certified top-k
//    threshold, the remaining candidates are pruned without extraction.
//    Served answers are byte-identical to the exhaustive run (DESIGN.md §14
//    proves the certification rule, including under nested-answer dedup).
//  * TopDownProcess — the pre-scratch exhaustive path, preserved verbatim as
//    the bench baseline (SearchOptions::legacy_topdown_extraction) and for
//    direct unit tests.
#pragma once

#include <vector>

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "core/answer.h"
#include "core/bfs_state.h"
#include "core/extraction.h"
#include "core/extraction_scratch.h"
#include "core/phase_timings.h"
#include "core/query_context.h"
#include "core/search_options.h"

namespace wikisearch {

/// Per-candidate accounting of stage 2. Every Central Graph candidate ends
/// in exactly one bucket: extracted (answer built), pruned (bound certified
/// it cannot rank), or skipped (deadline expired before it was claimed) —
/// extracted + pruned + skipped == centrals.
struct TopDownInfo {
  size_t candidates_skipped = 0;
  size_t candidates_pruned = 0;
  size_t candidates_extracted = 0;
  bool timed_out = false;
};

/// Builds the answer for one Central Graph candidate. The engines supply
/// the extraction mechanics (lock-free state extraction vs the dynamic
/// engine's recorded parents); the driver supplies scheduling, bound
/// pruning, deadline handling and accounting. `worker` indexes per-worker
/// scratch and is unique among concurrent calls
/// (ThreadPool::ParallelForDynamicWorker's contract).
class CandidateBuilder {
 public:
  virtual ~CandidateBuilder() = default;
  virtual void Build(int worker, size_t candidate_index, AnswerGraph* out) = 0;
};

/// The production top-down driver (see file comment). `mask` is the direct
/// keyword-bitmask view used for bound computation; `candidate_fault_point`
/// names the per-candidate fault-injection point ("topdown:candidate" or
/// "dynamic:topdown"); certification attempts additionally fire
/// "topdown:bound". Bound pruning engages only when
/// opts.enable_topdown_bound, ctx.weights_nonneg, top_k > 0 and there are
/// more candidates than top_k; otherwise every candidate is extracted
/// (same served answers either way).
std::vector<AnswerGraph> RunBoundedTopDown(
    const QueryContext& ctx, const SearchOptions& opts, ThreadPool* pool,
    const std::vector<CentralCandidate>& centrals, const KeywordMaskView& mask,
    CandidateBuilder* builder, PhaseTimings* timings, const Deadline& deadline,
    TopDownInfo* info, const char* candidate_fault_point);

/// CandidateBuilder over the lock-free SearchState: pooled ExtractionScratch
/// per worker, indexed central-depth probes, direct keyword-mask view.
class StateCandidateBuilder final : public CandidateBuilder {
 public:
  StateCandidateBuilder(const QueryContext& ctx, const SearchOptions& opts,
                        const HitLevels& hits, const KeywordMaskView& mask,
                        const std::vector<CentralCandidate>& centrals,
                        ExtractionScratchPool* scratch_pool, int max_workers);

  void Build(int worker, size_t candidate_index, AnswerGraph* out) override;

 private:
  const QueryContext& ctx_;
  const SearchOptions& opts_;
  const HitLevels& hits_;
  KeywordMaskView mask_;
  const std::vector<CentralCandidate>& centrals_;
  CentralDepthIndex depth_index_;
  PerWorkerScratch scratch_;
};

/// Extracts, prunes, scores and ranks all Central Graph candidates,
/// returning the final top-k answers sorted best-first. The deadline is
/// checked between candidates: extraction of one Central Graph is the unit
/// of work that is never interrupted, so every returned answer is complete
/// and exact even when later candidates are shed (`info->timed_out`).
/// Pre-scratch implementation, kept as the legacy baseline.
std::vector<AnswerGraph> TopDownProcess(
    const QueryContext& ctx, const SearchOptions& opts, ThreadPool* pool,
    const HitLevels& hits, const std::vector<CentralCandidate>& centrals,
    const std::function<uint64_t(NodeId)>& keyword_mask,
    PhaseTimings* timings, const Deadline& deadline = Deadline(),
    TopDownInfo* info = nullptr);

/// Final selection shared by all drivers: orders candidate answers by
/// AnswerOrder, removes nested duplicates (when opts.dedup_answers) and
/// truncates to top_k. Implemented as a widening partial sort — only the
/// prefix that can reach the top-k is ever fully ordered — but AnswerOrder
/// is a strict total order on engine candidates (distinct centrals), so the
/// selection is identical to the historical sort-everything implementation.
std::vector<AnswerGraph> SelectTopK(std::vector<AnswerGraph> candidates,
                                    const SearchOptions& opts);

}  // namespace wikisearch
