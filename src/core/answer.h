// Answer graphs: materialized, pruned and scored Central Graphs (Def. 3 and
// Sec. V-C). Unlike GST answers these are general subgraphs — cycles and
// multiple nodes per keyword are allowed (Fig. 1).
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "graph/types.h"

namespace wikisearch {

/// One KB edge retained in an answer, in its original triple orientation.
struct AnswerEdge {
  NodeId src;
  NodeId dst;
  LabelId label;

  bool operator==(const AnswerEdge& o) const {
    return src == o.src && dst == o.dst && label == o.label;
  }
  bool operator<(const AnswerEdge& o) const {
    if (src != o.src) return src < o.src;
    if (dst != o.dst) return dst < o.dst;
    return label < o.label;
  }
};

/// A (possibly pruned) Central Graph.
struct AnswerGraph {
  NodeId central = kInvalidNode;
  /// d(C): the max hitting level of the central node (Eq. 1).
  int depth = 0;
  /// S(C) from Eq. 6; lower is better.
  double score = 0.0;
  /// All retained nodes, sorted ascending (central included).
  std::vector<NodeId> nodes;
  /// All retained edges, sorted, deduplicated.
  std::vector<AnswerEdge> edges;
  /// For each query keyword i, the retained nodes containing it.
  std::vector<std::vector<NodeId>> keyword_nodes;

  bool ContainsNode(NodeId v) const;
  /// True if this answer's node set is a (non-strict) superset of `other`'s.
  bool ContainsAllNodesOf(const AnswerGraph& other) const;
};

/// Eq. 6: S(C) = d(C)^lambda * sum of node weights. Lower is better.
double ScoreAnswer(const GraphView& g, const AnswerGraph& answer,
                   double lambda);

/// Admissible lower bound on the Eq. 6 score of any answer derived from a
/// central identified at `depth`: the answer always retains the central
/// itself plus, for every query keyword the central does not contain, at
/// least one non-central T_i node — so its weight sum is at least
/// central_weight + extra_min_weight, where the caller supplies either the
/// max over missing keywords i of m_i = min_{v in T_i} w(v), or the
/// stronger distinct-witness cover sum over the r smallest m_i
/// (core/top_down.cc). Admissibility survives FP for the max variant
/// exactly: ScoreAnswer accumulates nonnegative weights sequentially, and
/// such sums are >= fl(a + b) for any two distinct terms under
/// round-to-nearest, while the depth factor is the very same std::pow
/// value, so ScoreLowerBound(...) <= ScoreAnswer(...) holds in double
/// arithmetic, not just over the reals. The cover-sum variant is summed in
/// a different order than ScoreAnswer's, so the caller deflates it by
/// 2^-17 to dominate the summation-order rounding gap (requires
/// nonnegative weights; see QueryContext::weights_nonneg). DESIGN.md §14
/// has the full argument.
double ScoreLowerBound(int depth, double lambda, double central_weight,
                       double extra_min_weight);

/// Deterministic strict ordering used for final ranking: by score, then
/// depth, then size, then central id.
bool AnswerOrder(const AnswerGraph& a, const AnswerGraph& b);

/// Human-readable rendering (node names + labeled edges) for examples/CLI.
std::string FormatAnswer(const GraphView& g, const AnswerGraph& answer,
                         const std::vector<std::string>& keywords);

/// Appends every KB edge between u and v (either orientation) to `edges`,
/// rendered in original triple direction. Shared by answer materialization
/// in the Central Graph engines and the BANKS baselines.
void AppendEdgesBetween(const GraphView& g, NodeId u, NodeId v,
                        std::vector<AnswerEdge>* edges);

}  // namespace wikisearch
