#include "core/state_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace wikisearch {

size_t SearchStatePool::CapacityFor(size_t num_keywords) {
  WS_CHECK(num_keywords >= 1 && num_keywords <= 64);
  size_t cap = 4;
  while (cap < num_keywords) cap <<= 1;
  return cap;
}

SearchStatePool::Lease SearchStatePool::Acquire(size_t num_nodes,
                                                size_t num_keywords) {
  const std::pair<size_t, size_t> key{num_nodes, CapacityFor(num_keywords)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Shelf& shelf : shelves_) {
      if (shelf.key == key && !shelf.idle.empty()) {
        std::unique_ptr<SearchState> state = std::move(shelf.idle.back());
        shelf.idle.pop_back();
        ++reused_;
        return Lease(this, std::move(state));
      }
    }
    ++created_;
  }
  // Allocate outside the lock: construction zero-fills ~n*(4q+26) bytes.
  return Lease(this, std::make_unique<SearchState>(num_nodes, key.second));
}

void SearchStatePool::Return(std::unique_ptr<SearchState> state) {
  const std::pair<size_t, size_t> key{state->num_nodes(),
                                      state->keyword_capacity()};
  std::lock_guard<std::mutex> lock(mu_);
  for (Shelf& shelf : shelves_) {
    if (shelf.key == key) {
      if (shelf.idle.size() < kMaxIdlePerKey) {
        shelf.idle.push_back(std::move(state));
      }
      return;  // over capacity: the state is freed here
    }
  }
  shelves_.push_back(Shelf{key, {}});
  shelves_.back().idle.push_back(std::move(state));
}

void SearchStatePool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  shelves_.clear();
}

size_t SearchStatePool::idle_states() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Shelf& shelf : shelves_) total += shelf.idle.size();
  return total;
}

size_t SearchStatePool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

size_t SearchStatePool::reused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reused_;
}

SearchStatePool& GlobalSearchStatePool() {
  static SearchStatePool* pool = new SearchStatePool();
  return *pool;
}

}  // namespace wikisearch
