// Central Graph extraction (Alg. 3, Thm. V.4): given only the Central Node
// and the node-keyword matrix left by stage 1, recover every hitting path of
// every BFS instance by walking backwards and testing the hitting-level
// recurrence
//
//   h_f = 1 + max(a_n, h_n)             if v_f is a keyword node,
//   h_f = 1 + max(a_n, h_n, a_f - 1)    otherwise,
//
// which holds exactly when neighbor v_n expanded to v_f during the search.
#pragma once

#include <utility>
#include <vector>

#include "core/bfs_state.h"
#include "core/query_context.h"

namespace wikisearch {

/// The recovered hitting-path DAGs of one Central Graph, one edge list per
/// keyword; an edge (pred, succ) means pred expanded to succ in that BFS
/// instance. The union over keywords is the Central Graph (Def. 3).
struct ExtractedGraph {
  NodeId central = kInvalidNode;
  int depth = 0;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> dag;
};

/// Hitting-level oracle so extraction can run against either the lock-free
/// flat state or the dynamic engine's per-node maps.
class HitLevels {
 public:
  virtual ~HitLevels() = default;
  virtual Level Hit(NodeId v, size_t i) const = 0;
  virtual bool IsKeywordNode(NodeId v) const = 0;
  /// True if v was identified as a Central Node (centrals never expand, so
  /// paths cannot pass through them past their identification level).
  virtual bool IsCentral(NodeId v) const = 0;
};

/// Adapter over the lock-free SearchState.
class StateHitLevels final : public HitLevels {
 public:
  explicit StateHitLevels(const SearchState& state) : state_(state) {}
  Level Hit(NodeId v, size_t i) const override { return state_.Hit(v, i); }
  bool IsKeywordNode(NodeId v) const override {
    return state_.IsKeywordNode(v);
  }
  bool IsCentral(NodeId v) const override { return state_.IsCentral(v); }

 private:
  const SearchState& state_;
};

/// Recovers the full Central Graph for `central` (identified at `depth`).
ExtractedGraph ExtractCentralGraph(const QueryContext& ctx,
                                   const HitLevels& hits,
                                   CentralCandidate central);

}  // namespace wikisearch
