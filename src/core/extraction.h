// Central Graph extraction (Alg. 3, Thm. V.4): given only the Central Node
// and the node-keyword matrix left by stage 1, recover every hitting path of
// every BFS instance by walking backwards and testing the hitting-level
// recurrence
//
//   h_f = 1 + max(a_n, h_n)             if v_f is a keyword node,
//   h_f = 1 + max(a_n, h_n, a_f - 1)    otherwise,
//
// which holds exactly when neighbor v_n expanded to v_f during the search.
#pragma once

#include <utility>
#include <vector>

#include "core/bfs_state.h"
#include "core/query_context.h"

namespace wikisearch {

/// The recovered hitting-path DAGs of one Central Graph, one edge list per
/// keyword; an edge (pred, succ) means pred expanded to succ in that BFS
/// instance. The union over keywords is the Central Graph (Def. 3).
struct ExtractedGraph {
  NodeId central = kInvalidNode;
  int depth = 0;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> dag;
};

/// Hitting-level oracle so extraction can run against either the lock-free
/// flat state or the dynamic engine's per-node maps.
class HitLevels {
 public:
  virtual ~HitLevels() = default;
  virtual Level Hit(NodeId v, size_t i) const = 0;
  virtual bool IsKeywordNode(NodeId v) const = 0;
  /// True if v was identified as a Central Node (centrals never expand, so
  /// paths cannot pass through them past their identification level).
  virtual bool IsCentral(NodeId v) const = 0;
};

/// Adapter over the lock-free SearchState.
class StateHitLevels final : public HitLevels {
 public:
  explicit StateHitLevels(const SearchState& state) : state_(state) {}
  Level Hit(NodeId v, size_t i) const override { return state_.Hit(v, i); }
  bool IsKeywordNode(NodeId v) const override {
    return state_.IsKeywordNode(v);
  }
  bool IsCentral(NodeId v) const override { return state_.IsCentral(v); }

 private:
  const SearchState& state_;
};

/// Recovers the full Central Graph for `central` (identified at `depth`).
ExtractedGraph ExtractCentralGraph(const QueryContext& ctx,
                                   const HitLevels& hits,
                                   CentralCandidate central);

/// Zero-indirection view of the per-node query-keyword bitmasks, replacing
/// the std::function<uint64_t(NodeId)> hot-path callback: operator[] is an
/// inlined array probe. With `stamp == nullptr` the mask array is always
/// valid (dense per-query array); otherwise entry v is valid only when
/// stamp[v] == epoch (SearchState's epoch-versioned keyword bitmap).
struct KeywordMaskView {
  const uint64_t* mask = nullptr;
  const uint32_t* stamp = nullptr;
  uint32_t epoch = 0;

  uint64_t operator[](NodeId v) const {
    if (stamp != nullptr && stamp[v] != epoch) return 0;
    return mask[v];
  }
};

/// Per-query central-depth lookup: extraction's central-predecessor test
/// needs the depth of *other* central nodes on every candidate-neighbor
/// probe, and used to rescan all q hit levels each time. The identified
/// depth of every committed central is already in the centrals vector
/// (Lemma V.1: identification level == max hitting level), so one sorted
/// copy answers the probe with a binary search. Lookup returns -1 for
/// central-flagged nodes missing from the vector (possible only when
/// max_central_candidates capped the commit); callers then fall back to the
/// hit-level scan.
class CentralDepthIndex {
 public:
  explicit CentralDepthIndex(const std::vector<CentralCandidate>& centrals);

  int Lookup(NodeId v) const;

 private:
  std::vector<CentralCandidate> sorted_;
};

struct ExtractionScratch;

/// ExtractCentralGraph into pooled scratch memory: byte-identical output
/// (scratch->eg) with zero per-candidate heap allocations once the scratch
/// buffers are warm. `depths` serves the central-predecessor depth probes.
void ExtractCentralGraphInto(const QueryContext& ctx, const HitLevels& hits,
                             CentralCandidate central,
                             const CentralDepthIndex& depths,
                             ExtractionScratch* scratch);

}  // namespace wikisearch
