// Degree-of-summary node weights (Sec. IV-A, Eq. 2).
//
// A node pointed to by many same-labeled in-edges and few distinct in-edge
// labels is a "summary node" (`human`, a conference, a broad topic): it
// summarizes trivial commonality and makes meaningless shortcuts during
// search. Eq. 2 scores this tendency:
//
//     w_i = sum_r c_r * log2(1 + c_r) / sum_r c_r
//
// over the in-edge labels r of v_i with counts c_r — a c_r-weighted average
// of log2(1 + c_r), then min-max normalized to [0, 1] over all nodes.
#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "graph/graph_view.h"

namespace wikisearch {

/// Raw (unnormalized) Eq. 2 weight of one node.
double RawDegreeOfSummary(const GraphView& g, NodeId v);

/// Computes normalized weights for all nodes. Nodes without in-edges get the
/// minimum weight (they summarize nothing).
std::vector<double> ComputeNodeWeights(const GraphView& g);

/// Computes and attaches weights to the graph.
void AttachNodeWeights(KnowledgeGraph* g);

}  // namespace wikisearch
