// Shared query-context cache: memoizes the expensive per-keyword work of a
// query — posting-list resolution (the T_i seed sets) and the O(n)
// precomputed QueryContext::activation_level table — keyed by the analyzed
// keyword set plus every parameter the context depends on (alpha,
// activation switch, lmax override, and the graph/index identities). Under
// concurrent serving the same hot keywords arrive from many clients at
// once; with this cache each distinct keyword set pays the O(n) context
// build once and every other query shares an immutable snapshot.
//
// Entries are immutable after insertion and handed out as
// shared_ptr<const ...>, so readers never take a per-entry lock and a
// context stays alive for as long as any in-flight query uses it, even
// across eviction or invalidation.
//
// Invalidation: Invalidate() bumps a generation and drops every entry.
// Lookups that began against the old index cannot re-populate the cache
// with stale data because Put carries the generation observed at Get time
// and is discarded on mismatch (the stale-after-reindex contract).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query_context.h"

namespace wikisearch {

/// One cached context: the immutable QueryContext plus the query-analysis
/// byproducts the engine reports per query.
struct CachedQueryContext {
  CachedQueryContext(QueryContext context, std::vector<std::string> dropped,
                     std::shared_ptr<const void> snapshot_pin = nullptr)
      : ctx(std::move(context)),
        dropped_keywords(std::move(dropped)),
        pin(std::move(snapshot_pin)) {}

  QueryContext ctx;
  /// Query terms dropped for lack of matches (reported in SearchStats).
  std::vector<std::string> dropped_keywords;
  /// Keeps the live snapshot/patches referenced by ctx.graph alive for as
  /// long as this context is cached or in use (null for static KBs).
  std::shared_ptr<const void> pin;
};

/// Sharded LRU cache of CachedQueryContext. Thread-safe; all methods may be
/// called concurrently. Capacity is exact: size() never exceeds it, split
/// across shards (capacity 0 disables caching entirely).
class QueryContextCache {
 public:
  explicit QueryContextCache(size_t capacity);
  QueryContextCache(const QueryContextCache&) = delete;
  QueryContextCache& operator=(const QueryContextCache&) = delete;

  /// Builds the canonical cache key for a query. `graph` and `index` are
  /// identity-only (mixed in as addresses) so one cache can serve engines
  /// over different datasets without cross-contamination. `version` is the
  /// KbHandle's KB-state version: overlay states over the same base
  /// snapshot get distinct keys (0 for static KBs), and versions never
  /// repeat, so a recycled snapshot address cannot alias an old entry.
  static std::string MakeKey(const void* graph, const void* index,
                             uint64_t version,
                             const std::vector<std::string>& keywords,
                             double alpha, bool enable_activation,
                             int max_level);

  /// Returns the cached context (refreshing recency) or null.
  std::shared_ptr<const CachedQueryContext> Get(const std::string& key);

  /// Inserts `value` unless the cache has been invalidated since
  /// `generation` was observed (see generation()); evicts LRU past capacity.
  void Put(const std::string& key,
           std::shared_ptr<const CachedQueryContext> value,
           uint64_t generation);

  /// Generation to capture before building a context destined for Put.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Drops every entry and bumps the generation: contexts built against the
  /// pre-invalidation index can no longer enter the cache. Call after any
  /// reindex / graph swap.
  void Invalidate();

  size_t capacity() const { return capacity_; }
  size_t size() const;

  // Lifetime counters (exact, monotonic): bridged into the metric registry
  // by the serving layer via Counter::AdvanceTo.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedQueryContext> value;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(const std::string& key);
  size_t ShardCapacity(size_t shard) const;

  const size_t capacity_;
  const size_t shard_count_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> generation_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace wikisearch
