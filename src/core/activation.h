// Minimum activation levels (Sec. IV, Eq. 3-5).
//
// The Penalty-and-Reward mapping turns a node's normalized degree-of-summary
// weight w into the earliest BFS level at which the node may participate:
//
//   Penalty(v) = A * (w - alpha) / (1 - alpha)   if w > alpha
//   Reward(v)  = A * (alpha - w) / alpha          if w < alpha
//   a_v = round(A - Reward)  | round(A) | round(A + Penalty)
//
// where A is the sampled average shortest distance. Informative nodes
// (w < alpha) activate early; summary nodes activate late and rarely make it
// into compact answers. alpha is tunable per query at run time.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace wikisearch {

/// Activation mapping for one (graph, alpha) pair. Cheap to construct; the
/// engines evaluate it on the fly per visited node, exactly as Algorithm 2
/// does ("calculate a_f from w_f and alpha").
class ActivationMap {
 public:
  /// `average_distance` is the paper's A; `alpha` must lie in (0, 1).
  /// If `enabled` is false every node activates at level 0 (ablation mode:
  /// search degenerates to plain concurrent BFS).
  ActivationMap(double average_distance, double alpha, bool enabled = true);

  /// Minimum activation level for a node of normalized weight w (Eq. 5).
  int Level(double w) const {
    if (!enabled_) return 0;
    double v;
    if (w > alpha_) {
      v = a_ + a_ * (w - alpha_) / (1.0 - alpha_);
    } else if (w < alpha_) {
      v = a_ - a_ * (alpha_ - w) / alpha_;
    } else {
      v = a_;
    }
    long r = std::lround(v);
    return r < 0 ? 0 : static_cast<int>(r);
  }

  double average_distance() const { return a_; }
  double alpha() const { return alpha_; }

 private:
  double a_;
  double alpha_;
  bool enabled_;
};

/// Histogram of activation levels over all nodes: result[l] = #nodes with
/// a_v == l, with the final bucket aggregating >= result.size()-1 (used to
/// regenerate Fig. 3's distribution).
std::vector<size_t> ActivationDistribution(const KnowledgeGraph& g,
                                           double alpha, size_t buckets = 5);

}  // namespace wikisearch
