// Inter-query parallelism: evaluate many keyword queries concurrently, each
// on its own search state. This is the service-throughput complement of the
// paper's intra-query parallelism (its Related Work cites the "Ten thousand
// SQLs" parallel keyword-query line of work [12]); with short interactive
// queries, one-query-per-core beats parallelizing a single query's BFS.
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"

namespace wikisearch {

struct BatchOptions {
  /// Per-query options; `threads` applies *inside* each query and is
  /// usually left at 1 when concurrency > 1.
  SearchOptions search;
  /// Number of queries evaluated concurrently.
  int concurrency = 4;
};

/// Runs all queries (each a raw-keyword list) and returns results in input
/// order. Each worker thread owns a private SearchEngine; the graph and
/// index are shared read-only.
std::vector<Result<SearchResult>> BatchSearch(
    const KnowledgeGraph* graph, const InvertedIndex* index,
    const std::vector<std::vector<std::string>>& queries,
    const BatchOptions& opts);

}  // namespace wikisearch
