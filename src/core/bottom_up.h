// Stage 1: lock-free bottom-up search (Sec. V-B) solving the top-(k,d)
// Central Graph problem (Def. 4). One BFS instance per keyword advances in
// lock-step over a joint frontier array; hitting levels accumulate in the
// node-keyword matrix; Central Nodes are identified per level (Lemma V.1)
// and the search stops at the smallest depth d yielding >= k of them.
#pragma once

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "core/bfs_state.h"
#include "core/phase_timings.h"
#include "core/query_context.h"
#include "core/search_options.h"

namespace wikisearch {

/// Per-level progress snapshot delivered to progressive searches after the
/// identification step of each level.
struct LevelProgress {
  int level = 0;
  size_t frontier_size = 0;
  size_t centrals_so_far = 0;
};

/// Return false to cancel the search; already-identified Central Nodes are
/// still processed by stage 2, so a cancelled query yields the best answers
/// found so far (progressive answering).
using ProgressCallback = std::function<bool(const LevelProgress&)>;

struct BottomUpResult {
  /// Number of expansion levels executed.
  int levels = 0;
  /// True if the search ended because no frontiers remained.
  bool frontier_exhausted = false;
  /// Largest single-level frontier observed.
  size_t peak_frontier = 0;
  /// Sum of frontier sizes over all levels (re-queued nodes counted again).
  size_t total_frontier_work = 0;
  /// True if a progress callback cancelled the search.
  bool cancelled = false;
  /// True if the deadline expired before the search reached its natural
  /// termination; already-identified Central Nodes remain valid.
  bool timed_out = false;
  /// Name of the kernel Ops that ran the hot loops ("scalar" or "avx2");
  /// diagnostic only — every kernel commits byte-identical state.
  const char* kernel = "scalar";
};

/// Runs stage 1. `gpu_style` selects the kGpuSim execution shape: parallel
/// frontier compaction via atomic cursor and warp-style
/// (frontier x BFS-instance) work decomposition; otherwise the CPU-Par shape
/// (sequential enqueue, one frontier per dynamic task) is used. Results are
/// identical; only scheduling differs (Thm. V.2).
///
/// `deadline` bounds the stage: checked per level and per worker chunk, so a
/// single giant level cannot blow the budget. On expiry the search stops at
/// the next check with `timed_out` set; all state written so far (hitting
/// levels of completed levels, identified centrals) stays exact, so stage 2
/// can still extract the partial answers (see DESIGN.md §7).
BottomUpResult BottomUpSearch(const QueryContext& ctx,
                              const SearchOptions& opts, ThreadPool* pool,
                              SearchState* state, PhaseTimings* timings,
                              bool gpu_style,
                              const ProgressCallback& progress = nullptr,
                              const Deadline& deadline = Deadline());

}  // namespace wikisearch
