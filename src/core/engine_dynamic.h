// Internal: the paper's CPU-Par-d comparison variant (Sec. VI,
// implementation 3). Uses dynamically allocated per-node keyword maps
// guarded by striped locks instead of the flat node-keyword matrix, and
// records hitting-path parents during the search so no extraction phase is
// needed. Exists to validate the lock-free design: it must return identical
// answers, slower.
#pragma once

#include <vector>

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "core/answer.h"
#include "core/bottom_up.h"
#include "core/extraction_scratch.h"
#include "core/phase_timings.h"
#include "core/query_context.h"
#include "core/search_options.h"

namespace wikisearch::internal {

struct DynamicRunInfo {
  size_t num_centrals = 0;
  int levels = 0;
  bool frontier_exhausted = false;
  size_t peak_frontier = 0;
  size_t total_frontier_work = 0;
  size_t running_storage_bytes = 0;
  bool cancelled = false;
  bool timed_out = false;
  size_t candidates_skipped = 0;
  size_t candidates_pruned = 0;
  size_t candidates_extracted = 0;
};

/// Runs the full two-stage query with the dynamic-memory locked engine.
/// Honors the same anytime contract as the lock-free path: `progress` is
/// invoked after each level's identification (returning false cancels the
/// search, already-found centrals still materialize), and `deadline` bounds
/// both stages — per level in the search, per candidate in the top-down
/// materialization.
/// `scratch_pool` feeds the bounded top-down driver's per-worker
/// ExtractionScratch leases; null uses the process-wide pool.
std::vector<AnswerGraph> RunDynamicEngine(
    const QueryContext& ctx, const SearchOptions& opts, ThreadPool* pool,
    PhaseTimings* timings, DynamicRunInfo* info,
    const ProgressCallback& progress = nullptr,
    const Deadline& deadline = Deadline(),
    ExtractionScratchPool* scratch_pool = nullptr);

}  // namespace wikisearch::internal
