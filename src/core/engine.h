// Public facade of the Central Graph keyword search engine.
//
// Usage:
//   KnowledgeGraph graph = ...;            // load or generate
//   AttachNodeWeights(&graph);             // Eq. 2
//   AttachAverageDistance(&graph);         // sampled A
//   InvertedIndex index = InvertedIndex::Build(graph);
//   SearchEngine engine(&graph, &index);
//   auto result = engine.Search("xml rdf sql");
//   for (const AnswerGraph& a : result->answers) ...
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/answer.h"
#include "core/bottom_up.h"
#include "core/context_cache.h"
#include "core/extraction_scratch.h"
#include "core/phase_timings.h"
#include "core/search_options.h"
#include "core/state_pool.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "text/index_view.h"
#include "text/inverted_index.h"

namespace wikisearch {

/// A pinned, consistent (graph, index) pair a query executes against. In
/// static deployments the views wrap the engine's bound graph/index and
/// `version` stays 0. Under live updates, live::SnapshotManager::PinHandle
/// fills all four fields: the views bind one published (snapshot, overlay)
/// state, `version` identifies that state for cache keys, and `pin` keeps
/// the snapshot and patches alive until the last in-flight query (or cached
/// context built from them) drops its handle — how old snapshots retire
/// only after their last lease.
struct KbHandle {
  GraphView graph;
  IndexView index;
  /// Monotonic KB-state version; mixed into context-cache keys so entries
  /// built over different overlay states never collide.
  uint64_t version = 0;
  /// Refcount lease on the snapshot/patches backing the views.
  std::shared_ptr<const void> pin;
};

/// Non-timing measurements of one query.
struct SearchStats {
  /// Keywords that survived analysis and had non-empty posting lists.
  size_t num_keywords_used = 0;
  /// Query terms dropped for lack of matches.
  std::vector<std::string> dropped_keywords;
  /// Central Nodes identified in stage 1 (the top-(k,d) candidate set).
  size_t num_centrals = 0;
  /// True if a progressive search was cancelled by its callback.
  bool cancelled = false;
  /// True if the per-query deadline (SearchOptions::deadline_ms) expired in
  /// either stage. The returned answers are still valid — they are the best
  /// answers derivable from the work completed within the budget.
  bool timed_out = false;
  /// True if the answer set may be smaller than an unbounded run's: the
  /// bottom-up stage stopped early (timeout or cancellation) or extraction
  /// shed candidates at the deadline.
  bool degraded = false;
  /// BFS levels whose expansion fully completed (== levels unless the budget
  /// ran out mid-level).
  int levels_completed = 0;
  /// Budget remaining when the query finished: 0 when it timed out, -1 when
  /// no deadline was set.
  double deadline_left_ms = -1.0;
  /// Central Graph candidates stage 2 dropped unprocessed at the deadline.
  size_t candidates_skipped = 0;
  /// Candidates the top-down bound pruned without extraction (provably
  /// unable to enter the served top-k; DESIGN.md §14).
  size_t candidates_pruned = 0;
  /// Candidates fully extracted into answer candidates. Always
  /// extracted + pruned + skipped == num_centrals.
  size_t candidates_extracted = 0;
  int levels = 0;
  bool frontier_exhausted = false;
  size_t peak_frontier = 0;
  size_t total_frontier_work = 0;
  /// Dynamic search-state bytes (Table IV "running storage" minus
  /// pre-storage).
  size_t running_storage_bytes = 0;
  /// Graph pre-storage bytes (CSR + weights + dictionaries).
  size_t pre_storage_bytes = 0;
};

struct SearchResult {
  /// Final answers, best first.
  std::vector<AnswerGraph> answers;
  /// The analyzed keywords actually searched, one per BFS instance.
  std::vector<std::string> keywords;
  PhaseTimings timings;
  SearchStats stats;
};

/// Thread-safe facade: one instance serves many queries *concurrently* over
/// the shared read-only graph and index. Search is const; every piece of
/// per-query mutable state comes from a lease — a SearchState from the
/// configured SearchStatePool and a worker ThreadPool from an internal
/// ThreadPoolCache — so simultaneous queries never touch shared mutable
/// memory (the serving-path rule documented in DESIGN.md §9).
class SearchEngine {
 public:
  /// `graph` must have node weights and a sampled average distance attached;
  /// both pointers must outlive the engine.
  SearchEngine(const KnowledgeGraph* graph, const InvertedIndex* index,
               SearchOptions defaults = {});

  /// Handle-only engine for live deployments: every Search must go through
  /// a KbHandle overload (the bound-KB overloads WS_CHECK-fail).
  explicit SearchEngine(SearchOptions defaults);
  ~SearchEngine();

  /// Free-text query: analyzed with the index's analyzer, unknown terms
  /// dropped (reported in stats). Fails if no term matches any node.
  Result<SearchResult> Search(const std::string& query) const;
  Result<SearchResult> Search(const std::string& query,
                              const SearchOptions& opts) const;

  /// Pre-split keywords (each analyzed individually).
  Result<SearchResult> SearchKeywords(const std::vector<std::string>& keywords,
                                      const SearchOptions& opts) const;

  /// Progressive search: `progress` is invoked after every BFS level with
  /// (level, frontier size, centrals found). Returning false cancels the
  /// bottom-up stage; the Central Nodes found so far still go through
  /// stage 2, so a cancelled query returns its best partial answers.
  /// Honored by all engine kinds (the dynamic engine included).
  Result<SearchResult> SearchKeywordsProgressive(
      const std::vector<std::string>& keywords, const SearchOptions& opts,
      const ProgressCallback& progress) const;

  // KbHandle overloads: identical semantics, but the query executes against
  // the handle's pinned views instead of the engine's bound graph/index —
  // the serving path under live updates. The bound-KB methods above are
  // sugar for these with a version-0 handle over (graph_, index_).
  Result<SearchResult> Search(const KbHandle& kb, const std::string& query,
                              const SearchOptions& opts) const;
  Result<SearchResult> SearchKeywords(const KbHandle& kb,
                                      const std::vector<std::string>& keywords,
                                      const SearchOptions& opts) const;
  Result<SearchResult> SearchKeywordsProgressive(
      const KbHandle& kb, const std::vector<std::string>& keywords,
      const SearchOptions& opts, const ProgressCallback& progress) const;

  const SearchOptions& default_options() const { return defaults_; }

  /// Overrides the SearchState pool (default: the process-wide one). Pass a
  /// pool scoped to a batch/server to isolate its states; `pool` must
  /// outlive the engine. Configuration only — call before issuing
  /// concurrent Searches.
  void SetStatePool(SearchStatePool* pool) {
    state_pool_ = pool != nullptr ? pool : &GlobalSearchStatePool();
  }

  /// Overrides the ExtractionScratch pool leased by the top-down stage
  /// (default: the process-wide one). Same contract as SetStatePool.
  void SetScratchPool(ExtractionScratchPool* pool) {
    scratch_pool_ = pool != nullptr ? pool : &GlobalExtractionScratchPool();
  }

  /// Attaches a shared query-context cache: per-keyword posting resolution
  /// and the O(n) activation-level table are then memoized across queries
  /// (and across concurrent queries — entries are immutable snapshots).
  /// Null (the default) disables memoization. Configuration only — call
  /// before issuing concurrent Searches; `cache` must outlive the engine.
  void SetContextCache(QueryContextCache* cache) { context_cache_ = cache; }

 private:
  /// Resolves the query's immutable context — T_i posting lists, activation
  /// levels, lmax — through the context cache when one is attached. Returns
  /// null and sets `error` when the query is unanswerable.
  std::shared_ptr<const CachedQueryContext> ResolveContext(
      const KbHandle& kb, const std::vector<std::string>& keywords,
      const SearchOptions& opts, obs::TraceContext* trace,
      Status* error) const;

  /// Version-0 handle over the bound graph/index for the legacy overloads.
  KbHandle BoundHandle() const;

  /// Reports the query's counters, latency and stage histograms, and the
  /// leased worker pool's utilization deltas into opts.metrics (or the
  /// global registry). Called once per query when opts.record_metrics is
  /// set; the published-counter watermarks ride in the lease entry, which
  /// the query holds exclusively.
  void RecordSearchMetrics(const SearchOptions& opts,
                           const SearchResult& result,
                           ThreadPoolCache::Lease* pool_lease) const;

  const KnowledgeGraph* graph_;
  const InvertedIndex* index_;
  SearchOptions defaults_;
  // Per-query worker pools are leased here; mutable because leasing from a
  // (internally locked) cache is not logical state mutation.
  mutable ThreadPoolCache pool_cache_;
  SearchStatePool* state_pool_ = &GlobalSearchStatePool();
  ExtractionScratchPool* scratch_pool_ = &GlobalExtractionScratchPool();
  QueryContextCache* context_cache_ = nullptr;
};

}  // namespace wikisearch
