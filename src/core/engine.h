// Public facade of the Central Graph keyword search engine.
//
// Usage:
//   KnowledgeGraph graph = ...;            // load or generate
//   AttachNodeWeights(&graph);             // Eq. 2
//   AttachAverageDistance(&graph);         // sampled A
//   InvertedIndex index = InvertedIndex::Build(graph);
//   SearchEngine engine(&graph, &index);
//   auto result = engine.Search("xml rdf sql");
//   for (const AnswerGraph& a : result->answers) ...
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/answer.h"
#include "core/bottom_up.h"
#include "core/phase_timings.h"
#include "core/search_options.h"
#include "core/state_pool.h"
#include "graph/csr_graph.h"
#include "text/inverted_index.h"

namespace wikisearch {

/// Non-timing measurements of one query.
struct SearchStats {
  /// Keywords that survived analysis and had non-empty posting lists.
  size_t num_keywords_used = 0;
  /// Query terms dropped for lack of matches.
  std::vector<std::string> dropped_keywords;
  /// Central Nodes identified in stage 1 (the top-(k,d) candidate set).
  size_t num_centrals = 0;
  /// True if a progressive search was cancelled by its callback.
  bool cancelled = false;
  /// True if the per-query deadline (SearchOptions::deadline_ms) expired in
  /// either stage. The returned answers are still valid — they are the best
  /// answers derivable from the work completed within the budget.
  bool timed_out = false;
  /// True if the answer set may be smaller than an unbounded run's: the
  /// bottom-up stage stopped early (timeout or cancellation) or extraction
  /// shed candidates at the deadline.
  bool degraded = false;
  /// BFS levels whose expansion fully completed (== levels unless the budget
  /// ran out mid-level).
  int levels_completed = 0;
  /// Budget remaining when the query finished: 0 when it timed out, -1 when
  /// no deadline was set.
  double deadline_left_ms = -1.0;
  /// Central Graph candidates stage 2 dropped unprocessed at the deadline.
  size_t candidates_skipped = 0;
  int levels = 0;
  bool frontier_exhausted = false;
  size_t peak_frontier = 0;
  size_t total_frontier_work = 0;
  /// Dynamic search-state bytes (Table IV "running storage" minus
  /// pre-storage).
  size_t running_storage_bytes = 0;
  /// Graph pre-storage bytes (CSR + weights + dictionaries).
  size_t pre_storage_bytes = 0;
};

struct SearchResult {
  /// Final answers, best first.
  std::vector<AnswerGraph> answers;
  /// The analyzed keywords actually searched, one per BFS instance.
  std::vector<std::string> keywords;
  PhaseTimings timings;
  SearchStats stats;
};

/// Thread-compatible facade: one instance may serve many sequential queries;
/// concurrent queries should use separate instances (they would share the
/// worker pool).
class SearchEngine {
 public:
  /// `graph` must have node weights and a sampled average distance attached;
  /// both pointers must outlive the engine.
  SearchEngine(const KnowledgeGraph* graph, const InvertedIndex* index,
               SearchOptions defaults = {});
  ~SearchEngine();

  /// Free-text query: analyzed with the index's analyzer, unknown terms
  /// dropped (reported in stats). Fails if no term matches any node.
  Result<SearchResult> Search(const std::string& query);
  Result<SearchResult> Search(const std::string& query,
                              const SearchOptions& opts);

  /// Pre-split keywords (each analyzed individually).
  Result<SearchResult> SearchKeywords(const std::vector<std::string>& keywords,
                                      const SearchOptions& opts);

  /// Progressive search: `progress` is invoked after every BFS level with
  /// (level, frontier size, centrals found). Returning false cancels the
  /// bottom-up stage; the Central Nodes found so far still go through
  /// stage 2, so a cancelled query returns its best partial answers.
  /// Honored by all engine kinds (the dynamic engine included).
  Result<SearchResult> SearchKeywordsProgressive(
      const std::vector<std::string>& keywords, const SearchOptions& opts,
      const ProgressCallback& progress);

  const SearchOptions& default_options() const { return defaults_; }

  /// Overrides the SearchState pool (default: the process-wide one). Pass a
  /// pool scoped to a batch/server to isolate its states; `pool` must
  /// outlive the engine. Not thread-safe w.r.t. concurrent Search calls.
  void SetStatePool(SearchStatePool* pool) {
    state_pool_ = pool != nullptr ? pool : &GlobalSearchStatePool();
  }

 private:
  ThreadPool* PoolFor(int threads);
  /// Reports the query's counters, latency and stage histograms, and the
  /// worker pool's utilization deltas into opts.metrics (or the global
  /// registry). Called once per query when opts.record_metrics is set.
  void RecordSearchMetrics(const SearchOptions& opts,
                           const SearchResult& result, ThreadPool* pool);

  const KnowledgeGraph* graph_;
  const InvertedIndex* index_;
  SearchOptions defaults_;
  std::unique_ptr<ThreadPool> pool_;
  SearchStatePool* state_pool_ = &GlobalSearchStatePool();
  // Pool utilization already published to the registry (the pool's counters
  // are monotonic since pool creation; queries publish the delta).
  uint64_t published_pool_jobs_ = 0;
  uint64_t published_pool_busy_us_ = 0;
};

}  // namespace wikisearch
