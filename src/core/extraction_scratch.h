// Pooled, epoch-versioned scratch memory for the top-down stage.
//
// Extraction and answer materialization used to allocate fresh
// unordered_set/unordered_map/std::map/std::set instances per Central Graph
// candidate — hundreds of node-sized hash tables per query, churned and
// thrown away. This header replaces them with flat stamp arrays sized once
// per graph: clearing a set is an epoch bump (O(1)), membership is one
// array probe, and the whole scratch is leased from a pool keyed on
// num_nodes exactly like SearchStatePool leases SearchStates — so the
// steady-state extraction path performs zero per-candidate heap
// allocations (proven by topdown_equivalence_test's allocation counter).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/extraction.h"
#include "graph/types.h"

namespace wikisearch {

/// Flat set over NodeId with O(1) Clear: membership means the node's stamp
/// equals the current epoch. A stamp wraparound (after ~4e9 Clears) forces
/// one bulk refill, so stale stamps from earlier epochs can never alias.
class EpochSet {
 public:
  explicit EpochSet(size_t n) : stamp_(n, 0) {}

  void Clear() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }
  /// Returns true when v was not yet a member.
  bool Insert(NodeId v) {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    return true;
  }
  bool Contains(NodeId v) const { return stamp_[v] == epoch_; }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
};

/// Flat NodeId -> uint64 bitmask map with O(1) Clear, same stamp scheme.
class EpochMaskMap {
 public:
  explicit EpochMaskMap(size_t n) : stamp_(n, 0), value_(n, 0) {}

  void Clear() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }
  /// ORs `bits` into v's mask; returns true when v was not yet a member.
  bool Or(NodeId v, uint64_t bits) {
    if (stamp_[v] == epoch_) {
      value_[v] |= bits;
      return false;
    }
    stamp_[v] = epoch_;
    value_[v] = bits;
    return true;
  }
  uint64_t Get(NodeId v) const { return stamp_[v] == epoch_ ? value_[v] : 0; }

 private:
  std::vector<uint32_t> stamp_;
  std::vector<uint64_t> value_;
  uint32_t epoch_ = 0;
};

/// All per-candidate working memory of ExtractCentralGraphInto and
/// BuildAnswerInto. One scratch serves one worker at a time; every buffer is
/// cleared (epoch bump or vector::clear, never deallocation) at the start of
/// the pass that uses it, so capacity persists across candidates and pooled
/// scratches amortize across queries.
struct ExtractionScratch {
  explicit ExtractionScratch(size_t num_nodes)
      : visited(num_nodes),
        dag_member(num_nodes),
        kept(num_nodes),
        retained(num_nodes),
        num_nodes_(num_nodes) {}

  size_t num_nodes() const { return num_nodes_; }

  /// Reused extraction output: dag edge lists keep their capacity across
  /// candidates.
  ExtractedGraph eg;
  /// Backward-BFS worklist of ExtractCentralGraphInto.
  std::vector<NodeId> queue;
  /// Visited set of the backward BFS and of the forward anchor DFS.
  EpochSet visited;
  /// node -> bitmask of per-keyword DAGs containing it (replaces the q
  /// per-DAG unordered_sets).
  EpochMaskMap dag_member;
  /// Distinct DAG nodes in first-seen order (iteration order for bucketing
  /// and anchor scans; the consumers are order-independent sets).
  std::vector<NodeId> node_list;
  /// (contribution count, node) pairs, sorted descending by count — the
  /// flat replacement of the std::map<int, vector, greater> buckets.
  std::vector<std::pair<int, NodeId>> bucket_pairs;
  /// Keyword nodes surviving level-cover pruning.
  EpochSet kept;
  /// Per-keyword anchor list of the forward re-walk.
  std::vector<NodeId> anchors;
  /// DFS stack of the forward re-walk.
  std::vector<NodeId> stack;
  /// Nodes retained in the final answer (set + list for ordered drain).
  EpochSet retained;
  std::vector<NodeId> retained_list;
  /// Retained DAG edges; duplicates allowed during collection, sorted and
  /// uniqued before materialization (replaces the std::set).
  std::vector<std::pair<NodeId, NodeId>> retained_pairs;

 private:
  size_t num_nodes_;
};

/// Thread-safe pool of ExtractionScratch instances keyed on num_nodes,
/// mirroring SearchStatePool's lease discipline.
class ExtractionScratchPool {
 public:
  ExtractionScratchPool() = default;
  ExtractionScratchPool(const ExtractionScratchPool&) = delete;
  ExtractionScratchPool& operator=(const ExtractionScratchPool&) = delete;

  /// Move-only lease on a pooled scratch.
  class Lease {
   public:
    Lease() = default;
    Lease(ExtractionScratchPool* pool, std::unique_ptr<ExtractionScratch> s)
        : pool_(pool), scratch_(std::move(s)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), scratch_(std::move(other.scratch_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        scratch_ = std::move(other.scratch_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    ExtractionScratch* get() const { return scratch_.get(); }
    ExtractionScratch& operator*() const { return *scratch_; }
    ExtractionScratch* operator->() const { return scratch_.get(); }

   private:
    void Release() {
      if (pool_ != nullptr && scratch_ != nullptr) {
        pool_->Return(std::move(scratch_));
      }
      pool_ = nullptr;
    }

    ExtractionScratchPool* pool_ = nullptr;
    std::unique_ptr<ExtractionScratch> scratch_;
  };

  /// Returns a scratch sized for `num_nodes`, reusing an idle one when the
  /// key matches.
  Lease Acquire(size_t num_nodes);

  /// Drops all idle scratches (e.g. after a graph swap).
  void Clear();

  size_t idle_scratches() const;
  /// Lifetime counters, for tests and /stats.
  size_t created() const;
  size_t reused() const;

 private:
  void Return(std::unique_ptr<ExtractionScratch> scratch);

  // Keep a few idle scratches per key: enough for worker-count concurrency
  // without pinning unbounded memory after a load spike.
  static constexpr size_t kMaxIdlePerKey = 8;

  struct Shelf {
    size_t key;  // num_nodes
    std::vector<std::unique_ptr<ExtractionScratch>> idle;
  };

  mutable std::mutex mu_;
  std::vector<Shelf> shelves_;
  size_t created_ = 0;
  size_t reused_ = 0;
};

/// Process-wide pool shared by all engines not given an explicit pool.
/// Never destroyed (avoids shutdown-order issues).
ExtractionScratchPool& GlobalExtractionScratchPool();

/// Lazily leases one scratch per worker index for the duration of a top-down
/// run. Worker indices come from ThreadPool::ParallelForDynamicWorker, which
/// guarantees at most one concurrent task per index, so Get needs no locking.
class PerWorkerScratch {
 public:
  PerWorkerScratch(ExtractionScratchPool* pool, size_t num_nodes,
                   size_t max_workers)
      : pool_(pool), num_nodes_(num_nodes), leases_(max_workers) {}

  ExtractionScratch& Get(int worker) {
    Lease& lease = leases_[static_cast<size_t>(worker)];
    if (lease.get() == nullptr) lease = pool_->Acquire(num_nodes_);
    return *lease;
  }

 private:
  using Lease = ExtractionScratchPool::Lease;
  ExtractionScratchPool* pool_;
  size_t num_nodes_;
  std::vector<Lease> leases_;
};

}  // namespace wikisearch
