// Tunable parameters of the Central Graph search engine (the paper's
// Table III plus engineering knobs and ablation switches).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace wikisearch {

namespace obs {
class TraceContext;
class MetricRegistry;
}  // namespace obs

/// Test-only fault-injection hook (see SearchOptions::fault_injection): the
/// engine invokes it at named execution points so tests can stall a worker
/// mid-level or force deadline expiry at any stage boundary. Points:
///   "bottomup:level"     — start of each BFS level, before enqueue
///   "bottomup:identify"  — after Central-Node identification of a level
///   "bottomup:chunk"     — once per expansion worker chunk
///   "stage:topdown"      — between stage 1 and stage 2
///   "topdown:candidate"  — before each candidate extraction
///   "topdown:bound"      — before each top-k bound certification attempt
///   "dynamic:level"      — start of each dynamic-engine level
///   "dynamic:chunk"      — once per dynamic-engine expansion chunk
///   "dynamic:topdown"    — before each dynamic-engine candidate
using FaultHook = std::function<void(const char* point)>;

/// Which implementation of the two-stage algorithm executes the query.
enum class EngineKind {
  /// Single-threaded reference implementation (Tnum = 1 in the paper).
  kSequential,
  /// The paper's CPU-Par: lock-free, coarse-grained frontier parallelism,
  /// sequential frontier enqueue (fastest on CPU per Sec. V-B).
  kCpuParallel,
  /// The paper's CPU-Par-d: dynamic memory + per-node locks, paths recorded
  /// during search so no extraction phase is needed. Validation baseline.
  kCpuDynamic,
  /// The paper's GPU-Par, simulated on CPU (DESIGN.md substitution 2):
  /// parallel frontier compaction with atomic cursors, warp-style
  /// (frontier x BFS-instance) work items, device->host transfer of the
  /// node-keyword matrix modeled explicitly.
  kGpuSim,
};

const char* EngineKindName(EngineKind kind);

/// Which bottom-up kernel variant executes the hot loops (identify /
/// enqueue-scan / expansion). All variants are byte-identical in results
/// (kernel_equivalence_test); they differ only in instruction selection.
enum class KernelIsa {
  /// AVX2 when built in, supported by the CPU and not vetoed (the
  /// WIKISEARCH_FORCE_SCALAR environment variable and TSan builds force
  /// scalar); otherwise scalar. The production default.
  kAuto,
  /// Portable scalar kernels, always built.
  kScalar,
  /// Request the AVX2 kernels explicitly; silently degrades to scalar when
  /// unavailable (tests gate on kernel::Avx2Usable first).
  kAvx2,
};

struct SearchOptions {
  /// Number of answers to return (paper default 20).
  int top_k = 20;
  /// Degree-of-summary preference in (0,1); larger admits more summary
  /// nodes (paper default 0.1, Sec. IV).
  double alpha = 0.1;
  /// Depth-penalty exponent of the scoring function Eq. 6 (default 0.2).
  double lambda = 0.2;
  /// Worker threads (paper's Tnum, default 30 on a 52-core box; scaled
  /// down here).
  int threads = 4;
  /// Maximum BFS expansion level lmax; <= 0 derives 2*ceil(A) + 2 from the
  /// graph's sampled average distance.
  int max_level = 0;
  EngineKind engine = EngineKind::kCpuParallel;

  // --- ablation switches (all true/defaulted reproduces the paper) ---
  /// Apply the level-cover pruning strategy (Sec. V-C).
  bool enable_level_cover = true;
  /// Drop Central Graphs that fully contain an already-selected answer.
  bool dedup_answers = true;
  /// Enforce minimum activation levels; disabling reduces the search to
  /// plain concurrent BFSes (the paper argues the results are meaningless;
  /// bench_ablation_design quantifies it).
  bool enable_activation = true;
  /// Enqueue next-level frontiers from per-thread buffers filled during
  /// expansion (O(frontier) per level) instead of scanning all n frontier
  /// flags (the paper's CPU enqueue). Results are identical
  /// (bench_frontier quantifies the difference); ignored by kGpuSim, which
  /// models the GPU's parallel compaction, and by kCpuDynamic.
  bool use_frontier_buffers = true;
  /// Bottom-up kernel instruction-set selection (see KernelIsa).
  KernelIsa kernel_isa = KernelIsa::kAuto;
  /// Bin frontier nodes into degree tiers before expansion and split hub
  /// adjacency runs into sub-ranges, so one hub never serializes a worker
  /// chunk (DESIGN.md §11; the radial-pattern paper's warp/block split as
  /// chunk-size tiers). Results are byte-identical either way; false keeps
  /// the flat one-task-per-frontier-node schedule for ablation.
  bool degree_bucketed_expansion = true;
  /// Ablation/bench baseline: expand instance-major (one adjacency pass per
  /// hit BFS instance, the pre-kernel code shape) instead of neighbor-major
  /// (one adjacency pass per node). bench_kernel measures the gap; results
  /// are byte-identical.
  bool legacy_instance_expansion = false;
  /// Prune top-down candidates whose admissible score lower bound provably
  /// cannot enter the served top-k (DESIGN.md §14). The served answer set is
  /// byte-identical either way (topdown_equivalence_test); false runs the
  /// exhaustive extraction for every candidate (ablation / validation).
  /// Self-disables when weights can be negative, when top_k == 0, or when
  /// the candidate count does not exceed top_k.
  bool enable_topdown_bound = true;
  /// Ablation/bench baseline: route the top-down stage through the
  /// pre-scratch code path (per-candidate hash containers, std::function
  /// keyword-mask indirection, per-edge central-depth rescans, no bound
  /// pruning). bench_topdown measures the gap; results are byte-identical.
  bool legacy_topdown_extraction = false;

  /// Safety valve: cap on Central Nodes carried into the top-down stage.
  size_t max_central_candidates = 1 << 20;

  // --- bounded execution (anytime search) ---
  /// Per-query wall-clock budget in milliseconds; 0 disables (unbounded, the
  /// historical behavior, bit-identical results). A query that exhausts its
  /// budget stops at the next check point and returns its best partial
  /// answers with SearchStats::timed_out set; it never overshoots by more
  /// than one worker chunk / one extraction candidate of work.
  double deadline_ms = 0.0;
  /// Fraction of the budget stage 1 (bottom-up) may consume before yielding
  /// to stage 2, so extraction always gets a slice of the deadline and a
  /// timed-out query can still materialize the centrals it found.
  double bottom_up_budget_fraction = 0.6;
  /// Test-only: invoked at named execution points (see FaultHook). Null in
  /// production; the per-check cost is one branch.
  FaultHook fault_injection;

  // --- observability (DESIGN.md §8) ---
  /// When non-null, the engine records nested stage spans for this query
  /// into the context (naming scheme in obs/trace.h). The context must
  /// outlive the call and must not be shared across concurrent queries.
  /// Null (the default) skips all span bookkeeping — the engine's stage
  /// timers then behave exactly as before this layer existed.
  obs::TraceContext* trace = nullptr;
  /// Registry that per-query counters and latency histograms report into.
  /// Null means obs::MetricRegistry::Global(). Tests pass their own registry
  /// for isolation.
  obs::MetricRegistry* metrics = nullptr;
  /// Master switch for metric reporting (spans are governed by `trace`
  /// alone). Benchmarks measuring instrumentation overhead turn this off.
  bool record_metrics = true;
};

}  // namespace wikisearch
