// Tunable parameters of the Central Graph search engine (the paper's
// Table III plus engineering knobs and ablation switches).
#pragma once

#include <cstddef>
#include <cstdint>

namespace wikisearch {

/// Which implementation of the two-stage algorithm executes the query.
enum class EngineKind {
  /// Single-threaded reference implementation (Tnum = 1 in the paper).
  kSequential,
  /// The paper's CPU-Par: lock-free, coarse-grained frontier parallelism,
  /// sequential frontier enqueue (fastest on CPU per Sec. V-B).
  kCpuParallel,
  /// The paper's CPU-Par-d: dynamic memory + per-node locks, paths recorded
  /// during search so no extraction phase is needed. Validation baseline.
  kCpuDynamic,
  /// The paper's GPU-Par, simulated on CPU (DESIGN.md substitution 2):
  /// parallel frontier compaction with atomic cursors, warp-style
  /// (frontier x BFS-instance) work items, device->host transfer of the
  /// node-keyword matrix modeled explicitly.
  kGpuSim,
};

const char* EngineKindName(EngineKind kind);

struct SearchOptions {
  /// Number of answers to return (paper default 20).
  int top_k = 20;
  /// Degree-of-summary preference in (0,1); larger admits more summary
  /// nodes (paper default 0.1, Sec. IV).
  double alpha = 0.1;
  /// Depth-penalty exponent of the scoring function Eq. 6 (default 0.2).
  double lambda = 0.2;
  /// Worker threads (paper's Tnum, default 30 on a 52-core box; scaled
  /// down here).
  int threads = 4;
  /// Maximum BFS expansion level lmax; <= 0 derives 2*ceil(A) + 2 from the
  /// graph's sampled average distance.
  int max_level = 0;
  EngineKind engine = EngineKind::kCpuParallel;

  // --- ablation switches (all true/defaulted reproduces the paper) ---
  /// Apply the level-cover pruning strategy (Sec. V-C).
  bool enable_level_cover = true;
  /// Drop Central Graphs that fully contain an already-selected answer.
  bool dedup_answers = true;
  /// Enforce minimum activation levels; disabling reduces the search to
  /// plain concurrent BFSes (the paper argues the results are meaningless;
  /// bench_ablation_design quantifies it).
  bool enable_activation = true;
  /// Enqueue next-level frontiers from per-thread buffers filled during
  /// expansion (O(frontier) per level) instead of scanning all n frontier
  /// flags (the paper's CPU enqueue). Results are identical
  /// (bench_frontier quantifies the difference); ignored by kGpuSim, which
  /// models the GPU's parallel compaction, and by kCpuDynamic.
  bool use_frontier_buffers = true;

  /// Safety valve: cap on Central Nodes carried into the top-down stage.
  size_t max_central_candidates = 1 << 20;
};

}  // namespace wikisearch
