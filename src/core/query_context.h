// Per-query immutable context shared by both stages and all engine variants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/activation.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "graph/types.h"

namespace wikisearch {

struct QueryContext {
  QueryContext(GraphView g, std::vector<std::string> raw_keywords,
               std::vector<std::vector<NodeId>> t_i, ActivationMap act,
               int max_level)
      : graph(g),
        keywords(std::move(raw_keywords)),
        keyword_nodes(std::move(t_i)),
        activation(act),
        lmax(max_level) {
    // a_v depends only on (w_v, alpha), both fixed for the query, so the
    // Eq. 5 float math runs once per node here instead of once per
    // (neighbor, instance, level) probe in the expansion loops. Stored as
    // one byte per node (saturated at 255): every engine caps levels at 250
    // (Level is a byte), so all activation levels above 250 gate identically
    // and the 4x denser table keeps the expansion kernels' activation reads
    // inside fewer cache lines.
    const size_t n = g.num_nodes();
    activation_level.resize(n);
    if (g.has_weights()) {
      for (NodeId v = 0; v < n; ++v) {
        int a = activation.Level(g.NodeWeight(v));
        activation_level[v] = static_cast<uint8_t>(a > 255 ? 255 : a);
      }
    }
    // hit_gate folds the keyword-node exemption (Sec. IV-B: keyword nodes
    // may be hit at any level) into the activation table: zero for keyword
    // nodes, a_v otherwise. The expansion kernels' per-survivor gate is
    // then one byte load instead of a 4-byte stamp probe plus the byte.
    // The *frontier* gate keeps reading activation_level — keyword nodes
    // hit freely but still expand only once the level reaches a_v.
    hit_gate = activation_level;
    for (const std::vector<NodeId>& t_i : keyword_nodes) {
      for (NodeId v : t_i) hit_gate[v] = 0;
    }
  }

  /// Consistent view of the KB this query runs against (base snapshot plus
  /// the overlay patch pinned at query start). By value: two pointers.
  GraphView graph;
  /// Raw keywords, one per BFS instance (already analyzed/deduplicated).
  std::vector<std::string> keywords;
  /// T_i: the keyword node set seeding BFS instance B_i.
  std::vector<std::vector<NodeId>> keyword_nodes;
  ActivationMap activation;
  /// Minimum activation level a_v per node (Eq. 5), precomputed once per
  /// query and saturated into one byte (see the constructor note).
  /// Zero-filled when the graph has no weights attached.
  std::vector<uint8_t> activation_level;
  /// activation_level with keyword nodes forced to zero — the single-load
  /// hit gate of the expansion kernels (see the constructor note).
  std::vector<uint8_t> hit_gate;
  /// Maximum BFS expansion level (the paper's lmax).
  int lmax;

  size_t num_keywords() const { return keyword_nodes.size(); }
};

}  // namespace wikisearch
