// Per-query immutable context shared by both stages and all engine variants.
#pragma once

#include <string>
#include <vector>

#include "core/activation.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "graph/types.h"

namespace wikisearch {

struct QueryContext {
  QueryContext(GraphView g, std::vector<std::string> raw_keywords,
               std::vector<std::vector<NodeId>> t_i, ActivationMap act,
               int max_level)
      : graph(g),
        keywords(std::move(raw_keywords)),
        keyword_nodes(std::move(t_i)),
        activation(act),
        lmax(max_level) {
    // a_v depends only on (w_v, alpha), both fixed for the query, so the
    // Eq. 5 float math runs once per node here instead of once per
    // (neighbor, instance, level) probe in the expansion loops.
    const size_t n = g.num_nodes();
    activation_level.resize(n);
    if (g.has_weights()) {
      for (NodeId v = 0; v < n; ++v) {
        activation_level[v] = activation.Level(g.NodeWeight(v));
      }
    }
  }

  /// Consistent view of the KB this query runs against (base snapshot plus
  /// the overlay patch pinned at query start). By value: two pointers.
  GraphView graph;
  /// Raw keywords, one per BFS instance (already analyzed/deduplicated).
  std::vector<std::string> keywords;
  /// T_i: the keyword node set seeding BFS instance B_i.
  std::vector<std::vector<NodeId>> keyword_nodes;
  ActivationMap activation;
  /// Minimum activation level a_v per node (Eq. 5), precomputed once per
  /// query. Zero-filled when the graph has no weights attached.
  std::vector<int> activation_level;
  /// Maximum BFS expansion level (the paper's lmax).
  int lmax;

  size_t num_keywords() const { return keyword_nodes.size(); }
};

}  // namespace wikisearch
