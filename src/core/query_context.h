// Per-query immutable context shared by both stages and all engine variants.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/activation.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "graph/types.h"

namespace wikisearch {

struct QueryContext {
  QueryContext(GraphView g, std::vector<std::string> raw_keywords,
               std::vector<std::vector<NodeId>> t_i, ActivationMap act,
               int max_level)
      : graph(g),
        keywords(std::move(raw_keywords)),
        keyword_nodes(std::move(t_i)),
        activation(act),
        lmax(max_level) {
    // a_v depends only on (w_v, alpha), both fixed for the query, so the
    // Eq. 5 float math runs once per node here instead of once per
    // (neighbor, instance, level) probe in the expansion loops. Stored as
    // one byte per node (saturated at 255): every engine caps levels at 250
    // (Level is a byte), so all activation levels above 250 gate identically
    // and the 4x denser table keeps the expansion kernels' activation reads
    // inside fewer cache lines.
    const size_t n = g.num_nodes();
    activation_level.resize(n);
    if (g.has_weights()) {
      weights_nonneg = true;
      for (NodeId v = 0; v < n; ++v) {
        const double w = g.NodeWeight(v);
        // Piggyback on the per-node pass: the top-down score bound is only
        // admissible over nonnegative weights (answer weight sums must be
        // monotone in their terms), and overlay-patched weights are not
        // statically guaranteed nonnegative. NaN fails the test too.
        if (!(w >= 0.0)) weights_nonneg = false;
        int a = activation.Level(w);
        activation_level[v] = static_cast<uint8_t>(a > 255 ? 255 : a);
      }
      // min_{v in T_i} w(v), one double per BFS instance: the cheapest
      // certain weight any answer missing keyword i must still pay for a
      // T_i node (core/answer.h ScoreLowerBound).
      min_keyword_weight.resize(keyword_nodes.size(), 0.0);
      for (size_t i = 0; i < keyword_nodes.size(); ++i) {
        double mn = 0.0;
        bool first = true;
        for (NodeId v : keyword_nodes[i]) {
          const double w = g.NodeWeight(v);
          if (first || w < mn) mn = w;
          first = false;
        }
        min_keyword_weight[i] = mn;
      }
    }
    // hit_gate folds the keyword-node exemption (Sec. IV-B: keyword nodes
    // may be hit at any level) into the activation table: zero for keyword
    // nodes, a_v otherwise. The expansion kernels' per-survivor gate is
    // then one byte load instead of a 4-byte stamp probe plus the byte.
    // The *frontier* gate keeps reading activation_level — keyword nodes
    // hit freely but still expand only once the level reaches a_v.
    hit_gate = activation_level;
    for (const std::vector<NodeId>& t_i : keyword_nodes) {
      for (NodeId v : t_i) hit_gate[v] = 0;
    }
    // Max number of BFS instances sharing one keyword node. Any answer must
    // cover its missing keywords with distinct non-central nodes, and no
    // single node can witness more than this many keywords — so a missing
    // set M needs >= ceil(|M| / multiplicity) nodes, which is what lets the
    // top-down bound SUM per-keyword min weights instead of taking their
    // max (core/top_down.cc, DESIGN.md §14). Duplicates within one T_i only
    // inflate the count, which weakens the bound but keeps it admissible.
    {
      size_t total = 0;
      for (const std::vector<NodeId>& t_i : keyword_nodes) {
        total += t_i.size();
      }
      std::vector<NodeId> all;
      all.reserve(total);
      for (const std::vector<NodeId>& t_i : keyword_nodes) {
        all.insert(all.end(), t_i.begin(), t_i.end());
      }
      std::sort(all.begin(), all.end());
      size_t run = 1;
      for (size_t j = 1; j < all.size(); ++j) {
        run = all[j] == all[j - 1] ? run + 1 : 1;
        if (run > max_keyword_multiplicity) max_keyword_multiplicity = run;
      }
    }
  }

  /// Consistent view of the KB this query runs against (base snapshot plus
  /// the overlay patch pinned at query start). By value: two pointers.
  GraphView graph;
  /// Raw keywords, one per BFS instance (already analyzed/deduplicated).
  std::vector<std::string> keywords;
  /// T_i: the keyword node set seeding BFS instance B_i.
  std::vector<std::vector<NodeId>> keyword_nodes;
  ActivationMap activation;
  /// Minimum activation level a_v per node (Eq. 5), precomputed once per
  /// query and saturated into one byte (see the constructor note).
  /// Zero-filled when the graph has no weights attached.
  std::vector<uint8_t> activation_level;
  /// activation_level with keyword nodes forced to zero — the single-load
  /// hit gate of the expansion kernels (see the constructor note).
  std::vector<uint8_t> hit_gate;
  /// Minimum node weight over T_i, per BFS instance (empty when the graph
  /// has no weights). Feeds the top-down score lower bound.
  std::vector<double> min_keyword_weight;
  /// True when every node weight is nonnegative (and weights exist) — the
  /// precondition of the admissible top-down score bound; false disables
  /// bound pruning for the query (exhaustive path, identical answers).
  bool weights_nonneg = false;
  /// Max number of T_i any single keyword node belongs to (>= 1; 1 when the
  /// keyword node sets are pairwise disjoint, the common case). Feeds the
  /// distinct-witness count of the top-down score bound (constructor note).
  size_t max_keyword_multiplicity = 1;
  /// Maximum BFS expansion level (the paper's lmax).
  int lmax;

  size_t num_keywords() const { return keyword_nodes.size(); }
};

}  // namespace wikisearch
