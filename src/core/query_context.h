// Per-query immutable context shared by both stages and all engine variants.
#pragma once

#include <string>
#include <vector>

#include "core/activation.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace wikisearch {

struct QueryContext {
  QueryContext(const KnowledgeGraph* g, std::vector<std::string> raw_keywords,
               std::vector<std::vector<NodeId>> t_i, ActivationMap act,
               int max_level)
      : graph(g),
        keywords(std::move(raw_keywords)),
        keyword_nodes(std::move(t_i)),
        activation(act),
        lmax(max_level) {}

  const KnowledgeGraph* graph;
  /// Raw keywords, one per BFS instance (already analyzed/deduplicated).
  std::vector<std::string> keywords;
  /// T_i: the keyword node set seeding BFS instance B_i.
  std::vector<std::vector<NodeId>> keyword_nodes;
  ActivationMap activation;
  /// Maximum BFS expansion level (the paper's lmax).
  int lmax;

  size_t num_keywords() const { return keyword_nodes.size(); }
};

}  // namespace wikisearch
