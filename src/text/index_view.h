// Read-through view of an InvertedIndex plus an optional posting-delta
// overlay — the text-layer twin of GraphView (DESIGN.md §10). A touched
// term's posting list is materialized in full inside the patch (sorted
// unique, exactly what InvertedIndex stores), so a view lookup is one hash
// probe with no merge logic and no locks; untouched terms read straight
// from the immutable base index. An empty merged list is a tombstone: the
// term currently matches no node.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "text/inverted_index.h"

namespace wikisearch {

/// Immutable posting deltas over a base InvertedIndex. Built by
/// live::DeltaOverlay (copy-on-write per batch), consumed read-only.
struct IndexOverlayPatch {
  /// Full replacement posting list per touched term (sorted unique). An
  /// empty vector tombstones the term.
  std::unordered_map<std::string, std::vector<NodeId>> merged_postings;
  /// View-total term/posting counts (base counts adjusted by the deltas).
  size_t num_terms = 0;
  size_t total_postings = 0;

  size_t OverlayBytes() const;
};

/// Non-owning, trivially copyable read view over (base, patch).
class IndexView {
 public:
  IndexView() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit.
  IndexView(const InvertedIndex& base) : base_(&base) {}
  IndexView(const InvertedIndex* base, const IndexOverlayPatch* patch)
      : base_(base), patch_(patch) {}

  /// Posting list for a raw keyword, analyzed with the base's analyzer.
  std::span<const NodeId> Lookup(std::string_view raw_keyword) const;

  /// Posting list for an already-analyzed term.
  std::span<const NodeId> LookupTerm(const std::string& term) const {
    if (patch_ != nullptr) {
      auto it = patch_->merged_postings.find(term);
      if (it != patch_->merged_postings.end()) {
        return {it->second.data(), it->second.size()};
      }
    }
    return base_->LookupTerm(term);
  }

  size_t KeywordFrequency(std::string_view raw_keyword) const {
    return Lookup(raw_keyword).size();
  }

  std::vector<std::string> AnalyzeQuery(std::string_view query) const {
    return base_->AnalyzeQuery(query);
  }

  size_t num_terms() const {
    return patch_ != nullptr ? patch_->num_terms : base_->num_terms();
  }
  size_t num_postings() const {
    return patch_ != nullptr ? patch_->total_postings
                             : base_->num_postings();
  }
  size_t MemoryBytes() const {
    return base_->MemoryBytes() +
           (patch_ != nullptr ? patch_->OverlayBytes() : 0);
  }

  const AnalyzerOptions& options() const { return base_->options(); }
  const InvertedIndex* base() const { return base_; }
  const IndexOverlayPatch* patch() const { return patch_; }

 private:
  const InvertedIndex* base_ = nullptr;
  const IndexOverlayPatch* patch_ = nullptr;
};

}  // namespace wikisearch
