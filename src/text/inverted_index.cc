#include "text/inverted_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

namespace wikisearch {

InvertedIndex InvertedIndex::Build(const KnowledgeGraph& g,
                                   const AnalyzerOptions& opts) {
  InvertedIndex index;
  index.opts_ = opts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::string& term : AnalyzeText(g.NodeName(v), opts)) {
      index.postings_[std::move(term)].push_back(v);
    }
  }
  index.total_postings_ = 0;
  for (auto& [term, list] : index.postings_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    list.shrink_to_fit();
    index.total_postings_ += list.size();
  }
  return index;
}

std::span<const NodeId> InvertedIndex::Lookup(
    std::string_view raw_keyword) const {
  std::vector<std::string> terms = AnalyzeText(raw_keyword, opts_);
  if (terms.empty()) return {};
  // A single keyword analyzes to at most one term in practice; if the
  // analyzer splits it, take the first term.
  return LookupTerm(terms.front());
}

std::span<const NodeId> InvertedIndex::LookupTerm(
    const std::string& term) const {
  auto it = postings_.find(term);
  if (it == postings_.end()) return {};
  return {it->second.data(), it->second.size()};
}

void InvertedIndex::SetTermPostings(const std::string& term,
                                    std::vector<NodeId> list) {
  auto it = postings_.find(term);
  if (it != postings_.end()) {
    total_postings_ -= it->second.size();
    if (list.empty()) {
      postings_.erase(it);
      return;
    }
    total_postings_ += list.size();
    it->second = std::move(list);
    return;
  }
  if (list.empty()) return;
  total_postings_ += list.size();
  postings_.emplace(term, std::move(list));
}

void InvertedIndex::AddNodeTerms(NodeId v,
                                 const std::vector<std::string>& terms) {
  for (const std::string& t : terms) {
    std::vector<NodeId>& list = postings_[t];
    auto at = std::lower_bound(list.begin(), list.end(), v);
    if (at != list.end() && *at == v) continue;
    list.insert(at, v);
    ++total_postings_;
  }
}

std::vector<std::string> InvertedIndex::Terms() const {
  std::vector<std::string> out;
  out.reserve(postings_.size());
  for (const auto& [term, list] : postings_) out.push_back(term);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> InvertedIndex::AnalyzeQuery(
    std::string_view query) const {
  std::vector<std::string> terms = AnalyzeText(query, opts_);
  std::vector<std::string> unique;
  for (auto& t : terms) {
    if (std::find(unique.begin(), unique.end(), t) == unique.end()) {
      unique.push_back(std::move(t));
    }
  }
  return unique;
}

namespace {

constexpr char kIndexMagic[4] = {'W', 'S', 'I', 'X'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) return Status::IoError("short write");
  return Status::OK();
}

Status ReadAll(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) return Status::IoError("short read");
  return Status::OK();
}

}  // namespace

Status InvertedIndex::SaveTo(std::FILE* f) const {
  WS_RETURN_NOT_OK(WriteAll(f, kIndexMagic, sizeof(kIndexMagic)));
  uint8_t flags[3] = {opts_.lowercase, opts_.remove_stopwords, opts_.stem};
  WS_RETURN_NOT_OK(WriteAll(f, flags, sizeof(flags)));
  uint64_t lens[2] = {opts_.min_token_len, opts_.max_token_len};
  WS_RETURN_NOT_OK(WriteAll(f, lens, sizeof(lens)));
  uint64_t num_terms = postings_.size();
  WS_RETURN_NOT_OK(WriteAll(f, &num_terms, sizeof(num_terms)));
  for (const auto& [term, list] : postings_) {
    uint32_t tlen = static_cast<uint32_t>(term.size());
    uint64_t plen = list.size();
    WS_RETURN_NOT_OK(WriteAll(f, &tlen, sizeof(tlen)));
    WS_RETURN_NOT_OK(WriteAll(f, term.data(), tlen));
    WS_RETURN_NOT_OK(WriteAll(f, &plen, sizeof(plen)));
    WS_RETURN_NOT_OK(WriteAll(f, list.data(), plen * sizeof(NodeId)));
  }
  return Status::OK();
}

Result<InvertedIndex> InvertedIndex::LoadFrom(std::FILE* f) {
  char magic[4];
  WS_RETURN_NOT_OK(ReadAll(f, magic, sizeof(magic)));
  if (std::memcmp(magic, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return Status::Corruption("bad magic; not a WSIX section");
  }
  InvertedIndex index;
  uint8_t flags[3];
  WS_RETURN_NOT_OK(ReadAll(f, flags, sizeof(flags)));
  index.opts_.lowercase = flags[0];
  index.opts_.remove_stopwords = flags[1];
  index.opts_.stem = flags[2];
  uint64_t lens[2];
  WS_RETURN_NOT_OK(ReadAll(f, lens, sizeof(lens)));
  index.opts_.min_token_len = lens[0];
  index.opts_.max_token_len = lens[1];
  uint64_t num_terms = 0;
  WS_RETURN_NOT_OK(ReadAll(f, &num_terms, sizeof(num_terms)));
  if (num_terms > (1ULL << 30)) return Status::Corruption("implausible size");
  for (uint64_t t = 0; t < num_terms; ++t) {
    uint32_t tlen = 0;
    WS_RETURN_NOT_OK(ReadAll(f, &tlen, sizeof(tlen)));
    if (tlen > (1u << 20)) return Status::Corruption("implausible term");
    std::string term(tlen, '\0');
    WS_RETURN_NOT_OK(ReadAll(f, term.data(), tlen));
    uint64_t plen = 0;
    WS_RETURN_NOT_OK(ReadAll(f, &plen, sizeof(plen)));
    if (plen > (1ULL << 32)) return Status::Corruption("implausible list");
    std::vector<NodeId> list(plen);
    WS_RETURN_NOT_OK(ReadAll(f, list.data(), plen * sizeof(NodeId)));
    index.total_postings_ += list.size();
    index.postings_.emplace(std::move(term), std::move(list));
  }
  return index;
}

Status InvertedIndex::Save(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  return SaveTo(f.get());
}

Result<InvertedIndex> InvertedIndex::Load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  Result<InvertedIndex> r = LoadFrom(f.get());
  if (!r.ok()) {
    Status st = r.status();
    if (st.code() == StatusCode::kCorruption) {
      return Status::Corruption(st.message() + ": " + path);
    }
    return Status::IoError(st.message() + ": " + path);
  }
  return r;
}

size_t InvertedIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [term, list] : postings_) {
    bytes += term.size() + sizeof(term) + list.capacity() * sizeof(NodeId) +
             sizeof(list);
  }
  return bytes;
}

}  // namespace wikisearch
