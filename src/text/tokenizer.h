// Text analysis pipeline applied to node names and user queries: lowercase,
// split on non-alphanumerics, stop-word filtering and Porter stemming. The
// paper applies "stopping word filtering and word stemming" before indexing
// (Sec. II), and we do exactly the same on both documents and queries so
// terms match.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wikisearch {

struct AnalyzerOptions {
  bool lowercase = true;
  bool remove_stopwords = true;
  bool stem = true;
  size_t min_token_len = 2;
  size_t max_token_len = 40;
};

/// Splits text on non-alphanumeric characters. No normalization.
std::vector<std::string> Tokenize(std::string_view text);

/// Full pipeline: tokenize + lowercase + stopword filter + stem.
std::vector<std::string> AnalyzeText(std::string_view text,
                                     const AnalyzerOptions& opts = {});

/// True if `token` (already lowercased) is a stop word.
bool IsStopWord(std::string_view token);

}  // namespace wikisearch
