// Inverted index mapping analyzed keyword terms to the nodes whose names
// contain them — the keyword-node sets T_i that seed each BFS instance
// (Sec. III). This is the only text index the algorithm requires; the paper
// stresses that, unlike BLINKS, no keyword-distance precomputation is needed.
#pragma once

#include <cstdio>
#include <span>
#include <string>

#include "common/status.h"
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"
#include "text/tokenizer.h"

namespace wikisearch {

class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Builds the index over all node names of `g`.
  static InvertedIndex Build(const KnowledgeGraph& g,
                             const AnalyzerOptions& opts = {});

  /// Posting list (sorted unique NodeIds) for a *raw* keyword; the keyword is
  /// run through the same analyzer as documents. Empty if unknown.
  std::span<const NodeId> Lookup(std::string_view raw_keyword) const;

  /// Posting list for an already-analyzed term.
  std::span<const NodeId> LookupTerm(const std::string& term) const;

  /// Document frequency of a raw keyword (the paper's "keyword frequency",
  /// Table V's kwf columns).
  size_t KeywordFrequency(std::string_view raw_keyword) const {
    return Lookup(raw_keyword).size();
  }

  /// Analyzes a free-text query into terms (duplicates removed, order kept).
  std::vector<std::string> AnalyzeQuery(std::string_view query) const;

  size_t num_terms() const { return postings_.size(); }
  size_t num_postings() const { return total_postings_; }

  /// Replaces (or inserts) one term's posting list; an empty `list` erases
  /// the term. `list` must be sorted unique. Used by the live-update fold
  /// to apply an IndexOverlayPatch, and by tests rebuilding comparators.
  void SetTermPostings(const std::string& term, std::vector<NodeId> list);

  /// Adds node `v` to the posting list of every term in `terms` (sorted
  /// insert, no-op where already present) — how extra node text enters the
  /// index beyond the indexed node name.
  void AddNodeTerms(NodeId v, const std::vector<std::string>& terms);

  /// All indexed terms, sorted — exposed so equivalence tests can compare
  /// two indexes term by term.
  std::vector<std::string> Terms() const;

  /// Approximate resident bytes.
  size_t MemoryBytes() const;

  const AnalyzerOptions& options() const { return opts_; }

  /// Persists the index (terms + posting lists + analyzer options) to a
  /// binary file, so services can skip the build on startup.
  Status Save(const std::string& path) const;
  static Result<InvertedIndex> Load(const std::string& path);

  /// Stream variants writing/reading the same "WSIX" section at the current
  /// file position — used to embed the index inside a larger snapshot file
  /// (live durability layer).
  Status SaveTo(std::FILE* f) const;
  static Result<InvertedIndex> LoadFrom(std::FILE* f);

 private:
  AnalyzerOptions opts_;
  std::unordered_map<std::string, std::vector<NodeId>> postings_;
  size_t total_postings_ = 0;
};

}  // namespace wikisearch
