// Porter stemming algorithm (M.F. Porter, 1980), implemented from the
// original paper's rule tables. Reduces inflected English words to a common
// stem: "relational" -> "relat", "indexing" -> "index".
#pragma once

#include <string>
#include <string_view>

namespace wikisearch {

/// Returns the Porter stem of a lowercase ASCII word. Words shorter than
/// 3 characters are returned unchanged (per the algorithm).
std::string PorterStem(std::string_view word);

}  // namespace wikisearch
