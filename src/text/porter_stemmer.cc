#include "text/porter_stemmer.h"

#include <cstring>

namespace wikisearch {

namespace {

// Direct transliteration of the original algorithm. `b` holds the word,
// `k` indexes its last character, `j` marks the candidate stem end set by
// Ends().
class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : b_(word) {
    k_ = static_cast<int>(b_.size()) - 1;
  }

  std::string Run() {
    if (k_ <= 1) return b_;  // words of length <= 2 are left alone
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<size_t>(k_ + 1));
    return b_;
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b_[0..j_]: the number of VC sequences.
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (b_[static_cast<size_t>(i)] != b_[static_cast<size_t>(i - 1)]) {
      return false;
    }
    return IsConsonant(i);
  }

  // consonant-vowel-consonant ending at i, where the final consonant is not
  // w, x or y. Restores an 'e' after e.g. "hop(e)" -> "hoping" -> "hope".
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char c = b_[static_cast<size_t>(i)];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool Ends(const char* s) {
    const int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (std::memcmp(b_.data() + (k_ + 1 - len), s,
                    static_cast<size_t>(len)) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  void SetTo(const char* s) {
    const int len = static_cast<int>(std::strlen(s));
    b_.resize(static_cast<size_t>(j_ + 1));
    b_.append(s, static_cast<size_t>(len));
    k_ = j_ + len;
  }

  void ReplaceIfMeasure(const char* s) {
    if (Measure() > 0) SetTo(s);
  }

  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char c = b_[static_cast<size_t>(k_)];
        if (c != 'l' && c != 's' && c != 'z') --k_;
      } else if (Measure() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (Ends("y") && VowelInStem()) {
      b_[static_cast<size_t>(k_)] = 'i';
    }
  }

  void Step2() {
    struct Rule {
      const char* suffix;
      const char* replacement;
    };
    static constexpr Rule kRules[] = {
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"},
    };
    for (const Rule& r : kRules) {
      if (Ends(r.suffix)) {
        ReplaceIfMeasure(r.replacement);
        return;
      }
    }
  }

  void Step3() {
    struct Rule {
      const char* suffix;
      const char* replacement;
    };
    static constexpr Rule kRules[] = {
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""},
    };
    for (const Rule& r : kRules) {
      if (Ends(r.suffix)) {
        ReplaceIfMeasure(r.replacement);
        return;
      }
    }
  }

  void Step4() {
    static constexpr const char* kSuffixes[] = {
        "al",  "ance", "ence", "er",  "ic",  "able", "ible", "ant",
        "ement", "ment", "ent", "ion", "ou",  "ism",  "ate",  "iti",
        "ous", "ive",  "ize",
    };
    for (const char* s : kSuffixes) {
      if (!Ends(s)) continue;
      if (std::strcmp(s, "ion") == 0) {
        char c = (j_ >= 0) ? b_[static_cast<size_t>(j_)] : '\0';
        if (c != 's' && c != 't') continue;
      }
      if (Measure() > 1) k_ = j_;
      return;
    }
  }

  void Step5() {
    // Step 5a.
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int m = Measure();
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) --k_;
    }
    // Step 5b.
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleConsonant(k_) &&
        Measure() > 1) {
      --k_;
    }
  }

  std::string b_;
  int k_ = -1;
  int j_ = 0;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  return Stemmer(word).Run();
}

}  // namespace wikisearch
