#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

#include "text/porter_stemmer.h"

namespace wikisearch {

namespace {

const std::unordered_set<std::string_view>& StopWordSet() {
  // Standard English stop list (Snowball-derived) plus connective tokens
  // common in knowledge-base entity names.
  static const auto* kSet = new std::unordered_set<std::string_view>{
      "a",     "an",    "and",   "are",   "as",    "at",    "be",    "but",
      "by",    "for",   "from",  "had",   "has",   "have",  "he",    "her",
      "his",   "how",   "if",    "in",    "into",  "is",    "it",    "its",
      "no",    "not",   "of",    "on",    "or",    "our",   "she",   "so",
      "than",  "that",  "the",   "their", "them",  "then",  "there", "these",
      "they",  "this",  "those", "to",    "was",   "we",    "were",  "what",
      "when",  "where", "which", "who",   "will",  "with",  "would", "you",
      "your",  "via",   "per",   "within",
  };
  return *kSet;
}

}  // namespace

bool IsStopWord(std::string_view token) {
  return StopWordSet().count(token) > 0;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> AnalyzeText(std::string_view text,
                                     const AnalyzerOptions& opts) {
  std::vector<std::string> out;
  for (std::string& token : Tokenize(text)) {
    if (opts.lowercase) {
      for (char& c : token) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    if (token.size() < opts.min_token_len ||
        token.size() > opts.max_token_len) {
      continue;
    }
    if (opts.remove_stopwords && IsStopWord(token)) continue;
    if (opts.stem) token = PorterStem(token);
    out.push_back(std::move(token));
  }
  return out;
}

}  // namespace wikisearch
