#include "text/index_view.h"

#include "text/tokenizer.h"

namespace wikisearch {

size_t IndexOverlayPatch::OverlayBytes() const {
  size_t bytes = 0;
  for (const auto& [term, list] : merged_postings) {
    bytes += term.size() + sizeof(term) + list.capacity() * sizeof(NodeId);
  }
  return bytes;
}

std::span<const NodeId> IndexView::Lookup(std::string_view raw_keyword) const {
  std::vector<std::string> terms = AnalyzeText(raw_keyword, options());
  if (terms.empty()) return {};
  // Same convention as InvertedIndex::Lookup: one keyword, first term.
  return LookupTerm(terms.front());
}

}  // namespace wikisearch
