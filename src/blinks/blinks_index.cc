#include "blinks/blinks_index.h"

#include <algorithm>
#include <queue>

#include "common/timer.h"

namespace wikisearch::blinks {

BlinksIndex BlinksIndex::Build(const KnowledgeGraph& graph,
                               const InvertedIndex& text_index, int radius,
                               size_t min_df) {
  WallTimer timer;
  BlinksIndex out;
  out.radius_ = radius;

  // Enumerate indexed terms by walking node names through the analyzer —
  // the InvertedIndex does not expose iteration, and re-analyzing keeps the
  // two structures consistent by construction.
  std::vector<std::string> terms;
  {
    std::unordered_map<std::string, size_t> seen;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      for (std::string& t : AnalyzeText(graph.NodeName(v),
                                        text_index.options())) {
        ++seen[std::move(t)];
      }
    }
    for (auto& [term, count] : seen) {
      if (text_index.LookupTerm(term).size() >= min_df) terms.push_back(term);
    }
    std::sort(terms.begin(), terms.end());
  }

  std::vector<uint16_t> dist(graph.num_nodes());
  std::vector<NodeId> frontier, next;
  for (const std::string& term : terms) {
    std::span<const NodeId> sources = text_index.LookupTerm(term);
    if (sources.empty()) continue;
    // Bounded multi-source BFS.
    constexpr uint16_t kUnset = 0xFFFF;
    std::fill(dist.begin(), dist.end(), kUnset);
    frontier.clear();
    std::vector<DistEntry>& list = out.lists_[term];
    auto& map = out.node_map_[term];
    for (NodeId s : sources) {
      if (dist[s] == kUnset) {
        dist[s] = 0;
        frontier.push_back(s);
        list.push_back({s, 0});
        map.emplace(s, 0);
      }
    }
    for (uint16_t level = 1; level <= radius && !frontier.empty(); ++level) {
      next.clear();
      for (NodeId v : frontier) {
        for (const AdjEntry& e : graph.Neighbors(v)) {
          if (dist[e.target] != kUnset) continue;
          dist[e.target] = level;
          next.push_back(e.target);
          list.push_back({e.target, level});
          map.emplace(e.target, level);
        }
      }
      frontier.swap(next);
    }
    // Lists come out sorted by (dist, insertion); normalize to (dist, node).
    std::sort(list.begin(), list.end(), [](const DistEntry& a,
                                           const DistEntry& b) {
      if (a.dist != b.dist) return a.dist < b.dist;
      return a.node < b.node;
    });
    out.stats_.entries += list.size();
  }

  out.stats_.terms = out.lists_.size();
  for (const auto& [term, list] : out.lists_) {
    out.stats_.bytes += term.size() * 2 + list.capacity() * sizeof(DistEntry);
  }
  for (const auto& [term, map] : out.node_map_) {
    // unordered_map node->dist: bucket + entry overhead estimate.
    out.stats_.bytes += map.size() * (sizeof(NodeId) + sizeof(uint16_t) + 16);
  }
  out.stats_.build_ms = timer.ElapsedMs();
  return out;
}

std::span<const DistEntry> BlinksIndex::List(const std::string& term) const {
  auto it = lists_.find(term);
  if (it == lists_.end()) return {};
  return {it->second.data(), it->second.size()};
}

int BlinksIndex::Distance(const std::string& term, NodeId v) const {
  auto it = node_map_.find(term);
  if (it == node_map_.end()) return -1;
  auto jt = it->second.find(v);
  if (jt == it->second.end()) return -1;
  return jt->second;
}

}  // namespace wikisearch::blinks
