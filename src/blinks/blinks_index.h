// BLINKS-style precomputed keyword-distance index (He et al., SIGMOD'07),
// simplified to a single block. For every indexed term the builder runs a
// distance-bounded multi-source BFS and materializes
//
//   keyword-node list:  term -> [(node, dist)] sorted by distance,
//   node-keyword map:   (node, term) -> dist lookup,
//
// which makes keyword queries nearly free — at the price the paper
// highlights in Sec. II: storage and build time scale with
// #terms x reachable-nodes, which is what made BLINKS "infeasible on
// Wikidata KB with 30 million nodes and over 5 million keywords". The
// radius cap keeps the lists sparse; bench_blinks_tradeoff measures the
// growth.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.h"
#include "text/inverted_index.h"

namespace wikisearch::blinks {

struct DistEntry {
  NodeId node;
  uint16_t dist;
};

struct BuildStats {
  size_t terms = 0;
  size_t entries = 0;       // total (node, dist) pairs materialized
  size_t bytes = 0;         // resident storage of the lists + maps
  double build_ms = 0.0;
};

class BlinksIndex {
 public:
  /// Builds the index over every term of `text_index` whose posting list
  /// has at least `min_df` nodes, bounding list entries to distance
  /// <= `radius`.
  static BlinksIndex Build(const KnowledgeGraph& graph,
                           const InvertedIndex& text_index, int radius,
                           size_t min_df = 1);

  /// Keyword-node list for an already-analyzed term, sorted by (dist, node).
  /// Empty if the term is unknown.
  std::span<const DistEntry> List(const std::string& term) const;

  /// Node-keyword map lookup: distance from `v` to the nearest node
  /// containing `term`, or -1 if beyond the radius.
  int Distance(const std::string& term, NodeId v) const;

  const BuildStats& stats() const { return stats_; }
  int radius() const { return radius_; }

 private:
  int radius_ = 0;
  BuildStats stats_;
  std::unordered_map<std::string, std::vector<DistEntry>> lists_;
  // node-keyword map: per term, node -> index into the list.
  std::unordered_map<std::string, std::unordered_map<NodeId, uint16_t>>
      node_map_;
};

}  // namespace wikisearch::blinks
