#include "blinks/blinks_engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/timer.h"
#include "graph/graph_algos.h"

namespace wikisearch::blinks {

namespace {

/// Reconstructs one shortest hop-path from `root` to the nearest node
/// containing `term` (distance known to be `target_dist`), appending its
/// nodes/edges to the answer. Bounded BFS of depth target_dist.
void MaterializePath(const KnowledgeGraph& g, const BlinksIndex& index,
                     const std::string& term, NodeId root, int target_dist,
                     AnswerGraph* answer, std::vector<NodeId>* kw_nodes) {
  if (target_dist == 0) {
    kw_nodes->push_back(root);
    return;
  }
  // Walk greedily: from the current node, move to any neighbor whose
  // distance to the term is one less (the node-keyword map gives it O(1)).
  NodeId cur = root;
  int d = target_dist;
  while (d > 0) {
    for (const AdjEntry& e : g.Neighbors(cur)) {
      if (index.Distance(term, e.target) == d - 1) {
        AppendEdgesBetween(g, cur, e.target, &answer->edges);
        answer->nodes.push_back(e.target);
        cur = e.target;
        --d;
        break;
      }
    }
  }
  kw_nodes->push_back(cur);
}

}  // namespace

BlinksEngine::BlinksEngine(const KnowledgeGraph* graph,
                           const InvertedIndex* text_index,
                           const BlinksIndex* blinks_index)
    : graph_(graph), text_index_(text_index), index_(blinks_index) {}

Result<BlinksResult> BlinksEngine::SearchKeywords(
    const std::vector<std::string>& keywords, const BlinksOptions& opts) const {
  if (keywords.empty()) return Status::InvalidArgument("empty keyword query");
  WallTimer timer;
  // Analyze raw keywords to index terms.
  std::vector<std::string> terms;
  for (const std::string& kw : keywords) {
    std::vector<std::string> analyzed = AnalyzeText(kw, text_index_->options());
    if (analyzed.empty()) continue;
    if (!index_->List(analyzed.front()).empty()) {
      terms.push_back(analyzed.front());
    }
  }
  if (terms.empty()) {
    return Status::NotFound("no query keyword is in the BLINKS index");
  }

  // Join: start from the shortest list, probe the node-keyword maps.
  size_t smallest = 0;
  for (size_t i = 1; i < terms.size(); ++i) {
    if (index_->List(terms[i]).size() < index_->List(terms[smallest]).size()) {
      smallest = i;
    }
  }
  struct Root {
    NodeId node;
    int score;
    std::vector<int> dists;
  };
  std::vector<Root> roots;
  for (const DistEntry& entry : index_->List(terms[smallest])) {
    Root root{entry.node, 0, {}};
    root.dists.resize(terms.size());
    bool ok = true;
    for (size_t i = 0; i < terms.size(); ++i) {
      int d = (i == smallest) ? entry.dist
                              : index_->Distance(terms[i], entry.node);
      if (d < 0) {
        ok = false;
        break;
      }
      root.dists[i] = d;
      root.score += d;
    }
    if (ok) roots.push_back(std::move(root));
  }
  std::sort(roots.begin(), roots.end(), [](const Root& a, const Root& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.node < b.node;
  });

  BlinksResult result;
  result.candidate_roots = roots.size();
  size_t limit = std::min<size_t>(roots.size(),
                                  static_cast<size_t>(opts.top_k));
  for (size_t r = 0; r < limit; ++r) {
    const Root& root = roots[r];
    AnswerGraph a;
    a.central = root.node;
    a.score = root.score;
    a.depth = *std::max_element(root.dists.begin(), root.dists.end());
    a.nodes.push_back(root.node);
    a.keyword_nodes.resize(terms.size());
    for (size_t i = 0; i < terms.size(); ++i) {
      MaterializePath(*graph_, *index_, terms[i], root.node, root.dists[i],
                      &a, &a.keyword_nodes[i]);
    }
    std::sort(a.nodes.begin(), a.nodes.end());
    a.nodes.erase(std::unique(a.nodes.begin(), a.nodes.end()), a.nodes.end());
    std::sort(a.edges.begin(), a.edges.end());
    a.edges.erase(std::unique(a.edges.begin(), a.edges.end()), a.edges.end());
    for (auto& kn : a.keyword_nodes) {
      std::sort(kn.begin(), kn.end());
      kn.erase(std::unique(kn.begin(), kn.end()), kn.end());
    }
    result.answers.push_back(std::move(a));
  }
  result.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace wikisearch::blinks
