// Query engine over the BLINKS-style precomputed index: answer roots are
// found by joining the per-keyword distance lists (no graph traversal at
// query time), scored by the sum of root-to-keyword distances; answer trees
// are materialized with short bounded BFS walks.
#pragma once

#include <string>
#include <vector>

#include "blinks/blinks_index.h"
#include "common/status.h"
#include "core/answer.h"

namespace wikisearch::blinks {

struct BlinksOptions {
  int top_k = 20;
};

struct BlinksResult {
  std::vector<AnswerGraph> answers;  // best first; central = root
  double elapsed_ms = 0.0;
  size_t candidate_roots = 0;
};

class BlinksEngine {
 public:
  /// All referenced objects must outlive the engine.
  BlinksEngine(const KnowledgeGraph* graph, const InvertedIndex* text_index,
               const BlinksIndex* blinks_index);

  Result<BlinksResult> SearchKeywords(const std::vector<std::string>& keywords,
                                      const BlinksOptions& opts) const;

 private:
  const KnowledgeGraph* graph_;
  const InvertedIndex* text_index_;
  const BlinksIndex* index_;
};

}  // namespace wikisearch::blinks
