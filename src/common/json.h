// Minimal JSON writer used by the query service and the CLI's --json mode.
// Streaming builder: values are appended in document order; the writer
// tracks nesting and inserts commas. No DOM, no allocation beyond the
// output string.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wikisearch {

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
std::string JsonEscape(std::string_view s);

/// Streaming JSON writer.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("answers");
///   w.BeginArray();
///   w.String("x");
///   w.EndArray();
///   w.EndObject();
///   std::string out = std::move(w).Take();
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Returns the finished document. All containers must be closed.
  std::string Take() &&;

  /// Current document size in bytes.
  size_t size() const { return out_.size(); }

 private:
  void MaybeComma();

  std::string out_;
  // One entry per open container: true once the container has a first
  // element (so the next element needs a comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace wikisearch
