// Minimal JSON writer used by the query service and the CLI's --json mode,
// plus a small recursive-descent parser used by tests and tooling to read
// the documents back (trace exports, bench JSON, server responses).
// The writer is a streaming builder: values are appended in document order;
// the writer tracks nesting and inserts commas. No DOM, no allocation
// beyond the output string. The parser builds a JsonValue DOM.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace wikisearch {

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
std::string JsonEscape(std::string_view s);

/// Streaming JSON writer.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("answers");
///   w.BeginArray();
///   w.String("x");
///   w.EndArray();
///   w.EndObject();
///   std::string out = std::move(w).Take();
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Returns the finished document. All containers must be closed.
  std::string Take() &&;

  /// Current document size in bytes.
  size_t size() const { return out_.size(); }

 private:
  void MaybeComma();

  std::string out_;
  // One entry per open container: true once the container has a first
  // element (so the next element needs a comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Parsed JSON value. Numbers are kept as double (adequate for every
/// document this codebase produces); object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Looks up an object member by key; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document (RFC 8259, incl. \uXXXX escapes with
/// surrogate pairs). Trailing non-whitespace is an error, as is nesting
/// deeper than 128 levels.
Result<JsonValue> JsonParse(std::string_view text);

}  // namespace wikisearch
