// Runtime CPU feature detection for the kernel dispatch layer
// (core/kernel/). Detection is a one-time cpuid probe, cached in a static;
// the result never changes for the process lifetime, so callers may hold
// the answer.
//
// The dispatch *policy* (which ISA a search actually uses) layers on top:
//   - the binary must have been built with the AVX2 translation unit
//     (WIKISEARCH_AVX2, on by default where the compiler supports -mavx2),
//   - the CPU must report AVX2 via cpuid,
//   - the WIKISEARCH_FORCE_SCALAR environment variable must be unset/0
//     (the test suite's "scalar path forced" runs set it to 1),
//   - ThreadSanitizer builds always run scalar: the vector expansion kernel
//     reads hit-mask words with plain 256-bit loads concurrently with other
//     workers' fetch_or stores — benign by the bits-only-get-set argument
//     (DESIGN.md §11) but a data race to TSan's instrumentation.
// That policy lives in kernel::Select; this header is mechanism only.
#pragma once

namespace wikisearch {

/// True iff the processor supports AVX2 (cpuid leaf 7, EBX bit 5) and the
/// OS saves the ymm state (OSXSAVE + XCR0). Cached after the first call.
bool CpuHasAvx2();

/// True iff the WIKISEARCH_FORCE_SCALAR environment variable is set to a
/// non-empty value other than "0". Read once and cached: ctest registers
/// scalar-forced twins as separate processes, so per-process is enough.
bool ForceScalarKernels();

}  // namespace wikisearch
