#include "common/fsio.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace wikisearch {

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::IoError("EnsureDir " + dir + ": exists but not a directory");
  }
  return Status::IoError(Errno("mkdir", dir));
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::lstat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSizeOf(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError(Errno("stat", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IoError(Errno("opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(d)) {
    const char* n = ent->d_name;
    if (std::strcmp(n, ".") == 0 || std::strcmp(n, "..") == 0) continue;
    names.emplace_back(n);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Status::IoError(Errno("unlink", path));
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) == 0) return Status::OK();
  return Status::IoError(Errno("rename", from + " -> " + to));
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError(Errno("open(dir)", dir));
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    return Status::IoError(Errno("fsync(dir)", dir));
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) == 0) {
    return Status::OK();
  }
  return Status::IoError(Errno("truncate", path));
}

Status ReadFileToString(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError(Errno("open", path));
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      return Status::IoError(Errno("read", path));
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(Errno("open", tmp));
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = saved;
      return Status::IoError(Errno("write", tmp));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    return Status::IoError(Errno("fsync", tmp));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(Errno("close", tmp));
  }
  WS_RETURN_NOT_OK(RenameFile(tmp, path));
  return FsyncDir(DirName(path));
}

Status RemoveDirRecursive(const std::string& path) {
  struct stat st;
  if (::lstat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::OK();
    return Status::IoError(Errno("lstat", path));
  }
  if (!S_ISDIR(st.st_mode)) return RemoveFile(path);
  auto names = ListDir(path);
  WS_RETURN_NOT_OK(names.status());
  for (const std::string& n : *names) {
    WS_RETURN_NOT_OK(RemoveDirRecursive(path + "/" + n));
  }
  if (::rmdir(path.c_str()) != 0) {
    return Status::IoError(Errno("rmdir", path));
  }
  return Status::OK();
}

std::string DirName(const std::string& path) {
  size_t pos = path.find_last_of('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

}  // namespace wikisearch
