// A small persistent thread pool with a dynamically-scheduled parallel-for.
//
// The paper parallelizes with OpenMP and relies on `schedule(dynamic)` for
// load balancing (frontiers have wildly varying degree). This pool provides
// the equivalent: workers repeatedly claim fixed-size chunks of the iteration
// space from an atomic counter until it is exhausted. The calling thread
// participates in the work, so `threads == 1` runs fully inline and is the
// library's sequential mode.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wikisearch {

/// Fork-join worker pool. One instance is typically created per SearchEngine
/// and reused across queries and BFS levels; creating threads per level would
/// dominate runtime for small frontiers.
///
/// Not re-entrant: ParallelForDynamic must not be called from inside a task.
class ThreadPool {
 public:
  /// Creates a pool that executes parallel-for jobs with `threads` total
  /// workers (including the caller). `threads <= 1` spawns no OS threads.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(i) for all i in [0, n) with dynamic chunk scheduling.
  /// `grain` is the chunk size workers claim at a time.
  void ParallelForDynamic(size_t n, size_t grain,
                          const std::function<void(size_t)>& fn);

  /// Runs fn(chunk_begin, chunk_end) over [0, n) with dynamic scheduling.
  /// Useful when per-chunk setup (e.g. thread-local buffers) matters.
  void ParallelForChunked(size_t n, size_t grain,
                          const std::function<void(size_t, size_t)>& fn);

  /// Worker-indexed variants: fn additionally receives the stable index of
  /// the executing worker in [0, threads()), with the calling thread always
  /// index 0. The index is the key into per-thread accumulation buffers
  /// (e.g. SearchState's frontier buffers) that are merged after the join.
  void ParallelForDynamicWorker(size_t n, size_t grain,
                                const std::function<void(int, size_t)>& fn);
  void ParallelForChunkedWorker(
      size_t n, size_t grain,
      const std::function<void(int, size_t, size_t)>& fn);

  /// Runs fn(worker_index) once on every worker (including the caller, as
  /// index 0). Used for per-thread state initialization.
  void RunOnAll(const std::function<void(int)>& fn);

  /// Utilization accounting (monotonic since construction, relaxed reads):
  /// number of fork-join jobs launched (parallel-fors and RunOnAlls,
  /// including ones that ran inline on the caller) and total wall time all
  /// workers spent executing job bodies, summed across workers. The
  /// observability layer publishes deltas of these as pool metrics; the pool
  /// itself stays free of any obs dependency.
  uint64_t jobs_launched() const {
    return jobs_.load(std::memory_order_relaxed);
  }
  uint64_t busy_micros() const {
    return busy_ns_.load(std::memory_order_relaxed) / 1000;
  }

 private:
  void WorkerLoop(int index);
  // Claims chunks until the current job is exhausted; `worker` is the stable
  // index of the draining thread (0 for the caller).
  void DrainCurrentJob(int worker);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;

  // Job state (valid while job_active_):
  uint64_t job_epoch_ = 0;
  bool job_active_ = false;
  bool job_is_per_worker_ = false;
  size_t job_n_ = 0;
  size_t job_grain_ = 1;
  std::function<void(int, size_t, size_t)> job_chunk_fn_;
  std::function<void(int)> job_worker_fn_;
  std::atomic<size_t> job_next_{0};
  std::atomic<int> job_running_workers_{0};
  int job_completed_workers_ = 0;  // guarded by mu_

  // Utilization accounting; see jobs_launched() / busy_micros().
  std::atomic<uint64_t> jobs_{0};
  std::atomic<uint64_t> busy_ns_{0};
};

/// Computes a reasonable grain size: aims for ~8 chunks per worker so dynamic
/// scheduling can balance, without degenerating to per-element dispatch.
size_t DefaultGrain(size_t n, int threads);

/// Thread-safe cache of idle ThreadPool instances keyed by width. A ThreadPool
/// runs one fork-join job at a time, so concurrent queries cannot share one;
/// instead each query leases a pool for its duration and returns it, which
/// keeps the pre-concurrency behavior (persistent workers reused across the
/// queries of one client) without serializing independent queries. Width-1
/// pools spawn no OS threads, so the under-load path (scheduler grants one
/// thread per query) never pays thread creation.
class ThreadPoolCache {
 public:
  /// A pooled ThreadPool plus the slice of its monotonic utilization counters
  /// that has already been published to a metric registry. The counters ride
  /// with the pool because only the current lease holder may publish deltas.
  struct Entry {
    std::unique_ptr<ThreadPool> pool;
    uint64_t published_jobs = 0;
    uint64_t published_busy_us = 0;
  };

  /// Move-only lease; returns the pool to the cache on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ThreadPoolCache* cache, Entry entry)
        : cache_(cache), entry_(std::move(entry)) {}
    Lease(Lease&& other) noexcept
        : cache_(other.cache_), entry_(std::move(other.entry_)) {
      other.cache_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        cache_ = other.cache_;
        entry_ = std::move(other.entry_);
        other.cache_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    ThreadPool* get() const { return entry_.pool.get(); }
    ThreadPool* operator->() const { return entry_.pool.get(); }
    Entry& entry() { return entry_; }

   private:
    void Release() {
      if (cache_ != nullptr && entry_.pool != nullptr) {
        cache_->Return(std::move(entry_));
      }
      cache_ = nullptr;
    }

    ThreadPoolCache* cache_ = nullptr;
    Entry entry_;
  };

  ThreadPoolCache() = default;
  ThreadPoolCache(const ThreadPoolCache&) = delete;
  ThreadPoolCache& operator=(const ThreadPoolCache&) = delete;

  /// Returns a pool with exactly max(threads, 1) workers, reusing an idle one
  /// of that width when available.
  Lease Acquire(int threads);

  /// Drops all idle pools (joins their workers).
  void Clear();

  size_t idle_pools() const;
  size_t created() const;
  size_t reused() const;

 private:
  friend class Lease;
  void Return(Entry entry);

  // Keep a few idle pools per width: enough for a burst of same-width
  // queries without pinning unbounded OS threads after a load spike.
  static constexpr size_t kMaxIdlePerWidth = 4;

  mutable std::mutex mu_;
  std::vector<Entry> idle_;
  size_t created_ = 0;
  size_t reused_ = 0;
};

}  // namespace wikisearch
