#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace wikisearch {

namespace {

/// RAII helper: adds the elapsed nanoseconds to `sink` on destruction.
class BusyTimer {
 public:
  explicit BusyTimer(std::atomic<uint64_t>* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~BusyTimer() {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    sink_->fetch_add(static_cast<uint64_t>(ns), std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t>* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

size_t DefaultGrain(size_t n, int threads) {
  if (threads <= 1) return std::max<size_t>(n, 1);
  size_t target_chunks = static_cast<size_t>(threads) * 8;
  size_t grain = (n + target_chunks - 1) / target_chunks;
  return std::max<size_t>(grain, 1);
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(threads, 1)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::DrainCurrentJob(int worker) {
  const size_t n = job_n_;
  const size_t grain = job_grain_;
  BusyTimer busy(&busy_ns_);
  while (true) {
    size_t lo = job_next_.fetch_add(grain, std::memory_order_relaxed);
    if (lo >= n) break;
    size_t hi = std::min(lo + grain, n);
    job_chunk_fn_(worker, lo, hi);
  }
}

void ThreadPool::WorkerLoop(int index) {
  uint64_t seen_epoch = 0;
  while (true) {
    int my_job_index = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] {
        return shutdown_ || (job_active_ && job_epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job_running_workers_.fetch_add(1, std::memory_order_relaxed);
      my_job_index = index;
    }
    if (job_is_per_worker_) {
      BusyTimer busy(&busy_ns_);
      job_worker_fn_(my_job_index);
    } else {
      DrainCurrentJob(my_job_index);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_running_workers_.fetch_sub(1, std::memory_order_relaxed);
      ++job_completed_workers_;
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelForChunkedWorker(
    size_t n, size_t grain,
    const std::function<void(int, size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(grain, 1);
  jobs_.fetch_add(1, std::memory_order_relaxed);
  if (threads_ <= 1 || n <= grain) {
    BusyTimer busy(&busy_ns_);
    fn(0, 0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_is_per_worker_ = false;
    job_n_ = n;
    job_grain_ = grain;
    job_chunk_fn_ = fn;
    job_next_.store(0, std::memory_order_relaxed);
    job_completed_workers_ = 0;
    job_active_ = true;
    ++job_epoch_;
  }
  wake_cv_.notify_all();
  DrainCurrentJob(0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job_running_workers_.load(std::memory_order_relaxed) == 0;
    });
    job_active_ = false;
  }
}

void ThreadPool::ParallelForChunked(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunkedWorker(
      n, grain, [&fn](int, size_t lo, size_t hi) { fn(lo, hi); });
}

void ThreadPool::ParallelForDynamicWorker(
    size_t n, size_t grain, const std::function<void(int, size_t)>& fn) {
  ParallelForChunkedWorker(n, grain,
                           [&fn](int worker, size_t lo, size_t hi) {
                             for (size_t i = lo; i < hi; ++i) fn(worker, i);
                           });
}

void ThreadPool::ParallelForDynamic(size_t n, size_t grain,
                                    const std::function<void(size_t)>& fn) {
  ParallelForChunkedWorker(n, grain, [&fn](int, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) fn(i);
  });
}

ThreadPoolCache::Lease ThreadPoolCache::Acquire(int threads) {
  threads = std::max(threads, 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = idle_.begin(); it != idle_.end(); ++it) {
      if (it->pool->threads() == threads) {
        Entry entry = std::move(*it);
        idle_.erase(it);
        ++reused_;
        return Lease(this, std::move(entry));
      }
    }
    ++created_;
  }
  // Pool construction (thread spawning) happens outside the lock.
  Entry entry;
  entry.pool = std::make_unique<ThreadPool>(threads);
  return Lease(this, std::move(entry));
}

void ThreadPoolCache::Return(Entry entry) {
  std::unique_lock<std::mutex> lock(mu_);
  size_t same_width = 0;
  for (const Entry& e : idle_) {
    if (e.pool->threads() == entry.pool->threads()) ++same_width;
  }
  if (same_width < kMaxIdlePerWidth) {
    idle_.push_back(std::move(entry));
    return;
  }
  lock.unlock();  // joining the surplus pool's workers needs no lock
}

void ThreadPoolCache::Clear() {
  std::vector<Entry> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(idle_);
  }
}

size_t ThreadPoolCache::idle_pools() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

size_t ThreadPoolCache::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

size_t ThreadPoolCache::reused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reused_;
}

void ThreadPool::RunOnAll(const std::function<void(int)>& fn) {
  jobs_.fetch_add(1, std::memory_order_relaxed);
  if (threads_ <= 1) {
    BusyTimer busy(&busy_ns_);
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_is_per_worker_ = true;
    job_worker_fn_ = fn;
    job_completed_workers_ = 0;
    job_active_ = true;
    ++job_epoch_;
  }
  wake_cv_.notify_all();
  {
    BusyTimer busy(&busy_ns_);
    fn(0);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Per-worker jobs require every spawned worker to run fn exactly once,
    // so wait for completions rather than just "no one running".
    done_cv_.wait(lock,
                  [&] { return job_completed_workers_ == threads_ - 1; });
    job_active_ = false;
  }
}

}  // namespace wikisearch
