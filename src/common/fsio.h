// Thin POSIX filesystem helpers used by the durability layer (src/live).
// Everything returns Status/Result rather than throwing, and every mutation
// that must survive a crash pairs the data write with the directory fsync
// needed to make the rename/creation itself durable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace wikisearch {

/// Creates `dir` (single level, parent must exist). OK if it already exists
/// as a directory.
Status EnsureDir(const std::string& dir);

/// True if `path` exists (any file type).
bool PathExists(const std::string& path);

/// Regular-file size in bytes.
Result<uint64_t> FileSizeOf(const std::string& path);

/// Names (not paths) of directory entries, excluding "." and "..", sorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// unlink(2). OK if the file is already gone.
Status RemoveFile(const std::string& path);

/// rename(2) — atomic within a filesystem.
Status RenameFile(const std::string& from, const std::string& to);

/// fsyncs the directory itself so renames/creates/unlinks inside it are
/// durable.
Status FsyncDir(const std::string& dir);

/// truncate(2) to `size` bytes.
Status TruncateFile(const std::string& path, uint64_t size);

/// Reads the whole file into `*out` (replacing its contents).
Status ReadFileToString(const std::string& path, std::string* out);

/// Crash-atomic small-file write: writes `data` to `path + ".tmp"`, fsyncs
/// it, renames over `path`, and fsyncs the parent directory. After a crash,
/// `path` holds either the old contents or the new — never a mix.
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// Recursively deletes `path` (file or directory tree). OK if absent.
/// Test/tooling helper — the engine never does this on user data.
Status RemoveDirRecursive(const std::string& path);

/// Parent directory of `path` ("." if there is no slash).
std::string DirName(const std::string& path);

}  // namespace wikisearch
