// Minimal logging and invariant-checking macros. WS_CHECK aborts with a
// message on violated invariants (enabled in all build types — graph search
// corruption must never propagate silently).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wikisearch {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[wikisearch] CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace internal
}  // namespace wikisearch

#define WS_CHECK(expr)                                            \
  do {                                                            \
    if (!(expr)) {                                                \
      ::wikisearch::internal::CheckFailed(__FILE__, __LINE__,     \
                                          #expr);                 \
    }                                                             \
  } while (0)

#define WS_LOG(...)                          \
  do {                                       \
    std::fprintf(stderr, "[wikisearch] ");   \
    std::fprintf(stderr, __VA_ARGS__);       \
    std::fprintf(stderr, "\n");              \
  } while (0)
