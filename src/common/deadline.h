// Per-query time budgets (the robustness substrate of the online service).
//
// A Deadline is a steady-clock instant after which a query must stop doing
// new work and return its best partial answers. The search stages check it
// at coarse granularity — once per BFS level, once per worker chunk, once
// per extraction candidate — so a query never overshoots its budget by more
// than one chunk's work, and the common (unlimited) case costs one boolean
// test per check. Both stages receive proportional sub-budgets carved from
// the query deadline so the extraction stage always gets a slice even when
// the bottom-up stage runs long (see DESIGN.md §7).
#pragma once

#include <chrono>
#include <limits>

namespace wikisearch {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default-constructed deadlines are unlimited: Expired() is always false.
  Deadline() = default;

  /// Deadline `ms` milliseconds from now; `ms <= 0` means unlimited (the
  /// SearchOptions convention: deadline_ms = 0 disables the budget).
  static Deadline AfterMs(double ms) {
    if (ms <= 0.0) return Deadline();
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(ms)));
  }

  static Deadline Unlimited() { return Deadline(); }

  bool enabled() const { return enabled_; }

  bool Expired() const { return enabled_ && Clock::now() >= at_; }

  /// Remaining budget in milliseconds; +infinity when unlimited, clamped at
  /// 0 once expired.
  double RemainingMs() const {
    if (!enabled_) return std::numeric_limits<double>::infinity();
    double ms = std::chrono::duration<double, std::milli>(at_ - Clock::now())
                    .count();
    return ms > 0.0 ? ms : 0.0;
  }

  /// A deadline `fraction` of the way through the remaining budget, never
  /// later than this deadline. Used to split a query budget across stages:
  /// SubBudget(0.6) bounds stage 1 so stage 2 keeps at least 40% of the
  /// original budget. Unlimited stays unlimited.
  Deadline SubBudget(double fraction) const {
    if (!enabled_) return Deadline();
    Clock::time_point now = Clock::now();
    if (now >= at_) return *this;  // already expired: sub-budget is too
    auto sub = now + std::chrono::duration_cast<Clock::duration>(
                         (at_ - now) * fraction);
    return Deadline(sub < at_ ? sub : at_);
  }

 private:
  explicit Deadline(Clock::time_point at) : at_(at), enabled_(true) {}

  Clock::time_point at_{};
  bool enabled_ = false;
};

}  // namespace wikisearch
