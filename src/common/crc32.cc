#include "common/crc32.h"

#include <array>

namespace wikisearch {

namespace {

// Slicing-by-4 tables: table[0] is the classic byte-at-a-time table, the
// higher tables advance the CRC four bytes per step on the aligned middle of
// long buffers (WAL payloads are whole serialized batches).
struct Crc32Tables {
  uint32_t t[4][256];
  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int j = 1; j < 4; ++j) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[j][i] = c;
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  const auto& tb = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = tb[3][c & 0xFFu] ^ tb[2][(c >> 8) & 0xFFu] ^ tb[1][(c >> 16) & 0xFFu] ^
        tb[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    c = tb[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace wikisearch
