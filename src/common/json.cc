#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace wikisearch {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": directly
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  WS_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  WS_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  WS_CHECK(!pending_key_);
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string JsonWriter::Take() && {
  WS_CHECK(has_element_.empty());
  WS_CHECK(!pending_key_);
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// Parser

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

constexpr int kMaxParseDepth = 128;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    WS_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxParseDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        out->type = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      WS_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      WS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      WS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':  out->push_back('"');  break;
        case '\\': out->push_back('\\'); break;
        case '/':  out->push_back('/');  break;
        case 'b':  out->push_back('\b'); break;
        case 'f':  out->push_back('\f'); break;
        case 'n':  out->push_back('\n'); break;
        case 'r':  out->push_back('\r'); break;
        case 't':  out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          WS_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            WS_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit expected after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit expected in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace wikisearch
