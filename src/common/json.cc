#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace wikisearch {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": directly
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  WS_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  WS_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  WS_CHECK(!pending_key_);
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string JsonWriter::Take() && {
  WS_CHECK(has_element_.empty());
  WS_CHECK(!pending_key_);
  return std::move(out_);
}

}  // namespace wikisearch
