// Wall-clock timing helpers. The search engine reports per-phase timings in
// milliseconds, mirroring the profiling breakdown in the paper's Fig. 6-10.
#pragma once

#include <chrono>

namespace wikisearch {

/// Monotonic stopwatch measuring elapsed wall time.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wikisearch
