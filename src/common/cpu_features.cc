#include "common/cpu_features.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace wikisearch {

namespace {

#if defined(__x86_64__) || defined(__i386__)
// The _xgetbv intrinsic needs -mxsave on gcc; raw xgetbv works at any
// baseline (only executed after the OSXSAVE check guarantees the
// instruction exists).
uint64_t ReadXcr0() {
  uint32_t lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}
#endif

bool DetectAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  // AVX2 needs OS support for saving the 256-bit state: check OSXSAVE and
  // then XCR0 bits 1|2 (SSE + AVX state) before trusting the AVX2 bit.
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  constexpr unsigned kOsxsave = 1u << 27;
  constexpr unsigned kAvx = 1u << 28;
  if ((ecx & kOsxsave) == 0 || (ecx & kAvx) == 0) return false;
  if ((ReadXcr0() & 0x6) != 0x6) return false;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 5)) != 0;  // leaf 7.0 EBX bit 5: AVX2
#else
  return false;
#endif
}

}  // namespace

bool CpuHasAvx2() {
  static const bool has = DetectAvx2();
  return has;
}

bool ForceScalarKernels() {
  static const bool forced = [] {
    const char* v = std::getenv("WIKISEARCH_FORCE_SCALAR");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return forced;
}

}  // namespace wikisearch
