// Deterministic, fast PRNG utilities used throughout the library: graph
// generation, distance sampling, and workload construction must be exactly
// reproducible across runs given a seed.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace wikisearch {

/// SplitMix64: used to seed Xoshiro and as a cheap standalone mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** — small-state, high-quality, very fast generator.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eedULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return (*this)() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// Samples from a Zipfian distribution over ranks {0, .., n-1} with exponent
/// `s` using precomputed cumulative weights (O(log n) per sample). Rank 0 is
/// the most frequent item.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace wikisearch
