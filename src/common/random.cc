#include "common/random.h"

#include <algorithm>

namespace wikisearch {

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace wikisearch
