// Lightweight Status / Result error handling in the RocksDB/Arrow style.
// Functions that can fail return Status (or Result<T>); success is the
// zero-cost common case and errors carry a code plus human-readable message.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace wikisearch {

/// Error taxonomy for the library. Kept intentionally small; callers mostly
/// branch on ok() and surface the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kCorruption,
  kFailedPrecondition,
  kResourceExhausted,
  kTimedOut,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Status describes the outcome of an operation: either OK, or an error code
/// with a message. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value or an error Status. Use status().ok() /
/// has_value() to branch; value() asserts validity in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {} // NOLINT(runtime/explicit)

  bool has_value() const { return std::holds_alternative<T>(data_); }
  bool ok() const { return has_value(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  Status status() const {
    if (has_value()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates an error Status from an expression, Arrow-style.
#define WS_RETURN_NOT_OK(expr)                       \
  do {                                               \
    ::wikisearch::Status _st = (expr);               \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace wikisearch
