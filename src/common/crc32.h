// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum guarding every
// write-ahead-log record and manifest line in the durability layer. The
// incremental form lets callers fold a header and a payload into one value
// without concatenating buffers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wikisearch {

/// Extends the running CRC-32 `crc` (0 for a fresh computation) over `n`
/// bytes at `data`. Matches zlib's crc32(): Crc32("123456789", 9) ==
/// 0xCBF43926.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

}  // namespace wikisearch
