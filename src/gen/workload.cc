#include "gen/workload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace wikisearch::gen {

namespace {

/// Draws `count` distinct terms with non-empty postings from a community's
/// vocabulary; falls back to any indexed community term if sampling misses.
std::vector<std::string> SampleCommunityTerms(const GeneratedKb& kb,
                                              const InvertedIndex& index,
                                              int32_t community, size_t count,
                                              Rng& rng) {
  const auto& terms = kb.meta.community_terms[static_cast<size_t>(community)];
  std::vector<std::string> indexed;
  for (const auto& t : terms) {
    if (!index.Lookup(t).empty()) indexed.push_back(t);
  }
  std::vector<std::string> out;
  size_t guard = 0;
  while (out.size() < count && !indexed.empty() &&
         out.size() < indexed.size() && guard++ < 1000) {
    const std::string& cand = indexed[rng.Uniform(indexed.size())];
    if (std::find(out.begin(), out.end(), cand) == out.end()) {
      out.push_back(cand);
    }
  }
  return out;
}

}  // namespace

double AverageKeywordFrequency(const Query& q, const InvertedIndex& index) {
  if (q.keywords.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& kw : q.keywords) {
    sum += static_cast<double>(index.KeywordFrequency(kw));
  }
  return sum / static_cast<double>(q.keywords.size());
}

std::vector<Query> MakeEfficiencyWorkload(const GeneratedKb& kb,
                                          const InvertedIndex& index,
                                          size_t knum, size_t num_queries,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries;
  const size_t num_comm = kb.meta.num_communities;
  size_t guard = 0;
  while (queries.size() < num_queries && guard++ < num_queries * 50) {
    int32_t c = static_cast<int32_t>(rng.Uniform(num_comm));
    std::vector<std::string> kws =
        SampleCommunityTerms(kb, index, c, knum, rng);
    if (kws.size() < knum) continue;
    Query q;
    q.id = "W" + std::to_string(queries.size() + 1);
    q.keywords = std::move(kws);
    q.target_community = c;
    queries.push_back(std::move(q));
  }
  WS_CHECK(queries.size() == num_queries);
  return queries;
}

std::vector<Query> MakeEffectivenessWorkload(const GeneratedKb& kb,
                                             const InvertedIndex& index,
                                             uint64_t seed) {
  Rng rng(seed);
  const size_t num_comm = kb.meta.num_communities;
  WS_CHECK(num_comm >= 8);
  std::vector<Query> queries;

  auto coherent = [&](const std::string& id, int32_t c, size_t knum) {
    Query q;
    q.id = id;
    q.target_community = c;
    q.keywords = SampleCommunityTerms(kb, index, c, knum, rng);
    WS_CHECK(q.keywords.size() == knum);
    return q;
  };

  // Q1-Q3: coherent 4-keyword topical queries.
  for (int i = 0; i < 3; ++i) {
    queries.push_back(coherent("Q" + std::to_string(i + 1),
                               static_cast<int32_t>(i), 4));
  }

  // Q4-Q7: phrase-split — majority of keywords from the target community,
  // a minority pair from a distractor community. Answers that latch onto
  // the distractor terms in isolation are judged irrelevant (the paper's
  // "statistical relational learning" failure mode for BANKS-II).
  for (int i = 0; i < 4; ++i) {
    int32_t target = static_cast<int32_t>(3 + i);
    int32_t distractor =
        static_cast<int32_t>((3 + i + num_comm / 2) % num_comm);
    Query q;
    q.id = "Q" + std::to_string(4 + i);
    q.target_community = target;
    q.distractor_community = distractor;
    q.keywords = SampleCommunityTerms(kb, index, target, 3, rng);
    auto extra = SampleCommunityTerms(kb, index, distractor, 2, rng);
    q.keywords.insert(q.keywords.end(), extra.begin(), extra.end());
    WS_CHECK(q.keywords.size() == 5);
    queries.push_back(std::move(q));
  }

  // Q8-Q9: coherent with more keywords (6).
  for (int i = 0; i < 2; ++i) {
    int32_t c = static_cast<int32_t>((7 + static_cast<size_t>(i)) % num_comm);
    queries.push_back(coherent("Q" + std::to_string(8 + i), c, 6));
  }

  // Q10: very high frequency terms (global head vocabulary — these are the
  // summary-hub names and top Zipf terms). Everything connected tends to be
  // relevant; target_community = -1 disables the topical judgment.
  {
    Query q;
    q.id = "Q10";
    q.target_community = -1;
    // Summary hubs are named by the head of the vocabulary; their names are
    // single terms with huge posting lists.
    size_t added = 0;
    for (NodeId s : kb.meta.summary_nodes) {
      std::vector<std::string> toks = Tokenize(kb.graph.NodeName(s));
      if (!toks.empty() && !index.Lookup(toks[0]).empty()) {
        q.keywords.push_back(toks[0]);
        if (++added == 3) break;
      }
    }
    WS_CHECK(!q.keywords.empty());
    queries.push_back(std::move(q));
  }

  // Q11: rare, unambiguous terms — smallest non-empty posting lists among
  // community vocabulary.
  {
    Query q;
    q.id = "Q11";
    q.target_community = -1;
    std::vector<std::pair<size_t, std::string>> rare;
    for (const auto& terms : kb.meta.community_terms) {
      for (const auto& t : terms) {
        size_t f = index.KeywordFrequency(t);
        if (f > 0) rare.emplace_back(f, t);
      }
    }
    std::sort(rare.begin(), rare.end());
    for (size_t i = 0; i < rare.size() && q.keywords.size() < 4; ++i) {
      q.keywords.push_back(rare[i].second);
    }
    WS_CHECK(q.keywords.size() == 4);
    queries.push_back(std::move(q));
  }

  return queries;
}

}  // namespace wikisearch::gen
