// Deterministic pseudo-word vocabulary for the synthetic knowledge base.
// Words are pronounceable syllable strings ("veltar", "minoka") so generated
// node names read like entity names and survive the text pipeline (they are
// lowercase alphabetic and never stop words).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace wikisearch::gen {

class Vocabulary {
 public:
  /// Generates `size` distinct pseudo-words, deterministic in `seed`.
  Vocabulary(size_t size, uint64_t seed);

  const std::string& term(size_t i) const { return terms_[i]; }
  size_t size() const { return terms_.size(); }

  const std::vector<std::string>& terms() const { return terms_; }

 private:
  std::vector<std::string> terms_;
};

}  // namespace wikisearch::gen
