#include "gen/wikigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"

namespace wikisearch::gen {

namespace {

/// Union-find used to keep the generated KB connected without a rebuild.
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

size_t SampleOutDegree(Rng& rng, double mean) {
  // Exponential with the given mean, shifted so every entity authors at
  // least one triple; gives a mildly heavy-tailed out-degree.
  double u = rng.UniformDouble();
  double x = -std::log(1.0 - u) * std::max(mean - 1.0, 0.5);
  return 1 + static_cast<size_t>(x);
}

}  // namespace

WikiGenConfig SmallConfig() {
  WikiGenConfig cfg;
  cfg.num_entities = 20000;
  cfg.num_summary_nodes = 12;
  cfg.num_topic_nodes = 60;
  cfg.num_communities = 24;
  cfg.vocab_size = 12000;
  cfg.seed = 2017;  // wikisynth-S plays the wiki2017 role
  return cfg;
}

WikiGenConfig MediumConfig() {
  WikiGenConfig cfg;
  cfg.num_entities = 30000;
  cfg.num_summary_nodes = 14;
  cfg.num_topic_nodes = 78;
  cfg.num_communities = 28;
  cfg.num_labels = 240;
  cfg.vocab_size = 15000;
  cfg.avg_out_degree = 7.5;
  cfg.seed = 2019;  // wikisynth-M: kernel-bench scale between S and L
  return cfg;
}

WikiGenConfig LargeConfig() {
  WikiGenConfig cfg;
  cfg.num_entities = 40000;
  cfg.num_summary_nodes = 16;
  cfg.num_topic_nodes = 96;
  cfg.num_communities = 32;
  cfg.num_labels = 280;
  cfg.vocab_size = 18000;
  cfg.avg_out_degree = 8.0;
  cfg.seed = 2018;  // wikisynth-L plays the wiki2018 role
  return cfg;
}

GeneratedKb Generate(const WikiGenConfig& cfg) {
  WS_CHECK(cfg.num_entities > 0);
  WS_CHECK(cfg.num_communities > 0);
  WS_CHECK(cfg.num_topic_nodes >= cfg.num_communities ||
           cfg.num_topic_nodes == 0);
  WS_CHECK(cfg.vocab_size >
           cfg.num_summary_nodes + cfg.num_communities * cfg.community_vocab);

  Rng rng(cfg.seed);
  Vocabulary vocab(cfg.vocab_size, cfg.seed ^ 0x9e3779b9ULL);
  GraphBuilder builder;
  GeneratedKb out;
  GenMetadata& meta = out.meta;
  meta.num_communities = cfg.num_communities;

  // ---- Labels -------------------------------------------------------------
  // One dedicated predicate per summary hub (like Wikidata's `instance of`
  // funneling into `human`), one `main topic` predicate, then a generic
  // Zipf-weighted predicate vocabulary.
  std::vector<LabelId> summary_labels(cfg.num_summary_nodes);
  for (size_t s = 0; s < cfg.num_summary_nodes; ++s) {
    summary_labels[s] = builder.AddLabel("class_rel_" + std::to_string(s));
  }
  LabelId topic_label = builder.AddLabel("main_topic");
  LabelId bridge_label = builder.AddLabel("related_to");
  std::vector<LabelId> generic_labels;
  for (size_t l = 0; l < cfg.num_labels; ++l) {
    generic_labels.push_back(builder.AddLabel("rel_" + std::to_string(l)));
  }
  ZipfSampler label_zipf(generic_labels.size(), 1.2);

  // ---- Community vocabularies ---------------------------------------------
  // Each community reserves a disjoint slice of mid-frequency vocabulary.
  // Terms below the slice region stay global ("xml", "search", ...).
  const size_t reserved_base = std::max<size_t>(cfg.num_summary_nodes, 64);
  std::vector<size_t> slice_pool(cfg.vocab_size - reserved_base);
  std::iota(slice_pool.begin(), slice_pool.end(), reserved_base);
  // Deterministic shuffle.
  for (size_t i = slice_pool.size(); i > 1; --i) {
    std::swap(slice_pool[i - 1], slice_pool[rng.Uniform(i)]);
  }
  meta.community_terms.resize(cfg.num_communities);
  size_t pool_cursor = 0;
  for (size_t c = 0; c < cfg.num_communities; ++c) {
    for (size_t t = 0; t < cfg.community_vocab; ++t) {
      meta.community_terms[c].push_back(vocab.term(slice_pool[pool_cursor++]));
    }
  }

  // ---- Nodes ---------------------------------------------------------------
  std::unordered_set<std::string> used_names;
  auto unique_name = [&](std::string name) {
    if (used_names.insert(name).second) return name;
    size_t suffix = 2;
    std::string candidate;
    do {
      candidate = name + " q" + std::to_string(suffix++);
    } while (!used_names.insert(candidate).second);
    return candidate;
  };

  // Summary hubs get single ultra-common terms as names ("human").
  for (size_t s = 0; s < cfg.num_summary_nodes; ++s) {
    NodeId id = builder.AddNode(unique_name(vocab.term(s)));
    meta.summary_nodes.push_back(id);
  }

  // Topic hubs: named by their community's leading terms ("data mining").
  std::vector<std::vector<NodeId>> topics_of_community(cfg.num_communities);
  for (size_t t = 0; t < cfg.num_topic_nodes; ++t) {
    size_t c = t % cfg.num_communities;
    const auto& terms = meta.community_terms[c];
    std::string name = terms[0] + " " + terms[1 + (t / cfg.num_communities) %
                                                    (terms.size() - 1)];
    NodeId id = builder.AddNode(unique_name(name));
    topics_of_community[c].push_back(id);
    meta.topic_nodes.push_back(id);
  }

  // Entities.
  ZipfSampler global_zipf(cfg.vocab_size, cfg.zipf_exponent);
  std::vector<NodeId> entities;
  std::vector<int32_t> community_of_entity;
  std::vector<std::vector<NodeId>> members(cfg.num_communities);
  entities.reserve(cfg.num_entities);
  for (size_t e = 0; e < cfg.num_entities; ++e) {
    int32_t community = -1;
    if (rng.UniformDouble() < cfg.community_member_fraction) {
      community = static_cast<int32_t>(rng.Uniform(cfg.num_communities));
    }
    size_t k = cfg.name_terms_min +
               rng.Uniform(cfg.name_terms_max - cfg.name_terms_min + 1);
    std::string name;
    size_t topical =
        community >= 0
            ? static_cast<size_t>(std::lround(k * cfg.topical_name_fraction))
            : 0;
    for (size_t i = 0; i < k; ++i) {
      if (!name.empty()) name += ' ';
      if (i < topical) {
        const auto& terms = meta.community_terms[community];
        name += terms[rng.Uniform(terms.size())];
      } else {
        name += vocab.term(global_zipf.Sample(rng));
      }
    }
    NodeId id = builder.AddNode(unique_name(name));
    entities.push_back(id);
    community_of_entity.push_back(community);
    if (community >= 0) members[community].push_back(id);
  }

  const size_t total_nodes = builder.num_nodes();
  meta.community_of_node.assign(total_nodes, -1);
  for (size_t c = 0; c < cfg.num_communities; ++c) {
    for (NodeId t : topics_of_community[c]) {
      meta.community_of_node[t] = static_cast<int32_t>(c);
    }
  }
  for (size_t e = 0; e < entities.size(); ++e) {
    meta.community_of_node[entities[e]] = community_of_entity[e];
  }

  // ---- Edges ---------------------------------------------------------------
  Dsu dsu(total_nodes);
  // Preferential-attachment pool: entities and topics, re-inserted on every
  // received edge; summary hubs are excluded (their in-degree comes solely
  // from their dedicated predicate, mirroring `instance of`).
  std::vector<NodeId> pa_pool;
  pa_pool.reserve(total_nodes * 4);
  for (NodeId t : meta.topic_nodes) pa_pool.push_back(t);
  for (NodeId e : entities) pa_pool.push_back(e);

  ZipfSampler summary_zipf(cfg.num_summary_nodes, 1.3);

  auto add_edge = [&](NodeId src, NodeId dst, LabelId label) {
    WS_CHECK(builder.AddEdge(src, dst, label).ok());
    dsu.Union(src, dst);
  };

  for (size_t e = 0; e < entities.size(); ++e) {
    NodeId src = entities[e];
    int32_t community = community_of_entity[e];
    size_t out_deg = SampleOutDegree(rng, cfg.avg_out_degree);
    for (size_t d = 0; d < out_deg; ++d) {
      NodeId dst = kInvalidNode;
      bool intra = community >= 0 &&
                   rng.UniformDouble() < cfg.intra_community_prob &&
                   members[community].size() > 1;
      for (int attempt = 0; attempt < 4; ++attempt) {
        NodeId candidate =
            intra ? members[community][rng.Uniform(members[community].size())]
                  : pa_pool[rng.Uniform(pa_pool.size())];
        if (candidate != src) {
          dst = candidate;
          break;
        }
      }
      if (dst == kInvalidNode) continue;
      LabelId label = generic_labels[label_zipf.Sample(rng)];
      add_edge(src, dst, label);
      pa_pool.push_back(dst);
    }
    if (rng.UniformDouble() < cfg.summary_attach_prob &&
        cfg.num_summary_nodes > 0) {
      size_t s = summary_zipf.Sample(rng);
      add_edge(src, meta.summary_nodes[s], summary_labels[s]);
    }
    if (community >= 0 && !topics_of_community[community].empty() &&
        rng.UniformDouble() < cfg.topic_attach_prob) {
      const auto& topics = topics_of_community[community];
      add_edge(src, topics[rng.Uniform(topics.size())], topic_label);
    }
  }

  // ---- Connectivity --------------------------------------------------------
  // Bridge every residual component into the component of entity 0 so that
  // queries never fail for trivial reachability reasons.
  if (!entities.empty()) {
    size_t main_root = dsu.Find(entities[0]);
    for (NodeId v = 0; v < total_nodes; ++v) {
      if (dsu.Find(v) != main_root) {
        NodeId anchor = entities[rng.Uniform(entities.size())];
        add_edge(v, anchor, bridge_label);
        main_root = dsu.Find(entities[0]);
      }
    }
  }

  out.graph = std::move(builder).Build();
  return out;
}

}  // namespace wikisearch::gen
