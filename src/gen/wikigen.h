// "wikigen": deterministic synthetic knowledge-base generator.
//
// Stands in for the Wikidata dumps of the paper's Table II (see DESIGN.md,
// substitution 1). It reproduces the structural features the Central Graph
// algorithm and its weighting scheme are sensitive to:
//
//  * a heavy-tailed in-degree distribution (global preferential attachment),
//  * a handful of *summary nodes* with enormous single-label in-degree (the
//    paper's `human` node: >2M `instance of` in-edges) — these must receive
//    large degree-of-summary weights under Eq. 2,
//  * *topic nodes* with many in-edges but few distinct in-labels (the
//    paper's `data mining` example: >1000 in-edges, 11 labels),
//  * planted topical communities whose entities share vocabulary — these
//    provide keyword co-occurrence structure for queries and an automatic
//    relevance judgment for the effectiveness experiments (Fig. 11/12),
//  * Zipfian keyword frequency and a small average shortest distance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "gen/vocab.h"

namespace wikisearch::gen {

struct WikiGenConfig {
  size_t num_entities = 20000;
  size_t num_summary_nodes = 12;   // 'human'/'country'-like class hubs
  size_t num_topic_nodes = 60;     // 'data mining'-like topical hubs
  size_t num_labels = 200;         // predicate vocabulary size
  size_t num_communities = 24;     // planted topical communities

  /// Fraction of entities assigned to some community (rest is background).
  double community_member_fraction = 0.65;
  /// Mean out-degree of entity nodes (triples authored per entity).
  double avg_out_degree = 7.0;
  /// Probability an entity edge stays inside its own community.
  double intra_community_prob = 0.55;
  /// Probability an entity gets an `instance of`-style edge to a summary hub.
  double summary_attach_prob = 0.35;
  /// Probability a community entity gets a `main topic` edge to its topic.
  double topic_attach_prob = 0.20;

  size_t vocab_size = 12000;
  size_t community_vocab = 24;     // topical terms reserved per community
  size_t name_terms_min = 2;
  size_t name_terms_max = 4;
  /// Fraction of a community member's name terms drawn from its community
  /// vocabulary (the rest are global Zipf draws).
  double topical_name_fraction = 0.6;
  double zipf_exponent = 1.05;

  uint64_t seed = 1234;
};

/// Two ready-made scales mirroring the paper's wiki2017 / wiki2018 dumps
/// (scaled to commodity single-machine benchmarking; override via the
/// WS_SCALE environment variable in bench binaries).
WikiGenConfig SmallConfig();   // "wikisynth-S" (~wiki2017 role)
WikiGenConfig MediumConfig();  // "wikisynth-M" (kernel-bench scale)
WikiGenConfig LargeConfig();   // "wikisynth-L" (~wiki2018 role)

/// Generator byproducts needed by workload construction and the automatic
/// relevance judgment.
struct GenMetadata {
  /// Community id per node, or -1 for background / summary nodes.
  std::vector<int32_t> community_of_node;
  /// Topical term lists per community (raw, unanalyzed).
  std::vector<std::vector<std::string>> community_terms;
  std::vector<NodeId> summary_nodes;
  std::vector<NodeId> topic_nodes;
  size_t num_communities = 0;
};

struct GeneratedKb {
  KnowledgeGraph graph;
  GenMetadata meta;
};

/// Generates a knowledge base. Deterministic in config.seed.
GeneratedKb Generate(const WikiGenConfig& config);

}  // namespace wikisearch::gen
