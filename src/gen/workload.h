// Query workload construction.
//
// Efficiency experiments: the paper samples 50 keyword queries per Knum from
// the keyword lists of AAAI'14 papers — topically coherent co-occurring term
// sets. We substitute queries sampled from planted community vocabularies,
// which have the same character (DESIGN.md, substitution 5).
//
// Effectiveness experiments: analogues of the paper's Q1..Q11 (Table V),
// spanning coherent single-topic queries, "phrase-split" queries mixing two
// topics (where BANKS-II loses keyword co-occurrence, cf. Q4/Q6/Q7), an
// easy high-frequency query (Q10) and an unambiguous rare query (Q11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/wikigen.h"
#include "text/inverted_index.h"

namespace wikisearch::gen {

struct Query {
  std::string id;                      // "Q1", ...
  std::vector<std::string> keywords;   // raw keywords (pre-analysis)
  /// Community whose content the query targets; -1 means "any answer is
  /// topical" (Q10/Q11-style). Used by the automatic relevance judgment.
  int32_t target_community = -1;
  /// Secondary community for phrase-split queries, -1 otherwise.
  int32_t distractor_community = -1;
};

/// Average keyword frequency of a query under the given index (Table V kwf).
double AverageKeywordFrequency(const Query& q, const InvertedIndex& index);

/// Samples `num_queries` coherent queries of `knum` keywords each. Every
/// keyword is guaranteed a non-empty posting list. Deterministic in `seed`.
std::vector<Query> MakeEfficiencyWorkload(const GeneratedKb& kb,
                                          const InvertedIndex& index,
                                          size_t knum, size_t num_queries,
                                          uint64_t seed);

/// Builds the fixed Q1..Q11 effectiveness suite: Q1-Q3 coherent, Q4-Q7
/// phrase-split across two communities, Q8-Q9 coherent with more keywords,
/// Q10 high-frequency easy, Q11 rare unambiguous.
std::vector<Query> MakeEffectivenessWorkload(const GeneratedKb& kb,
                                             const InvertedIndex& index,
                                             uint64_t seed);

}  // namespace wikisearch::gen
