#include "gen/vocab.h"

#include <unordered_set>

namespace wikisearch::gen {

namespace {

const char* const kOnsets[] = {"b",  "d",  "f",  "g",  "k",  "l",  "m",
                               "n",  "p",  "r",  "s",  "t",  "v",  "z",
                               "br", "dr", "gr", "kr", "pl", "st", "tr"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ai", "ei", "ou"};
const char* const kCodas[] = {"",  "l", "n", "r", "s", "t",
                              "x", "m", "k", "nd", "rt"};

std::string MakeWord(Rng& rng, size_t syllables) {
  std::string w;
  for (size_t s = 0; s < syllables; ++s) {
    w += kOnsets[rng.Uniform(std::size(kOnsets))];
    w += kVowels[rng.Uniform(std::size(kVowels))];
  }
  w += kCodas[rng.Uniform(std::size(kCodas))];
  return w;
}

}  // namespace

Vocabulary::Vocabulary(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  terms_.reserve(size);
  while (terms_.size() < size) {
    size_t syllables = 2 + rng.Uniform(2);  // 2-3 syllables
    std::string w = MakeWord(rng, syllables);
    if (w.size() < 3) continue;
    if (seen.insert(w).second) terms_.push_back(std::move(w));
  }
}

}  // namespace wikisearch::gen
