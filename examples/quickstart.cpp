// Quickstart: build a tiny knowledge base in code (modeled on the paper's
// Fig. 1 query-language example), run a Central Graph keyword search for
// "xml rdf sql", and print the top answers.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "graph/csr_graph.h"
#include "text/inverted_index.h"

using namespace wikisearch;

int main() {
  // ---- 1. Build the data graph (directed labeled triples) ----------------
  GraphBuilder builder;
  builder.AddTriple("Facebook Query Language", "subclass of", "Query language");
  builder.AddTriple("SQL", "subclass of", "Query language");
  builder.AddTriple("XPath", "subclass of", "Query language");
  builder.AddTriple("XPath 2", "version of", "XPath");
  builder.AddTriple("XPath 3", "version of", "XPath");
  builder.AddTriple("XQuery", "related to", "XPath");
  builder.AddTriple("XQuery", "subclass of", "Query language");
  builder.AddTriple("SPARQL query language for RDF", "subclass of",
                    "Query language");
  builder.AddTriple("SPARQL 1.1", "version of",
                    "SPARQL query language for RDF");
  builder.AddTriple("RDF query language", "has example",
                    "SPARQL query language for RDF");
  builder.AddTriple("RDF query language", "subclass of", "Query language");
  builder.AddTriple("XQuery", "queries format", "XML");
  builder.AddTriple("XPath", "queries format", "XML");
  builder.AddTriple("SPARQL query language for RDF", "queries format", "RDF");
  builder.AddTriple("RDF query language", "queries format", "RDF");
  KnowledgeGraph graph = std::move(builder).Build();

  // ---- 2. Attach node weights (Eq. 2) and the sampled average distance ----
  AttachNodeWeights(&graph);
  AttachAverageDistance(&graph);

  // ---- 3. Build the keyword index and the engine --------------------------
  InvertedIndex index = InvertedIndex::Build(graph);
  SearchOptions options;
  options.top_k = 3;
  options.alpha = 0.3;
  options.engine = EngineKind::kCpuParallel;
  options.threads = 2;
  SearchEngine engine(&graph, &index, options);

  // ---- 4. Search -----------------------------------------------------------
  Result<SearchResult> result = engine.Search("xml rdf sql");
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("query: xml rdf sql  ->  %zu answers in %.2f ms (%d levels)\n\n",
              result->answers.size(), result->timings.total_ms,
              result->stats.levels);
  for (const AnswerGraph& answer : result->answers) {
    std::printf("%s\n", FormatAnswer(graph, answer, result->keywords).c_str());
  }
  return 0;
}
