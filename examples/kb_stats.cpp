// kb_stats: profile a knowledge base — node/edge counts, degree and label
// distributions, degree-of-summary weight quantiles and the sampled average
// distance. Works on saved snapshots, N-Triples dumps, or a generated KB.
//
//   $ ./build/examples/kb_stats                      # generated wikisynth-S
//   $ ./build/examples/kb_stats --load kb.wskg
//   $ ./build/examples/kb_stats --load-nt dump.nt
#include <cstdio>
#include <string>

#include "core/node_weight.h"
#include "eval/harness.h"
#include "graph/distance_sampler.h"
#include "graph/graph_algos.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/ntriples.h"

using namespace wikisearch;

int main(int argc, char** argv) {
  std::string load_path, load_nt_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--load") {
      load_path = next();
    } else if (arg == "--load-nt") {
      load_nt_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: kb_stats [--load p.wskg | --load-nt p.nt]\n");
      return 2;
    }
  }
  KnowledgeGraph graph;
  if (!load_path.empty()) {
    auto loaded = LoadGraph(load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*loaded);
  } else if (!load_nt_path.empty()) {
    auto loaded = LoadNTriples(load_nt_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*loaded);
  } else {
    std::fprintf(stderr, "no --load given; generating wikisynth-S...\n");
    graph = gen::Generate(eval::ScaledConfig(gen::SmallConfig())).graph;
  }
  if (!graph.has_weights()) AttachNodeWeights(&graph);
  if (graph.average_distance() <= 0.0) AttachAverageDistance(&graph);

  std::printf("%s", DescribeGraph(graph).c_str());
  ComponentInfo comp = ConnectedComponents(graph);
  std::printf("components: %zu (largest %zu nodes)\n", comp.num_components,
              comp.largest_size);
  return 0;
}
