// build_dataset: generates a synthetic knowledge base, attaches node weights
// (Eq. 2) and the sampled average distance, and saves it as a binary .wskg
// snapshot (plus optional TSV triples) ready for wikisearch_cli --load.
//
//   $ ./build/examples/build_dataset --out kb.wskg --entities 30000
//   $ ./build/examples/build_dataset --out kb.wskg --tsv kb.tsv --seed 7
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/node_weight.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "graph/graph_io.h"

using namespace wikisearch;

int main(int argc, char** argv) {
  std::string out_path = "kb.wskg";
  std::string tsv_path;
  gen::WikiGenConfig cfg = gen::SmallConfig();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--tsv") {
      tsv_path = next();
    } else if (arg == "--entities") {
      cfg.num_entities = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--communities") {
      cfg.num_communities = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      cfg.seed = static_cast<uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr,
                   "usage: build_dataset [--out p.wskg] [--tsv p.tsv] "
                   "[--entities N] [--communities C] [--seed S]\n");
      return 2;
    }
  }

  std::printf("generating %zu entities, %zu communities (seed %llu)...\n",
              cfg.num_entities, cfg.num_communities,
              static_cast<unsigned long long>(cfg.seed));
  gen::GeneratedKb kb = gen::Generate(cfg);
  AttachNodeWeights(&kb.graph);
  AttachAverageDistance(&kb.graph);
  std::printf("graph: %zu nodes, %zu triples, %zu labels, A=%.2f (dev %.2f)\n",
              kb.graph.num_nodes(), kb.graph.num_triples(),
              kb.graph.num_labels(), kb.graph.average_distance(),
              kb.graph.average_distance_deviation());

  Status st = SaveGraph(kb.graph, out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (pre-storage %.2f MB)\n", out_path.c_str(),
              static_cast<double>(kb.graph.PreStorageBytes()) / (1 << 20));
  if (!tsv_path.empty()) {
    st = SaveTriplesTsv(kb.graph, tsv_path);
    if (!st.ok()) {
      std::fprintf(stderr, "tsv save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", tsv_path.c_str());
  }
  return 0;
}
