// wikisearch_cli: the repository's stand-in for the paper's online
// WikiSearch service. Generates (or loads) a knowledge base, builds the
// keyword index, then answers queries — one-shot from the command line or
// interactively from stdin.
//
//   $ ./build/examples/wikisearch_cli --query "veltar minoka"
//   $ ./build/examples/wikisearch_cli --load data.wskg       # interactive
//   $ ./build/examples/wikisearch_cli --load-nt dump.nt      # RDF N-Triples
//   $ echo "xml rdf" | ./build/examples/wikisearch_cli --alpha 0.4
//
// Flags: --load <path.wskg>, --load-nt <path.nt>, --query <text>,
//        --alpha <a>, --topk <k>, --threads <t>,
//        --engine seq|cpu|dyn|gpu, --suggest
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "core/node_weight.h"
#include "eval/harness.h"
#include "gen/workload.h"
#include "graph/distance_sampler.h"
#include "graph/graph_io.h"
#include "graph/ntriples.h"

using namespace wikisearch;

namespace {

void RunQuery(SearchEngine& engine, const KnowledgeGraph& graph,
              const std::string& query, const SearchOptions& opts) {
  Result<SearchResult> res = engine.Search(query, opts);
  if (!res.ok()) {
    std::printf("error: %s\n", res.status().ToString().c_str());
    return;
  }
  std::printf("%zu answers in %.2f ms (levels=%d, centrals=%zu, engine=%s)\n",
              res->answers.size(), res->timings.total_ms, res->stats.levels,
              res->stats.num_centrals, EngineKindName(opts.engine));
  for (const auto& dropped : res->stats.dropped_keywords) {
    std::printf("  (no matches for \"%s\")\n", dropped.c_str());
  }
  int rank = 1;
  for (const AnswerGraph& a : res->answers) {
    std::printf("--- #%d ---\n%s", rank++,
                FormatAnswer(graph, a, res->keywords).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string load_path;
  std::string load_nt_path;
  std::string one_shot_query;
  SearchOptions opts;
  bool suggest = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--load") {
      load_path = next();
    } else if (arg == "--load-nt") {
      load_nt_path = next();
    } else if (arg == "--query") {
      one_shot_query = next();
    } else if (arg == "--alpha") {
      opts.alpha = std::atof(next());
    } else if (arg == "--topk") {
      opts.top_k = std::atoi(next());
    } else if (arg == "--threads") {
      opts.threads = std::atoi(next());
    } else if (arg == "--suggest") {
      suggest = true;
    } else if (arg == "--engine") {
      std::string e = next();
      opts.engine = e == "seq"   ? EngineKind::kSequential
                    : e == "dyn" ? EngineKind::kCpuDynamic
                    : e == "gpu" ? EngineKind::kGpuSim
                                 : EngineKind::kCpuParallel;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // ---- Load or generate the knowledge base --------------------------------
  KnowledgeGraph graph;
  gen::GeneratedKb generated;
  bool have_meta = false;
  if (!load_path.empty()) {
    Result<KnowledgeGraph> loaded = LoadGraph(load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", load_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*loaded);
  } else if (!load_nt_path.empty()) {
    Result<KnowledgeGraph> loaded = LoadNTriples(load_nt_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", load_nt_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*loaded);
  } else {
    std::fprintf(stderr, "no --load given; generating wikisynth-S...\n");
    generated = gen::Generate(eval::ScaledConfig(gen::SmallConfig()));
    graph = std::move(generated.graph);
    have_meta = true;
  }
  if (!graph.has_weights()) AttachNodeWeights(&graph);
  if (graph.average_distance() <= 0.0) AttachAverageDistance(&graph);
  InvertedIndex index = InvertedIndex::Build(graph);
  std::fprintf(stderr,
               "ready: %zu nodes, %zu triples, A=%.2f, %zu indexed terms\n",
               graph.num_nodes(), graph.num_triples(),
               graph.average_distance(), index.num_terms());

  if (suggest && have_meta) {
    generated.graph = std::move(graph);  // workload needs the bundled form
    auto queries = gen::MakeEfficiencyWorkload(generated, index, 4, 5, 1);
    std::fprintf(stderr, "try these queries:\n");
    for (const auto& q : queries) {
      std::string line;
      for (const auto& kw : q.keywords) line += kw + " ";
      std::fprintf(stderr, "  %s\n", line.c_str());
    }
    graph = std::move(generated.graph);
  }

  SearchEngine engine(&graph, &index, opts);
  if (!one_shot_query.empty()) {
    RunQuery(engine, graph, one_shot_query, opts);
    return 0;
  }
  std::fprintf(stderr, "enter keyword queries, one per line (EOF to quit):\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    RunQuery(engine, graph, line, opts);
  }
  return 0;
}
