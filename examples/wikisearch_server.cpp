// wikisearch_server: serves Central Graph keyword search over HTTP — the
// repository's counterpart of the paper's online WikiSearch service.
//
//   $ ./build/examples/wikisearch_server --port 8080 &
//   $ curl 'http://127.0.0.1:8080/search?q=xml+rdf&k=5&alpha=0.1'
//   $ curl 'http://127.0.0.1:8080/stats'
//
// Flags: --port <p> (default 8080), --load <path.wskg>, --alpha, --topk,
//        --threads, --once (serve a single self-test request and exit,
//        useful for smoke tests), --deadline-ms <ms> (default per-query
//        budget; 0 = unbounded), --queue-depth <n> (shed searches beyond n
//        in flight with 429; 0 = unlimited), --max-connections <n> (cap
//        concurrent HTTP connections; excess get 503), --reactor-threads
//        <n> (event-loop threads, each with its own SO_REUSEPORT listener;
//        default 1), --idle-timeout-ms <ms> (reap connections with no
//        request in flight and no write progress for this long; 0 disables;
//        default 5000), --batch-window-ms <ms> (merge distinct queries
//        admitted within this window into one batch epoch; 0 = off),
//        --live (serve from
//        a SnapshotManager with a background compactor: POST /update
//        accepts online mutations, GET /snapshot reports the live state),
//        --data-dir <dir> (durable live mode: WAL + snapshot persistence in
//        <dir>; boot recovers any prior state there and the initial KB is
//        only used when the directory is fresh), --fsync-policy
//        always|interval|never (default always), --fsync-interval-ms <ms>
//        (flusher period for --fsync-policy interval).
//
// Graceful shutdown: on SIGINT/SIGTERM the server stops accepting, drains
// in-flight requests, stops the compactor, then flushes + fsyncs the WAL
// and writes the CLEAN marker so the next boot can skip torn-tail repair.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/node_weight.h"
#include "eval/harness.h"
#include "graph/distance_sampler.h"
#include "graph/graph_io.h"
#include "live/compactor.h"
#include "live/snapshot_manager.h"
#include "server/http_client.h"
#include "server/search_service.h"

using namespace wikisearch;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 8080;
  std::string load_path;
  bool once = false;
  bool live_mode = false;
  size_t queue_depth = 0;
  size_t max_connections = 0;
  int reactor_threads = 1;
  int idle_timeout_ms = 5000;
  double batch_window_ms = 0.0;
  live::SnapshotManager::DurabilityOptions dopts;
  SearchOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--load") {
      load_path = next();
    } else if (arg == "--alpha") {
      opts.alpha = std::atof(next());
    } else if (arg == "--topk") {
      opts.top_k = std::atoi(next());
    } else if (arg == "--threads") {
      opts.threads = std::atoi(next());
    } else if (arg == "--deadline-ms") {
      opts.deadline_ms = std::atof(next());
    } else if (arg == "--queue-depth") {
      queue_depth = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--max-connections") {
      max_connections = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--reactor-threads") {
      reactor_threads = std::atoi(next());
    } else if (arg == "--idle-timeout-ms") {
      idle_timeout_ms = std::atoi(next());
    } else if (arg == "--batch-window-ms") {
      batch_window_ms = std::atof(next());
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--live") {
      live_mode = true;
    } else if (arg == "--data-dir") {
      dopts.data_dir = next();
      live_mode = true;  // durability implies the live serving path
    } else if (arg == "--fsync-policy") {
      auto policy = live::ParseFsyncPolicy(next());
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
        return 2;
      }
      dopts.fsync_policy = *policy;
    } else if (arg == "--fsync-interval-ms") {
      dopts.fsync_interval_ms = std::atof(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const bool durable = !dopts.data_dir.empty();
  const bool recovering =
      durable && live::SnapshotManager::HasDurableState(dopts.data_dir);

  // On recovery the data dir is the source of truth: OpenDurable ignores the
  // seed KB entirely, so skip the (expensive) generation/index build.
  KnowledgeGraph graph;
  gen::GeneratedKb generated;
  InvertedIndex index;
  if (!recovering) {
    if (!load_path.empty()) {
      Result<KnowledgeGraph> loaded = LoadGraph(load_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "cannot load %s: %s\n", load_path.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      graph = std::move(*loaded);
    } else {
      std::fprintf(stderr, "no --load given; generating wikisynth-S...\n");
      generated = gen::Generate(eval::ScaledConfig(gen::SmallConfig()));
      graph = std::move(generated.graph);
    }
    if (!graph.has_weights()) AttachNodeWeights(&graph);
    if (graph.average_distance() <= 0.0) AttachAverageDistance(&graph);
    index = InvertedIndex::Build(graph);
  } else {
    std::fprintf(stderr, "durable state found in %s; skipping KB build\n",
                 dopts.data_dir.c_str());
  }

  std::string node0_name =
      graph.num_nodes() > 0 ? graph.NodeName(0) : std::string("test");

  // Live mode hands the KB to a SnapshotManager (queries pin immutable
  // snapshots; POST /update mutates through the delta overlay) and folds in
  // the background once the overlay is 8 batches deep.
  std::unique_ptr<live::SnapshotManager> manager;
  std::unique_ptr<live::Compactor> compactor;
  std::unique_ptr<server::SearchService> live_service;
  server::SearchService* serving = nullptr;
  std::unique_ptr<server::SearchService> static_service;
  if (live_mode) {
    if (durable) {
      live::SnapshotManager::RecoveryInfo rec;
      auto opened = live::SnapshotManager::OpenDurable(
          std::move(graph), std::move(index), {}, dopts, &rec);
      if (!opened.ok()) {
        std::fprintf(stderr, "cannot open data dir %s: %s\n",
                     dopts.data_dir.c_str(),
                     opened.status().ToString().c_str());
        return 1;
      }
      manager = std::move(*opened);
      std::fprintf(stderr,
                   "durable %s: gen=%llu version=%llu replayed=%llu "
                   "clean_shutdown=%d wal_tail_torn=%d (%.1f ms)\n",
                   rec.recovered ? "recovery" : "fresh start",
                   static_cast<unsigned long long>(rec.generation),
                   static_cast<unsigned long long>(rec.version),
                   static_cast<unsigned long long>(rec.replayed_batches),
                   rec.clean_shutdown ? 1 : 0, rec.wal_tail_torn ? 1 : 0,
                   rec.recovery_ms);
      if (rec.recovered) {
        auto pinned = manager->Pin();
        node0_name = pinned->base->graph.num_nodes() > 0
                         ? pinned->base->graph.NodeName(0)
                         : std::string("test");
      }
    } else {
      manager = std::make_unique<live::SnapshotManager>(std::move(graph),
                                                        std::move(index));
    }
    compactor = std::make_unique<live::Compactor>(manager.get());
    live_service =
        std::make_unique<server::SearchService>(manager.get(), opts);
    compactor->Start();
    serving = live_service.get();
  } else {
    static_service =
        std::make_unique<server::SearchService>(&graph, &index, opts);
    serving = static_service.get();
  }
  server::SearchService& service = *serving;
  service.SetQueueDepth(queue_depth);
  if (batch_window_ms > 0) service.SetBatchWindow(batch_window_ms);
  server::HttpServer http;
  http.SetMaxConnections(max_connections);
  http.SetReactorThreads(reactor_threads);
  http.SetIdleTimeoutMs(idle_timeout_ms);
  service.RegisterRoutes(&http);
  Status st = http.Start(once ? 0 : port);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wikisearch_server listening on http://127.0.0.1:%u\n",
               http.port());

  if (once) {
    // Self-test: query a term that certainly exists (a node name token).
    std::vector<std::string> toks = Tokenize(node0_name);
    std::string q = toks.empty() ? "test" : toks[0];
    auto resp = server::HttpGet(http.port(), "/search?q=" + q + "&k=3");
    if (resp.ok()) {
      std::printf("GET /search?q=%s -> %d\n%.400s\n", q.c_str(), resp->status,
                  resp->body.c_str());
    }
    auto stats = server::HttpGet(http.port(), "/stats");
    if (stats.ok()) std::printf("GET /stats -> %.400s\n", stats->body.c_str());
    if (live_mode) {
      // And one mutation through the live path (in-process; POST /update
      // over the wire carries the same body).
      server::HttpRequest update;
      update.method = "POST";
      update.path = "/update";
      update.body = "{\"add\":[[\"live demo node\",\"linksTo\",\"" +
                    node0_name + "\"]]}";
      auto up = service.HandleUpdate(update);
      std::printf("POST /update -> %d %.200s\n", up.status, up.body.c_str());
      auto snap = server::HttpGet(http.port(), "/snapshot");
      if (snap.ok()) {
        std::printf("GET /snapshot -> %.300s\n", snap->body.c_str());
      }
    }
    http.Stop();
    if (compactor) compactor->Stop();
    if (manager && manager->durable()) {
      Status down = manager->ShutdownDurable();
      std::printf("durable shutdown -> %s\n",
                  down.ok() ? "clean" : down.ToString().c_str());
    }
    return 0;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop && http.running()) {
    struct timespec ts{0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  // Graceful shutdown: stop accepting + drain in-flight requests first, then
  // quiesce the compactor, then seal the WAL (flush + fsync + CLEAN marker)
  // so the next boot skips replay validation of the tail.
  http.Stop();
  if (compactor) compactor->Stop();
  if (manager && manager->durable()) {
    Status down = manager->ShutdownDurable();
    if (down.ok()) {
      std::fprintf(stderr, "durable state sealed (clean marker written)\n");
    } else {
      std::fprintf(stderr, "durable shutdown failed: %s\n",
                   down.ToString().c_str());
    }
  }
  std::fprintf(stderr, "served %llu requests, bye\n",
               static_cast<unsigned long long>(http.requests_served()));
  return 0;
}
