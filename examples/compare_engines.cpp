// compare_engines: side-by-side comparison of the Central Graph engine
// variants and the BANKS baselines on the same generated knowledge base —
// a runnable miniature of the paper's evaluation narrative.
//
//   $ ./build/examples/compare_engines
#include <cstdio>

#include "banks/banks.h"
#include "eval/harness.h"
#include "eval/relevance.h"

using namespace wikisearch;

int main() {
  eval::DatasetBundle data =
      eval::PrepareDataset(eval::ScaledConfig(gen::SmallConfig()), "demo");
  eval::RelevanceJudge judge(&data.kb);
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 4, 3, 2024);

  banks::BanksEngine banks_engine(&data.kb.graph, &data.index);

  for (const gen::Query& q : queries) {
    std::string line;
    for (const auto& kw : q.keywords) line += kw + " ";
    std::printf("\n=========== query: %s===========\n", line.c_str());

    // Central Graph engine variants.
    for (EngineKind kind :
         {EngineKind::kCpuParallel, EngineKind::kGpuSim,
          EngineKind::kCpuDynamic}) {
      SearchOptions opts;
      opts.top_k = 5;
      opts.engine = kind;
      opts.threads = 4;
      SearchEngine engine(&data.kb.graph, &data.index, opts);
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      std::printf("%-14s %6.2f ms  %zu answers  precision@5 %.0f%%\n",
                  EngineKindName(kind), res->timings.total_ms,
                  res->answers.size(),
                  judge.TopKPrecision(q, res->answers, 5) * 100);
    }

    // BANKS baselines.
    for (auto [variant, name] :
         {std::pair{banks::BanksVariant::kBanks1, "BANKS-I"},
          std::pair{banks::BanksVariant::kBanks2, "BANKS-II"}}) {
      banks::BanksOptions opts;
      opts.top_k = 5;
      opts.variant = variant;
      opts.time_limit_ms = 5000;
      auto res = banks_engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      std::printf("%-14s %6.2f ms  %zu answers  precision@5 %.0f%%%s\n", name,
                  res->elapsed_ms, res->answers.size(),
                  judge.TopKPrecision(q, res->answers, 5) * 100,
                  res->timed_out ? "  (timed out)" : "");
    }

    // Show the best Central Graph answer in full.
    SearchOptions opts;
    opts.top_k = 1;
    SearchEngine engine(&data.kb.graph, &data.index, opts);
    auto res = engine.SearchKeywords(q.keywords, opts);
    if (res.ok() && !res->answers.empty()) {
      std::printf("best Central Graph answer:\n%s",
                  FormatAnswer(data.kb.graph, res->answers[0], res->keywords)
                      .c_str());
    }
  }
  return 0;
}
