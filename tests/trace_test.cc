// Tests of per-query span tracing (DESIGN.md §8): TraceContext mechanics,
// and the engine-level contract that every engine kind emits the same
// well-formed span tree — strictly nested, monotonic steady-clock
// timestamps, parseable Chrome trace JSON, exactly one "bottomup/level"
// span per completed level (SearchStats::levels_completed), and span sums
// that equal the engine's PhaseTimings as the same doubles — including under
// deadline expiry forced at every fault-injection point.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "obs/trace.h"
#include "test_util.h"

namespace wikisearch {
namespace {

// --------------------------- TraceContext mechanics --------------------------

TEST(TraceContextTest, NestedSpansRecordDepthAndDurations) {
  obs::TraceContext trace;
  size_t outer = trace.OpenSpan("outer");
  size_t inner = trace.OpenSpan("inner");
  EXPECT_EQ(trace.open_depth(), 2u);
  double inner_dur = trace.CloseSpan(inner);
  double outer_dur = trace.CloseSpan(outer);
  EXPECT_EQ(trace.open_depth(), 0u);

  ASSERT_EQ(trace.spans().size(), 2u);
  const auto& s0 = trace.spans()[0];
  const auto& s1 = trace.spans()[1];
  EXPECT_EQ(s0.name, "outer");
  EXPECT_EQ(s0.depth, 0);
  EXPECT_EQ(s1.name, "inner");
  EXPECT_EQ(s1.depth, 1);
  // CloseSpan returns the same double it stores.
  EXPECT_EQ(s0.dur_ms, outer_dur);
  EXPECT_EQ(s1.dur_ms, inner_dur);
  EXPECT_GE(s1.start_ms, s0.start_ms);
  EXPECT_GE(outer_dur, inner_dur);  // outer encloses inner
}

TEST(TraceContextDeathTest, OutOfOrderCloseIsCaught) {
  EXPECT_DEATH(
      {
        obs::TraceContext trace;
        size_t outer = trace.OpenSpan("outer");
        trace.OpenSpan("inner");
        trace.CloseSpan(outer);  // inner is still open
      },
      "CHECK");
}

TEST(TraceContextTest, RenameMarksAbandonedLevels) {
  obs::TraceContext trace;
  size_t id = trace.OpenSpan("bottomup/level");
  trace.RenameSpan(id, "bottomup/level(partial)");
  trace.CloseSpan(id);
  EXPECT_EQ(trace.CountSpans("bottomup/level"), 0u);
  EXPECT_EQ(trace.CountSpans("bottomup/level(partial)"), 1u);
}

TEST(TraceContextTest, SumAndCountAggregateByName) {
  obs::TraceContext trace;
  double expected = 0.0;
  for (int i = 0; i < 3; ++i) {
    size_t id = trace.OpenSpan("stage");
    expected += trace.CloseSpan(id);
  }
  size_t other = trace.OpenSpan("other");
  trace.CloseSpan(other);
  EXPECT_EQ(trace.CountSpans("stage"), 3u);
  EXPECT_EQ(trace.CountSpans("other"), 1u);
  // Same accumulation order as the loop above: identical double.
  EXPECT_EQ(trace.SumDurationsMs("stage"), expected);
  trace.Clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.SumDurationsMs("stage"), 0.0);
}

TEST(TraceContextTest, ChromeJsonIsParseableAndMicroseconds) {
  obs::TraceContext trace;
  size_t a = trace.OpenSpan("search");
  size_t b = trace.OpenSpan("search/index_lookup");
  trace.CloseSpan(b);
  trace.CloseSpan(a);

  Result<JsonValue> doc = JsonParse(trace.ToChromeJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* unit = doc->Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ms");
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), trace.spans().size());
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const auto& span = trace.spans()[i];
    ASSERT_TRUE(ev.is_object());
    EXPECT_EQ(ev.Find("ph")->str, "X");
    EXPECT_EQ(ev.Find("name")->str, span.name);
    // ts/dur are microseconds; JsonWriter renders %.6g, so compare loosely.
    EXPECT_NEAR(ev.Find("ts")->number, span.start_ms * 1000.0,
                std::abs(span.start_ms) * 1e-3 + 1e-3);
    ASSERT_NE(ev.Find("args"), nullptr);
    EXPECT_EQ(ev.Find("args")->Find("depth")->number,
              static_cast<double>(span.depth));
  }
}

TEST(ScopedStageTest, FeedsIdenticalDoubleToSpanAndAccumulator) {
  obs::TraceContext trace;
  double acc = 0.0;
  {
    obs::ScopedStage stage(&trace, "stage", &acc);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(acc, trace.spans()[0].dur_ms);  // the same double, both sinks
  EXPECT_GT(acc, 0.0);

  // Without a trace, ScopedStage degenerates to the plain timer pattern.
  double timer_only = 0.0;
  {
    obs::ScopedStage stage(nullptr, "stage", &timer_only);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_GT(timer_only, 0.0);
  EXPECT_EQ(trace.spans().size(), 1u);  // nothing recorded
}

// ----------------------------- Engine span trees -----------------------------

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 800;
    cfg.num_summary_nodes = 5;
    cfg.num_topic_nodes = 12;
    cfg.num_communities = 6;
    cfg.vocab_size = 1200;
    cfg.seed = 7;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 1000, 5);
    index = InvertedIndex::Build(kb.graph);
    query = {kb.meta.community_terms[0][0], kb.meta.community_terms[1][0]};
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
  std::vector<std::string> query;
};

Fixture& SharedFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

const EngineKind kAllEngines[] = {
    EngineKind::kSequential,
    EngineKind::kCpuParallel,
    EngineKind::kCpuDynamic,
    EngineKind::kGpuSim,
};

/// Structural well-formedness of a finished trace: spans in start order,
/// non-negative durations, depths consistent with a pre-order tree walk,
/// children contained in their parents, nothing left open.
void CheckWellFormed(const obs::TraceContext& trace) {
  ASSERT_EQ(trace.open_depth(), 0u);
  const auto& spans = trace.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].depth, 0);
  std::vector<const obs::TraceContext::Span*> stack;
  double prev_start = 0.0;
  for (const auto& s : spans) {
    EXPECT_GE(s.start_ms, 0.0) << s.name;
    EXPECT_GE(s.start_ms, prev_start) << s.name;  // monotonic steady clock
    prev_start = s.start_ms;
    EXPECT_GE(s.dur_ms, 0.0) << s.name;
    while (!stack.empty() && stack.back()->depth >= s.depth) stack.pop_back();
    ASSERT_EQ(s.depth, static_cast<int>(stack.size())) << s.name;
    if (!stack.empty()) {
      const auto* parent = stack.back();
      EXPECT_GE(s.start_ms, parent->start_ms) << s.name;
      EXPECT_LE(s.start_ms + s.dur_ms,
                parent->start_ms + parent->dur_ms + 1e-6)
          << s.name << " escapes " << parent->name;
    }
    stack.push_back(&s);
  }
}

/// The cross-engine contract checked after every traced query.
void CheckEngineTrace(const obs::TraceContext& trace, const SearchResult& res,
                      EngineKind kind) {
  SCOPED_TRACE(EngineKindName(kind));
  CheckWellFormed(trace);

  // The fixed skeleton: one root "search" span enclosing everything, one
  // "bottomup" stage; "topdown" appears whenever the bottom-up stage left
  // candidates to extract.
  EXPECT_EQ(trace.CountSpans("search"), 1u);
  EXPECT_EQ(trace.spans()[0].name, "search");
  EXPECT_EQ(trace.CountSpans("search/index_lookup"), 1u);
  EXPECT_EQ(trace.CountSpans("search/activation"), 1u);
  EXPECT_EQ(trace.CountSpans("bottomup"), 1u);
  EXPECT_LE(trace.CountSpans("topdown"), 1u);

  // One "bottomup/level" span per completed level — the invariant that makes
  // level accounting in traces and SearchStats a single measurement.
  EXPECT_EQ(trace.CountSpans("bottomup/level"),
            static_cast<size_t>(std::max(res.stats.levels_completed, 0)));

  // Stage-2 candidate accounting: every Central Graph candidate lands in
  // exactly one bucket, whether the query ran exhaustively, pruned on the
  // bound, or shed work at the deadline.
  EXPECT_EQ(res.stats.candidates_extracted + res.stats.candidates_pruned +
                res.stats.candidates_skipped,
            res.stats.num_centrals);

  // Span sums equal PhaseTimings — identical doubles, not approximations.
  EXPECT_EQ(trace.SumDurationsMs("bottomup/init"), res.timings.init_ms);
  EXPECT_EQ(trace.SumDurationsMs("bottomup/enqueue"), res.timings.enqueue_ms);
  EXPECT_EQ(trace.SumDurationsMs("bottomup/identify"),
            res.timings.identify_ms);
  EXPECT_EQ(trace.SumDurationsMs("bottomup/expand"),
            res.timings.expansion_ms);
  EXPECT_EQ(trace.SumDurationsMs("topdown"), res.timings.topdown_ms);

  // The export is valid JSON with one event per span.
  Result<JsonValue> doc = JsonParse(trace.ToChromeJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_NE(doc->Find("traceEvents"), nullptr);
  EXPECT_EQ(doc->Find("traceEvents")->array.size(), trace.spans().size());
}

TEST(EngineTraceTest, EveryEngineKindEmitsWellFormedSpanTree) {
  Fixture& f = SharedFixture();
  for (EngineKind kind : kAllEngines) {
    SearchOptions opts;
    opts.top_k = 10;
    opts.threads = 4;
    opts.engine = kind;
    obs::TraceContext trace;
    opts.trace = &trace;
    opts.record_metrics = false;
    SearchEngine engine(&f.kb.graph, &f.index, opts);
    auto res = engine.SearchKeywords(f.query, opts);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    CheckEngineTrace(trace, *res, kind);
  }
}

TEST(EngineTraceTest, TraceContextIsReusableAcrossQueries) {
  Fixture& f = SharedFixture();
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 2;
  opts.engine = EngineKind::kCpuParallel;
  obs::TraceContext trace;
  opts.trace = &trace;
  opts.record_metrics = false;
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  for (int round = 0; round < 3; ++round) {
    trace.Clear();
    auto res = engine.SearchKeywords(f.query, opts);
    ASSERT_TRUE(res.ok());
    CheckEngineTrace(trace, *res, opts.engine);
  }
}

// ------------------------- Deadline expiry sweeps ----------------------------

// Expiry forced at every fault point must still leave a well-formed trace
// whose completed-level span count matches levels_completed — the abandoned
// level is renamed "bottomup/level(partial)", never miscounted.
const char* const kLockFreePoints[] = {
    "bottomup:level", "bottomup:identify", "bottomup:chunk",
    "stage:topdown", "topdown:candidate",
};
const char* const kDynamicPoints[] = {
    "dynamic:level", "dynamic:chunk", "dynamic:topdown",
};

SearchOptions StalledOptions(EngineKind kind, const char* point) {
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 4;
  opts.engine = kind;
  opts.deadline_ms = 5.0;
  auto fired = std::make_shared<std::atomic<bool>>(false);
  std::string target = point;
  opts.fault_injection = [fired, target](const char* p) {
    if (target == p && !fired->exchange(true)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  };
  return opts;
}

void RunTracedExpirySweep(EngineKind kind, const char* const* points,
                          size_t num_points) {
  Fixture& f = SharedFixture();
  for (size_t i = 0; i < num_points; ++i) {
    SCOPED_TRACE(std::string(EngineKindName(kind)) + " @ " + points[i]);
    SearchOptions opts = StalledOptions(kind, points[i]);
    obs::TraceContext trace;
    opts.trace = &trace;
    opts.record_metrics = false;
    SearchEngine engine(&f.kb.graph, &f.index, opts);
    auto res = engine.SearchKeywords(f.query, opts);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->stats.timed_out);
    CheckEngineTrace(trace, *res, kind);
  }
}

TEST(EngineTraceTest, ExpiryAtEveryFaultPointSequential) {
  RunTracedExpirySweep(EngineKind::kSequential, kLockFreePoints,
                       std::size(kLockFreePoints));
}

TEST(EngineTraceTest, ExpiryAtEveryFaultPointCpuParallel) {
  RunTracedExpirySweep(EngineKind::kCpuParallel, kLockFreePoints,
                       std::size(kLockFreePoints));
}

TEST(EngineTraceTest, ExpiryAtEveryFaultPointGpuSim) {
  RunTracedExpirySweep(EngineKind::kGpuSim, kLockFreePoints,
                       std::size(kLockFreePoints));
}

TEST(EngineTraceTest, ExpiryAtEveryFaultPointDynamic) {
  RunTracedExpirySweep(EngineKind::kCpuDynamic, kDynamicPoints,
                       std::size(kDynamicPoints));
}

}  // namespace
}  // namespace wikisearch
