// Tests of the two-stage algorithm against the paper's worked examples
// (Fig. 2 / Sec. III), the activation semantics of Sec. IV, extraction per
// Thm. V.4, level-cover pruning (Fig. 5), and an independent fixpoint
// formulation of hitting levels.
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/bottom_up.h"
#include "core/extraction.h"
#include "core/level_cover.h"
#include "core/top_down.h"
#include "test_util.h"

namespace wikisearch {
namespace {

using ::wikisearch::testing::FixpointCentrals;
using ::wikisearch::testing::FixpointHits;
using ::wikisearch::testing::MakeGraph;

struct SearchRun {
  SearchRun(const KnowledgeGraph& g, std::vector<std::vector<NodeId>> groups,
      int top_k, double avg_dist = 2.0, double alpha = 0.5, int lmax = 20,
      int threads = 1, bool gpu_style = false)
      : ctx(g, {}, std::move(groups), ActivationMap(avg_dist, alpha), lmax),
        state(g.num_nodes(), ctx.num_keywords()),
        pool(threads) {
    opts.top_k = top_k;
    opts.alpha = alpha;
    bottom = BottomUpSearch(ctx, opts, &pool, &state, &timings, gpu_style);
  }

  std::vector<AnswerGraph> Answers() {
    StateHitLevels hits(state);
    auto mask = [this](NodeId v) { return state.KeywordMask(v); };
    return TopDownProcess(ctx, opts, &pool, hits, state.centrals(), mask,
                          &timings);
  }

  QueryContext ctx;
  SearchState state;
  ThreadPool pool;
  SearchOptions opts;
  PhaseTimings timings;
  BottomUpResult bottom;
};

KnowledgeGraph WithZeroWeights(KnowledgeGraph g) {
  auto st = g.SetNodeWeights(std::vector<double>(g.num_nodes(), 0.0));
  (void)st;
  return g;
}

// ----------------------- Paper Fig. 2 worked example -------------------------

KnowledgeGraph Fig2Graph() {
  // v0-v3, v1-v3, v1-v4, v2-v4, v3-v4 (Sec. III examples 1-3).
  return WithZeroWeights(
      MakeGraph(5, {{0, 3}, {1, 3}, {1, 4}, {2, 4}, {3, 4}}));
}

TEST(BottomUpTest, Fig2HittingLevels) {
  KnowledgeGraph g = Fig2Graph();
  SearchRun run(g, {{0}, {1, 2}}, /*top_k=*/1);

  // Sources at level 0 (Example 1).
  EXPECT_EQ(run.state.Hit(0, 0), 0);
  EXPECT_EQ(run.state.Hit(1, 1), 0);
  EXPECT_EQ(run.state.Hit(2, 1), 0);
  // h^1_3 = h^1_4 = 1 (Example 1); h^0_3 = 1.
  EXPECT_EQ(run.state.Hit(3, 1), 1);
  EXPECT_EQ(run.state.Hit(4, 1), 1);
  EXPECT_EQ(run.state.Hit(3, 0), 1);
}

TEST(BottomUpTest, Fig2CentralV3AtDepth1) {
  KnowledgeGraph g = Fig2Graph();
  SearchRun run(g, {{0}, {1, 2}}, /*top_k=*/1);
  ASSERT_EQ(run.state.centrals().size(), 1u);
  EXPECT_EQ(run.state.centrals()[0].node, 3u);
  EXPECT_EQ(run.state.centrals()[0].depth, 1);
  EXPECT_EQ(run.bottom.levels, 1);
}

TEST(BottomUpTest, Fig2CentralExclusionBlocksV4) {
  // Sec. III-B: once v3 is identified it stops expanding, so B_0 never
  // reaches v4 and the second Central Graph of Example 3 is not produced by
  // the search (it exists only definitionally).
  KnowledgeGraph g = Fig2Graph();
  SearchRun run(g, {{0}, {1, 2}}, /*top_k=*/5);
  ASSERT_EQ(run.state.centrals().size(), 1u);
  EXPECT_EQ(run.state.centrals()[0].node, 3u);
  EXPECT_TRUE(run.bottom.frontier_exhausted);
}

TEST(BottomUpTest, Fig2AnswerGraphContents) {
  KnowledgeGraph g = Fig2Graph();
  SearchRun run(g, {{0}, {1, 2}}, /*top_k=*/1);
  auto answers = run.Answers();
  ASSERT_EQ(answers.size(), 1u);
  const AnswerGraph& a = answers[0];
  EXPECT_EQ(a.central, 3u);
  EXPECT_EQ(a.depth, 1);
  // Hitting paths v0 -> v3 and v1 -> v3 (Example 3's first Central Graph).
  EXPECT_EQ(a.nodes, (std::vector<NodeId>{0, 1, 3}));
  testing::CheckAnswerInvariants(g, a, 2);
}

// ------------------------ Activation level semantics -------------------------

TEST(BottomUpTest, ActivationDelaysHits) {
  // Path 0-1-2-3-4 with a heavy middle node: A=2, alpha=0.5, w2=0.75
  // -> a_2 = 3. B_0 from node 0, B_1 from node 4.
  KnowledgeGraph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto st = g.SetNodeWeights({0, 0, 0.75, 0, 0});
  ASSERT_TRUE(st.ok());
  SearchRun run(g, {{0}, {4}}, /*top_k=*/1);

  EXPECT_EQ(run.state.Hit(1, 0), 1);
  // Node 2 cannot be hit before its activation level 3.
  EXPECT_EQ(run.state.Hit(2, 0), 3);
  EXPECT_EQ(run.state.Hit(2, 1), 3);
  ASSERT_EQ(run.state.centrals().size(), 1u);
  EXPECT_EQ(run.state.centrals()[0].node, 2u);
  EXPECT_EQ(run.state.centrals()[0].depth, 3);
}

TEST(BottomUpTest, KeywordNodesHitWithoutActivationRestriction) {
  // Sec. IV-B compromise: node 2 contains a keyword and has activation 3,
  // but may still be *hit* at level 2; it only *expands* at level >= 3.
  KnowledgeGraph g = MakeGraph(3, {{0, 1}, {1, 2}});
  auto st = g.SetNodeWeights({0, 0, 0.75});
  ASSERT_TRUE(st.ok());
  SearchRun run(g, {{0}, {2}}, /*top_k=*/1);

  EXPECT_EQ(run.state.Hit(2, 0), 2);  // hit freely despite a_2 = 3
  ASSERT_EQ(run.state.centrals().size(), 1u);
  EXPECT_EQ(run.state.centrals()[0].node, 2u);
  EXPECT_EQ(run.state.centrals()[0].depth, 2);
}

TEST(BottomUpTest, KeywordNodeExpansionWaitsForActivation) {
  // Path 0-1-2-3-4-5 with keywords at 0, 2, 5 and node 2 heavy (a_2 = 2).
  // B_1's source node 2 may not expand before level 2, so node 1 is hit by
  // B_1 only at level 3 (not 1); node 2 becomes central at level 3 when the
  // distant B_2 arrives.
  KnowledgeGraph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto st = g.SetNodeWeights({0, 0, 0.5, 0, 0, 0});
  ASSERT_TRUE(st.ok());
  SearchRun run(g, {{0}, {2}, {5}}, /*top_k=*/1);
  EXPECT_EQ(run.state.Hit(1, 1), 3);
  // Nodes 2 and 3 both become central at level 3 (node 3 is also hit by all
  // three instances then).
  ASSERT_EQ(run.state.centrals().size(), 2u);
  EXPECT_EQ(run.state.centrals()[0].node, 2u);
  EXPECT_EQ(run.state.centrals()[0].depth, 3);
  EXPECT_EQ(run.state.centrals()[1].node, 3u);
}

TEST(BottomUpTest, LmaxCutsSearchOff) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 11; ++i) edges.push_back({i, i + 1});
  KnowledgeGraph g = WithZeroWeights(MakeGraph(12, edges));
  SearchRun run(g, {{0}, {11}}, /*top_k=*/1, 2.0, 0.5, /*lmax=*/3);
  EXPECT_TRUE(run.state.centrals().empty());
  EXPECT_LE(run.bottom.levels, 3);
  EXPECT_TRUE(run.Answers().empty());
}

TEST(BottomUpTest, SingleKeywordCentralsAtDepthZero) {
  KnowledgeGraph g = WithZeroWeights(MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}}));
  SearchRun run(g, {{1, 2}}, /*top_k=*/2);
  ASSERT_EQ(run.state.centrals().size(), 2u);
  EXPECT_EQ(run.state.centrals()[0].depth, 0);
  auto answers = run.Answers();
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].nodes.size(), 1u);  // single-node answers
  EXPECT_EQ(answers[0].score, 0.0);        // d(C)^lambda == 0
}

// ------------------------------ Extraction -----------------------------------

TEST(ExtractionTest, MultiPathsForOneKeywordRecovered) {
  // Two nodes of keyword 1 (nodes 0, 1) both adjacent to the central node 2;
  // keyword 0 at node 3. Central Graphs allow multiple hitting paths and
  // multiple keyword nodes per keyword (Fig. 1's selling point).
  KnowledgeGraph g = WithZeroWeights(MakeGraph(4, {{0, 2}, {1, 2}, {3, 2}}));
  SearchRun run(g, {{3}, {0, 1}}, /*top_k=*/1);
  ASSERT_EQ(run.state.centrals().size(), 1u);
  EXPECT_EQ(run.state.centrals()[0].node, 2u);

  StateHitLevels hits(run.state);
  ExtractedGraph eg =
      ExtractCentralGraph(run.ctx, hits, run.state.centrals()[0]);
  using Edge = std::pair<NodeId, NodeId>;
  EXPECT_EQ(eg.dag[0], (std::vector<Edge>{{3, 2}}));
  EXPECT_EQ(eg.dag[1], (std::vector<Edge>{{0, 2}, {1, 2}}));

  auto answers = run.Answers();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].nodes, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(answers[0].keyword_nodes[1], (std::vector<NodeId>{0, 1}));
  testing::CheckAnswerInvariants(g, answers[0], 2);
}

TEST(ExtractionTest, RecurrenceRespectsWaitingPredecessors) {
  // 0 -(kw0)- 1 - 2 -(heavy a=3)- 3(kw1). B_0: node 2 hit at 3 (activation),
  // node 3 hit at 4. Extraction must reproduce the waiting chain.
  KnowledgeGraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  auto st = g.SetNodeWeights({0, 0, 0.75, 0});
  ASSERT_TRUE(st.ok());
  SearchRun run(g, {{0}, {3}}, /*top_k=*/1);
  ASSERT_EQ(run.state.centrals().size(), 1u);
  NodeId central = run.state.centrals()[0].node;
  EXPECT_EQ(central, 2u);

  StateHitLevels hits(run.state);
  ExtractedGraph eg =
      ExtractCentralGraph(run.ctx, hits, run.state.centrals()[0]);
  using Edge = std::pair<NodeId, NodeId>;
  EXPECT_EQ(eg.dag[0], (std::vector<Edge>{{0, 1}, {1, 2}}));
  EXPECT_EQ(eg.dag[1], (std::vector<Edge>{{3, 2}}));
}

// ------------------------------ Level cover ----------------------------------

TEST(LevelCoverTest, Fig5JeffreyNodesPruned) {
  // Central node "Stanford University" (contains keyword s). Jeffrey Ullman
  // contributes {j, u}; two extra nodes contribute only {j}. After the top
  // level and the 2-keyword level, coverage is complete and the
  // Jeffrey-only nodes are pruned with their paths (Fig. 5).
  GraphBuilder b;
  NodeId stanford = b.AddNode("stanford university");
  NodeId ullman = b.AddNode("jeffrey ullman");
  NodeId j1 = b.AddNode("jeffrey smith");
  NodeId j2 = b.AddNode("jeffrey brown");
  LabelId l = b.AddLabel("affiliated");
  ASSERT_TRUE(b.AddEdge(ullman, stanford, l).ok());
  ASSERT_TRUE(b.AddEdge(j1, stanford, l).ok());
  ASSERT_TRUE(b.AddEdge(j2, stanford, l).ok());
  KnowledgeGraph g = WithZeroWeights(std::move(b).Build());

  // keywords: 0=stanford, 1=jeffrey, 2=ullman. Both `stanford` and `ullman`
  // become Central Nodes at depth 1 (each is hit by all three instances);
  // verify the level-cover pruning on the stanford-centered graph.
  SearchRun run(g, {{stanford}, {ullman, j1, j2}, {ullman}}, /*top_k=*/1);
  run.opts.dedup_answers = false;
  run.opts.top_k = 10;
  ASSERT_EQ(run.state.centrals().size(), 2u);

  auto answers = run.Answers();
  const AnswerGraph* stanford_answer = nullptr;
  for (const auto& a : answers) {
    if (a.central == stanford) stanford_answer = &a;
  }
  ASSERT_NE(stanford_answer, nullptr);
  EXPECT_EQ(stanford_answer->nodes, (std::vector<NodeId>{stanford, ullman}));
  ASSERT_EQ(stanford_answer->edges.size(), 1u);
  EXPECT_EQ(stanford_answer->edges[0].src, ullman);
  EXPECT_EQ(stanford_answer->edges[0].dst, stanford);
}

TEST(LevelCoverTest, DisabledKeepsFullCentralGraph) {
  GraphBuilder b;
  NodeId stanford = b.AddNode("stanford university");
  NodeId ullman = b.AddNode("jeffrey ullman");
  NodeId j1 = b.AddNode("jeffrey smith");
  LabelId l = b.AddLabel("affiliated");
  ASSERT_TRUE(b.AddEdge(ullman, stanford, l).ok());
  ASSERT_TRUE(b.AddEdge(j1, stanford, l).ok());
  KnowledgeGraph g = WithZeroWeights(std::move(b).Build());
  SearchRun run(g, {{stanford}, {ullman, j1}, {ullman}}, 1);
  run.opts.enable_level_cover = false;
  run.opts.dedup_answers = false;
  run.opts.top_k = 10;
  auto answers = run.Answers();
  const AnswerGraph* stanford_answer = nullptr;
  for (const auto& a : answers) {
    if (a.central == stanford) stanford_answer = &a;
  }
  ASSERT_NE(stanford_answer, nullptr);
  EXPECT_EQ(stanford_answer->nodes,
            (std::vector<NodeId>{stanford, ullman, j1}));
}

TEST(LevelCoverTest, NodesWithinALevelNotPrunedByEachOther) {
  // Two single-keyword nodes for *different* keywords sit in the same level;
  // both must be kept (pruning happens only level-by-level).
  KnowledgeGraph g = WithZeroWeights(MakeGraph(3, {{0, 2}, {1, 2}}));
  SearchRun run(g, {{0}, {1}}, 1);
  auto answers = run.Answers();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].nodes, (std::vector<NodeId>{0, 1, 2}));
}

// ------------------------------- Scoring -------------------------------------

TEST(ScoringTest, Eq6HandValue) {
  KnowledgeGraph g = MakeGraph(3, {{0, 1}, {1, 2}});
  auto st = g.SetNodeWeights({0.5, 0.25, 0.75});
  ASSERT_TRUE(st.ok());
  AnswerGraph a;
  a.depth = 3;
  a.nodes = {0, 1, 2};
  EXPECT_NEAR(ScoreAnswer(g, a, 0.2), std::pow(3.0, 0.2) * 1.5, 1e-12);
}

TEST(ScoringTest, AnswerOrderDeterministicTieBreaks) {
  AnswerGraph a, b;
  a.score = b.score = 1.0;
  a.depth = 1;
  b.depth = 2;
  EXPECT_TRUE(AnswerOrder(a, b));
  b.depth = 1;
  a.nodes = {1};
  b.nodes = {1, 2};
  EXPECT_TRUE(AnswerOrder(a, b));
  b.nodes = {1};
  a.central = 3;
  b.central = 5;
  EXPECT_TRUE(AnswerOrder(a, b));
}

TEST(SelectTopKTest, DropsNestedAnswers) {
  SearchOptions opts;
  opts.top_k = 5;
  AnswerGraph small, container, other;
  small.central = 1;
  small.score = 1.0;
  small.nodes = {1, 2};
  container.central = 2;
  container.score = 2.0;
  container.nodes = {1, 2, 3};  // contains `small`
  other.central = 3;
  other.score = 3.0;
  other.nodes = {7, 8};
  auto selected = SelectTopK({container, small, other}, opts);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].central, 1u);
  EXPECT_EQ(selected[1].central, 3u);
}

TEST(SelectTopKTest, KeepsNestedWhenDedupDisabled) {
  SearchOptions opts;
  opts.top_k = 5;
  opts.dedup_answers = false;
  AnswerGraph small, container;
  small.central = 1;
  small.score = 1.0;
  small.nodes = {1, 2};
  container.central = 2;
  container.score = 2.0;
  container.nodes = {1, 2, 3};
  EXPECT_EQ(SelectTopK({container, small}, opts).size(), 2u);
}

TEST(SelectTopKTest, TruncatesToK) {
  SearchOptions opts;
  opts.top_k = 2;
  std::vector<AnswerGraph> cands(5);
  for (int i = 0; i < 5; ++i) {
    cands[static_cast<size_t>(i)].central = static_cast<NodeId>(i);
    cands[static_cast<size_t>(i)].score = i;
    cands[static_cast<size_t>(i)].nodes = {static_cast<NodeId>(100 + i)};
  }
  auto selected = SelectTopK(std::move(cands), opts);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].central, 0u);
  EXPECT_EQ(selected[1].central, 1u);
}

// --------------------- Fixpoint ground-truth comparison ----------------------

class FixpointCompareTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FixpointCompareTest, FirstCentralsMatchIndependentFormulation) {
  Rng rng(GetParam());
  const size_t n = 24;
  std::vector<std::pair<int, int>> edges;
  for (size_t i = 1; i < n; ++i) {
    edges.push_back({static_cast<int>(rng.Uniform(i)), static_cast<int>(i)});
  }
  for (size_t e = 0; e < n; ++e) {
    int u = static_cast<int>(rng.Uniform(n)), v = static_cast<int>(rng.Uniform(n));
    if (u != v) edges.push_back({u, v});
  }
  KnowledgeGraph g = MakeGraph(n, edges);
  std::vector<double> w(n);
  for (auto& x : w) x = rng.UniformDouble();
  ASSERT_TRUE(g.SetNodeWeights(w).ok());

  // Random 2-3 keyword groups.
  size_t q = 2 + rng.Uniform(2);
  std::vector<std::vector<NodeId>> groups(q);
  for (size_t i = 0; i < q; ++i) {
    size_t sz = 1 + rng.Uniform(3);
    for (size_t s = 0; s < sz; ++s) {
      groups[i].push_back(static_cast<NodeId>(rng.Uniform(n)));
    }
    std::sort(groups[i].begin(), groups[i].end());
    groups[i].erase(std::unique(groups[i].begin(), groups[i].end()),
                    groups[i].end());
  }

  const int lmax = 12;
  ActivationMap act(2.5, 0.3);
  auto fix = FixpointHits(g, groups, act, lmax);
  auto fix_centrals = FixpointCentrals(fix, lmax);

  SearchRun run(g, groups, /*top_k=*/1, 2.5, 0.3, lmax);
  if (fix_centrals.empty()) {
    EXPECT_TRUE(run.state.centrals().empty());
    return;
  }
  // All centrals at the first feasible depth must be found exactly: no
  // exclusion has occurred before the first identification level.
  int d0 = fix_centrals[0].second;
  std::vector<NodeId> expected;
  for (const auto& [v, d] : fix_centrals) {
    if (d == d0) expected.push_back(v);
  }
  std::vector<NodeId> got;
  for (const auto& c : run.state.centrals()) {
    EXPECT_EQ(c.depth, d0);
    got.push_back(c.node);
  }
  EXPECT_EQ(got, expected);

  // Engine hitting levels can never undercut the unconstrained fixpoint.
  for (size_t i = 0; i < q; ++i) {
    for (NodeId v = 0; v < n; ++v) {
      Level h = run.state.Hit(v, i);
      if (h != kLevelInf) {
        EXPECT_GE(static_cast<int>(h), fix[i][v])
            << "node " << v << " keyword " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, FixpointCompareTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace wikisearch
